#!/usr/bin/env bash
# Local CI gate: everything a PR must pass. Run from the repo root.
#
#   ./ci.sh            # build + tests + lints
#   ./ci.sh --smoke    # also run a reduced-scale repro to exercise the
#                      # parallel executor end to end, a --check run with
#                      # the runtime invariant checker attached, a perf
#                      # canary against the checked-in throughput
#                      # baseline, a budgeted differential fuzz pass vs
#                      # the oracle (corner geometries + scenario
#                      # families), a checked scenario run, a
#                      # record -> trace file -> replay round trip,
#                      # checked runs under both adaptive LLC policies,
#                      # and an --llc-policy fixed vs default
#                      # byte-identity comparison
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --release --workspace"
cargo test -q --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> repro smoke run (scale 0.1, all artefacts)"
    ./target/release/repro --scale 0.1 all > /dev/null

    echo "==> repro invariant-checker run (scale 0.05, all artefacts, --check, --sim-threads 4)"
    ./target/release/repro --scale 0.05 all --check --sim-threads 4 > /dev/null

    echo "==> repro seeded fault-injection run (scale 0.05, --faults 2e-4, --check)"
    ./target/release/repro --scale 0.05 --faults 2e-4 --fault-seed 7 fig8 faults --check > /dev/null

    echo "==> repro adaptive-policy runs (scale 0.05, both adaptive policies, --check)"
    ./target/release/repro --scale 0.05 --llc-policy adaptive-retention fig8 --check > /dev/null
    ./target/release/repro --scale 0.05 --llc-policy adaptive-ways fig8 --check > /dev/null

    echo "==> repro perf canary (fixed workload vs results/BENCH_repro.json baseline)"
    ./target/release/repro --canary > /dev/null

    echo "==> repro differential fuzz vs the oracle (50000 cases, seed 7, 4 shards; corners + scenarios)"
    ./target/release/repro --fuzz 50000 --fuzz-seed 7 --sim-threads 4 > /dev/null

    echo "==> repro scenario run (zipf-hot:7, --check)"
    ./target/release/repro --scenario zipf-hot:7 --check > /dev/null

    echo "==> repro record/replay round trip (nw @ 0.05 -> trace file -> --check replay)"
    trace_tmp="$(mktemp -t sttgpu-smoke-XXXXXX.trc)"
    smoke_tmp="$(mktemp -d -t sttgpu-smoke-store-XXXXXX)"
    trap 'rm -f "$trace_tmp"; rm -rf "$smoke_tmp"' EXIT
    ./target/release/repro --record nw --trace-out "$trace_tmp" --scale 0.05 > /dev/null
    ./target/release/repro --trace "$trace_tmp" --check > /dev/null

    echo "==> repro persistent store: cold fill -> warm byte-identity with zero simulations"
    store_dir="$smoke_tmp/store"
    store_args=(--scale 0.05 --store "$store_dir" table1 table2 fig3 fig6)
    ./target/release/repro "${store_args[@]}" --out "$smoke_tmp/cold" > /dev/null
    ./target/release/repro "${store_args[@]}" --out "$smoke_tmp/warm" > /dev/null
    for f in table1.txt table1.csv table2.txt table2.csv fig3.txt fig3.csv fig6.txt fig6.csv; do
        cmp "$smoke_tmp/cold/$f" "$smoke_tmp/warm/$f" \
            || { echo "store smoke: $f differs between cold and warm runs"; exit 1; }
    done
    grep -q '"runs_executed": 0,' "$smoke_tmp/warm/BENCH_repro.json" \
        || { echo "store smoke: warm run re-executed simulations"; exit 1; }

    echo "==> repro persistent store: corrupted entry is quarantined and recomputed"
    first_entry="$(ls "$store_dir"/objects/*.ent | head -n 1)"
    truncate -s -7 "$first_entry"
    ./target/release/repro "${store_args[@]}" --out "$smoke_tmp/healed" > /dev/null
    [[ -n "$(ls -A "$store_dir/quarantine" 2> /dev/null)" ]] \
        || { echo "store smoke: corrupted entry was not quarantined"; exit 1; }
    cmp "$smoke_tmp/cold/table1.txt" "$smoke_tmp/healed/table1.txt" \
        || { echo "store smoke: recomputed artefact differs"; exit 1; }

    echo "==> repro --llc-policy fixed is byte-identical to the default"
    policy_args=(--scale 0.05 table1 fig3 fig6)
    ./target/release/repro "${policy_args[@]}" --out "$smoke_tmp/default" > /dev/null
    ./target/release/repro "${policy_args[@]}" --llc-policy fixed --out "$smoke_tmp/fixed" > /dev/null
    for f in table1.txt table1.csv fig3.txt fig3.csv fig6.txt fig6.csv; do
        cmp "$smoke_tmp/default/$f" "$smoke_tmp/fixed/$f" \
            || { echo "policy smoke: $f differs between default and --llc-policy fixed"; exit 1; }
    done

    echo "==> repro persistent store: two concurrent invocations share one store"
    ./target/release/repro "${store_args[@]}" --out "$smoke_tmp/conc1" > /dev/null &
    conc_pid=$!
    ./target/release/repro "${store_args[@]}" --out "$smoke_tmp/conc2" > /dev/null
    wait "$conc_pid"
fi

echo "CI OK"
