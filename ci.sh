#!/usr/bin/env bash
# Local CI gate: everything a PR must pass. Run from the repo root.
#
#   ./ci.sh            # build + tests + lints
#   ./ci.sh --smoke    # also run a reduced-scale repro to exercise the
#                      # parallel executor end to end, a --check run with
#                      # the runtime invariant checker attached, a perf
#                      # canary against the checked-in throughput
#                      # baseline, a budgeted differential fuzz pass vs
#                      # the oracle (corner geometries + scenario
#                      # families), a checked scenario run, and a
#                      # record -> trace file -> replay round trip
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --release --workspace"
cargo test -q --release --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> repro smoke run (scale 0.1, all artefacts)"
    ./target/release/repro --scale 0.1 all > /dev/null

    echo "==> repro invariant-checker run (scale 0.05, all artefacts, --check, --sim-threads 4)"
    ./target/release/repro --scale 0.05 all --check --sim-threads 4 > /dev/null

    echo "==> repro seeded fault-injection run (scale 0.05, --faults 2e-4, --check)"
    ./target/release/repro --scale 0.05 --faults 2e-4 --fault-seed 7 fig8 faults --check > /dev/null

    echo "==> repro perf canary (fixed workload vs results/BENCH_repro.json baseline)"
    ./target/release/repro --canary > /dev/null

    echo "==> repro differential fuzz vs the oracle (50000 cases, seed 7, 4 shards; corners + scenarios)"
    ./target/release/repro --fuzz 50000 --fuzz-seed 7 --sim-threads 4 > /dev/null

    echo "==> repro scenario run (zipf-hot:7, --check)"
    ./target/release/repro --scenario zipf-hot:7 --check > /dev/null

    echo "==> repro record/replay round trip (nw @ 0.05 -> trace file -> --check replay)"
    trace_tmp="$(mktemp -t sttgpu-smoke-XXXXXX.trc)"
    trap 'rm -f "$trace_tmp"' EXIT
    ./target/release/repro --record nw --trace-out "$trace_tmp" --scale 0.05 > /dev/null
    ./target/release/repro --trace "$trace_tmp" --check > /dev/null
fi

echo "CI OK"
