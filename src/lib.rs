//! # sttgpu — an STT-RAM last-level cache architecture for GPUs
//!
//! Facade crate for the reproduction of *"An Efficient STT-RAM Last Level
//! Cache Architecture for GPUs"* (Samavatian et al., DAC 2014). It re-exports
//! every layer of the stack under one roof so examples, integration tests
//! and downstream users need a single dependency:
//!
//! * [`stats`] — counters, histograms, write-variation metrics,
//! * [`device`] — MTJ/STT-RAM and SRAM device models, CACTI-lite arrays,
//! * [`cache`] — set-associative cache substrate (replacement, MSHRs, banks),
//! * [`core`] — the paper's contribution: the two-part low/high-retention
//!   STT-RAM LLC with WWS monitoring, retention counters, refresh and swap
//!   buffers,
//! * [`sim`] — a cycle-level GPU memory-system simulator,
//! * [`workloads`] — the synthetic GPGPU workload suite,
//! * [`experiments`] — runners that regenerate every table and figure of the
//!   paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use sttgpu::experiments::configs::{gpu_config, L2Choice};
//! use sttgpu::sim::Gpu;
//! use sttgpu::workloads::suite;
//!
//! # fn main() {
//! // Simulate one (scaled-down) workload on the proposed C1 two-part L2.
//! let workload = suite::by_name("bfs").expect("bfs is part of the suite");
//! let small = suite::scaled(&workload, 0.05);
//! let mut gpu = Gpu::new(gpu_config(L2Choice::TwoPartC1));
//! let metrics = gpu.run_workload(&small, 2_000_000);
//! assert!(metrics.finished);
//! assert!(metrics.ipc() > 0.0);
//! # }
//! ```

pub use sttgpu_cache as cache;
pub use sttgpu_core as core;
pub use sttgpu_device as device;
pub use sttgpu_experiments as experiments;
pub use sttgpu_sim as sim;
pub use sttgpu_stats as stats;
pub use sttgpu_workloads as workloads;
