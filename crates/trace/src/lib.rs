//! Typed event trace and runtime invariant checking.
//!
//! The simulator's hot paths (the two-part LLC, swap buffers, retention
//! engines, MSHRs, the memory controller) emit compact [`TraceEvent`]s
//! through a [`Trace`] handle. A disabled handle is a single branch on a
//! `None` — event construction sits behind a closure, so normal runs pay
//! nothing beyond that branch. An enabled handle forwards every event to
//! an [`EventSink`]:
//!
//! * [`VecSink`] records events for tests to assert on;
//! * [`JsonlSink`] streams one JSON object per event for offline
//!   debugging (`diag --trace-jsonl`);
//! * [`Checker`] consumes the stream cycle-accurately and enforces the
//!   protocol invariants of the DAC'14 two-part LLC — retention safety,
//!   refresh-window placement, LR/HR exclusivity, swap-buffer
//!   conservation, MSHR uniqueness and metrics/energy conservation.
//!
//! The crate is dependency-free and sits below the cache substrate in the
//! workspace graph, so every layer can emit without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Which physical part of the LLC an event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartId {
    /// The small low-retention write part.
    Lr,
    /// The large high-retention part.
    Hr,
    /// A monolithic (single-part) LLC — the SRAM/STT-RAM baselines.
    Mono,
}

impl PartId {
    fn index(self) -> usize {
        match self {
            PartId::Lr => 0,
            PartId::Hr => 1,
            PartId::Mono => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            PartId::Lr => "LR",
            PartId::Hr => "HR",
            PartId::Mono => "MONO",
        }
    }
}

/// Direction of a swap-buffer transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferDir {
    /// WWS migration buffer: HR → LR.
    HrToLr,
    /// Demotion/refresh buffer: LR → HR.
    LrToHr,
}

impl BufferDir {
    fn index(self) -> usize {
        match self {
            BufferDir::HrToLr => 0,
            BufferDir::LrToHr => 1,
        }
    }

    fn name(self) -> &'static str {
        match self {
            BufferDir::HrToLr => "HR->LR",
            BufferDir::LrToHr => "LR->HR",
        }
    }
}

/// Number of dynamic-energy categories ([`TraceEvent::EnergyDeposit`]'s
/// `category` ranges over `0..ENERGY_CATEGORIES`).
pub const ENERGY_CATEGORIES: usize = 8;

/// One compact, typed trace event.
///
/// `la` is always a **line address** (byte address / line size), `now_ns`
/// the simulated time of the action and `written_at_ns` the retention
/// timestamp the acting component held for the line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A probe was served from `part`.
    Hit {
        /// Part that served the access.
        part: PartId,
        /// Line address.
        la: u64,
        /// Whether the access was a write.
        write: bool,
        /// Simulated time, ns.
        now_ns: u64,
        /// The line's retention timestamp before this access.
        written_at_ns: u64,
    },
    /// A probe missed every part.
    Miss {
        /// Line address.
        la: u64,
        /// Whether the access was a write.
        write: bool,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A line became resident in `part` (demand fill or migration).
    Fill {
        /// Destination part.
        part: PartId,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A line left `part` for a non-retention reason (capacity victim,
    /// migration source, rotation, buffer-overflow evacuation).
    Evict {
        /// Source part.
        part: PartId,
        /// Line address.
        la: u64,
        /// Whether this eviction wrote the line back to DRAM.
        wrote_back: bool,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A line was invalidated by its retention engine.
    Expire {
        /// Part the line expired in.
        part: PartId,
        /// Line address.
        la: u64,
        /// The line's retention timestamp.
        written_at_ns: u64,
        /// Whether the expiry wrote the line back to DRAM.
        wrote_back: bool,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// An LR line was refreshed (rewritten in place).
    Refresh {
        /// Line address.
        la: u64,
        /// The line's retention timestamp before the refresh.
        written_at_ns: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A block was admitted to a swap buffer.
    BufferAdmit {
        /// Transfer direction.
        dir: BufferDir,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A previously admitted block completed its transfer.
    BufferInstall {
        /// Transfer direction.
        dir: BufferDir,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A swap buffer was full; the transfer fell back (write-in-place for
    /// HR→LR, drop/write-back for LR→HR).
    BufferOverflow {
        /// Transfer direction.
        dir: BufferDir,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// Per-line SECDED corrected a single-bit error on a resident line
    /// (injected early retention flip, caught at read or scrub time).
    EccCorrected {
        /// Part holding the line.
        part: PartId,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// Per-line SECDED detected a multi-bit error it cannot correct; the
    /// line was dropped and the access (if any) handled as a miss.
    EccUncorrectable {
        /// Part the corrupt line was dropped from.
        part: PartId,
        /// Line address.
        la: u64,
        /// Whether dirty (unwritten-back) data was lost — clean lines are
        /// refetched from DRAM and lose nothing.
        data_lost: bool,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// The refresh engine dropped a due LR refresh (injected fault); the
    /// line is left to expire or be re-serviced on the next sweep.
    RefreshDropped {
        /// Line address.
        la: u64,
        /// The line's retention timestamp.
        written_at_ns: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A swap-buffer reservation stalled transiently (injected fault);
    /// the transfer fell back exactly as on a full buffer.
    BufferStall {
        /// Transfer direction.
        dir: BufferDir,
        /// Line address.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// A transient bank fault forced a tag-probe retry (injected fault);
    /// costs one extra tag lookup of latency.
    BankFault {
        /// Line address probed.
        la: u64,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// An MSHR entry was allocated for a new outstanding miss.
    MshrAlloc {
        /// MSHR space: 0 is the L2 miss tracker, `1 + sm_id` an L1's.
        space: u32,
        /// Line address.
        la: u64,
    },
    /// A request merged into an existing MSHR entry.
    MshrMerge {
        /// MSHR space: 0 is the L2 miss tracker, `1 + sm_id` an L1's.
        space: u32,
        /// Line address.
        la: u64,
    },
    /// An outstanding miss completed and its MSHR entry was freed.
    MshrComplete {
        /// MSHR space: 0 is the L2 miss tracker, `1 + sm_id` an L1's.
        space: u32,
        /// Line address.
        la: u64,
    },
    /// A block launch placed fewer warps than occupancy promised
    /// (always a violation; promoted from a `debug_assert!`).
    LaunchUnderfill {
        /// SM that launched the block.
        sm: u32,
        /// Warps actually placed.
        placed: u32,
        /// Warps the occupancy calculation promised.
        needed: u32,
    },
    /// A grid retired more blocks than it launched
    /// (always a violation; promoted from a `debug_assert!`).
    OverRetire {
        /// Blocks retired so far.
        retired: u32,
        /// Blocks in the grid.
        blocks: u32,
    },
    /// End-of-run LLC counters, checked against the event-derived tally.
    MetricsReport {
        /// Read hits.
        read_hits: u64,
        /// Read misses.
        read_misses: u64,
        /// Write hits.
        write_hits: u64,
        /// Write misses.
        write_misses: u64,
        /// DRAM write-backs.
        writebacks: u64,
    },
    /// One dynamic-energy deposit into the LLC ledger.
    EnergyDeposit {
        /// Energy category (`0..ENERGY_CATEGORIES`).
        category: u8,
        /// Deposited energy, nJ.
        nj: f64,
    },
    /// End-of-run energy ledger, checked against the summed deposits.
    EnergyReport {
        /// Per-category dynamic energy, nJ.
        by_category: [f64; ENERGY_CATEGORIES],
        /// Total dynamic energy, nJ.
        total_nj: f64,
    },
    /// A runtime-adaptive LLC policy reconfigured `part` — a retention
    /// ladder step (LR) or a way reallocation (HR). Carries the *new*
    /// retention windows so a consuming [`Checker`] can retire the stale
    /// bounds it was configured with; zero fields mean "unchanged".
    PolicySwitch {
        /// Part that was reconfigured.
        part: PartId,
        /// New LR retention period (hit-age limit), ns; 0 = unchanged.
        lr_max_hit_age_ns: u64,
        /// New start of the LR refresh tail, ns; 0 = unchanged.
        lr_tail_start_ns: u64,
        /// New minimum LR expiry age, ns; 0 = unchanged.
        lr_min_expire_age_ns: u64,
        /// New number of active HR ways; 0 = unchanged.
        active_ways: u32,
        /// Simulated time, ns.
        now_ns: u64,
    },
    /// The measurement window was reset (counters and energy restart;
    /// residency and outstanding state carry over).
    ResetMeasurement,
}

/// Consumes trace events. Implementations must be cheap: they run inline
/// with the simulation.
pub trait EventSink {
    /// Handles one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// A cloneable handle components emit through.
///
/// A default (`off`) handle holds no sink: [`emit`](Trace::emit) is one
/// branch and the event-constructing closure is never called, which is
/// what keeps the instrumented hot paths free in normal runs. Clones
/// share the underlying sink, so one checker observes a whole [`Gpu`].
///
/// The sink is behind `Arc<Mutex<_>>` (rather than `Rc<RefCell<_>>`) so
/// handle owners — in particular `Sm` — are `Send` and can be stepped on
/// worker threads. The parallel driver gives each SM a private buffering
/// sink, so the lock is uncontended in practice.
///
/// [`Gpu`]: ../sttgpu_sim/struct.Gpu.html
#[derive(Clone, Default)]
pub struct Trace(Option<Arc<Mutex<dyn EventSink + Send>>>);

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Trace")
            .field(if self.0.is_some() { &"on" } else { &"off" })
            .finish()
    }
}

impl Trace {
    /// A disabled handle (the default everywhere).
    pub fn off() -> Self {
        Trace(None)
    }

    /// A handle forwarding every event to `sink`.
    pub fn to_sink<S: EventSink + Send + 'static>(sink: Arc<Mutex<S>>) -> Self {
        Trace(Some(sink))
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits the event built by `f` — the closure runs only when a sink
    /// is attached.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            Self::forward(sink, f());
        }
    }

    /// Outlined delivery path. Kept cold and non-generic so the disabled
    /// branch in `emit` compiles down to a single load-and-compare in the
    /// simulation hot loops instead of dragging the lock + dynamic
    /// dispatch machinery into every caller.
    #[cold]
    #[inline(never)]
    fn forward(sink: &Arc<Mutex<dyn EventSink + Send>>, event: TraceEvent) {
        sink.lock().expect("trace sink poisoned").emit(&event);
    }
}

/// Records every event in order — the test sink.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty recorder.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes (and clears) the recorded events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves the recorded events onto the end of `out`, leaving this sink
    /// empty but with its capacity intact. Used by the per-SM trace
    /// buffers, which drain every visited cycle and must not reallocate.
    pub fn take_into(&mut self, out: &mut Vec<TraceEvent>) {
        out.append(&mut self.events);
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

fn json_escape_free(s: &str) -> &str {
    // Event field names and part/dir labels contain no JSON-special
    // characters; keep the writer allocation-free.
    debug_assert!(!s.contains('"') && !s.contains('\\'));
    s
}

/// Renders one event as a single-line JSON object (hand-rolled — the
/// workspace carries no serde).
pub fn to_json(ev: &TraceEvent) -> String {
    use TraceEvent::*;
    match ev {
        Hit {
            part,
            la,
            write,
            now_ns,
            written_at_ns,
        } => format!(
            "{{\"ev\":\"hit\",\"part\":\"{}\",\"la\":{la},\"write\":{write},\"now_ns\":{now_ns},\"written_at_ns\":{written_at_ns}}}",
            json_escape_free(part.name())
        ),
        Miss { la, write, now_ns } => {
            format!("{{\"ev\":\"miss\",\"la\":{la},\"write\":{write},\"now_ns\":{now_ns}}}")
        }
        Fill { part, la, now_ns } => format!(
            "{{\"ev\":\"fill\",\"part\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        Evict {
            part,
            la,
            wrote_back,
            now_ns,
        } => format!(
            "{{\"ev\":\"evict\",\"part\":\"{}\",\"la\":{la},\"wrote_back\":{wrote_back},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        Expire {
            part,
            la,
            written_at_ns,
            wrote_back,
            now_ns,
        } => format!(
            "{{\"ev\":\"expire\",\"part\":\"{}\",\"la\":{la},\"written_at_ns\":{written_at_ns},\"wrote_back\":{wrote_back},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        Refresh {
            la,
            written_at_ns,
            now_ns,
        } => format!(
            "{{\"ev\":\"refresh\",\"la\":{la},\"written_at_ns\":{written_at_ns},\"now_ns\":{now_ns}}}"
        ),
        BufferAdmit { dir, la, now_ns } => format!(
            "{{\"ev\":\"buffer_admit\",\"dir\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(dir.name())
        ),
        BufferInstall { dir, la, now_ns } => format!(
            "{{\"ev\":\"buffer_install\",\"dir\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(dir.name())
        ),
        BufferOverflow { dir, la, now_ns } => format!(
            "{{\"ev\":\"buffer_overflow\",\"dir\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(dir.name())
        ),
        EccCorrected { part, la, now_ns } => format!(
            "{{\"ev\":\"ecc_corrected\",\"part\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        EccUncorrectable {
            part,
            la,
            data_lost,
            now_ns,
        } => format!(
            "{{\"ev\":\"ecc_uncorrectable\",\"part\":\"{}\",\"la\":{la},\"data_lost\":{data_lost},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        RefreshDropped {
            la,
            written_at_ns,
            now_ns,
        } => format!(
            "{{\"ev\":\"refresh_dropped\",\"la\":{la},\"written_at_ns\":{written_at_ns},\"now_ns\":{now_ns}}}"
        ),
        BufferStall { dir, la, now_ns } => format!(
            "{{\"ev\":\"buffer_stall\",\"dir\":\"{}\",\"la\":{la},\"now_ns\":{now_ns}}}",
            json_escape_free(dir.name())
        ),
        BankFault { la, now_ns } => {
            format!("{{\"ev\":\"bank_fault\",\"la\":{la},\"now_ns\":{now_ns}}}")
        }
        MshrAlloc { space, la } => {
            format!("{{\"ev\":\"mshr_alloc\",\"space\":{space},\"la\":{la}}}")
        }
        MshrMerge { space, la } => {
            format!("{{\"ev\":\"mshr_merge\",\"space\":{space},\"la\":{la}}}")
        }
        MshrComplete { space, la } => {
            format!("{{\"ev\":\"mshr_complete\",\"space\":{space},\"la\":{la}}}")
        }
        LaunchUnderfill { sm, placed, needed } => format!(
            "{{\"ev\":\"launch_underfill\",\"sm\":{sm},\"placed\":{placed},\"needed\":{needed}}}"
        ),
        OverRetire { retired, blocks } => {
            format!("{{\"ev\":\"over_retire\",\"retired\":{retired},\"blocks\":{blocks}}}")
        }
        MetricsReport {
            read_hits,
            read_misses,
            write_hits,
            write_misses,
            writebacks,
        } => format!(
            "{{\"ev\":\"metrics_report\",\"read_hits\":{read_hits},\"read_misses\":{read_misses},\"write_hits\":{write_hits},\"write_misses\":{write_misses},\"writebacks\":{writebacks}}}"
        ),
        EnergyDeposit { category, nj } => {
            format!("{{\"ev\":\"energy_deposit\",\"category\":{category},\"nj\":{nj}}}")
        }
        EnergyReport {
            by_category,
            total_nj,
        } => {
            let cats: Vec<String> = by_category.iter().map(|v| v.to_string()).collect();
            format!(
                "{{\"ev\":\"energy_report\",\"by_category\":[{}],\"total_nj\":{total_nj}}}",
                cats.join(",")
            )
        }
        PolicySwitch {
            part,
            lr_max_hit_age_ns,
            lr_tail_start_ns,
            lr_min_expire_age_ns,
            active_ways,
            now_ns,
        } => format!(
            "{{\"ev\":\"policy_switch\",\"part\":\"{}\",\"lr_max_hit_age_ns\":{lr_max_hit_age_ns},\"lr_tail_start_ns\":{lr_tail_start_ns},\"lr_min_expire_age_ns\":{lr_min_expire_age_ns},\"active_ways\":{active_ways},\"now_ns\":{now_ns}}}",
            json_escape_free(part.name())
        ),
        ResetMeasurement => "{\"ev\":\"reset_measurement\"}".to_string(),
    }
}

/// Streams one JSON object per event to a writer — the debugging sink
/// behind `diag --trace-jsonl`.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, written: 0 }
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        // A dump sink losing a line on a full disk should not abort the
        // simulation; the written() counter exposes the shortfall.
        if writeln!(self.out, "{}", to_json(ev)).is_ok() {
            self.written += 1;
        }
    }
}

/// Retention/refresh bounds the [`Checker`] enforces. All ages are
/// `now_ns - written_at_ns`. The [`Default`] disables every timing check
/// (monolithic LLCs have no retention protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// A hit served from LR at age ≥ this (plus slack) is a violation —
    /// the LR retention period.
    pub lr_max_hit_age_ns: u64,
    /// Refreshes must happen at age ≥ this — the start of the configured
    /// tail fraction of the LR retention window.
    pub lr_tail_start_ns: u64,
    /// An LR expiry at age < this is premature — the LR retention period.
    pub lr_min_expire_age_ns: u64,
    /// A hit served from HR at age ≥ this (plus slack) is a violation —
    /// the HR invalidation horizon (last retention-counter tick).
    pub hr_max_hit_age_ns: u64,
    /// An HR expiry at age < this is premature.
    pub hr_min_expire_age_ns: u64,
    /// Timing tolerance for the upper-bound hit checks: probes time-stamp
    /// at interconnect arrival, up to one maintenance interval after the
    /// retention engines last ran.
    pub slack_ns: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            lr_max_hit_age_ns: u64::MAX,
            lr_tail_start_ns: 0,
            lr_min_expire_age_ns: 0,
            hr_max_hit_age_ns: u64::MAX,
            hr_min_expire_age_ns: 0,
            slack_ns: 0,
        }
    }
}

impl CheckConfig {
    /// Adds timing slack (see [`CheckConfig::slack_ns`]).
    pub fn with_slack_ns(mut self, slack_ns: u64) -> Self {
        self.slack_ns = slack_ns;
        self
    }
}

/// Outcome of a checked run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Events consumed.
    pub events_seen: u64,
    /// Invariant violations detected.
    pub violations: u64,
    /// First few violation descriptions (capped).
    pub samples: Vec<String>,
}

impl CheckReport {
    /// Whether the run was violation-free.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }
}

const SAMPLE_CAP: usize = 32;

/// The invariant-checking sink.
///
/// Mirrors residency, swap-buffer occupancy and outstanding misses from
/// the event stream and flags every protocol departure:
///
/// 1. no hit is served from an expired LR (or invalidated HR) line;
/// 2. refreshes happen only inside the configured tail fraction of the
///    retention period;
/// 3. a block is never resident in LR and HR simultaneously;
/// 4. every block admitted to a swap buffer is eventually installed
///    (conservation — overflowed blocks are never admitted);
/// 5. MSHRs never hold duplicate outstanding misses;
/// 6. reported metrics and energy equal the event-derived tallies;
/// 7. ECC outcomes reference resident lines: a correction of (or an
///    uncorrectable drop of, or a dropped refresh for) a line that is not
///    resident is a violation — which also forces the post-drop access to
///    observe a miss.
#[derive(Debug, Clone)]
pub struct Checker {
    cfg: CheckConfig,
    /// Residency per part (LR, HR, MONO).
    resident: [HashSet<u64>; 3],
    /// Outstanding swap-buffer admissions per direction.
    buffers: [Vec<u64>; 2],
    /// Outstanding misses per MSHR space.
    mshr: HashMap<u32, HashSet<u64>>,
    read_hits: u64,
    read_misses: u64,
    write_hits: u64,
    write_misses: u64,
    writebacks: u64,
    energy_nj: [f64; ENERGY_CATEGORIES],
    events_seen: u64,
    violations: u64,
    samples: Vec<String>,
}

impl Checker {
    /// A checker enforcing `cfg`'s retention bounds.
    pub fn new(cfg: CheckConfig) -> Self {
        Checker {
            cfg,
            resident: Default::default(),
            buffers: Default::default(),
            mshr: HashMap::new(),
            read_hits: 0,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
            writebacks: 0,
            energy_nj: [0.0; ENERGY_CATEGORIES],
            events_seen: 0,
            violations: 0,
            samples: Vec::new(),
        }
    }

    fn violate(&mut self, msg: String) {
        self.violations += 1;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(msg);
        }
    }

    fn other_part(part: PartId) -> Option<PartId> {
        match part {
            PartId::Lr => Some(PartId::Hr),
            PartId::Hr => Some(PartId::Lr),
            PartId::Mono => None,
        }
    }

    fn resident_anywhere(&self, la: u64) -> Option<PartId> {
        [PartId::Lr, PartId::Hr, PartId::Mono]
            .into_iter()
            .find(|&part| self.resident[part.index()].contains(&la))
    }

    fn check_hit_age(&mut self, part: PartId, la: u64, now_ns: u64, written_at_ns: u64) {
        let age = now_ns.saturating_sub(written_at_ns);
        let max = match part {
            PartId::Lr => self.cfg.lr_max_hit_age_ns,
            PartId::Hr => self.cfg.hr_max_hit_age_ns,
            PartId::Mono => u64::MAX,
        };
        if max != u64::MAX && age >= max.saturating_add(self.cfg.slack_ns) {
            self.violate(format!(
                "hit on expired {} line {la:#x}: age {age}ns >= limit {max}ns (+{} slack)",
                part.name(),
                self.cfg.slack_ns
            ));
        }
    }

    fn on_remove(&mut self, part: PartId, la: u64, what: &str) {
        if !self.resident[part.index()].remove(&la) {
            self.violate(format!(
                "{what} of line {la:#x} from {} where it is not resident",
                part.name()
            ));
        }
    }

    fn on_fill(&mut self, part: PartId, la: u64) {
        if let Some(other) = Self::other_part(part) {
            if self.resident[other.index()].contains(&la) {
                self.violate(format!(
                    "line {la:#x} filled into {} while resident in {} (exclusivity)",
                    part.name(),
                    other.name()
                ));
            }
        }
        if !self.resident[part.index()].insert(la) {
            self.violate(format!(
                "duplicate fill of line {la:#x} into {}",
                part.name()
            ));
        }
    }

    /// Finishes a run: with `expect_drained`, outstanding swap-buffer
    /// admissions or MSHR entries become conservation violations (pass
    /// `false` for budget-truncated runs, which legitimately end with
    /// misses in flight).
    pub fn finish_run(&mut self, expect_drained: bool) {
        if !expect_drained {
            return;
        }
        for dir in [BufferDir::HrToLr, BufferDir::LrToHr] {
            let outstanding = std::mem::take(&mut self.buffers[dir.index()]);
            for la in outstanding {
                self.violate(format!(
                    "swap-buffer {} admission of line {la:#x} never installed (conservation)",
                    dir.name()
                ));
            }
        }
        let spaces: Vec<u32> = self.mshr.keys().copied().collect();
        for space in spaces {
            let pending = std::mem::take(self.mshr.get_mut(&space).expect("space listed"));
            for la in pending {
                self.violate(format!(
                    "MSHR space {space} still holds line {la:#x} after a finished run"
                ));
            }
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> CheckReport {
        CheckReport {
            events_seen: self.events_seen,
            violations: self.violations,
            samples: self.samples.clone(),
        }
    }
}

impl EventSink for Checker {
    fn emit(&mut self, ev: &TraceEvent) {
        use TraceEvent::*;
        self.events_seen += 1;
        match *ev {
            Hit {
                part,
                la,
                write,
                now_ns,
                written_at_ns,
            } => {
                if !self.resident[part.index()].contains(&la) {
                    self.violate(format!(
                        "hit on line {la:#x} in {} where it is not resident",
                        part.name()
                    ));
                }
                self.check_hit_age(part, la, now_ns, written_at_ns);
                if write {
                    self.write_hits += 1;
                } else {
                    self.read_hits += 1;
                }
            }
            Miss { la, write, .. } => {
                if let Some(part) = self.resident_anywhere(la) {
                    self.violate(format!(
                        "miss on line {la:#x} while resident in {}",
                        part.name()
                    ));
                }
                if write {
                    self.write_misses += 1;
                } else {
                    self.read_misses += 1;
                }
            }
            Fill { part, la, .. } => self.on_fill(part, la),
            Evict {
                part,
                la,
                wrote_back,
                ..
            } => {
                self.on_remove(part, la, "eviction");
                self.writebacks += wrote_back as u64;
            }
            Expire {
                part,
                la,
                written_at_ns,
                wrote_back,
                now_ns,
            } => {
                self.on_remove(part, la, "expiry");
                let age = now_ns.saturating_sub(written_at_ns);
                let min = match part {
                    PartId::Lr => self.cfg.lr_min_expire_age_ns,
                    PartId::Hr => self.cfg.hr_min_expire_age_ns,
                    PartId::Mono => 0,
                };
                if age < min {
                    self.violate(format!(
                        "premature {} expiry of line {la:#x}: age {age}ns < {min}ns",
                        part.name()
                    ));
                }
                self.writebacks += wrote_back as u64;
            }
            Refresh {
                la,
                written_at_ns,
                now_ns,
            } => {
                if !self.resident[PartId::Lr.index()].contains(&la) {
                    self.violate(format!("refresh of non-resident LR line {la:#x}"));
                }
                let age = now_ns.saturating_sub(written_at_ns);
                if age < self.cfg.lr_tail_start_ns {
                    self.violate(format!(
                        "refresh of line {la:#x} before the retention tail: age {age}ns < {}ns",
                        self.cfg.lr_tail_start_ns
                    ));
                }
                if self.cfg.lr_max_hit_age_ns != u64::MAX
                    && age >= self.cfg.lr_max_hit_age_ns.saturating_add(self.cfg.slack_ns)
                {
                    self.violate(format!(
                        "refresh of already-expired line {la:#x}: age {age}ns >= {}ns",
                        self.cfg.lr_max_hit_age_ns
                    ));
                }
            }
            BufferAdmit { dir, la, .. } => self.buffers[dir.index()].push(la),
            BufferInstall { dir, la, .. } => {
                let buf = &mut self.buffers[dir.index()];
                match buf.iter().rposition(|&x| x == la) {
                    Some(i) => {
                        buf.remove(i);
                    }
                    None => self.violate(format!(
                        "swap-buffer {} install of line {la:#x} without admission",
                        dir.name()
                    )),
                }
            }
            BufferOverflow { .. } => {}
            EccCorrected { part, la, .. } => {
                if !self.resident[part.index()].contains(&la) {
                    self.violate(format!(
                        "ECC correction on line {la:#x} in {} where it is not resident",
                        part.name()
                    ));
                }
            }
            EccUncorrectable { part, la, .. } => {
                // An uncorrectable error drops the line; the subsequent
                // access must then observe a miss, which the residency
                // mirror now enforces for free.
                self.on_remove(part, la, "ECC drop");
            }
            RefreshDropped { la, .. } => {
                if !self.resident[PartId::Lr.index()].contains(&la) {
                    self.violate(format!("dropped refresh of non-resident LR line {la:#x}"));
                }
            }
            BufferStall { .. } => {}
            BankFault { .. } => {}
            MshrAlloc { space, la } => {
                if !self.mshr.entry(space).or_default().insert(la) {
                    self.violate(format!(
                        "MSHR space {space} allocated a duplicate outstanding miss on line {la:#x}"
                    ));
                }
            }
            MshrMerge { space, la } => {
                if !self.mshr.entry(space).or_default().contains(&la) {
                    self.violate(format!(
                        "MSHR space {space} merged into a miss on line {la:#x} that is not outstanding"
                    ));
                }
            }
            MshrComplete { space, la } => {
                if !self.mshr.entry(space).or_default().remove(&la) {
                    self.violate(format!(
                        "MSHR space {space} completed a miss on line {la:#x} that is not outstanding"
                    ));
                }
            }
            LaunchUnderfill { sm, placed, needed } => self.violate(format!(
                "SM {sm} placed {placed} warps where occupancy promised {needed}"
            )),
            OverRetire { retired, blocks } => self.violate(format!(
                "grid retired {retired} blocks out of {blocks} launched"
            )),
            MetricsReport {
                read_hits,
                read_misses,
                write_hits,
                write_misses,
                writebacks,
            } => {
                let pairs = [
                    ("read_hits", read_hits, self.read_hits),
                    ("read_misses", read_misses, self.read_misses),
                    ("write_hits", write_hits, self.write_hits),
                    ("write_misses", write_misses, self.write_misses),
                    ("writebacks", writebacks, self.writebacks),
                ];
                for (name, reported, tallied) in pairs {
                    if reported != tallied {
                        self.violate(format!(
                            "metrics conservation: reported {name} = {reported} but events tally {tallied}"
                        ));
                    }
                }
            }
            EnergyDeposit { category, nj } => {
                let c = category as usize;
                if c >= ENERGY_CATEGORIES {
                    self.violate(format!("energy deposit into unknown category {category}"));
                } else {
                    if nj < 0.0 {
                        self.violate(format!("negative energy deposit: {nj} nJ"));
                    }
                    self.energy_nj[c] += nj;
                }
            }
            EnergyReport {
                by_category,
                total_nj,
            } => {
                let mut sum = 0.0;
                let tallies = self.energy_nj;
                for (c, (&reported, &tallied)) in by_category.iter().zip(tallies.iter()).enumerate()
                {
                    sum += reported;
                    // Deposits accumulate in ledger order on both sides, so
                    // agreement is essentially exact; the tolerance absorbs
                    // only representation noise.
                    let tol = 1e-6_f64.max(reported.abs() * 1e-9);
                    if (reported - tallied).abs() > tol {
                        self.violate(format!(
                            "energy conservation: category {c} reports {reported} nJ but deposits sum to {tallied} nJ"
                        ));
                    }
                }
                let tol = 1e-6_f64.max(total_nj.abs() * 1e-9);
                if (total_nj - sum).abs() > tol {
                    self.violate(format!(
                        "energy conservation: total {total_nj} nJ != category sum {sum} nJ"
                    ));
                }
            }
            PolicySwitch {
                lr_max_hit_age_ns,
                lr_tail_start_ns,
                lr_min_expire_age_ns,
                ..
            } => {
                // A retention switch rewrites every resident LR line (the
                // stream shows the array writes as energy deposits), so the
                // stale windows configured at run start must be retired here
                // — otherwise every later tail refresh under a longer
                // retention period would be flagged against the old bounds.
                if lr_max_hit_age_ns > 0 {
                    if lr_tail_start_ns >= lr_max_hit_age_ns {
                        self.violate(format!(
                            "policy switch announces an empty refresh tail: start {lr_tail_start_ns}ns >= retention {lr_max_hit_age_ns}ns"
                        ));
                    }
                    self.cfg.lr_max_hit_age_ns = lr_max_hit_age_ns;
                    self.cfg.lr_tail_start_ns = lr_tail_start_ns;
                    self.cfg.lr_min_expire_age_ns = lr_min_expire_age_ns;
                }
            }
            ResetMeasurement => {
                self.read_hits = 0;
                self.read_misses = 0;
                self.write_hits = 0;
                self.write_misses = 0;
                self.writebacks = 0;
                self.energy_nj = [0.0; ENERGY_CATEGORIES];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checked(cfg: CheckConfig, evs: &[TraceEvent]) -> CheckReport {
        let mut c = Checker::new(cfg);
        for ev in evs {
            c.emit(ev);
        }
        c.finish_run(true);
        c.report()
    }

    fn retention_cfg() -> CheckConfig {
        CheckConfig {
            lr_max_hit_age_ns: 1000,
            lr_tail_start_ns: 800,
            lr_min_expire_age_ns: 1000,
            hr_max_hit_age_ns: 4000,
            hr_min_expire_age_ns: 4000,
            slack_ns: 0,
        }
    }

    #[test]
    fn disabled_trace_never_builds_events() {
        let t = Trace::off();
        assert!(!t.is_enabled());
        t.emit(|| panic!("closure must not run on a disabled trace"));
    }

    #[test]
    fn enabled_trace_records() {
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let t = Trace::to_sink(Arc::clone(&sink));
        assert!(t.is_enabled());
        t.emit(|| TraceEvent::ResetMeasurement);
        assert_eq!(
            sink.lock().unwrap().events(),
            &[TraceEvent::ResetMeasurement]
        );
    }

    #[test]
    fn clean_fill_hit_evict_stream() {
        let r = checked(
            retention_cfg(),
            &[
                TraceEvent::Miss {
                    la: 7,
                    write: false,
                    now_ns: 10,
                },
                TraceEvent::Fill {
                    part: PartId::Hr,
                    la: 7,
                    now_ns: 20,
                },
                TraceEvent::Hit {
                    part: PartId::Hr,
                    la: 7,
                    write: false,
                    now_ns: 30,
                    written_at_ns: 20,
                },
                TraceEvent::Evict {
                    part: PartId::Hr,
                    la: 7,
                    wrote_back: false,
                    now_ns: 40,
                },
                TraceEvent::MetricsReport {
                    read_hits: 1,
                    read_misses: 1,
                    write_hits: 0,
                    write_misses: 0,
                    writebacks: 0,
                },
            ],
        );
        assert!(r.is_clean(), "{:?}", r.samples);
        assert_eq!(r.events_seen, 5);
    }

    #[test]
    fn expired_lr_hit_is_flagged() {
        let r = checked(
            retention_cfg(),
            &[
                TraceEvent::Fill {
                    part: PartId::Lr,
                    la: 1,
                    now_ns: 0,
                },
                TraceEvent::Hit {
                    part: PartId::Lr,
                    la: 1,
                    write: true,
                    now_ns: 1500,
                    written_at_ns: 0,
                },
            ],
        );
        assert_eq!(r.violations, 1, "{:?}", r.samples);
        assert!(r.samples[0].contains("expired LR"));
    }

    #[test]
    fn early_refresh_is_flagged_and_tail_refresh_is_not() {
        let fill = TraceEvent::Fill {
            part: PartId::Lr,
            la: 2,
            now_ns: 0,
        };
        let early = checked(
            retention_cfg(),
            &[
                fill.clone(),
                TraceEvent::Refresh {
                    la: 2,
                    written_at_ns: 0,
                    now_ns: 100,
                },
            ],
        );
        assert_eq!(early.violations, 1);
        let tail = checked(
            retention_cfg(),
            &[
                fill,
                TraceEvent::Refresh {
                    la: 2,
                    written_at_ns: 0,
                    now_ns: 900,
                },
            ],
        );
        assert!(tail.is_clean(), "{:?}", tail.samples);
    }

    #[test]
    fn dual_residency_is_flagged() {
        let r = checked(
            CheckConfig::default(),
            &[
                TraceEvent::Fill {
                    part: PartId::Hr,
                    la: 3,
                    now_ns: 0,
                },
                TraceEvent::Fill {
                    part: PartId::Lr,
                    la: 3,
                    now_ns: 1,
                },
            ],
        );
        assert_eq!(r.violations, 1);
        assert!(r.samples[0].contains("exclusivity"));
    }

    #[test]
    fn unbalanced_buffer_admission_is_flagged() {
        let r = checked(
            CheckConfig::default(),
            &[TraceEvent::BufferAdmit {
                dir: BufferDir::LrToHr,
                la: 4,
                now_ns: 0,
            }],
        );
        assert_eq!(r.violations, 1);
        assert!(r.samples[0].contains("conservation"));

        let mut c = Checker::new(CheckConfig::default());
        c.emit(&TraceEvent::BufferAdmit {
            dir: BufferDir::LrToHr,
            la: 4,
            now_ns: 0,
        });
        c.finish_run(false); // truncated run: in-flight state is legal
        assert!(c.report().is_clean());
    }

    #[test]
    fn duplicate_mshr_allocation_is_flagged() {
        let r = checked(
            CheckConfig::default(),
            &[
                TraceEvent::MshrAlloc { space: 0, la: 9 },
                TraceEvent::MshrAlloc { space: 0, la: 9 },
                TraceEvent::MshrComplete { space: 0, la: 9 },
            ],
        );
        assert_eq!(r.violations, 1);
        assert!(r.samples[0].contains("duplicate"));
    }

    #[test]
    fn metrics_mismatch_is_flagged() {
        let r = checked(
            CheckConfig::default(),
            &[TraceEvent::MetricsReport {
                read_hits: 1,
                read_misses: 0,
                write_hits: 0,
                write_misses: 0,
                writebacks: 0,
            }],
        );
        assert_eq!(r.violations, 1);
    }

    #[test]
    fn energy_conservation() {
        let mut by_category = [0.0; ENERGY_CATEGORIES];
        by_category[2] = 1.5;
        let clean = checked(
            CheckConfig::default(),
            &[
                TraceEvent::EnergyDeposit {
                    category: 2,
                    nj: 1.0,
                },
                TraceEvent::EnergyDeposit {
                    category: 2,
                    nj: 0.5,
                },
                TraceEvent::EnergyReport {
                    by_category,
                    total_nj: 1.5,
                },
            ],
        );
        assert!(clean.is_clean(), "{:?}", clean.samples);

        let dirty = checked(
            CheckConfig::default(),
            &[TraceEvent::EnergyReport {
                by_category,
                total_nj: 1.5,
            }],
        );
        assert_eq!(dirty.violations, 1);
    }

    #[test]
    fn reset_measurement_clears_tallies_but_keeps_residency() {
        let mut c = Checker::new(CheckConfig::default());
        c.emit(&TraceEvent::Miss {
            la: 5,
            write: false,
            now_ns: 0,
        });
        c.emit(&TraceEvent::Fill {
            part: PartId::Mono,
            la: 5,
            now_ns: 1,
        });
        c.emit(&TraceEvent::ResetMeasurement);
        c.emit(&TraceEvent::Hit {
            part: PartId::Mono,
            la: 5,
            write: false,
            now_ns: 2,
            written_at_ns: 1,
        });
        c.emit(&TraceEvent::MetricsReport {
            read_hits: 1,
            read_misses: 0,
            write_hits: 0,
            write_misses: 0,
            writebacks: 0,
        });
        c.finish_run(true);
        assert!(c.report().is_clean(), "{:?}", c.report().samples);
    }

    #[test]
    fn promoted_debug_asserts_always_violate() {
        let r = checked(
            CheckConfig::default(),
            &[
                TraceEvent::LaunchUnderfill {
                    sm: 1,
                    placed: 3,
                    needed: 4,
                },
                TraceEvent::OverRetire {
                    retired: 9,
                    blocks: 8,
                },
            ],
        );
        assert_eq!(r.violations, 2);
    }

    #[test]
    fn ecc_events_track_residency() {
        // A correction on a resident line is clean; an uncorrectable
        // error drops residency, so the miss + refill that follow are
        // clean too.
        let r = checked(
            retention_cfg(),
            &[
                TraceEvent::Fill {
                    part: PartId::Lr,
                    la: 6,
                    now_ns: 0,
                },
                TraceEvent::EccCorrected {
                    part: PartId::Lr,
                    la: 6,
                    now_ns: 10,
                },
                TraceEvent::EccUncorrectable {
                    part: PartId::Lr,
                    la: 6,
                    data_lost: false,
                    now_ns: 20,
                },
                TraceEvent::Miss {
                    la: 6,
                    write: false,
                    now_ns: 20,
                },
                TraceEvent::Fill {
                    part: PartId::Hr,
                    la: 6,
                    now_ns: 30,
                },
                TraceEvent::MetricsReport {
                    read_hits: 0,
                    read_misses: 1,
                    write_hits: 0,
                    write_misses: 0,
                    writebacks: 0,
                },
            ],
        );
        assert!(r.is_clean(), "{:?}", r.samples);
    }

    #[test]
    fn ecc_events_on_nonresident_lines_are_flagged() {
        let r = checked(
            CheckConfig::default(),
            &[
                TraceEvent::EccCorrected {
                    part: PartId::Hr,
                    la: 1,
                    now_ns: 0,
                },
                TraceEvent::EccUncorrectable {
                    part: PartId::Lr,
                    la: 2,
                    data_lost: true,
                    now_ns: 0,
                },
                TraceEvent::RefreshDropped {
                    la: 3,
                    written_at_ns: 0,
                    now_ns: 5,
                },
            ],
        );
        assert_eq!(r.violations, 3, "{:?}", r.samples);
    }

    #[test]
    fn stall_and_bank_fault_events_are_informational() {
        let r = checked(
            CheckConfig::default(),
            &[
                TraceEvent::BufferStall {
                    dir: BufferDir::HrToLr,
                    la: 4,
                    now_ns: 0,
                },
                TraceEvent::BankFault { la: 4, now_ns: 0 },
            ],
        );
        assert!(r.is_clean(), "{:?}", r.samples);
        assert_eq!(r.events_seen, 2);
    }

    #[test]
    fn fault_events_render_as_json() {
        assert_eq!(
            to_json(&TraceEvent::EccUncorrectable {
                part: PartId::Lr,
                la: 5,
                data_lost: true,
                now_ns: 9,
            }),
            "{\"ev\":\"ecc_uncorrectable\",\"part\":\"LR\",\"la\":5,\"data_lost\":true,\"now_ns\":9}"
        );
        assert_eq!(
            to_json(&TraceEvent::RefreshDropped {
                la: 1,
                written_at_ns: 2,
                now_ns: 3,
            }),
            "{\"ev\":\"refresh_dropped\",\"la\":1,\"written_at_ns\":2,\"now_ns\":3}"
        );
        assert_eq!(
            to_json(&TraceEvent::BankFault { la: 7, now_ns: 8 }),
            "{\"ev\":\"bank_fault\",\"la\":7,\"now_ns\":8}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&TraceEvent::Miss {
            la: 16,
            write: true,
            now_ns: 99,
        });
        sink.emit(&TraceEvent::ResetMeasurement);
        assert_eq!(sink.written(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ev\":\"miss\",\"la\":16,\"write\":true,\"now_ns\":99}"
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn policy_switch_retires_stale_retention_windows() {
        // After a runtime retention-ladder step the LR period doubles; a
        // tail refresh timed for the *new* window is legal, but a checker
        // still holding the run-start bounds would flag it as refreshing
        // an already-expired line. The PolicySwitch event carries the new
        // windows so the checker follows the reconfiguration.
        let stream = |switched: bool| {
            let mut evs = vec![TraceEvent::Fill {
                part: PartId::Lr,
                la: 1,
                now_ns: 0,
            }];
            if switched {
                evs.push(TraceEvent::PolicySwitch {
                    part: PartId::Lr,
                    lr_max_hit_age_ns: 2000,
                    lr_tail_start_ns: 1600,
                    lr_min_expire_age_ns: 2000,
                    active_ways: 0,
                    now_ns: 500,
                });
            }
            evs.push(TraceEvent::Refresh {
                la: 1,
                written_at_ns: 501,
                now_ns: 2200,
            });
            evs
        };
        let stale = checked(retention_cfg(), &stream(false));
        assert_eq!(stale.violations, 1, "{:?}", stale.samples);
        assert!(stale.samples[0].contains("already-expired"));
        let followed = checked(retention_cfg(), &stream(true));
        assert!(followed.is_clean(), "{:?}", followed.samples);
    }

    #[test]
    fn policy_switch_with_empty_tail_is_flagged() {
        let r = checked(
            retention_cfg(),
            &[TraceEvent::PolicySwitch {
                part: PartId::Lr,
                lr_max_hit_age_ns: 1000,
                lr_tail_start_ns: 1000,
                lr_min_expire_age_ns: 1000,
                active_ways: 0,
                now_ns: 0,
            }],
        );
        assert_eq!(r.violations, 1);
        assert!(r.samples[0].contains("empty refresh tail"));
    }

    #[test]
    fn hr_way_policy_switch_leaves_lr_windows_alone() {
        let r = checked(
            retention_cfg(),
            &[
                TraceEvent::Fill {
                    part: PartId::Lr,
                    la: 2,
                    now_ns: 0,
                },
                TraceEvent::PolicySwitch {
                    part: PartId::Hr,
                    lr_max_hit_age_ns: 0,
                    lr_tail_start_ns: 0,
                    lr_min_expire_age_ns: 0,
                    active_ways: 4,
                    now_ns: 100,
                },
                TraceEvent::Refresh {
                    la: 2,
                    written_at_ns: 0,
                    now_ns: 900,
                },
            ],
        );
        assert!(r.is_clean(), "{:?}", r.samples);
    }

    #[test]
    fn policy_switch_renders_as_json() {
        assert_eq!(
            to_json(&TraceEvent::PolicySwitch {
                part: PartId::Hr,
                lr_max_hit_age_ns: 0,
                lr_tail_start_ns: 0,
                lr_min_expire_age_ns: 0,
                active_ways: 5,
                now_ns: 42,
            }),
            "{\"ev\":\"policy_switch\",\"part\":\"HR\",\"lr_max_hit_age_ns\":0,\"lr_tail_start_ns\":0,\"lr_min_expire_age_ns\":0,\"active_ways\":5,\"now_ns\":42}"
        );
    }

    #[test]
    fn sample_cap_bounds_report_size() {
        let mut c = Checker::new(CheckConfig::default());
        for la in 0..100 {
            c.emit(&TraceEvent::Evict {
                part: PartId::Mono,
                la,
                wrote_back: false,
                now_ns: 0,
            });
        }
        let r = c.report();
        assert_eq!(r.violations, 100);
        assert_eq!(r.samples.len(), SAMPLE_CAP);
    }
}
