//! Shared helpers for the bench targets, plus a small in-tree measurement
//! harness.
//!
//! Every bench target corresponds to one paper artefact: it **prints** the
//! artefact's rows (at a reduced workload scale, so `cargo bench` stays
//! tractable) and then measures a representative slice of the computation.
//! The full-scale artefacts come from the `repro` binary
//! (`cargo run --release -p sttgpu-experiments --bin repro -- all`).
//!
//! The harness in [`harness`] is a drop-in for the subset of the criterion
//! API these targets use (`bench_function`, `benchmark_group`,
//! `criterion_group!`/`criterion_main!`), so benches build and run with no
//! registry access.

use sttgpu_experiments::RunPlan;

pub mod harness;

/// The workload scale used when bench targets print their artefact rows.
pub const BENCH_PRINT_SCALE: f64 = 0.2;

/// The (smaller) scale used inside measurement loops.
pub const BENCH_MEASURE_SCALE: f64 = 0.05;

/// Plan for the one-off artefact print.
pub fn print_plan() -> RunPlan {
    RunPlan {
        scale: BENCH_PRINT_SCALE,
        max_cycles: 8_000_000,
        check: false,
        ..RunPlan::full()
    }
}

/// Plan for measured closures.
pub fn measure_plan() -> RunPlan {
    RunPlan {
        scale: BENCH_MEASURE_SCALE,
        max_cycles: 4_000_000,
        check: false,
        ..RunPlan::full()
    }
}

/// Prints a banner followed by an artefact body.
pub fn banner(title: &str, body: &str) {
    println!("\n================ {title} (bench scale {BENCH_PRINT_SCALE}) ================");
    println!("{body}");
}
