//! Minimal wall-clock benchmark harness.
//!
//! Implements just the slice of the criterion API the bench targets use —
//! enough to time a closure, print a stable `ns/iter` style report and run
//! under `cargo bench` with `harness = false`, without any external
//! dependency. Measurements are mean/min/max over a fixed number of
//! samples; each sample batches iterations so that per-sample time is
//! large enough to swamp timer resolution.

use std::time::Instant;

/// Target wall-clock time per sample, used to size iteration batches.
const TARGET_SAMPLE_NS: u128 = 5_000_000; // 5 ms

/// Upper bound on iterations batched into one sample.
const MAX_BATCH: u64 = 100_000;

/// Entry point collecting benchmark registrations.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a harness with the default sample count (10).
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Times `f` and prints a one-line report.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.to_string(), self.default_sample_size.max(1), f);
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `prefix/name`.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{name}", self.prefix), self.sample_size, f);
        self
    }

    /// Ends the group (kept for criterion API parity; no-op).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations to run in the current sample.
    batch: u64,
    /// Accumulated nanoseconds for the current sample.
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the closure `batch` times and records the elapsed wall clock.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// One timed sample of `batch` iterations; returns total nanoseconds.
fn sample(b: &mut Bencher, f: &mut impl FnMut(&mut Bencher)) -> u128 {
    b.elapsed_ns = 0;
    f(b);
    b.elapsed_ns
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        batch: 1,
        elapsed_ns: 0,
    };
    // Warmup + batch sizing: one iteration tells us roughly how expensive
    // the closure is, then batches aim for TARGET_SAMPLE_NS per sample.
    let warm_ns = sample(&mut b, &mut f).max(1);
    b.batch = ((TARGET_SAMPLE_NS / warm_ns).max(1) as u64).min(MAX_BATCH);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let total = sample(&mut b, &mut f);
        per_iter.push(total as f64 / b.batch as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    println!(
        "bench {name:<44} {:>14} ns/iter (min {:>12}, max {:>12}, {} x {} iters)",
        format_ns(mean),
        format_ns(min),
        format_ns(max),
        samples,
        b.batch,
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1_000.0 {
        let v = ns as u64;
        // Thousands separators for readability.
        let s = v.to_string();
        let mut out = String::new();
        for (i, ch) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(ch);
        }
        out
    } else {
        format!("{ns:.1}")
    }
}

/// Declares a bench group function in the style of criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` in the style of criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u64;
        Criterion::new().bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_applies_prefix_and_sample_size() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 3);
    }
}
