//! Beyond-paper ablations: search mode, swap-buffer capacity, HR
//! retention and LR sizing — prints all four studies and benchmarks the
//! cheapest one.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::{ablations, Executor};

fn bench(c: &mut Criterion) {
    let plan = sttgpu_bench::print_plan();
    sttgpu_bench::banner("Ablations", &ablations::render(&Executor::auto(), &plan));

    let measure = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("buffer_capacity_sweep", |b| {
        // A fresh single-job executor per iteration: memoization across
        // iterations would otherwise zero the measurement.
        b.iter(|| black_box(ablations::buffer_capacity(&Executor::sequential(), &measure).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
