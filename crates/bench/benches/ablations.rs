//! Beyond-paper ablations: search mode, swap-buffer capacity, HR
//! retention and LR sizing — prints all four studies and benchmarks the
//! cheapest one.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sttgpu_experiments::ablations;

fn bench(c: &mut Criterion) {
    let plan = sttgpu_bench::print_plan();
    sttgpu_bench::banner("Ablations", &ablations::render(&plan));

    let measure = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("buffer_capacity_sweep", |b| {
        b.iter(|| black_box(ablations::buffer_capacity(&measure).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
