//! Fig. 6: LR rewrite-interval distribution — prints the bucket table and
//! benchmarks one workload's histogram collection.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::configs::L2Choice;
use sttgpu_experiments::fig6;
use sttgpu_experiments::runner::run;
use sttgpu_workloads::suite;

fn bench(c: &mut Criterion) {
    let rows = fig6::compute(
        &sttgpu_experiments::Executor::auto(),
        &sttgpu_bench::print_plan(),
    );
    sttgpu_bench::banner("Fig. 6", &fig6::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let w = suite::by_name("kmeans").expect("kmeans");
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("kmeans_rewrite_histogram", |b| {
        b.iter(|| {
            let out = run(L2Choice::TwoPartC1, &w, &plan);
            black_box(out.lr_rewrite_intervals.expect("two-part").total())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
