//! Fig. 3: inter/intra-set write variation — prints the per-workload COV
//! series and benchmarks one workload's COV pipeline.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::configs::L2Choice;
use sttgpu_experiments::fig3;
use sttgpu_experiments::runner::run;
use sttgpu_stats::WriteVariation;
use sttgpu_workloads::suite;

fn bench(c: &mut Criterion) {
    let rows = fig3::compute(
        &sttgpu_experiments::Executor::auto(),
        &sttgpu_bench::print_plan(),
    );
    sttgpu_bench::banner("Fig. 3", &fig3::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let w = suite::by_name("kmeans").expect("kmeans");
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("kmeans_cov_run", |b| {
        b.iter(|| {
            let out = run(L2Choice::SramBaseline, &w, &plan);
            black_box(WriteVariation::from_counts(&out.write_matrix))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
