//! Fig. 5: LR associativity analysis — prints the normalised utilisation
//! series and benchmarks the sweep at a reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sttgpu_experiments::fig5;

fn bench(c: &mut Criterion) {
    let rows = fig5::compute(&sttgpu_bench::print_plan());
    sttgpu_bench::banner("Fig. 5", &fig5::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("assoc_sweep", |b| {
        b.iter(|| black_box(fig5::compute(&plan).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
