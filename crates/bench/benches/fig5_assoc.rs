//! Fig. 5: LR associativity analysis — prints the normalised utilisation
//! series and benchmarks the sweep at a reduced scale.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::{fig5, Executor};

fn bench(c: &mut Criterion) {
    let rows = fig5::compute(&Executor::auto(), &sttgpu_bench::print_plan());
    sttgpu_bench::banner("Fig. 5", &fig5::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("assoc_sweep", |b| {
        // A fresh single-job executor per iteration: memoization across
        // iterations would otherwise zero the measurement.
        b.iter(|| black_box(fig5::compute(&Executor::sequential(), &plan).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
