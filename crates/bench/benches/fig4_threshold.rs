//! Fig. 4: HR write-threshold analysis — prints both normalised panels
//! and benchmarks one threshold point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sttgpu_experiments::fig4;

fn bench(c: &mut Criterion) {
    let rows = fig4::compute(&sttgpu_bench::print_plan());
    sttgpu_bench::banner("Fig. 4", &fig4::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("threshold_sweep_point", |b| {
        b.iter(|| black_box(fig4::compute(&plan).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
