//! Fig. 4: HR write-threshold analysis — prints both normalised panels
//! and benchmarks one threshold point.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::{fig4, Executor};

fn bench(c: &mut Criterion) {
    let rows = fig4::compute(&Executor::auto(), &sttgpu_bench::print_plan());
    sttgpu_bench::banner("Fig. 4", &fig4::render(&rows));

    let plan = sttgpu_bench::measure_plan();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("threshold_sweep_point", |b| {
        // A fresh single-job executor per iteration: memoization across
        // iterations would otherwise zero the measurement.
        b.iter(|| black_box(fig4::compute(&Executor::sequential(), &plan).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
