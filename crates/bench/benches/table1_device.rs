//! Table 1: STT-RAM parameters vs. retention — prints the table and
//! benchmarks the MTJ device-model evaluation.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_device::mtj::{MtjDesign, RetentionTime};
use sttgpu_experiments::table1;

fn bench(c: &mut Criterion) {
    sttgpu_bench::banner("Table 1", &table1::render());
    c.bench_function("table1/mtj_design_point", |b| {
        b.iter(|| {
            let m = MtjDesign::for_retention(black_box(RetentionTime::from_millis(4.0)));
            black_box((m.write_latency_ns(), m.write_energy_nj(), m.retention()))
        })
    });
    c.bench_function("table1/render", |b| b.iter(|| black_box(table1::render())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
