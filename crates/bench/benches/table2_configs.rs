//! Table 2: the five GPU configurations — prints the table and benchmarks
//! configuration construction (area model + LLC instantiation).

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::configs::{gpu_config, L2Choice};
use sttgpu_experiments::table2;

fn bench(c: &mut Criterion) {
    sttgpu_bench::banner("Table 2", &table2::render());
    c.bench_function("table2/compute_rows", |b| {
        b.iter(|| black_box(table2::compute()))
    });
    c.bench_function("table2/build_c1_llc", |b| {
        b.iter(|| {
            let cfg = gpu_config(black_box(L2Choice::TwoPartC1));
            black_box(cfg.l2.build(cfg.l2_line_bytes))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
