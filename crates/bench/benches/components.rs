//! Component microbenchmarks: the hot paths of the cache substrate, the
//! two-part LLC and the warp-program generator.

use std::hint::black_box;
use std::sync::Arc;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_cache::{AccessKind, BankArbiter, MshrTable, ReplacementPolicy, SetAssocCache};
use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc};
use sttgpu_sim::program::WarpProgram;
use sttgpu_sim::KernelParams;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("components/setassoc_lookup_hit", |b| {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(768, 7, 256, ReplacementPolicy::Lru);
        for la in 0..4096u64 {
            cache.fill(la, false, 0);
        }
        let mut la = 0u64;
        b.iter(|| {
            la = (la + 97) % 4096;
            black_box(cache.lookup(black_box(la), AccessKind::Read, 1).is_some())
        })
    });

    c.bench_function("components/setassoc_fill_evict", |b| {
        let mut cache: SetAssocCache<()> = SetAssocCache::new(64, 4, 256, ReplacementPolicy::Lru);
        let mut la = 0u64;
        b.iter(|| {
            la += 1;
            black_box(cache.fill(black_box(la), true, la))
        })
    });

    c.bench_function("components/mshr_allocate_complete", |b| {
        let mut mshr = MshrTable::new(64, 8);
        let mut line = 0u64;
        b.iter(|| {
            line += 1;
            mshr.allocate(line, 1);
            black_box(mshr.complete(line))
        })
    });

    c.bench_function("components/bank_arbiter_reserve", |b| {
        let mut arb = BankArbiter::new(8);
        let mut t = 0u64;
        b.iter(|| {
            t += 3;
            black_box(arb.reserve((t % 8) as usize, t, 5))
        })
    });
}

fn bench_two_part(c: &mut Criterion) {
    c.bench_function("components/two_part_probe_hit", |b| {
        let mut llc = TwoPartLlc::new(TwoPartConfig::new(48, 2, 336, 7, 256));
        for la in 0..1024u64 {
            llc.fill(la * 256, la % 3 == 0, la);
        }
        let mut la = 0u64;
        let mut t = 10_000u64;
        b.iter(|| {
            la = (la + 131) % 1024;
            t += 7;
            black_box(llc.probe(la * 256, AccessKind::Read, t).hit)
        })
    });

    c.bench_function("components/two_part_write_migrate", |b| {
        let mut llc = TwoPartLlc::new(TwoPartConfig::new(48, 2, 336, 7, 256));
        for la in 0..1024u64 {
            llc.fill(la * 256, false, la);
        }
        let mut la = 0u64;
        let mut t = 10_000u64;
        b.iter(|| {
            la = (la + 131) % 1024;
            t += 7;
            black_box(llc.probe(la * 256, AccessKind::Write, t).hit)
        })
    });

    c.bench_function("components/two_part_maintain", |b| {
        let mut llc = TwoPartLlc::new(TwoPartConfig::new(48, 2, 336, 7, 256));
        for la in 0..1536u64 {
            llc.fill(la * 256, la % 2 == 0, la);
        }
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            llc.maintain(black_box(t));
        })
    });
}

fn bench_program(c: &mut Criterion) {
    c.bench_function("components/warp_program_next_instr", |b| {
        let k = Arc::new(
            KernelParams::new("bench", 64, 256)
                .with_instructions(u32::MAX / 2)
                .with_mem_fraction(0.3),
        );
        let mut p = WarpProgram::new(k, 0, 0, 42, 128);
        b.iter(|| black_box(p.next_instr()))
    });
}

criterion_group!(benches, bench_cache, bench_two_part, bench_program);
criterion_main!(benches);
