//! Fig. 8: speedup, dynamic power and total power of all five
//! configurations — prints all three panels and benchmarks single
//! configuration runs.

use std::hint::black_box;
use sttgpu_bench::harness::Criterion;
use sttgpu_bench::{criterion_group, criterion_main};
use sttgpu_experiments::configs::L2Choice;
use sttgpu_experiments::fig8;
use sttgpu_experiments::runner::run;
use sttgpu_workloads::suite;

fn bench(c: &mut Criterion) {
    let (rows, summary) = fig8::compute(
        &sttgpu_experiments::Executor::auto(),
        &sttgpu_bench::print_plan(),
    );
    sttgpu_bench::banner("Fig. 8", &fig8::render(&rows, &summary));

    let plan = sttgpu_bench::measure_plan();
    let w = suite::by_name("bfs").expect("bfs");
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for choice in [
        L2Choice::SramBaseline,
        L2Choice::SttBaseline,
        L2Choice::TwoPartC1,
    ] {
        group.bench_function(format!("bfs_on_{}", choice.label()), |b| {
            b.iter(|| black_box(run(choice, &w, &plan).metrics.ipc()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
