//! Parallel execution must be a pure performance optimisation: whatever
//! an artefact computes on a single-threaded executor, it must compute
//! byte-for-byte identically on a many-threaded one. These tests pin that
//! contract at both the run level (metrics and two-part internals) and
//! the artefact level (rendered tables and CSVs).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use sttgpu_experiments::{fig3, fig8, Executor, L2Choice, RunPlan};
use sttgpu_workloads::suite;

fn tiny_plan() -> RunPlan {
    RunPlan {
        scale: 0.05,
        max_cycles: 2_000_000,
        check: false,
        ..RunPlan::full()
    }
}

#[test]
fn sequential_and_parallel_executors_produce_identical_run_results() {
    let plan = tiny_plan();
    let seq = Executor::sequential();
    let par = Executor::new(4);
    for w in ["nw", "lud", "kmeans"] {
        let workload = suite::by_name(w).expect("suite workload");
        for choice in [L2Choice::SramBaseline, L2Choice::TwoPartC1] {
            let a = seq.run(choice, &workload, &plan);
            let b = par.run(choice, &workload, &plan);
            assert_eq!(a.metrics, b.metrics, "{w} metrics diverge");
            assert_eq!(a.two_part, b.two_part, "{w} two-part stats diverge");
            assert_eq!(a.write_matrix, b.write_matrix, "{w} write matrix diverges");
        }
    }
}

/// `--sim-threads` must be a pure performance knob too: a run stepped on
/// a sharded SM pool must match the serial inline path in every metric,
/// two-part counter and endurance cell. (`sim_threads` is part of the
/// memo key, so each plan below really executes — no cache aliasing.)
#[test]
fn sim_thread_count_does_not_change_run_results() {
    let serial_plan = tiny_plan();
    let exec = Executor::sequential();
    for w in ["nw", "kmeans"] {
        let workload = suite::by_name(w).expect("suite workload");
        for choice in [L2Choice::SramBaseline, L2Choice::TwoPartC1] {
            let a = exec.run(choice, &workload, &serial_plan);
            for threads in [2u32, 4, 8] {
                let plan = tiny_plan().with_sim_threads(threads);
                let b = exec.run(choice, &workload, &plan);
                assert_eq!(a.metrics, b.metrics, "{w} metrics diverge at {threads}");
                assert_eq!(
                    a.two_part, b.two_part,
                    "{w} two-part stats diverge at {threads}"
                );
                assert_eq!(
                    a.write_matrix, b.write_matrix,
                    "{w} write matrix diverges at {threads}"
                );
            }
        }
    }
}

#[test]
fn fig3_renders_byte_identically_on_any_job_count() {
    let plan = tiny_plan();
    let seq_rows = fig3::compute(&Executor::sequential(), &plan);
    let par_rows = fig3::compute(&Executor::new(8), &plan);
    assert_eq!(seq_rows, par_rows, "row data diverges");
    assert_eq!(fig3::render(&seq_rows), fig3::render(&par_rows));
    assert_eq!(fig3::to_csv(&seq_rows), fig3::to_csv(&par_rows));
}

#[test]
fn fig8_renders_byte_identically_on_any_job_count() {
    let plan = tiny_plan();
    let (seq_rows, seq_sum) = fig8::compute(&Executor::sequential(), &plan);
    let (par_rows, par_sum) = fig8::compute(&Executor::new(8), &plan);
    assert_eq!(
        fig8::render(&seq_rows, &seq_sum),
        fig8::render(&par_rows, &par_sum)
    );
    assert_eq!(fig8::to_csv(&seq_rows), fig8::to_csv(&par_rows));
}

#[test]
fn shared_executor_deduplicates_across_artefacts() {
    // fig8 already needs (C1, every workload); fig6 wants exactly the
    // same runs, so on a shared executor fig6 must execute nothing new.
    let plan = tiny_plan();
    let exec = Executor::new(4);
    let _ = fig8::compute(&exec, &plan);
    let runs_after_fig8 = exec.stats().runs_executed;
    let rows = sttgpu_experiments::fig6::compute(&exec, &plan);
    assert_eq!(rows.len(), suite::all().len());
    assert_eq!(
        exec.stats().runs_executed,
        runs_after_fig8,
        "fig6 after fig8 must be served entirely from the run cache"
    );
    assert!(exec.stats().cache_hits >= rows.len() as u64);
}

/// Runs the real `repro` binary with `--out dir` and returns the artefact
/// files it wrote, sorted by name.
fn run_repro(out_dir: &Path, jobs: u32, sim_threads: u32) -> Vec<(String, Vec<u8>)> {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "0.01",
            "--jobs",
            &jobs.to_string(),
            "--sim-threads",
            &sim_threads.to_string(),
            "--out",
            &out_dir.display().to_string(),
            "all",
        ])
        .current_dir(out_dir)
        .status()
        .expect("spawn repro");
    assert!(
        status.success(),
        "repro --jobs {jobs} --sim-threads {sim_threads} failed"
    );
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(out_dir)
        .expect("read out dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            // Timings legitimately differ run to run; everything else is
            // part of the golden snapshot.
            p.extension().is_some_and(|x| x == "csv" || x == "txt")
        })
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            (name, fs::read(&p).expect("read artefact"))
        })
        .collect();
    files.sort();
    files
}

/// Golden snapshot of `repro -- all`: the full set of summary CSVs and
/// rendered tables must come out byte-identical regardless of the
/// `--jobs` count driving the shared executor AND the `--sim-threads`
/// count sharding each run's SM hot loop.
#[test]
fn repro_all_artefacts_are_byte_identical_across_job_and_thread_counts() {
    let base = std::env::temp_dir().join(format!("sttgpu-golden-{}", std::process::id()));
    let run = |jobs: u32, sim_threads: u32| -> Vec<(String, Vec<u8>)> {
        let dir: PathBuf = base.join(format!("jobs{jobs}-threads{sim_threads}"));
        fs::create_dir_all(&dir).expect("create out dir");
        let files = run_repro(&dir, jobs, sim_threads);
        assert!(
            files.iter().filter(|(n, _)| n.ends_with(".csv")).count() >= 7,
            "--jobs {jobs} --sim-threads {sim_threads} produced too few CSV artefacts"
        );
        files
    };
    let golden = run(1, 1);
    for (jobs, sim_threads) in [(8, 1), (2, 4)] {
        let other = run(jobs, sim_threads);
        assert_eq!(
            golden.len(),
            other.len(),
            "--jobs {jobs} --sim-threads {sim_threads} produced a different artefact set"
        );
        for ((name_a, bytes_a), (name_b, bytes_b)) in golden.iter().zip(&other) {
            assert_eq!(
                name_a, name_b,
                "--jobs {jobs} --sim-threads {sim_threads} artefact set diverges"
            );
            assert_eq!(
                bytes_a, bytes_b,
                "{name_a} is not byte-identical between (jobs 1, sim-threads 1) \
                 and (jobs {jobs}, sim-threads {sim_threads})"
            );
        }
    }
    let _ = fs::remove_dir_all(&base);
}
