//! Parallel execution must be a pure performance optimisation: whatever
//! an artefact computes on a single-threaded executor, it must compute
//! byte-for-byte identically on a many-threaded one. These tests pin that
//! contract at both the run level (metrics and two-part internals) and
//! the artefact level (rendered tables and CSVs).

use sttgpu_experiments::{fig3, fig8, Executor, L2Choice, RunPlan};
use sttgpu_workloads::suite;

fn tiny_plan() -> RunPlan {
    RunPlan {
        scale: 0.05,
        max_cycles: 2_000_000,
    }
}

#[test]
fn sequential_and_parallel_executors_produce_identical_run_results() {
    let plan = tiny_plan();
    let seq = Executor::sequential();
    let par = Executor::new(4);
    for w in ["nw", "lud", "kmeans"] {
        let workload = suite::by_name(w).expect("suite workload");
        for choice in [L2Choice::SramBaseline, L2Choice::TwoPartC1] {
            let a = seq.run(choice, &workload, &plan);
            let b = par.run(choice, &workload, &plan);
            assert_eq!(a.metrics, b.metrics, "{w} metrics diverge");
            assert_eq!(a.two_part, b.two_part, "{w} two-part stats diverge");
            assert_eq!(a.write_matrix, b.write_matrix, "{w} write matrix diverges");
        }
    }
}

#[test]
fn fig3_renders_byte_identically_on_any_job_count() {
    let plan = tiny_plan();
    let seq_rows = fig3::compute(&Executor::sequential(), &plan);
    let par_rows = fig3::compute(&Executor::new(8), &plan);
    assert_eq!(seq_rows, par_rows, "row data diverges");
    assert_eq!(fig3::render(&seq_rows), fig3::render(&par_rows));
    assert_eq!(fig3::to_csv(&seq_rows), fig3::to_csv(&par_rows));
}

#[test]
fn fig8_renders_byte_identically_on_any_job_count() {
    let plan = tiny_plan();
    let (seq_rows, seq_sum) = fig8::compute(&Executor::sequential(), &plan);
    let (par_rows, par_sum) = fig8::compute(&Executor::new(8), &plan);
    assert_eq!(
        fig8::render(&seq_rows, &seq_sum),
        fig8::render(&par_rows, &par_sum)
    );
    assert_eq!(fig8::to_csv(&seq_rows), fig8::to_csv(&par_rows));
}

#[test]
fn shared_executor_deduplicates_across_artefacts() {
    // fig8 already needs (C1, every workload); fig6 wants exactly the
    // same runs, so on a shared executor fig6 must execute nothing new.
    let plan = tiny_plan();
    let exec = Executor::new(4);
    let _ = fig8::compute(&exec, &plan);
    let runs_after_fig8 = exec.stats().runs_executed;
    let rows = sttgpu_experiments::fig6::compute(&exec, &plan);
    assert_eq!(rows.len(), suite::all().len());
    assert_eq!(
        exec.stats().runs_executed,
        runs_after_fig8,
        "fig6 after fig8 must be served entirely from the run cache"
    );
    assert!(exec.stats().cache_hits >= rows.len() as u64);
}
