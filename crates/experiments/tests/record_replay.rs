//! Record/replay equivalence: recording a built-in workload's LLC call
//! stream and replaying the file against a fresh LLC must reproduce the
//! recording run's statistics block exactly — the property that pins
//! the trace format as capturing everything the LLC observes.

use std::path::PathBuf;

use sttgpu_experiments::{record_workload, replay_records, L2Choice, RunPlan};
use sttgpu_tracefile::{load, save};

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn plan() -> RunPlan {
    RunPlan::full().with_scale(0.05)
}

#[test]
fn record_then_replay_is_stats_identical_for_three_workloads() {
    for workload in ["lud", "nw", "bfs"] {
        let recording =
            record_workload(L2Choice::TwoPartC1, workload, &plan()).expect("known workload");
        assert!(
            !recording.records.is_empty(),
            "{workload}: the run must touch the LLC"
        );

        // Through the file: save, load, replay — the on-disk format is
        // part of the property, not just the in-memory records.
        let path = tmp(&format!("{workload}.trc"));
        save(&path, recording.header, &recording.records).expect("save");
        let (header, records) = load(&path).expect("load");
        assert_eq!(records.len(), recording.records.len());

        let cfg = sttgpu_experiments::configs::two_part_config(L2Choice::TwoPartC1).expect("C1");
        let replay = replay_records(&cfg, &header, &records, true).expect("replay");
        assert_eq!(
            replay.stats, recording.stats,
            "{workload}: replayed stats must match the recording run exactly"
        );
        let report = replay.check.expect("checker attached");
        assert!(
            report.is_clean(),
            "{workload}: checker violations in replay: {:?}",
            report.samples
        );
    }
}

#[test]
fn recording_does_not_perturb_the_run() {
    // The call log is observation only: a recorded run's stats must
    // equal an unrecorded run's.
    let recording = record_workload(L2Choice::TwoPartC1, "nw", &plan()).expect("known workload");
    let direct = sttgpu_experiments::runner::run(
        L2Choice::TwoPartC1,
        &sttgpu_workloads::suite::by_name("nw").expect("nw"),
        &plan(),
    );
    assert_eq!(
        Some(recording.stats),
        direct.two_part,
        "logging must not change what the LLC observes"
    );
}

#[test]
fn text_twin_replays_identically() {
    let recording = record_workload(L2Choice::TwoPartC1, "lud", &plan()).expect("known workload");
    let bin = tmp("lud-twin.trc");
    let txt = tmp("lud-twin.txt");
    save(&bin, recording.header, &recording.records).expect("save binary");
    save(&txt, recording.header, &recording.records).expect("save text");
    let (bh, brecs) = load(&bin).expect("load binary");
    let (th, trecs) = load(&txt).expect("load text");
    assert_eq!(bh, th, "both encodings carry the same header");
    assert_eq!(brecs, trecs, "both encodings carry the same records");

    let cfg = sttgpu_experiments::configs::two_part_config(L2Choice::TwoPartC1).expect("C1");
    let from_text = replay_records(&cfg, &th, &trecs, false).expect("replay");
    assert_eq!(from_text.stats, recording.stats);
}
