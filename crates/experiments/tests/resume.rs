//! Crash-resilience contract of the `repro` binary: a killed sweep
//! resumed with `--resume` must finish with byte-identical artefacts, and
//! a panicking artefact must be quarantined without taking the rest of
//! the sweep down.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const ARTEFACTS: [&str; 4] = ["table1", "table2", "fig3", "fig6"];
const SCALE: &str = "0.02";

fn repro_cmd(out_dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["--scale", SCALE, "--jobs", "4", "--out"])
        .arg(out_dir)
        .args(extra)
        .args(ARTEFACTS)
        .current_dir(out_dir);
    cmd
}

/// All .txt/.csv artefact files in a directory, sorted by name. The
/// journal (`repro.journal`) and `BENCH_repro.json` carry timings and
/// are deliberately outside the byte-identity contract.
fn artefact_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read out dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv" || x == "txt"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            (name, fs::read(&p).expect("read artefact"))
        })
        .collect();
    files.sort();
    files
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sttgpu-resume-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create out dir");
    dir
}

/// Kill a sweep once its journal shows progress, resume it, and demand
/// the final artefact set is byte-identical to an uninterrupted run.
#[test]
fn killed_sweep_resumes_to_byte_identical_artefacts() {
    // Uninterrupted reference run.
    let golden_dir = fresh_dir("golden");
    let status = repro_cmd(&golden_dir, &[]).status().expect("spawn repro");
    assert!(status.success(), "reference run failed");
    let golden = artefact_files(&golden_dir);
    assert!(
        golden.iter().filter(|(n, _)| n.ends_with(".txt")).count() >= ARTEFACTS.len(),
        "reference run wrote too few artefacts"
    );

    // Interrupted run: wait until at least one artefact is journalled
    // (the static tables land almost immediately, well before the
    // simulation-backed figures), then kill the process mid-sweep.
    let dir = fresh_dir("interrupted");
    let mut child = repro_cmd(&dir, &[])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    let journal = dir.join("repro.journal");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_early = false;
    loop {
        if fs::read_to_string(&journal).is_ok_and(|t| t.lines().any(|l| l.starts_with("ok "))) {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            finished_early = true;
            break;
        }
        assert!(Instant::now() < deadline, "no journal progress within 120s");
        std::thread::sleep(Duration::from_millis(20));
    }
    if !finished_early {
        child.kill().expect("kill repro");
    }
    let _ = child.wait();

    // Resume and compare. Even in the (harmless) race where the child
    // finished before the kill, --resume must still converge to the
    // byte-identical golden set — then by skipping everything.
    let resumed = repro_cmd(&dir, &["--resume"])
        .output()
        .expect("resume repro");
    assert!(
        resumed.status.success(),
        "resume run failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("already complete (resume)"),
        "resume run skipped nothing — the journal was ignored:\n{stderr}"
    );
    let after = artefact_files(&dir);
    assert_eq!(
        golden.len(),
        after.len(),
        "resumed sweep produced a different artefact set"
    );
    for ((name_a, bytes_a), (name_b, bytes_b)) in golden.iter().zip(&after) {
        assert_eq!(name_a, name_b, "artefact set diverges after resume");
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} is not byte-identical after kill + resume"
        );
    }
    let _ = fs::remove_dir_all(&golden_dir);
    let _ = fs::remove_dir_all(&dir);
}

/// `--resume` against a journal written by an incompatible invocation
/// (different plan, journal version, or store generation) must refuse
/// with a typed mismatch error instead of trusting its completion
/// records — and a plain rerun (no `--resume`) must start a fresh
/// journal and succeed.
#[test]
fn resume_refuses_a_mismatched_journal() {
    let dir = fresh_dir("mismatch");
    let status = repro_cmd(&dir, &[]).status().expect("spawn repro");
    assert!(status.success(), "seed run failed");
    let journal = dir.join("repro.journal");
    let text = fs::read_to_string(&journal).expect("journal");
    assert!(
        text.starts_with("sttgpu-journal v"),
        "journal must begin with a version header:\n{text}"
    );

    // Same artefacts, different scale: the header no longer matches.
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "0.03", "--jobs", "2", "--resume", "--out"])
        .arg(&dir)
        .args(ARTEFACTS)
        .current_dir(&dir)
        .output()
        .expect("spawn repro");
    assert!(
        !output.status.success(),
        "a mismatched journal must fail --resume"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("resume journal mismatch"),
        "expected a typed mismatch error, got:\n{stderr}"
    );

    // An unversioned (v1-era) journal is also a typed refusal.
    fs::write(&journal, "ok table1 scale=3f947ae147ae147b\n").expect("rewrite journal");
    let output = repro_cmd(&dir, &["--resume"])
        .output()
        .expect("spawn repro");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no version header"),
        "expected the unversioned-journal refusal, got:\n{stderr}"
    );

    // Without --resume the stale journal is simply replaced.
    let status = repro_cmd(&dir, &[]).status().expect("spawn repro");
    assert!(status.success(), "non-resume rerun must start fresh");
    let text = fs::read_to_string(&journal).expect("journal");
    assert!(text.starts_with("sttgpu-journal v"));
    let _ = fs::remove_dir_all(&dir);
}

/// A panicking artefact is quarantined: the sweep continues, the failure
/// is reported in QUARANTINE.txt, and the exit code is nonzero.
#[test]
fn panicking_artefact_is_quarantined_without_aborting_the_sweep() {
    let dir = fresh_dir("quarantine");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", SCALE, "--jobs", "2", "--out"])
        .arg(&dir)
        .args(["table1", "table2"])
        .env("STTGPU_REPRO_PANIC", "table1")
        .current_dir(&dir)
        .output()
        .expect("spawn repro");
    assert!(
        !output.status.success(),
        "a quarantined artefact must force a nonzero exit"
    );
    let quarantine = fs::read_to_string(dir.join("QUARANTINE.txt"))
        .expect("QUARANTINE.txt must exist after a quarantined artefact");
    assert!(
        quarantine.lines().any(|l| l.starts_with("table1\t")),
        "QUARANTINE.txt must name the poisoned artefact:\n{quarantine}"
    );
    // The sweep moved past the poisoned artefact: table2 still landed,
    // was journalled, and table1 was neither written nor journalled.
    assert!(
        dir.join("table2.txt").is_file(),
        "sweep aborted after panic"
    );
    assert!(!dir.join("table1.txt").is_file());
    let journal = fs::read_to_string(dir.join("repro.journal")).expect("journal");
    assert!(journal.lines().any(|l| l == "ok table2"));
    assert!(!journal.lines().any(|l| l.starts_with("ok table1")));
    let _ = fs::remove_dir_all(&dir);
}
