//! End-to-end contract of `repro --store`: byte-identical artefacts
//! from a warm store with zero simulations executed, transparent
//! recovery from corrupted entries, survival of a SIGKILL mid-sweep,
//! and watchdog quarantine of hung runs.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const ARTEFACTS: [&str; 4] = ["table1", "table2", "fig3", "fig6"];
const SCALE: &str = "0.02";

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sttgpu-store-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create dir");
    dir
}

fn repro_cmd(out_dir: &Path, store_dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["--scale", SCALE, "--jobs", "2", "--out"])
        .arg(out_dir)
        .arg("--store")
        .arg(store_dir)
        .args(extra)
        .args(ARTEFACTS)
        .current_dir(out_dir);
    cmd
}

/// All .txt/.csv artefact files, sorted by name (the bench JSON and the
/// journal carry timings and are outside the byte-identity contract).
fn artefact_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .expect("read out dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv" || x == "txt"))
        .map(|p| {
            let name = p.file_name().expect("name").to_string_lossy().into_owned();
            (name, fs::read(&p).expect("read artefact"))
        })
        .collect();
    files.sort();
    files
}

fn assert_identical(golden: &[(String, Vec<u8>)], other: &[(String, Vec<u8>)], what: &str) {
    assert_eq!(golden.len(), other.len(), "{what}: different artefact sets");
    for ((na, ba), (nb, bb)) in golden.iter().zip(other) {
        assert_eq!(na, nb, "{what}: artefact sets diverge");
        assert_eq!(ba, bb, "{what}: {na} is not byte-identical");
    }
}

/// Extracts `"key": <number>` from the hand-rolled bench JSON.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let tail = &text[text.find(&format!("\"{key}\""))?..];
    let tail = &tail[tail.find(':')? + 1..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == ' '))
        .unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn bench_number(dir: &Path, key: &str) -> f64 {
    let text = fs::read_to_string(dir.join("BENCH_repro.json")).expect("bench json");
    json_number(&text, key).unwrap_or_else(|| panic!("no {key} in bench json:\n{text}"))
}

fn entry_files(store_dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(store_dir.join("objects"))
        .expect("objects dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ent"))
        .collect()
}

/// Cold run fills the store; a warm rerun into a fresh out dir must
/// produce byte-identical artefacts while executing zero simulations.
#[test]
fn warm_store_is_byte_identical_with_zero_simulations() {
    let store = fresh_dir("warm-store");
    let cold_out = fresh_dir("warm-cold");
    let status = repro_cmd(&cold_out, &store, &[]).status().expect("spawn");
    assert!(status.success(), "cold run failed");
    let golden = artefact_files(&cold_out);
    assert!(bench_number(&cold_out, "runs_executed") > 0.0);
    assert!(!entry_files(&store).is_empty(), "cold run stored nothing");

    let warm_out = fresh_dir("warm-warm");
    let output = repro_cmd(&warm_out, &store, &[]).output().expect("spawn");
    assert!(
        output.status.success(),
        "warm run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_identical(&golden, &artefact_files(&warm_out), "warm rerun");
    assert_eq!(
        bench_number(&warm_out, "runs_executed"),
        0.0,
        "a warm store must serve every simulation"
    );
    assert!(bench_number(&warm_out, "store_hits") > 0.0);
    for dir in [&store, &cold_out, &warm_out] {
        fs::remove_dir_all(dir).ok();
    }
}

/// Corrupting stored entries must not fail the sweep: damaged entries
/// are quarantined, recomputed, and the artefacts stay byte-identical.
#[test]
fn corrupted_entries_are_quarantined_and_recomputed() {
    let store = fresh_dir("corrupt-store");
    let cold_out = fresh_dir("corrupt-cold");
    let status = repro_cmd(&cold_out, &store, &[]).status().expect("spawn");
    assert!(status.success(), "cold run failed");
    let golden = artefact_files(&cold_out);

    // Truncate one entry, flip a byte in another, gut a third.
    let entries = entry_files(&store);
    assert!(entries.len() >= 3, "want ≥3 entries, got {}", entries.len());
    let bytes = fs::read(&entries[0]).expect("read");
    fs::write(&entries[0], &bytes[..bytes.len() - 7]).expect("truncate");
    let mut bytes = fs::read(&entries[1]).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&entries[1], &bytes).expect("flip");
    fs::write(&entries[2], b"gutted").expect("gut");

    let warm_out = fresh_dir("corrupt-warm");
    let output = repro_cmd(&warm_out, &store, &[]).output().expect("spawn");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "corrupted entries must not fail the sweep:\n{stderr}"
    );
    assert_identical(&golden, &artefact_files(&warm_out), "post-corruption rerun");
    assert!(
        stderr.contains("corrupt") && stderr.contains("quarantined"),
        "corruption must be reported:\n{stderr}"
    );
    let quarantined = fs::read_dir(store.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 3, "every damaged entry must be quarantined");
    assert!(
        bench_number(&warm_out, "runs_executed") > 0.0,
        "damaged entries must be recomputed"
    );
    for dir in [&store, &cold_out, &warm_out] {
        fs::remove_dir_all(dir).ok();
    }
}

/// SIGKILL mid-sweep must leave the store consistent: a rerun against
/// the survivor store succeeds and converges to byte-identical
/// artefacts (partially stored results are served, the rest recomputed).
#[test]
fn sigkilled_sweep_leaves_a_usable_store() {
    let golden_store = fresh_dir("kill-golden-store");
    let golden_out = fresh_dir("kill-golden-out");
    let status = repro_cmd(&golden_out, &golden_store, &[])
        .status()
        .expect("spawn");
    assert!(status.success(), "reference run failed");
    let golden = artefact_files(&golden_out);

    let store = fresh_dir("kill-store");
    let out1 = fresh_dir("kill-out1");
    let mut child = repro_cmd(&out1, &store, &[])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn");
    // Kill as soon as the journal shows progress (SIGKILL via kill()).
    let journal = out1.join("repro.journal");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut finished_early = false;
    loop {
        if fs::read_to_string(&journal).is_ok_and(|t| t.lines().any(|l| l.starts_with("ok "))) {
            break;
        }
        if child.try_wait().expect("poll").is_some() {
            finished_early = true;
            break;
        }
        assert!(Instant::now() < deadline, "no journal progress within 120s");
        std::thread::sleep(Duration::from_millis(20));
    }
    if !finished_early {
        child.kill().expect("kill repro");
    }
    let _ = child.wait();

    // The dead writer's lock must not wedge the rerun (its PID is gone,
    // so the stale-lock protocol breaks it), temp files are swept, and
    // every committed entry is either whole or absent.
    let out2 = fresh_dir("kill-out2");
    let output = repro_cmd(&out2, &store, &[]).output().expect("spawn");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "rerun after SIGKILL failed:\n{stderr}"
    );
    assert!(
        !stderr.contains("read-only"),
        "dead writer's lock was not broken:\n{stderr}"
    );
    assert_identical(&golden, &artefact_files(&out2), "post-SIGKILL rerun");

    // And a third, fully-warm run serves everything from the store.
    let out3 = fresh_dir("kill-out3");
    let status = repro_cmd(&out3, &store, &[]).status().expect("spawn");
    assert!(status.success());
    assert_eq!(bench_number(&out3, "runs_executed"), 0.0);
    for dir in [&golden_store, &golden_out, &store, &out1, &out2, &out3] {
        fs::remove_dir_all(dir).ok();
    }
}

/// `--run-timeout` converts a hung simulation into a quarantined
/// artefact: the sweep continues, the reason names the watchdog, and
/// the exit code is nonzero.
#[test]
fn run_timeout_quarantines_hung_artefacts() {
    let out = fresh_dir("timeout-out");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            SCALE,
            "--jobs",
            "2",
            "--run-timeout",
            "1",
            "--out",
        ])
        .arg(&out)
        .args(["table1", "fig3"])
        .env("STTGPU_RUN_HANG", "lud")
        .current_dir(&out)
        .output()
        .expect("spawn");
    assert!(
        !output.status.success(),
        "a quarantined artefact must force a nonzero exit"
    );
    let quarantine =
        fs::read_to_string(out.join("QUARANTINE.txt")).expect("QUARANTINE.txt must exist");
    assert!(
        quarantine.lines().any(|l| l.starts_with("fig3\t")),
        "fig3 (which runs the hung workload) must be quarantined:\n{quarantine}"
    );
    assert!(
        quarantine.contains("watchdog"),
        "the reason must name the watchdog:\n{quarantine}"
    );
    // The static artefact still landed and was journalled.
    assert!(out.join("table1.txt").is_file(), "sweep aborted on hang");
    let journal = fs::read_to_string(out.join("repro.journal")).expect("journal");
    assert!(journal.lines().any(|l| l == "ok table1"));
    assert!(!journal.lines().any(|l| l == "ok fig3"));
    fs::remove_dir_all(&out).ok();
}
