//! Fig. 4: HR write-threshold analysis.
//!
//! Sweeps the WWS-monitor threshold TH ∈ {1, 3, 7, 15} on the C1 geometry
//! and reports, per workload, (a) the LR/HR demand-write ratio and (b) the
//! total physical write count, both normalised to TH = 1. The paper's
//! conclusion — reproduced here — is that TH = 1 maximises LR utilisation
//! while higher thresholds only push writes into the expensive HR array.

use sttgpu_workloads::suite;

use crate::configs::{gpu_config, L2Choice};
use crate::report;
use crate::runner::{Executor, RunPlan};
use sttgpu_core::TwoPartConfig;
use sttgpu_sim::L2ModelConfig;

/// The thresholds Fig. 4 sweeps.
pub const THRESHOLDS: [u32; 4] = [1, 3, 7, 15];

/// Results of one workload across the threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Workload name.
    pub workload: String,
    /// LR/HR demand-write ratio normalised to TH1, indexed like
    /// [`THRESHOLDS`].
    pub lr_hr_ratio_norm: [f64; 4],
    /// Total physical array writes normalised to TH1.
    pub write_overhead_norm: [f64; 4],
}

fn c1_with_threshold(th: u32) -> sttgpu_sim::GpuConfig {
    let mut cfg = gpu_config(L2Choice::TwoPartC1);
    let tp = match &cfg.l2 {
        L2ModelConfig::TwoPart(tp) => tp.clone(),
        _ => unreachable!("C1 is two-part"),
    };
    cfg.l2 = L2ModelConfig::TwoPart(TwoPartConfig::with_write_threshold(tp, th));
    cfg
}

/// Runs the sweep for the whole suite, fanning every (workload, TH)
/// point across the executor's pool.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<Fig4Row> {
    let workloads = suite::all();
    let points: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..THRESHOLDS.len()).map(move |ti| (wi, ti)))
        .collect();
    let outs = exec.map(&points, |&(wi, ti)| {
        let w = &workloads[wi];
        let th = THRESHOLDS[ti];
        if th == 1 {
            // TH = 1 *is* the named C1 configuration — route it through
            // the memoized path so fig6/fig8 share the same run.
            exec.run(L2Choice::TwoPartC1, w, plan)
        } else {
            exec.run_config(c1_with_threshold(th), w, plan)
        }
    });
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let mut ratios = [0.0f64; 4];
            let mut writes = [0.0f64; 4];
            for ti in 0..THRESHOLDS.len() {
                let out = &outs[wi * THRESHOLDS.len() + ti];
                let tp = out.two_part.expect("C1 is two-part");
                ratios[ti] = tp.lr_to_hr_write_ratio();
                writes[ti] = tp.total_array_writes() as f64;
            }
            let base_ratio = if ratios[0] > 0.0 { ratios[0] } else { 1.0 };
            let base_writes = if writes[0] > 0.0 { writes[0] } else { 1.0 };
            Fig4Row {
                workload: w.name.clone(),
                lr_hr_ratio_norm: ratios.map(|r| r / base_ratio),
                write_overhead_norm: writes.map(|x| x / base_writes),
            }
        })
        .collect()
}

/// Renders both panels of the figure.
pub fn render(rows: &[Fig4Row]) -> String {
    let mut out = String::from("Fig. 4: HR write-threshold analysis (normalised to TH1)\n\n");
    for (title, pick) in [
        (
            "LR-to-HR write ratio",
            (|r: &Fig4Row| r.lr_hr_ratio_norm) as fn(&Fig4Row) -> [f64; 4],
        ),
        ("total write overhead", |r: &Fig4Row| r.write_overhead_norm),
    ] {
        out.push_str(&format!("{title}:\n"));
        let mut body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let vals = pick(r);
                let mut cells = vec![r.workload.clone()];
                cells.extend(vals.iter().map(|v| report::ratio(*v)));
                cells
            })
            .collect();
        let mut avg_cells = vec!["AVG".to_owned()];
        for i in 0..4 {
            let col: Vec<f64> = rows.iter().map(|r| pick(r)[i]).collect();
            avg_cells.push(report::ratio(report::gmean(&col)));
        }
        body.push(avg_cells);
        out.push_str(&report::table(
            &["workload", "TH1", "TH3", "TH7", "TH15"],
            &body,
        ));
        out.push('\n');
    }
    out
}

/// Renders the sweep as long-format CSV (one row per workload x TH).
pub fn to_csv(rows: &[Fig4Row]) -> String {
    let mut body = Vec::new();
    for r in rows {
        for (i, &th) in THRESHOLDS.iter().enumerate() {
            body.push(vec![
                r.workload.clone(),
                th.to_string(),
                format!("{:.6}", r.lr_hr_ratio_norm[i]),
                format!("{:.6}", r.write_overhead_norm[i]),
            ]);
        }
    }
    report::csv(
        &[
            "workload",
            "threshold",
            "lr_hr_ratio_norm",
            "write_overhead_norm",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's conclusion: raising the threshold starves the LR part
    /// (lower LR/HR ratio) while total writes stay roughly flat — so TH1
    /// wins.
    #[test]
    fn threshold_one_maximises_lr_utilisation() {
        let plan = RunPlan {
            scale: 0.06,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        // A write-hot subset is enough to check the trend cheaply.
        let exec = Executor::sequential();
        let w = suite::by_name("nw").expect("nw");
        let mut ratios = Vec::new();
        for th in THRESHOLDS {
            let out = exec.run_config(c1_with_threshold(th), &w, &plan);
            ratios.push(out.two_part.expect("two-part").lr_to_hr_write_ratio());
        }
        assert!(
            ratios[0] > ratios[1] && ratios[1] >= ratios[3],
            "LR/HR ratio must fall with threshold: {ratios:?}"
        );
    }
}
