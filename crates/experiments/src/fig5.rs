//! Fig. 5: LR associativity analysis.
//!
//! Sweeps the LR part's associativity {1, 2, 4, 8, 16}-way on the C1
//! geometry and reports each workload's LR **write utilisation** (fraction
//! of demand writes serviced by the LR array) normalised to a fully
//! associative LR. The paper picks 2 ways: close to fully-associative
//! utilisation at a fraction of the lookup cost.

use sttgpu_workloads::suite;

use crate::configs::{gpu_config, L2Choice};
use crate::report;
use crate::runner::{Executor, RunPlan};
use sttgpu_sim::L2ModelConfig;

/// The swept way counts; `None` stands for fully associative.
pub const WAYS: [u32; 5] = [1, 2, 4, 8, 16];

/// Results of one workload across the associativity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload name.
    pub workload: String,
    /// LR write utilisation per way count, normalised to fully
    /// associative (indexed like [`WAYS`]).
    pub utilization_norm: [f64; 5],
    /// The raw fully-associative utilisation (the normalisation base).
    pub full_assoc_utilization: f64,
}

fn c1_with_lr_ways(ways: Option<u32>) -> sttgpu_sim::GpuConfig {
    let mut cfg = gpu_config(L2Choice::TwoPartC1);
    let tp = match &cfg.l2 {
        L2ModelConfig::TwoPart(tp) => tp.clone(),
        _ => unreachable!("C1 is two-part"),
    };
    let ways = ways.unwrap_or(tp.lr_lines() as u32);
    cfg.l2 = L2ModelConfig::TwoPart(tp.with_lr_ways(ways));
    cfg
}

fn lr_utilization(
    exec: &Executor,
    cfg: sttgpu_sim::GpuConfig,
    w: &sttgpu_sim::Workload,
    plan: &RunPlan,
) -> f64 {
    let out = exec.run_config(cfg, w, plan);
    out.two_part.expect("two-part").direct_lr_write_hit_rate()
}

/// Runs the sweep for the whole suite, fanning every (workload, ways)
/// point across the executor's pool. Point 0 of each workload is the
/// fully-associative normalisation base.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<Fig5Row> {
    let workloads = suite::all();
    const POINTS_PER_WORKLOAD: usize = WAYS.len() + 1;
    let points: Vec<(usize, Option<u32>)> = (0..workloads.len())
        .flat_map(|wi| {
            std::iter::once((wi, None)).chain(WAYS.iter().map(move |&ways| (wi, Some(ways))))
        })
        .collect();
    let utils = exec.map(&points, |&(wi, ways)| {
        let w = &workloads[wi];
        if ways == Some(2) {
            // 2-way LR *is* the named C1 configuration — route it through
            // the memoized path so fig6/fig8 share the same run.
            let out = exec.run(L2Choice::TwoPartC1, w, plan);
            out.two_part.expect("two-part").direct_lr_write_hit_rate()
        } else {
            lr_utilization(exec, c1_with_lr_ways(ways), w, plan)
        }
    });
    workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let base_idx = wi * POINTS_PER_WORKLOAD;
            let full = utils[base_idx];
            let base = if full > 0.0 { full } else { 1.0 };
            let mut norm = [0.0f64; 5];
            for (i, slot) in norm.iter_mut().enumerate() {
                *slot = utils[base_idx + 1 + i] / base;
            }
            Fig5Row {
                workload: w.name.clone(),
                utilization_norm: norm,
                full_assoc_utilization: full,
            }
        })
        .collect()
}

/// Renders the figure.
pub fn render(rows: &[Fig5Row]) -> String {
    let mut out = String::from(
        "Fig. 5: LR write utilisation by associativity, normalised to fully-associative\n",
    );
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.workload.clone()];
            cells.extend(r.utilization_norm.iter().map(|v| report::ratio(*v)));
            cells
        })
        .collect();
    let mut avg = vec!["Gmean".to_owned()];
    for i in 0..WAYS.len() {
        let col: Vec<f64> = rows.iter().map(|r| r.utilization_norm[i]).collect();
        avg.push(report::ratio(report::gmean(&col)));
    }
    body.push(avg);
    out.push_str(&report::table(
        &["workload", "1-way", "2-way", "4-way", "8-way", "16-way"],
        &body,
    ));
    out
}

/// Renders the sweep as long-format CSV (one row per workload x ways).
pub fn to_csv(rows: &[Fig5Row]) -> String {
    let mut body = Vec::new();
    for r in rows {
        for (i, &ways) in WAYS.iter().enumerate() {
            body.push(vec![
                r.workload.clone(),
                ways.to_string(),
                format!("{:.6}", r.utilization_norm[i]),
                format!("{:.6}", r.full_assoc_utilization),
            ]);
        }
    }
    report::csv(
        &[
            "workload",
            "lr_ways",
            "utilization_norm",
            "full_assoc_utilization",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 5's message: 2 ways already lands near fully-associative
    /// utilisation, and more ways never hurt.
    #[test]
    fn two_way_is_close_to_fully_associative() {
        let plan = RunPlan {
            scale: 0.06,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        let exec = Executor::sequential();
        let w = suite::by_name("kmeans").expect("kmeans");
        let full = lr_utilization(&exec, c1_with_lr_ways(None), &w, &plan);
        let one = lr_utilization(&exec, c1_with_lr_ways(Some(1)), &w, &plan);
        let two = lr_utilization(&exec, c1_with_lr_ways(Some(2)), &w, &plan);
        assert!(full > 0.0, "kmeans must exercise the LR part");
        assert!(
            two >= one * 0.99,
            "2-way ({two}) must not lose to 1-way ({one})"
        );
        assert!(
            two >= 0.85 * full,
            "2-way utilisation {two} must be close to fully-associative {full}"
        );
    }
}
