//! Small text-report helpers shared by the figure runners.

/// Geometric mean of positive samples (the paper's "Gmean" columns);
/// returns 0.0 for empty input and skips non-positive entries.
pub fn gmean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        0.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders an aligned text table: a header row and data rows. Column
/// widths adapt to the longest cell; numeric alignment is the caller's
/// formatting choice.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("  {:>width$}", cell, width = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Renders rows as CSV (comma-separated, header first). Cells containing
/// commas or quotes are quoted per RFC 4180.
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width mismatch");
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Formats a ratio column like the paper's normalised figures.
pub fn ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_known_values() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn gmean_skips_nonpositive() {
        assert!((gmean(&[0.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.0".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("longer"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4, "header + rule + 2 rows");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let t = csv(
            &["name", "value"],
            &[
                vec!["plain".into(), "1.5".into()],
                vec!["with,comma".into(), "say \"hi\"".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.5");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn csv_rejects_ragged_rows() {
        csv(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.23456), "1.235");
        assert_eq!(pct(0.163), "16.3%");
    }
}
