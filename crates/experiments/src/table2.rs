//! Table 2: the five GPGPU-Sim configurations, with the area accounting
//! that derives the C2/C3 register files.

use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::mtj::RetentionTime;

use crate::configs::{gpu_config, two_part_geometry, L2Choice};
use crate::report;

/// One row of the configuration table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Configuration label.
    pub config: &'static str,
    /// Registers per SM.
    pub registers_per_sm: u32,
    /// L2 organisation description.
    pub l2_description: String,
    /// Total L2 capacity, KB.
    pub l2_kb: u64,
    /// L2 silicon area, mm² (data + SRAM tags, CACTI-lite).
    pub l2_area_mm2: f64,
}

fn l2_area_mm2(choice: L2Choice) -> f64 {
    match choice {
        L2Choice::SramBaseline => ArrayDesign::new(
            ArrayGeometry::new(384 * 1024, 256, 8, 6),
            MemTechnology::Sram,
        )
        .area_mm2(),
        L2Choice::SttBaseline => ArrayDesign::new(
            ArrayGeometry::new(1536 * 1024, 256, 8, 6),
            MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
        )
        .area_mm2(),
        _ => {
            let (lr, hr) = two_part_geometry(choice).expect("two-part");
            let lr_design = ArrayDesign::new(
                ArrayGeometry::new(lr * 1024, 256, 2, 2),
                MemTechnology::stt_for_retention(RetentionTime::from_micros(26.5)),
            );
            let hr_design = ArrayDesign::new(
                ArrayGeometry::new(hr * 1024, 256, 7, 6),
                MemTechnology::stt_for_retention(RetentionTime::from_millis(4.0)),
            );
            lr_design.area_mm2() + hr_design.area_mm2()
        }
    }
}

/// Computes all five rows.
pub fn compute() -> Vec<Table2Row> {
    L2Choice::ALL
        .into_iter()
        .map(|choice| {
            let cfg = gpu_config(choice);
            let l2_description = match two_part_geometry(choice) {
                Some((lr, hr)) => format!("{hr}KB 7-way HR + {lr}KB 2-way LR"),
                None => match choice {
                    L2Choice::SramBaseline => "384KB 8-way SRAM".to_owned(),
                    L2Choice::SttBaseline => "1536KB 8-way STT-RAM (10y)".to_owned(),
                    _ => unreachable!(),
                },
            };
            Table2Row {
                config: choice.label(),
                registers_per_sm: cfg.registers_per_sm,
                l2_description,
                l2_kb: cfg.l2.capacity_kb(),
                l2_area_mm2: l2_area_mm2(choice),
            }
        })
        .collect()
}

/// Renders the table plus the baseline GPU model header.
pub fn render() -> String {
    let mut out = String::from(
        "Table 2: GPGPU-Sim configurations (GTX480-like baseline GPU model)\n\
         baseline GPU: 15 SMs, L1D 16KB 4-way 128B lines, shared mem 48KB/SM,\n\
         6 memory controllers, 40nm, L2 line 256B; register files below.\n\n",
    );
    let rows: Vec<Vec<String>> = compute()
        .into_iter()
        .map(|r| {
            vec![
                r.config.to_owned(),
                format!("{}", r.registers_per_sm),
                r.l2_description,
                format!("{}", r.l2_kb),
                format!("{:.2}", r.l2_area_mm2),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["config", "regs/SM", "L2 organisation", "L2 KB", "L2 mm^2"],
        &rows,
    ));
    out
}

/// Renders Table 2 as CSV.
pub fn to_csv() -> String {
    report::csv(
        &[
            "config",
            "registers_per_sm",
            "l2_organisation",
            "l2_kb",
            "l2_area_mm2",
        ],
        &compute()
            .into_iter()
            .map(|r| {
                vec![
                    r.config.to_owned(),
                    r.registers_per_sm.to_string(),
                    r.l2_description,
                    r.l2_kb.to_string(),
                    format!("{:.3}", r.l2_area_mm2),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows() {
        assert_eq!(compute().len(), 5);
    }

    #[test]
    fn stt_configs_fit_the_sram_area_budget() {
        let rows = compute();
        let sram_area = rows[0].l2_area_mm2;
        for r in &rows[1..] {
            assert!(
                r.l2_area_mm2 <= 1.25 * sram_area,
                "{} area {:.2} exceeds budget {:.2}",
                r.config,
                r.l2_area_mm2,
                sram_area
            );
        }
    }

    #[test]
    fn c2_has_the_largest_register_file() {
        let rows = compute();
        let c2 = rows.iter().find(|r| r.config == "C2").expect("C2");
        for r in &rows {
            assert!(c2.registers_per_sm >= r.registers_per_sm);
        }
    }

    #[test]
    fn render_mentions_every_config() {
        let t = render();
        for label in ["baseline", "STT-RAM", "C1", "C2", "C3"] {
            assert!(t.contains(label), "missing {label}");
        }
    }
}
