//! Typed validation for `repro`'s numeric flags.
//!
//! The binary used to silently fall back to the usage text on any bad
//! value; these helpers turn each rejection into a [`RunError`] that
//! names the flag, the offending value, and the accepted range — and
//! they put *upper* bounds on values where a typo (`--jobs 100000`)
//! would otherwise exhaust the machine before anything useful ran.

use sttgpu_core::LlcPolicy;

use crate::error::RunError;

/// Upper bound on `--jobs`: far beyond any real core count, low enough
/// that a mistyped value cannot spawn tens of thousands of threads.
pub const MAX_JOBS: usize = 4096;

/// Upper bound on `--sim-threads` (per-simulation SM stepping threads).
pub const MAX_SIM_THREADS: u32 = 1024;

/// Upper bound on `--run-timeout`, seconds (one day — anything longer
/// is indistinguishable from no watchdog at all).
pub const MAX_RUN_TIMEOUT_S: u64 = 86_400;

/// Upper bound on `--scale`: the reference scale is 1.0 and nothing in
/// the tree goes past single digits, so beyond this a typo is certain.
pub const MAX_SCALE: f64 = 64.0;

fn invalid(what: String) -> RunError {
    RunError::InvalidConfig { what }
}

fn value_of<'a>(flag: &str, value: Option<&'a str>) -> Result<&'a str, RunError> {
    value.ok_or_else(|| invalid(format!("{flag} needs a value")))
}

/// Parses and bounds-checks `--jobs N` (executor worker threads).
pub fn parse_jobs(value: Option<&str>) -> Result<usize, RunError> {
    let raw = value_of("--jobs", value)?;
    let n: usize = raw
        .parse()
        .map_err(|_| invalid(format!("--jobs wants an integer, got '{raw}'")))?;
    if n == 0 || n > MAX_JOBS {
        return Err(invalid(format!(
            "--jobs must be in 1..={MAX_JOBS}, got {n}"
        )));
    }
    Ok(n)
}

/// Parses and bounds-checks `--sim-threads T`.
pub fn parse_sim_threads(value: Option<&str>) -> Result<u32, RunError> {
    let raw = value_of("--sim-threads", value)?;
    let n: u32 = raw
        .parse()
        .map_err(|_| invalid(format!("--sim-threads wants an integer, got '{raw}'")))?;
    if n == 0 || n > MAX_SIM_THREADS {
        return Err(invalid(format!(
            "--sim-threads must be in 1..={MAX_SIM_THREADS}, got {n}"
        )));
    }
    Ok(n)
}

/// Parses and bounds-checks `--run-timeout SECS`.
pub fn parse_run_timeout(value: Option<&str>) -> Result<u64, RunError> {
    let raw = value_of("--run-timeout", value)?;
    let n: u64 = raw
        .parse()
        .map_err(|_| invalid(format!("--run-timeout wants seconds, got '{raw}'")))?;
    if n == 0 || n > MAX_RUN_TIMEOUT_S {
        return Err(invalid(format!(
            "--run-timeout must be in 1..={MAX_RUN_TIMEOUT_S} seconds, got {n}"
        )));
    }
    Ok(n)
}

/// Parses `--llc-policy NAME` against the shipped policy registry.
pub fn parse_llc_policy(value: Option<&str>) -> Result<LlcPolicy, RunError> {
    let raw = value_of("--llc-policy", value)?;
    LlcPolicy::parse(raw).ok_or_else(|| {
        let names: Vec<&str> = LlcPolicy::ALL.iter().map(|p| p.name()).collect();
        invalid(format!(
            "--llc-policy wants one of {}, got '{raw}'",
            names.join("|")
        ))
    })
}

/// Parses and bounds-checks `--scale F`.
pub fn parse_scale(value: Option<&str>) -> Result<f64, RunError> {
    let raw = value_of("--scale", value)?;
    let v: f64 = raw
        .parse()
        .map_err(|_| invalid(format!("--scale wants a number, got '{raw}'")))?;
    if !v.is_finite() || v <= 0.0 || v > MAX_SCALE {
        return Err(invalid(format!(
            "--scale must be a finite value in (0, {MAX_SCALE}], got {raw}"
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejects(result: Result<impl std::fmt::Debug, RunError>, fragment: &str) {
        match result {
            Err(RunError::InvalidConfig { what }) => {
                assert!(what.contains(fragment), "'{what}' missing '{fragment}'");
            }
            other => panic!("expected InvalidConfig containing '{fragment}', got {other:?}"),
        }
    }

    #[test]
    fn jobs_bounds_and_typos_are_typed() {
        assert_eq!(parse_jobs(Some("8")).unwrap(), 8);
        assert_eq!(parse_jobs(Some("4096")).unwrap(), MAX_JOBS);
        rejects(parse_jobs(Some("0")), "1..=4096");
        rejects(parse_jobs(Some("4097")), "1..=4096");
        rejects(parse_jobs(Some("eight")), "integer");
        rejects(parse_jobs(None), "needs a value");
    }

    #[test]
    fn sim_threads_zero_is_a_typed_error() {
        assert_eq!(parse_sim_threads(Some("4")).unwrap(), 4);
        rejects(parse_sim_threads(Some("0")), "1..=1024");
        rejects(parse_sim_threads(Some("99999")), "1..=1024");
        rejects(parse_sim_threads(Some("-1")), "integer");
    }

    #[test]
    fn run_timeout_bounds_are_typed() {
        assert_eq!(parse_run_timeout(Some("30")).unwrap(), 30);
        rejects(parse_run_timeout(Some("0")), "seconds, got 0");
        rejects(parse_run_timeout(Some("90000")), "1..=86400");
        rejects(parse_run_timeout(Some("soon")), "seconds, got 'soon'");
    }

    #[test]
    fn llc_policy_names_round_trip_and_typos_are_typed() {
        for policy in LlcPolicy::ALL {
            assert_eq!(parse_llc_policy(Some(policy.name())).unwrap(), policy);
        }
        rejects(parse_llc_policy(Some("adaptive")), "fixed|");
        rejects(parse_llc_policy(None), "needs a value");
    }

    #[test]
    fn scale_rejects_nonsense() {
        assert_eq!(parse_scale(Some("0.25")).unwrap(), 0.25);
        rejects(parse_scale(Some("0")), "(0, 64]");
        rejects(parse_scale(Some("-1")), "(0, 64]");
        rejects(parse_scale(Some("inf")), "(0, 64]");
        rejects(parse_scale(Some("NaN")), "(0, 64]");
        rejects(parse_scale(Some("65")), "(0, 64]");
        rejects(parse_scale(Some("big")), "number");
    }
}
