//! Adaptive-policy ablation: the paper-exact fixed policy vs. the two
//! shipped runtime-adaptive policies, across the whole workload suite
//! and the fault ladder.
//!
//! The paper fixes its policy bundle at design time (write-threshold
//! migration, static retention, static LR/HR split). The pluggable
//! policy seams ([`LlcPolicy`]) make that bundle a runtime choice, so
//! the natural question is what the adaptive variants actually buy:
//! per workload, this artefact reports IPC, dynamic L2 energy and LR
//! refresh work under each policy (normalised to the fixed run), then
//! repeats the fault-injection ladder under each policy to show whether
//! adaptation changes how the design degrades. Every simulation flows
//! through the shared executor, so the fixed column memoizes with the
//! other artefacts and the policy name keys every run.

use sttgpu_core::LlcPolicy;
use sttgpu_workloads::suite;

use crate::configs::L2Choice;
use crate::faults::{self, FaultRow};
use crate::report;
use crate::runner::{Executor, RunPlan};

/// Policy order of every per-policy array in this artefact: fixed
/// first (it anchors the normalisation), then the adaptive variants.
pub const POLICIES: [LlcPolicy; 3] = LlcPolicy::ALL;

/// One workload measured under every shipped policy (C1 geometry).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRow {
    /// Workload name.
    pub workload: String,
    /// IPC under each policy, [`POLICIES`] order.
    pub ipc: [f64; 3],
    /// Dynamic L2 energy (nJ) under each policy, [`POLICIES`] order.
    pub dyn_energy_nj: [f64; 3],
    /// LR refreshes under each policy, [`POLICIES`] order.
    pub refreshes: [u64; 3],
}

/// The full artefact: the per-workload grid plus one fault ladder per
/// policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveReport {
    /// One row per suite workload.
    pub rows: Vec<AdaptiveRow>,
    /// The fault-injection ladder rerun under each policy,
    /// [`POLICIES`] order.
    pub fault: Vec<(LlcPolicy, Vec<FaultRow>)>,
}

/// Runs the suite under every policy, then the fault ladder under every
/// policy. All points fan across the executor's pool.
pub fn compute(exec: &Executor, plan: &RunPlan) -> AdaptiveReport {
    let workloads = suite::all();
    let points: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..POLICIES.len()).map(move |pi| (wi, pi)))
        .collect();
    let outs = exec.map(&points, |&(wi, pi)| {
        exec.run(
            L2Choice::TwoPartC1,
            &workloads[wi],
            &plan.with_policy(POLICIES[pi]),
        )
    });
    let rows = workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| {
            let mut ipc = [0.0; 3];
            let mut dyn_energy_nj = [0.0; 3];
            let mut refreshes = [0u64; 3];
            for pi in 0..POLICIES.len() {
                let out = &outs[wi * POLICIES.len() + pi];
                ipc[pi] = out.metrics.ipc();
                dyn_energy_nj[pi] = out.metrics.l2_energy.dynamic_nj();
                refreshes[pi] = out.two_part.expect("C1 is two-part").refreshes;
            }
            AdaptiveRow {
                workload: w.name.clone(),
                ipc,
                dyn_energy_nj,
                refreshes,
            }
        })
        .collect();
    let fault = POLICIES
        .iter()
        .map(|&p| (p, faults::compute(exec, &plan.with_policy(p))))
        .collect();
    AdaptiveReport { rows, fault }
}

/// Geometric-mean ratio of policy column `pi` over the fixed column.
fn gmean_vs_fixed(rows: &[AdaptiveRow], pi: usize, f: impl Fn(&AdaptiveRow, usize) -> f64) -> f64 {
    let ratios: Vec<f64> = rows.iter().map(|r| f(r, pi) / f(r, 0).max(1e-12)).collect();
    report::gmean(&ratios)
}

/// Renders the artefact as the paper-style text tables.
pub fn render(rep: &AdaptiveReport) -> String {
    let mut out =
        String::from("Adaptive-policy ablation — fixed vs. runtime-adaptive LLC policies (C1)\n\n");
    let body: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.0}", r.ipc[0]),
                report::ratio(r.ipc[1] / r.ipc[0].max(1e-12)),
                report::ratio(r.ipc[2] / r.ipc[0].max(1e-12)),
                report::ratio(r.dyn_energy_nj[1] / r.dyn_energy_nj[0].max(1e-12)),
                report::ratio(r.dyn_energy_nj[2] / r.dyn_energy_nj[0].max(1e-12)),
                format!("{}", r.refreshes[0]),
                format!("{}", r.refreshes[1]),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "workload",
            "IPC fixed",
            "IPC adapt-ret",
            "IPC adapt-ways",
            "energy adapt-ret",
            "energy adapt-ways",
            "refreshes fixed",
            "refreshes adapt-ret",
        ],
        &body,
    ));
    out.push_str(&format!(
        "\ngmean vs fixed: IPC {} (retention) / {} (ways), \
         dynamic energy {} (retention) / {} (ways)\n",
        report::ratio(gmean_vs_fixed(&rep.rows, 1, |r, i| r.ipc[i])),
        report::ratio(gmean_vs_fixed(&rep.rows, 2, |r, i| r.ipc[i])),
        report::ratio(gmean_vs_fixed(&rep.rows, 1, |r, i| r.dyn_energy_nj[i])),
        report::ratio(gmean_vs_fixed(&rep.rows, 2, |r, i| r.dyn_energy_nj[i])),
    ));
    out.push_str("\nFault ladder under each policy (heaviest rate)\n\n");
    let body: Vec<Vec<String>> = rep
        .fault
        .iter()
        .filter_map(|(policy, rows)| {
            let heavy = rows.last()?;
            Some(vec![
                policy.name().to_string(),
                format!("{:.0e}", heavy.rate),
                report::ratio(heavy.ipc_norm),
                format!("{}", heavy.ecc_uncorrectable),
                format!("{}", heavy.data_loss_events),
                format!("{}", heavy.refresh_drops),
            ])
        })
        .collect();
    out.push_str(&report::table(
        &[
            "policy",
            "rate",
            "IPC vs clean",
            "uncorrectable",
            "data loss",
            "refresh drops",
        ],
        &body,
    ));
    out
}

/// CSV form: the per-workload grid (the fault ladders are `faults.csv`
/// reruns and keep their own artefact).
pub fn to_csv(rep: &AdaptiveReport) -> String {
    let body: Vec<Vec<String>> = rep
        .rows
        .iter()
        .map(|r| {
            let mut cols = vec![r.workload.clone()];
            cols.extend(r.ipc.iter().map(|v| format!("{v:.6}")));
            cols.extend(r.dyn_energy_nj.iter().map(|v| format!("{v:.6}")));
            cols.extend(r.refreshes.iter().map(|v| format!("{v}")));
            cols
        })
        .collect();
    report::csv(
        &[
            "workload",
            "ipc_fixed",
            "ipc_adaptive_retention",
            "ipc_adaptive_ways",
            "dyn_energy_nj_fixed",
            "dyn_energy_nj_adaptive_retention",
            "dyn_energy_nj_adaptive_ways",
            "refreshes_fixed",
            "refreshes_adaptive_retention",
            "refreshes_adaptive_ways",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            scale: 0.05,
            max_cycles: 2_000_000,
            ..RunPlan::full()
        }
    }

    #[test]
    fn grid_covers_the_suite_and_every_policy_runs() {
        let exec = Executor::auto();
        let rep = compute(&exec, &tiny_plan());
        assert_eq!(rep.rows.len(), suite::all().len());
        assert_eq!(rep.fault.len(), POLICIES.len());
        for (policy, ladder) in &rep.fault {
            assert_eq!(ladder.len(), faults::FAULT_RATES.len(), "{policy}");
        }
        for r in &rep.rows {
            assert!(
                r.ipc.iter().all(|&v| v > 0.0),
                "{}: {:?}",
                r.workload,
                r.ipc
            );
        }
        // Distinct policies must be distinct memo keys: the grid alone
        // is suite × policies runs, nothing aliased.
        assert!(
            exec.stats().runs_executed >= (rep.rows.len() * POLICIES.len()) as u64,
            "policy runs must not alias in the run cache"
        );
        let csv = to_csv(&rep);
        assert_eq!(csv.lines().count(), rep.rows.len() + 1);
        assert!(render(&rep).contains("adapt-ret"));
    }

    #[test]
    fn report_is_identical_on_any_job_count() {
        let plan = tiny_plan();
        let seq = compute(&Executor::sequential(), &plan);
        let par = compute(&Executor::new(8), &plan);
        assert_eq!(seq, par, "adaptive report diverges across executors");
        assert_eq!(render(&seq), render(&par));
        assert_eq!(to_csv(&seq), to_csv(&par));
    }
}
