//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation, plus ablations.
//!
//! Each `figN`/`tableN` module exposes a `compute(..) -> Vec<Row>` function
//! returning structured results and a `render(..) -> String` that prints
//! the same rows/series the paper reports. The [`repro` binary](../repro)
//! drives them all:
//!
//! ```text
//! cargo run --release -p sttgpu-experiments --bin repro -- all
//! cargo run --release -p sttgpu-experiments --bin repro -- fig8 --scale 0.5
//! ```
//!
//! | module | paper artefact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — STT-RAM parameters vs. retention |
//! | [`table2`] | Table 2 — GPGPU-Sim configurations (incl. derived C2/C3 register files) |
//! | [`fig3`]   | Fig. 3 — inter/intra-set write variation (COV) |
//! | [`fig4`]   | Fig. 4 — HR write-threshold analysis |
//! | [`fig5`]   | Fig. 5 — LR associativity analysis |
//! | [`fig6`]   | Fig. 6 — LR rewrite-interval distribution |
//! | [`fig8`]   | Fig. 8 — speedup, dynamic power, total power |
//! | [`ablations`] | beyond-paper design-space studies |
//! | [`adaptive`] | fixed vs. runtime-adaptive LLC policies |
//! | [`faults`]  | fault-injection sweep: error rate vs. IPC/energy/data loss |
//! | [`workload_table`] | measured characterisation of the synthetic suite |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod adaptive;
pub mod cli;
pub mod configs;
pub mod error;
pub mod faults;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod persist;
pub mod replay;
pub mod report;
pub mod runner;
pub mod table1;
pub mod table2;
pub mod workload_table;

pub use configs::{gpu_config, L2Choice};
pub use error::RunError;
pub use persist::{ResultStore, StoreReport, STORE_GENERATION};
pub use replay::{
    record_workload, render_stats, replay_records, Recording, ReplayOutput, ScenarioOutcome,
};
pub use runner::{Executor, ExecutorStats, FaultSpec, RunOutput, RunPlan};
