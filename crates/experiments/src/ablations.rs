//! Design-space studies beyond the paper's figures.
//!
//! DESIGN.md calls out four design decisions the paper asserts but does
//! not sweep; each gets an ablation here:
//!
//! 1. **search mode** — sequential (the paper's choice) vs. parallel tag
//!    probing: performance vs. tag energy;
//! 2. **swap-buffer capacity** — the paper sizes both buffers at 10
//!    blocks and reports ≤1 % forced write-backs; sweep 1–20 blocks;
//! 3. **HR retention** — "4 ms handles >90 % of HR rewrites": sweep
//!    0.02–4 ms on a long run and watch expiries/hit-rate collapse below
//!    the data's lifetime;
//! 4. **LR capacity** — how big must the LR be to hold the WWS (48–384 KB
//!    against the C1 HR array);
//! 5. **endurance** — STT-RAM cells endure a bounded number of write
//!    pulses; the LR partition *deliberately concentrates* writes, so the
//!    lifetime cost of that concentration (vs. the uniform STT baseline)
//!    is worth measuring;
//! 6. **warp scheduler** — loose round-robin vs. greedy-then-oldest under
//!    the C1 memory system;
//! 7. **early write termination** (Zhou et al., the paper's §3) — EWT
//!    write drivers stacked on top of the two-part design;
//! 8. **refresh timing** — the paper postpones LR refresh to the last
//!    retention-counter tick; eager policies refresh earlier and pay for
//!    it in refresh traffic and energy;
//! 9. **LR wear-rotation** — a countermeasure to ablation 5's finding:
//!    periodically drain the LR and rotate its set mapping, recovering
//!    leveling headroom at a small migration cost.

use sttgpu_core::SearchMode;
use sttgpu_device::mtj::RetentionTime;
use sttgpu_sim::L2ModelConfig;
use sttgpu_workloads::suite;

use crate::configs::{gpu_config, L2Choice};
use crate::report;
use crate::runner::{Executor, RunPlan};

fn c1_two_part() -> sttgpu_core::TwoPartConfig {
    match gpu_config(L2Choice::TwoPartC1).l2 {
        L2ModelConfig::TwoPart(tp) => tp,
        _ => unreachable!("C1 is two-part"),
    }
}

fn c1_gpu_with(tp: sttgpu_core::TwoPartConfig) -> sttgpu_sim::GpuConfig {
    let mut cfg = gpu_config(L2Choice::TwoPartC1);
    cfg.l2 = L2ModelConfig::TwoPart(tp);
    cfg
}

/// Search-mode ablation result for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRow {
    /// Workload name.
    pub workload: String,
    /// IPC ratio parallel / sequential.
    pub ipc_ratio: f64,
    /// Tag-lookup energy ratio parallel / sequential.
    pub tag_energy_ratio: f64,
    /// Fraction of sequential hits that needed the second probe.
    pub second_search_fraction: f64,
}

/// Runs the sequential-vs-parallel search ablation.
pub fn search_mode(exec: &Executor, plan: &RunPlan) -> Vec<SearchRow> {
    use sttgpu_device::energy::EnergyEvent;
    let workloads = suite::all();
    exec.map(&workloads, |w| {
        let seq = exec.run_config(
            c1_gpu_with(c1_two_part().with_search(SearchMode::Sequential)),
            w,
            plan,
        );
        let par = exec.run_config(
            c1_gpu_with(c1_two_part().with_search(SearchMode::Parallel)),
            w,
            plan,
        );
        let seq_stats = seq.two_part.expect("two-part");
        let hits = seq_stats.lr_read_hits
            + seq_stats.hr_read_hits
            + seq_stats.lr_write_hits
            + seq_stats.hr_write_hits;
        SearchRow {
            workload: w.name.clone(),
            ipc_ratio: par.metrics.ipc() / seq.metrics.ipc().max(1e-9),
            tag_energy_ratio: par.metrics.l2_energy.dynamic_nj_for(EnergyEvent::TagLookup)
                / seq
                    .metrics
                    .l2_energy
                    .dynamic_nj_for(EnergyEvent::TagLookup)
                    .max(1e-9),
            second_search_fraction: if hits == 0 {
                0.0
            } else {
                seq_stats.second_search_hits as f64 / hits as f64
            },
        }
    })
}

/// Swap-buffer capacity ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferRow {
    /// Buffer capacity in blocks.
    pub blocks: usize,
    /// Total buffer overflows across the suite subset.
    pub overflows: u64,
    /// Forced write-backs caused by overflows.
    pub overflow_writebacks: u64,
    /// Fraction of demand writes lost to forced write-backs.
    pub writeback_fraction: f64,
}

/// Capacities swept by the buffer ablation.
pub const BUFFER_SIZES: [usize; 5] = [1, 2, 5, 10, 20];

/// Runs the swap-buffer sizing ablation over the write-heavy workloads,
/// fanning every (capacity, workload) point across the executor's pool.
pub fn buffer_capacity(exec: &Executor, plan: &RunPlan) -> Vec<BufferRow> {
    let heavy: Vec<_> = ["nw", "lbm", "mri_gridding", "kmeans"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite workload"))
        .collect();
    let points: Vec<(usize, usize)> = (0..BUFFER_SIZES.len())
        .flat_map(|bi| (0..heavy.len()).map(move |wi| (bi, wi)))
        .collect();
    let outs = exec.map(&points, |&(bi, wi)| {
        exec.run_config(
            c1_gpu_with(c1_two_part().with_buffer_blocks(BUFFER_SIZES[bi])),
            &heavy[wi],
            plan,
        )
    });
    BUFFER_SIZES
        .iter()
        .enumerate()
        .map(|(bi, &blocks)| {
            let mut overflows = 0;
            let mut overflow_writebacks = 0;
            let mut writes = 0;
            for wi in 0..heavy.len() {
                let tp = outs[bi * heavy.len() + wi].two_part.expect("two-part");
                overflow_writebacks += tp.overflow_writebacks;
                writes += tp.demand_writes();
                overflows += tp.overflow_writebacks; // dirty overflows
            }
            BufferRow {
                blocks,
                overflows,
                overflow_writebacks,
                writeback_fraction: if writes == 0 {
                    0.0
                } else {
                    overflow_writebacks as f64 / writes as f64
                },
            }
        })
        .collect()
}

/// HR-retention ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct HrRetentionRow {
    /// HR retention, ms.
    pub retention_ms: f64,
    /// HR lines expired per million cycles.
    pub expiries_per_mcycle: f64,
    /// L2 hit rate.
    pub hit_rate: f64,
    /// IPC relative to the 4 ms default.
    pub ipc_norm: f64,
}

/// Retentions swept by the HR ablation, ms. The low end sits below the
/// lifetime of hot read-only data so expiries become visible; 4 ms is the
/// paper's choice.
pub const HR_RETENTIONS_MS: [f64; 4] = [0.02, 0.1, 1.0, 4.0];

/// Runs the HR-retention ablation over read-mostly workloads (where
/// expiry hurts most). The workload is scaled up 4x so the run spans a
/// millisecond-class interval and retention actually binds.
pub fn hr_retention(exec: &Executor, plan: &RunPlan) -> Vec<HrRetentionRow> {
    let plan = &RunPlan {
        scale: plan.scale * 4.0,
        max_cycles: plan.max_cycles * 4,
        check: false,
        ..RunPlan::full()
    };
    let w = suite::by_name("streamcluster").expect("streamcluster");
    // Point 0 is the unmodified C1 (the IPC normalisation base); it goes
    // through the memoized path, the swept retentions are ad-hoc configs.
    let points: Vec<Option<f64>> = std::iter::once(None)
        .chain(HR_RETENTIONS_MS.iter().map(|&ms| Some(ms)))
        .collect();
    let outs = exec.map(&points, |&point| match point {
        None => exec.run(L2Choice::TwoPartC1, &w, plan),
        Some(ms) => {
            let tp = c1_two_part().with_hr_retention(RetentionTime::from_millis(ms));
            exec.run_config(c1_gpu_with(tp), &w, plan)
        }
    });
    let default_ipc = outs[0].metrics.ipc();
    HR_RETENTIONS_MS
        .iter()
        .enumerate()
        .map(|(i, &ms)| {
            let out = &outs[i + 1];
            let stats = out.two_part.expect("two-part");
            HrRetentionRow {
                retention_ms: ms,
                expiries_per_mcycle: stats.hr_expirations as f64
                    / (out.metrics.cycles as f64 / 1e6).max(1e-9),
                hit_rate: out.metrics.l2.hit_rate(),
                ipc_norm: out.metrics.ipc() / default_ipc.max(1e-9),
            }
        })
        .collect()
}

/// LR-capacity ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LrSizeRow {
    /// LR capacity, KB (HR fixed at C1's 1344 KB).
    pub lr_kb: u64,
    /// LR write utilisation (fraction of demand writes served in LR).
    pub lr_write_utilization: f64,
    /// LR→HR demotions per thousand demand writes (thrash indicator).
    pub demotions_per_kilo_write: f64,
}

/// LR capacities swept, KB.
pub const LR_SIZES_KB: [u64; 4] = [48, 96, 192, 384];

/// Runs the LR sizing ablation on the most write-concentrated workloads,
/// fanning every (size, workload) point across the executor's pool.
pub fn lr_size(exec: &Executor, plan: &RunPlan) -> Vec<LrSizeRow> {
    let heavy: Vec<_> = ["kmeans", "mri_gridding", "bfs"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite workload"))
        .collect();
    let points: Vec<(usize, usize)> = (0..LR_SIZES_KB.len())
        .flat_map(|si| (0..heavy.len()).map(move |wi| (si, wi)))
        .collect();
    let outs = exec.map(&points, |&(si, wi)| {
        let lr_kb = LR_SIZES_KB[si];
        if lr_kb == 192 {
            // 192 KB against the 1344 KB HR *is* the named C1 geometry —
            // route it through the memoized path.
            exec.run(L2Choice::TwoPartC1, &heavy[wi], plan)
        } else {
            let tp = sttgpu_core::TwoPartConfig::new(lr_kb, 2, 1344, 7, 256);
            exec.run_config(c1_gpu_with(tp), &heavy[wi], plan)
        }
    });
    LR_SIZES_KB
        .iter()
        .enumerate()
        .map(|(si, &lr_kb)| {
            let mut util = Vec::new();
            let mut demotions = 0u64;
            let mut writes = 0u64;
            for wi in 0..heavy.len() {
                let stats = outs[si * heavy.len() + wi].two_part.expect("two-part");
                util.push(stats.lr_write_utilization());
                demotions += stats.demotions_to_hr;
                writes += stats.demand_writes();
            }
            LrSizeRow {
                lr_kb,
                lr_write_utilization: report::mean(&util),
                demotions_per_kilo_write: if writes == 0 {
                    0.0
                } else {
                    demotions as f64 * 1000.0 / writes as f64
                },
            }
        })
        .collect()
}

/// Endurance ablation result for one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EnduranceRow {
    /// Workload name.
    pub workload: String,
    /// Estimated lifetime of the uniform STT-RAM baseline L2, years.
    pub stt_lifetime_years: f64,
    /// Estimated lifetime of C1's LR partition, years (its hottest line
    /// wears first — the cost of concentrating the WWS).
    pub c1_lr_lifetime_years: f64,
    /// Estimated lifetime of C1's HR partition, years.
    pub c1_hr_lifetime_years: f64,
    /// i2WAP-style mean/max leveling headroom of the LR partition.
    pub lr_leveling_headroom: f64,
    /// LR lifetime with 1 ms wear-rotation enabled, years (ablation 9).
    pub rotated_lr_lifetime_years: f64,
    /// LR leveling headroom with rotation enabled.
    pub rotated_lr_headroom: f64,
}

/// Runs the endurance study on the write-concentrated workloads.
pub fn endurance(exec: &Executor, plan: &RunPlan) -> Vec<EnduranceRow> {
    use sttgpu_device::endurance::LifetimeEstimate;
    let names = ["kmeans", "mri_gridding", "tpacf", "nw"];
    exec.map(&names, |name| {
        {
            let w = suite::by_name(name).expect("suite workload");
            let stt = exec.run(L2Choice::SttBaseline, &w, plan);
            let c1 = exec.run(L2Choice::TwoPartC1, &w, plan);
            let stt_est = LifetimeEstimate::from_write_matrix(
                &stt.write_matrix,
                stt.metrics.elapsed_ns.max(1),
            );
            // C1's matrix concatenates LR rows then HR rows.
            let lr_sets = c1_two_part().lr_sets() as usize;
            let (lr_rows, hr_rows) = c1.write_matrix.split_at(lr_sets);
            let elapsed = c1.metrics.elapsed_ns.max(1);
            let lr_est = LifetimeEstimate::from_write_matrix(lr_rows, elapsed);
            let hr_est = LifetimeEstimate::from_write_matrix(hr_rows, elapsed);
            // Ablation 9: the same run with LR wear-rotation. The period
            // is sized to give ~10 epochs within the (sub-millisecond)
            // simulated window; a real deployment would rotate every few
            // ms, which is the same epochs-per-lifetime ratio at scale.
            let rotation_ms = (c1.metrics.elapsed_ns as f64 / 10.0 / 1e6).max(0.001);
            let rotated = exec.run_config(
                c1_gpu_with(c1_two_part().with_lr_rotation_ms(rotation_ms)),
                &w,
                plan,
            );
            let rot_rows = &rotated.write_matrix[..lr_sets];
            let rot_est =
                LifetimeEstimate::from_write_matrix(rot_rows, rotated.metrics.elapsed_ns.max(1));
            EnduranceRow {
                workload: w.name.clone(),
                stt_lifetime_years: stt_est.lifetime_years(),
                c1_lr_lifetime_years: lr_est.lifetime_years(),
                c1_hr_lifetime_years: hr_est.lifetime_years(),
                lr_leveling_headroom: lr_est.leveling_headroom(),
                rotated_lr_lifetime_years: rot_est.lifetime_years(),
                rotated_lr_headroom: rot_est.leveling_headroom(),
            }
        }
    })
}

/// Scheduler ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRow {
    /// Workload name.
    pub workload: String,
    /// IPC ratio GTO / loose round-robin on the C1 configuration.
    pub gto_ipc_ratio: f64,
    /// L1 hit-rate difference (GTO − LRR), percentage points.
    pub l1_hit_delta_pp: f64,
}

/// Runs the warp-scheduler ablation on a locality-sensitive subset.
pub fn scheduler(exec: &Executor, plan: &RunPlan) -> Vec<SchedulerRow> {
    use sttgpu_sim::WarpScheduler;
    let names = ["stencil", "hotspot", "bfs", "streamcluster"];
    exec.map(&names, |name| {
        let w = suite::by_name(name).expect("suite workload");
        let mut lrr_cfg = gpu_config(L2Choice::TwoPartC1);
        lrr_cfg.scheduler = WarpScheduler::LooseRoundRobin;
        let mut gto_cfg = gpu_config(L2Choice::TwoPartC1);
        gto_cfg.scheduler = WarpScheduler::GreedyThenOldest;
        let lrr = exec.run_config(lrr_cfg, &w, plan);
        let gto = exec.run_config(gto_cfg, &w, plan);
        SchedulerRow {
            workload: w.name.clone(),
            gto_ipc_ratio: gto.metrics.ipc() / lrr.metrics.ipc().max(1e-9),
            l1_hit_delta_pp: (gto.metrics.l1_hit_rate() - lrr.metrics.l1_hit_rate()) * 100.0,
        }
    })
}

/// EWT ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct EwtRow {
    /// Workload name.
    pub workload: String,
    /// L2 dynamic power with EWT / without, on C1.
    pub dynamic_power_ratio: f64,
    /// IPC ratio (should be 1.0 — EWT is energy-only).
    pub ipc_ratio: f64,
}

/// Early-write-termination savings fraction used by the ablation.
pub const EWT_SAVINGS: f64 = 0.6;

/// Runs the EWT ablation on the write-heavy subset.
pub fn ewt(exec: &Executor, plan: &RunPlan) -> Vec<EwtRow> {
    let names = ["nw", "lbm", "mri_gridding"];
    exec.map(&names, |name| {
        let w = suite::by_name(name).expect("suite workload");
        // The EWT-off base is exactly C1 — share it via the memoized path.
        let base = exec.run(L2Choice::TwoPartC1, &w, plan);
        let ewt = exec.run_config(
            c1_gpu_with(c1_two_part().with_ewt_savings(EWT_SAVINGS)),
            &w,
            plan,
        );
        EwtRow {
            workload: w.name.clone(),
            dynamic_power_ratio: ewt.metrics.l2_dynamic_power_mw()
                / base.metrics.l2_dynamic_power_mw().max(1e-9),
            ipc_ratio: ewt.metrics.ipc() / base.metrics.ipc().max(1e-9),
        }
    })
}

/// Refresh-timing ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshRow {
    /// Refresh slack in LR retention-counter ticks (0 = paper's policy).
    pub slack_ticks: u32,
    /// Total LR refreshes across the subset.
    pub refreshes: u64,
    /// Refresh share of dynamic L2 energy.
    pub refresh_energy_share: f64,
    /// LR expirations (data loss; must stay 0 for every policy).
    pub lr_expirations: u64,
}

/// Slack values swept by the refresh-timing ablation.
pub const REFRESH_SLACKS: [u32; 4] = [0, 4, 8, 12];

/// Runs the refresh-timing ablation on workloads whose LR lines linger
/// (rare rewrites), where refresh policy actually matters.
pub fn refresh_timing(exec: &Executor, plan: &RunPlan) -> Vec<RefreshRow> {
    use sttgpu_device::energy::EnergyEvent;
    let lingering: Vec<_> = ["sad", "pathfinder", "streamcluster"]
        .iter()
        .map(|n| suite::by_name(n).expect("suite workload"))
        .collect();
    let points: Vec<(usize, usize)> = (0..REFRESH_SLACKS.len())
        .flat_map(|si| (0..lingering.len()).map(move |wi| (si, wi)))
        .collect();
    let outs = exec.map(&points, |&(si, wi)| {
        let slack = REFRESH_SLACKS[si];
        if slack == 0 {
            // Slack 0 is the paper's default policy, i.e. plain C1 —
            // share it via the memoized path.
            exec.run(L2Choice::TwoPartC1, &lingering[wi], plan)
        } else {
            exec.run_config(
                c1_gpu_with(c1_two_part().with_refresh_slack_ticks(slack)),
                &lingering[wi],
                plan,
            )
        }
    });
    REFRESH_SLACKS
        .iter()
        .enumerate()
        .map(|(si, &slack)| {
            let mut refreshes = 0;
            let mut expirations = 0;
            let mut refresh_nj = 0.0;
            let mut total_nj = 0.0;
            for wi in 0..lingering.len() {
                let out = &outs[si * lingering.len() + wi];
                let tp = out.two_part.expect("two-part");
                refreshes += tp.refreshes;
                expirations += tp.lr_expirations;
                refresh_nj += out.metrics.l2_energy.dynamic_nj_for(EnergyEvent::Refresh);
                total_nj += out.metrics.l2_energy.dynamic_nj();
            }
            RefreshRow {
                slack_ticks: slack,
                refreshes,
                refresh_energy_share: if total_nj == 0.0 {
                    0.0
                } else {
                    refresh_nj / total_nj
                },
                lr_expirations: expirations,
            }
        })
        .collect()
}

/// Renders all eight ablations.
pub fn render(exec: &Executor, plan: &RunPlan) -> String {
    let mut out = String::from("Ablations (beyond the paper)\n\n");

    out.push_str("(1) sequential vs. parallel search:\n");
    let rows: Vec<Vec<String>> = search_mode(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                report::ratio(r.ipc_ratio),
                report::ratio(r.tag_energy_ratio),
                report::pct(r.second_search_fraction),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["workload", "IPC par/seq", "tagE par/seq", "2nd-probe hits"],
        &rows,
    ));
    out.push('\n');

    out.push_str("(2) swap-buffer capacity (write-heavy subset):\n");
    let rows: Vec<Vec<String>> = buffer_capacity(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                format!("{} blocks", r.blocks),
                format!("{}", r.overflow_writebacks),
                report::pct(r.writeback_fraction),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["capacity", "forced writebacks", "of demand writes"],
        &rows,
    ));
    out.push('\n');

    out.push_str("(3) HR retention (streamcluster):\n");
    let rows: Vec<Vec<String>> = hr_retention(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                format!("{} ms", r.retention_ms),
                format!("{:.1}", r.expiries_per_mcycle),
                report::pct(r.hit_rate),
                report::ratio(r.ipc_norm),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["retention", "expiries/Mcycle", "L2 hit rate", "IPC vs 4ms"],
        &rows,
    ));
    out.push('\n');

    out.push_str("(4) LR capacity (HR fixed at 1344 KB, write-hot subset):\n");
    let rows: Vec<Vec<String>> = lr_size(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                format!("{} KB", r.lr_kb),
                report::pct(r.lr_write_utilization),
                format!("{:.1}", r.demotions_per_kilo_write),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["LR size", "LR write util", "demotions/kWrite"],
        &rows,
    ));
    out.push('\n');

    out.push_str("(5) endurance (write-concentrated subset, 4e12-write cells):\n");
    let fmt_life = |y: f64| {
        if y.is_infinite() {
            "inf".to_owned()
        } else if y >= 1.0 {
            format!("{y:.1}y")
        } else if y * 365.25 >= 1.0 {
            format!("{:.1}d", y * 365.25)
        } else {
            format!("{:.1}h", y * 365.25 * 24.0)
        }
    };
    let rows: Vec<Vec<String>> = endurance(exec, plan)
        .into_iter()
        .map(|r| {
            let ratio = if r.stt_lifetime_years > 0.0 {
                r.c1_lr_lifetime_years / r.stt_lifetime_years
            } else {
                0.0
            };
            vec![
                r.workload,
                fmt_life(r.stt_lifetime_years),
                fmt_life(r.c1_lr_lifetime_years),
                fmt_life(r.c1_hr_lifetime_years),
                report::ratio(ratio),
                report::pct(r.lr_leveling_headroom),
                fmt_life(r.rotated_lr_lifetime_years),
                report::pct(r.rotated_lr_headroom),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "workload",
            "STT-base",
            "C1 LR",
            "C1 HR",
            "LR/base",
            "LR mean/max",
            "rotated LR",
            "rot mean/max",
        ],
        &rows,
    ));
    out.push_str(
        "(lifetimes extrapolate the simulated write rate as if sustained 24/7;\n\
         the relative columns are the architectural signal: concentrating the\n\
         WWS in the small LR array shortens its life vs. the uniform baseline,\n\
         the wear-leveling cost of the paper's energy/latency win; the two\n\
         right columns show LR wear-rotation recovering that headroom)\n",
    );
    out.push('\n');

    out.push_str("(6) warp scheduler: GTO vs. loose round-robin on C1:\n");
    let rows: Vec<Vec<String>> = scheduler(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                report::ratio(r.gto_ipc_ratio),
                format!("{:+.1}pp", r.l1_hit_delta_pp),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["workload", "IPC GTO/LRR", "L1 hit delta"],
        &rows,
    ));
    out.push('\n');

    out.push_str(&format!(
        "(7) early write termination ({}% savings) on C1, write-heavy subset:\n",
        (EWT_SAVINGS * 100.0) as u32
    ));
    let rows: Vec<Vec<String>> = ewt(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                r.workload,
                report::ratio(r.dynamic_power_ratio),
                report::ratio(r.ipc_ratio),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &["workload", "dyn power w/EWT", "IPC w/EWT"],
        &rows,
    ));
    out.push('\n');

    out.push_str("(8) refresh timing: slack ticks before the RC deadline (0 = paper):\n");
    let rows: Vec<Vec<String>> = refresh_timing(exec, plan)
        .into_iter()
        .map(|r| {
            vec![
                format!("slack {}", r.slack_ticks),
                r.refreshes.to_string(),
                report::pct(r.refresh_energy_share),
                r.lr_expirations.to_string(),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "policy",
            "LR refreshes",
            "refresh energy share",
            "expirations",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_config;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            scale: 0.05,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        }
    }

    #[test]
    fn parallel_search_costs_tag_energy() {
        let plan = tiny_plan();
        let w = suite::by_name("lud").expect("lud");
        use sttgpu_device::energy::EnergyEvent;
        let seq = run_config(
            c1_gpu_with(c1_two_part().with_search(SearchMode::Sequential)),
            &w,
            &plan,
        );
        let par = run_config(
            c1_gpu_with(c1_two_part().with_search(SearchMode::Parallel)),
            &w,
            &plan,
        );
        let seq_tag = seq.metrics.l2_energy.dynamic_nj_for(EnergyEvent::TagLookup);
        let par_tag = par.metrics.l2_energy.dynamic_nj_for(EnergyEvent::TagLookup);
        assert!(
            par_tag > seq_tag,
            "parallel probing must burn more tag energy ({par_tag} vs {seq_tag})"
        );
    }

    #[test]
    fn wear_rotation_extends_lr_lifetime() {
        let plan = RunPlan {
            scale: 0.2,
            max_cycles: 6_000_000,
            check: false,
            ..RunPlan::full()
        };
        let rows = endurance(&Executor::auto(), &plan);
        // Across the write-hot subset, rotation must improve leveling
        // headroom on the concentrated writers (where it matters).
        let improved = rows
            .iter()
            .filter(|r| r.rotated_lr_headroom > r.lr_leveling_headroom)
            .count();
        assert!(
            improved >= rows.len() - 1,
            "rotation should level most workloads: {rows:?}"
        );
    }

    #[test]
    fn lazy_refresh_beats_eager_refresh() {
        let plan = RunPlan {
            scale: 0.2,
            max_cycles: 6_000_000,
            check: false,
            ..RunPlan::full()
        };
        let rows = refresh_timing(&Executor::auto(), &plan);
        let lazy = rows.iter().find(|r| r.slack_ticks == 0).expect("slack 0");
        let eager = rows.iter().find(|r| r.slack_ticks == 12).expect("slack 12");
        assert!(
            eager.refreshes >= lazy.refreshes,
            "eager ({}) must refresh at least as often as lazy ({})",
            eager.refreshes,
            lazy.refreshes
        );
        assert_eq!(
            lazy.lr_expirations, 0,
            "no data loss under the paper policy"
        );
        assert_eq!(eager.lr_expirations, 0, "no data loss under eager policy");
    }

    #[test]
    fn ewt_cuts_dynamic_power_without_touching_ipc() {
        let plan = tiny_plan();
        let rows = ewt(&Executor::auto(), &plan);
        for r in &rows {
            assert!(
                r.dynamic_power_ratio < 1.0,
                "{}: EWT must save energy, ratio {}",
                r.workload,
                r.dynamic_power_ratio
            );
            assert!(
                (r.ipc_ratio - 1.0).abs() < 1e-9,
                "{}: EWT is energy-only, IPC ratio {}",
                r.workload,
                r.ipc_ratio
            );
        }
    }

    #[test]
    fn tiny_buffers_overflow_big_buffers_do_not() {
        let plan = tiny_plan();
        let rows = buffer_capacity(&Executor::auto(), &plan);
        let one = rows.iter().find(|r| r.blocks == 1).expect("1-block row");
        let twenty = rows.iter().find(|r| r.blocks == 20).expect("20-block row");
        assert!(
            one.overflow_writebacks >= twenty.overflow_writebacks,
            "smaller buffers cannot overflow less"
        );
    }
}
