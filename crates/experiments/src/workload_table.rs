//! Measured characterisation of the synthetic workload suite.
//!
//! The paper characterises its benchmarks in §4 before using them; this
//! artefact does the same for the synthetic suite, **measured** on the
//! baseline GPU rather than asserted from the generator parameters: per
//! workload, the behavioural region, baseline IPC, L1/L2 hit rates, the
//! write share of L2 traffic (the axis the paper's suite spans from ~0 %
//! to 63 %), and memory intensity. It doubles as a regression anchor: if a
//! workload drifts out of its intended region, this table shows it first.

use sttgpu_workloads::suite;

use crate::configs::L2Choice;
use crate::report;
use crate::runner::{Executor, RunPlan};

/// Measured characteristics of one workload on the baseline GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRow {
    /// Workload name.
    pub workload: String,
    /// Behavioural region index (1–4).
    pub region: usize,
    /// Number of kernels (grids).
    pub kernels: usize,
    /// Baseline IPC (thread instructions per cycle).
    pub ipc: f64,
    /// L1 read hit rate.
    pub l1_hit_rate: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// Write share of L2 accesses.
    pub l2_write_share: f64,
    /// L2 accesses per kilo-instruction.
    pub l2_apki: f64,
    /// DRAM reads per kilo-instruction.
    pub dram_rpki: f64,
}

/// Measures the whole suite on the SRAM baseline.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<WorkloadRow> {
    let workloads = suite::all();
    exec.map(&workloads, |w| {
        let out = exec.run(L2Choice::SramBaseline, w, plan);
        let m = &out.metrics;
        let kilo_instr = (m.instructions as f64 / 1000.0).max(1e-9);
        let l2 = &m.l2;
        WorkloadRow {
            workload: w.name.clone(),
            region: suite::region_of(&w.name).expect("suite workload").index(),
            kernels: w.kernels.len(),
            ipc: m.ipc(),
            l1_hit_rate: m.l1_hit_rate(),
            l2_hit_rate: l2.hit_rate(),
            l2_write_share: if l2.accesses() == 0 {
                0.0
            } else {
                (l2.write_hits + l2.write_misses) as f64 / l2.accesses() as f64
            },
            l2_apki: l2.accesses() as f64 / kilo_instr,
            dram_rpki: m.dram_reads as f64 / kilo_instr,
        }
    })
}

/// Renders the characterisation table.
pub fn render(rows: &[WorkloadRow]) -> String {
    let mut out = String::from("Workload characterisation (measured on the SRAM baseline GPU)\n");
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("[{}] {}", r.region, r.workload),
                r.kernels.to_string(),
                format!("{:.0}", r.ipc),
                report::pct(r.l1_hit_rate),
                report::pct(r.l2_hit_rate),
                report::pct(r.l2_write_share),
                format!("{:.1}", r.l2_apki),
                format!("{:.1}", r.dram_rpki),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "workload",
            "kernels",
            "IPC",
            "L1 hit",
            "L2 hit",
            "L2 wr share",
            "L2 APKI",
            "DRAM RPKI",
        ],
        &body,
    ));
    out
}

/// Renders the characterisation as CSV.
pub fn to_csv(rows: &[WorkloadRow]) -> String {
    report::csv(
        &[
            "workload",
            "region",
            "kernels",
            "ipc",
            "l1_hit_rate",
            "l2_hit_rate",
            "l2_write_share",
            "l2_apki",
            "dram_rpki",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.region.to_string(),
                    r.kernels.to_string(),
                    format!("{:.3}", r.ipc),
                    format!("{:.4}", r.l1_hit_rate),
                    format!("{:.4}", r.l2_hit_rate),
                    format!("{:.4}", r.l2_write_share),
                    format!("{:.3}", r.l2_apki),
                    format!("{:.3}", r.dram_rpki),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_measurements_match_intent() {
        let plan = RunPlan {
            scale: 0.08,
            max_cycles: 6_000_000,
            check: false,
            ..RunPlan::full()
        };
        let rows = compute(&Executor::auto(), &plan);
        assert_eq!(rows.len(), 16);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.workload == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        // The suite's write-share ordering: nw is the write-heaviest,
        // sad nearly write-free.
        assert!(
            get("nw").l2_write_share > 0.4,
            "nw {:?}",
            get("nw").l2_write_share
        );
        assert!(
            get("sad").l2_write_share < 0.1,
            "sad {:?}",
            get("sad").l2_write_share
        );
        // Cache-friendly bfs misses the baseline L2 hard.
        assert!(get("bfs").l2_hit_rate < 0.8);
        // Everything produced work.
        for r in &rows {
            assert!(r.ipc > 0.0, "{} idle", r.workload);
        }
    }
}
