//! Shared run machinery for all figures.

use sttgpu_core::{LlcModel, TwoPartStats};
use sttgpu_sim::{Gpu, GpuConfig, RunMetrics, Workload};
use sttgpu_stats::Histogram;
use sttgpu_workloads::suite;

use crate::configs::{gpu_config, L2Choice};

/// How an experiment run is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPlan {
    /// Workload scale factor (1.0 = reference scale; benches use less).
    pub scale: f64,
    /// Cycle budget per workload run.
    pub max_cycles: u64,
}

impl RunPlan {
    /// The reference plan used for paper-shape reproduction.
    pub fn full() -> Self {
        RunPlan {
            scale: 1.0,
            max_cycles: 6_000_000,
        }
    }

    /// A reduced plan for quick sanity runs and criterion benches.
    pub fn quick() -> Self {
        RunPlan {
            scale: 0.25,
            max_cycles: 2_000_000,
        }
    }

    /// A plan with a custom scale (cycle budget kept from `self`).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.scale = scale;
        self
    }
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan::full()
    }
}

/// Everything captured from one workload × configuration run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Top-level metrics (IPC, L2 stats, energy).
    pub metrics: RunMetrics,
    /// Two-part internals when the L2 was a [`TwoPartLlc`]
    /// (LR/HR hit breakdowns, migrations, refreshes...).
    ///
    /// [`TwoPartLlc`]: sttgpu_core::TwoPartLlc
    pub two_part: Option<TwoPartStats>,
    /// LR rewrite-interval histogram (two-part runs only).
    pub lr_rewrite_intervals: Option<Histogram>,
    /// HR rewrite-interval histogram (two-part runs only).
    pub hr_rewrite_intervals: Option<Histogram>,
    /// Cumulative per-(set, way) data-array write counts.
    pub write_matrix: Vec<Vec<u64>>,
}

/// Runs `workload` on a fully custom GPU configuration.
pub fn run_config(cfg: GpuConfig, workload: &Workload, plan: &RunPlan) -> RunOutput {
    let scaled = if (plan.scale - 1.0).abs() < 1e-9 {
        workload.clone()
    } else {
        suite::scaled(workload, plan.scale)
    };
    let mut gpu = Gpu::new(cfg);
    let metrics = gpu.run_workload(&scaled, plan.max_cycles);
    let llc = gpu.llc();
    let (two_part, lr_hist, hr_hist) = match llc.as_two_part() {
        Some(tp) => (
            Some(*tp.stats()),
            Some(tp.lr_rewrite_intervals().clone()),
            Some(tp.hr_rewrite_intervals().clone()),
        ),
        None => (None, None, None),
    };
    RunOutput {
        metrics,
        two_part,
        lr_rewrite_intervals: lr_hist,
        hr_rewrite_intervals: hr_hist,
        write_matrix: llc.write_count_matrix(),
    }
}

/// Runs `workload` on one of the five Table 2 configurations.
pub fn run(choice: L2Choice, workload: &Workload, plan: &RunPlan) -> RunOutput {
    run_config(gpu_config(choice), workload, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            scale: 0.05,
            max_cycles: 2_000_000,
        }
    }

    #[test]
    fn baseline_run_produces_metrics() {
        let w = suite::by_name("lud").expect("lud");
        let out = run(L2Choice::SramBaseline, &w, &tiny_plan());
        assert!(out.metrics.finished);
        assert!(out.metrics.ipc() > 0.0);
        assert!(out.two_part.is_none());
        assert!(!out.write_matrix.is_empty());
    }

    #[test]
    fn two_part_run_captures_internals() {
        let w = suite::by_name("nw").expect("nw");
        let out = run(L2Choice::TwoPartC1, &w, &tiny_plan());
        assert!(out.metrics.finished);
        let tp = out.two_part.expect("two-part stats");
        assert!(tp.demand_writes() > 0);
        assert!(out.lr_rewrite_intervals.is_some());
    }

    #[test]
    fn plans_scale_work() {
        let w = suite::by_name("gaussian").expect("gaussian");
        let small = run(L2Choice::SramBaseline, &w, &tiny_plan());
        let smaller = run(
            L2Choice::SramBaseline,
            &w,
            &RunPlan {
                scale: 0.02,
                max_cycles: 2_000_000,
            },
        );
        assert!(smaller.metrics.instructions < small.metrics.instructions);
    }
}
