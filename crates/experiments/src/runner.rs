//! Shared run machinery for all figures.
//!
//! Two layers:
//!
//! * the free functions [`run`] / [`run_config`] execute one simulation
//!   synchronously — the primitive everything reduces to;
//! * an [`Executor`] fans a batch of simulations across a scoped thread
//!   pool and **memoizes** the named-configuration runs, so one
//!   `repro all` invocation executes each unique
//!   `(L2Choice, workload, plan)` simulation exactly once even though
//!   several artefacts need the same run (fig3/fig8/workload-table all
//!   want the SRAM baseline suite, fig6/fig8/endurance all want C1).
//!
//! Results always come back in **input order**, so tables and CSVs are
//! byte-identical whether the executor runs with 1 job or 32.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sttgpu_core::{FaultConfig, LlcModel, LlcPolicy, TwoPartStats};
use sttgpu_device::energy::EnergyEvent;
use sttgpu_sim::{Gpu, GpuConfig, L2ModelConfig, RunMetrics, Workload};
use sttgpu_stats::Histogram;
use sttgpu_trace::{
    CheckConfig, CheckReport, Checker, EventSink, Trace, TraceEvent, ENERGY_CATEGORIES,
};
use sttgpu_workloads::suite;

use crate::configs::{gpu_config, L2Choice};
use crate::error::{panic_message, RunError};

/// Fault injection carried by a [`RunPlan`]: a uniform per-mechanism
/// error rate (see [`FaultConfig::uniform`]) applied to two-part L2
/// configurations, and the seed of the deterministic fault stream.
/// Monolithic baselines have no retention mechanism to fault and run
/// unchanged. Rate 0 keeps the fault plan disabled — byte-transparent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Uniform per-mechanism error rate in `[0, 1]`.
    pub rate: f64,
    /// Seed of the fault stream (independent of the workload seed).
    pub seed: u64,
}

impl FaultSpec {
    /// No fault injection.
    pub const NONE: FaultSpec = FaultSpec { rate: 0.0, seed: 0 };

    /// Whether this spec injects anything.
    pub fn is_enabled(&self) -> bool {
        self.rate > 0.0
    }
}

/// How an experiment run is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPlan {
    /// Workload scale factor (1.0 = reference scale; benches use less).
    pub scale: f64,
    /// Cycle budget per workload run.
    pub max_cycles: u64,
    /// Attach the runtime invariant checker to every simulation
    /// (`--check`): events stream through a [`Checker`] and the
    /// [`RunOutput::check`] report carries any violations.
    pub check: bool,
    /// Fault injection applied to two-part configurations (`--faults`).
    pub fault: FaultSpec,
    /// Runtime LLC policy applied to two-part configurations
    /// (`--llc-policy`). Monolithic baselines have no policy seams and
    /// run unchanged. [`LlcPolicy::Fixed`] (the default) is the
    /// paper-exact bundle and is byte-transparent.
    pub policy: LlcPolicy,
    /// Threads stepping the SMs inside each simulation (`--sim-threads`).
    /// Simulation output is byte-identical for every value (the parallel
    /// driver merges in canonical order — DESIGN.md §11); it still sits
    /// in the memo key, like [`FaultSpec`], so a cache hit always states
    /// exactly how the run was produced.
    pub sim_threads: u32,
    /// Per-attempt wall-clock watchdog (`--run-timeout`), seconds.
    /// `None` disables supervision. A timed-out attempt is retried with
    /// a salted seed exactly like a panicked one; if every attempt
    /// hangs the run reports [`RunError::Timeout`]. Deliberately **not**
    /// part of the memo/store key: a timeout can only abort a run,
    /// never change the bytes of one that completed.
    pub run_timeout_s: Option<u64>,
}

impl RunPlan {
    /// The reference plan used for paper-shape reproduction.
    pub fn full() -> Self {
        RunPlan {
            scale: 1.0,
            max_cycles: 6_000_000,
            check: false,
            fault: FaultSpec::NONE,
            policy: LlcPolicy::Fixed,
            sim_threads: 1,
            run_timeout_s: None,
        }
    }

    /// A reduced plan for quick sanity runs and criterion benches.
    pub fn quick() -> Self {
        RunPlan {
            scale: 0.25,
            max_cycles: 2_000_000,
            check: false,
            fault: FaultSpec::NONE,
            policy: LlcPolicy::Fixed,
            sim_threads: 1,
            run_timeout_s: None,
        }
    }

    /// A plan with a custom scale (cycle budget kept from `self`).
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.scale = scale;
        self
    }

    /// A plan with the invariant checker switched on or off.
    pub fn with_check(mut self, check: bool) -> Self {
        self.check = check;
        self
    }

    /// A plan with fault injection at `rate` under `seed`.
    pub fn with_faults(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate outside [0, 1]");
        self.fault = FaultSpec { rate, seed };
        self
    }

    /// A plan selecting the named runtime LLC policy for two-part runs.
    pub fn with_policy(mut self, policy: LlcPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// A plan stepping SMs with `threads` threads per simulation.
    pub fn with_sim_threads(mut self, threads: u32) -> Self {
        assert!(threads >= 1, "sim_threads must be at least 1");
        self.sim_threads = threads;
        self
    }

    /// A plan supervised by a per-attempt wall-clock watchdog.
    pub fn with_run_timeout(mut self, seconds: u64) -> Self {
        assert!(seconds >= 1, "run timeout must be at least 1s");
        self.run_timeout_s = Some(seconds);
        self
    }
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan::full()
    }
}

/// Everything captured from one workload × configuration run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Top-level metrics (IPC, L2 stats, energy).
    pub metrics: RunMetrics,
    /// Two-part internals when the L2 was a [`TwoPartLlc`]
    /// (LR/HR hit breakdowns, migrations, refreshes...).
    ///
    /// [`TwoPartLlc`]: sttgpu_core::TwoPartLlc
    pub two_part: Option<TwoPartStats>,
    /// LR rewrite-interval histogram (two-part runs only).
    pub lr_rewrite_intervals: Option<Histogram>,
    /// HR rewrite-interval histogram (two-part runs only).
    pub hr_rewrite_intervals: Option<Histogram>,
    /// Cumulative per-(set, way) data-array write counts.
    pub write_matrix: Vec<Vec<u64>>,
    /// Invariant-checker report when the plan ran with
    /// [`check`](RunPlan::check) set; `None` otherwise.
    pub check: Option<CheckReport>,
}

/// Builds the checker for `gpu`: retention thresholds from the two-part
/// geometry (monolithic L2s get the everything-disabled defaults) plus
/// timing slack covering the maintenance cadence and interconnect lag —
/// probes time-stamp at icnt arrival, up to one maintenance interval
/// (plus traversal latency and port queueing) after the retention
/// engines last ran.
fn checker_for(gpu: &Gpu) -> Checker {
    let base = match &gpu.config().l2 {
        L2ModelConfig::TwoPart(tp) => tp.check_config(),
        _ => CheckConfig::default(),
    };
    let interval = gpu.llc().maintenance_interval_ns();
    let slack = if interval == u64::MAX {
        0
    } else {
        interval + 4 * gpu.config().icnt_latency_ns + 2_000
    };
    Checker::new(base.with_slack_ns(slack))
}

/// Feeds the end-of-run conservation reports into `checker` and closes
/// the run, returning the accumulated report.
fn close_check(checker: &Arc<Mutex<Checker>>, metrics: &RunMetrics) -> CheckReport {
    let mut c = checker.lock().expect("checker poisoned");
    c.emit(&TraceEvent::MetricsReport {
        read_hits: metrics.l2.read_hits,
        read_misses: metrics.l2.read_misses,
        write_hits: metrics.l2.write_hits,
        write_misses: metrics.l2.write_misses,
        writebacks: metrics.l2.writebacks,
    });
    let mut by_category = [0.0; ENERGY_CATEGORIES];
    for ev in EnergyEvent::ALL {
        by_category[ev.index()] = metrics.l2_energy.dynamic_nj_for(ev);
    }
    c.emit(&TraceEvent::EnergyReport {
        by_category,
        total_nj: metrics.l2_energy.dynamic_nj(),
    });
    c.finish_run(metrics.finished);
    c.report()
}

/// Salt mixed into the workload and fault seeds on retry attempts, so a
/// retried run is deterministic yet decorrelated from the crashed one.
const RETRY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Maximum attempts [`try_run_config`] makes before reporting
/// [`RunError::Panicked`].
pub const MAX_RUN_ATTEMPTS: u32 = 3;

/// One simulation attempt. `attempt` 0 is the canonical run; retries
/// (attempt > 0) salt the workload and fault seeds deterministically.
fn run_config_once(
    mut cfg: GpuConfig,
    workload: &Workload,
    plan: &RunPlan,
    attempt: u32,
) -> RunOutput {
    // Watchdog test hook: pretend the named workload's simulation hung.
    // The sleep is bounded so an un-supervised test run still finishes.
    if std::env::var("STTGPU_RUN_HANG").is_ok_and(|v| v == workload.name) {
        std::thread::sleep(std::time::Duration::from_secs(60));
    }
    let mut scaled = if (plan.scale - 1.0).abs() < 1e-9 {
        workload.clone()
    } else {
        suite::scaled(workload, plan.scale)
    };
    if attempt > 0 {
        scaled.seed ^= u64::from(attempt).wrapping_mul(RETRY_SALT);
    }
    if let L2ModelConfig::TwoPart(tp) = &mut cfg.l2 {
        tp.policy = plan.policy;
        if plan.fault.is_enabled() {
            let seed = plan.fault.seed ^ u64::from(attempt).wrapping_mul(RETRY_SALT);
            tp.fault = FaultConfig::uniform(seed, plan.fault.rate);
        }
    }
    let mut gpu = Gpu::new(cfg);
    gpu.set_sim_threads(plan.sim_threads as usize);
    let checker = plan.check.then(|| {
        let checker = Arc::new(Mutex::new(checker_for(&gpu)));
        gpu.set_trace(Trace::to_sink(Arc::clone(&checker)));
        checker
    });
    let metrics = gpu.run_workload(&scaled, plan.max_cycles);
    let check = checker.map(|c| close_check(&c, &metrics));
    let llc = gpu.llc();
    let (two_part, lr_hist, hr_hist) = match llc.as_two_part() {
        Some(tp) => (
            Some(*tp.stats()),
            Some(tp.lr_rewrite_intervals().clone()),
            Some(tp.hr_rewrite_intervals().clone()),
        ),
        None => (None, None, None),
    };
    RunOutput {
        metrics,
        two_part,
        lr_rewrite_intervals: lr_hist,
        hr_rewrite_intervals: hr_hist,
        write_matrix: llc.write_count_matrix(),
        check,
    }
}

/// How one supervised simulation attempt ended.
enum AttemptOutcome {
    Done(Box<RunOutput>),
    Panicked(String),
    TimedOut,
}

/// Runs one attempt, supervised by the plan's watchdog when set.
///
/// With a timeout the simulation runs on a dedicated thread and the
/// supervisor waits on a channel with a deadline. On expiry the hung
/// thread is **abandoned**, not killed — Rust has no safe thread
/// cancellation — so it burns a core until the process exits; that is
/// the documented price of converting a wedged sweep into a typed,
/// quarantinable error. The retry path salts the seed, so a retried
/// attempt does not deterministically re-enter the same hang.
fn run_attempt(
    cfg: GpuConfig,
    workload: &Workload,
    plan: &RunPlan,
    attempt: u32,
) -> AttemptOutcome {
    let Some(secs) = plan.run_timeout_s else {
        return match catch_unwind(AssertUnwindSafe(|| {
            run_config_once(cfg, workload, plan, attempt)
        })) {
            Ok(out) => AttemptOutcome::Done(Box::new(out)),
            Err(payload) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
        };
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let w = workload.clone();
    let p = *plan;
    let spawned = std::thread::Builder::new()
        .name(format!("sim-{}-a{attempt}", w.name))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run_config_once(cfg, &w, &p, attempt)));
            // The supervisor may have given up and dropped the receiver.
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return AttemptOutcome::Panicked(format!("could not spawn run thread: {e}")),
    };
    match rx.recv_timeout(std::time::Duration::from_secs(secs)) {
        Ok(result) => {
            let _ = handle.join();
            match result {
                Ok(out) => AttemptOutcome::Done(Box::new(out)),
                Err(payload) => AttemptOutcome::Panicked(panic_message(payload.as_ref())),
            }
        }
        Err(_) => AttemptOutcome::TimedOut,
    }
}

/// Fallible [`run_config`]: catches a simulation panic (or a watchdog
/// expiry when the plan sets [`RunPlan::run_timeout_s`]), retries with
/// a deterministically salted seed up to [`MAX_RUN_ATTEMPTS`] times,
/// and reports [`RunError::Panicked`] / [`RunError::Timeout`] if every
/// attempt failed. Panic isolation means one poisoned run cannot abort
/// a whole sweep.
pub fn try_run_config(
    cfg: GpuConfig,
    workload: &Workload,
    plan: &RunPlan,
) -> Result<RunOutput, RunError> {
    let mut last = String::new();
    let mut last_timed_out = false;
    for attempt in 0..MAX_RUN_ATTEMPTS {
        match run_attempt(cfg.clone(), workload, plan, attempt) {
            AttemptOutcome::Done(out) => return Ok(*out),
            AttemptOutcome::Panicked(what) => {
                last = what;
                last_timed_out = false;
            }
            AttemptOutcome::TimedOut => last_timed_out = true,
        }
    }
    if last_timed_out {
        Err(RunError::Timeout {
            attempts: MAX_RUN_ATTEMPTS,
            seconds: plan.run_timeout_s.unwrap_or(0),
        })
    } else {
        Err(RunError::Panicked {
            attempts: MAX_RUN_ATTEMPTS,
            what: last,
        })
    }
}

/// Fallible [`run`], with the same retry/isolation semantics as
/// [`try_run_config`].
pub fn try_run(
    choice: L2Choice,
    workload: &Workload,
    plan: &RunPlan,
) -> Result<RunOutput, RunError> {
    try_run_config(gpu_config(choice), workload, plan)
}

/// Runs `workload` on a fully custom GPU configuration.
///
/// # Panics
///
/// Panics if the simulation itself panics on every retry; use
/// [`try_run_config`] where a sweep must survive a poisoned run.
pub fn run_config(cfg: GpuConfig, workload: &Workload, plan: &RunPlan) -> RunOutput {
    match try_run_config(cfg, workload, plan) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Runs `workload` on one of the five Table 2 configurations.
///
/// # Panics
///
/// Same contract as [`run_config`].
pub fn run(choice: L2Choice, workload: &Workload, plan: &RunPlan) -> RunOutput {
    run_config(gpu_config(choice), workload, plan)
}

/// Memoization key of one named-configuration run. `RunPlan` holds `f64`
/// scale/rate fields, so the key stores their bit patterns (plans are
/// constructed, not computed, so bit equality is the right notion here).
type RunKey = (
    L2Choice,
    String,
    u64,
    u64,
    bool,
    u64,
    u64,
    &'static str,
    u32,
);

fn run_key(choice: L2Choice, workload: &Workload, plan: &RunPlan) -> RunKey {
    (
        choice,
        workload.name.clone(),
        plan.scale.to_bits(),
        plan.max_cycles,
        plan.check,
        plan.fault.rate.to_bits(),
        plan.fault.seed,
        plan.policy.name(),
        plan.sim_threads,
    )
}

/// Counters describing what an [`Executor`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Simulations physically executed (cache misses + uncached runs).
    pub runs_executed: u64,
    /// Requests served from the memoization cache without simulating.
    pub cache_hits: u64,
    /// Requests served from the persistent result store without
    /// simulating (0 when no store is attached).
    pub store_hits: u64,
    /// Total simulated GPU cycles across executed runs.
    pub cycles_simulated: u64,
    /// Invariant violations across every checked run (0 when the plans
    /// ran without [`RunPlan::check`]).
    pub violations: u64,
}

/// A parallel, memoizing experiment runner.
///
/// [`map`](Executor::map) fans independent work items across a scoped
/// thread pool ([`std::thread::scope`], no detached threads, no unsafe)
/// and returns results in input order. [`run`](Executor::run) memoizes
/// named-configuration simulations under a `(L2Choice, workload name,
/// plan)` key shared by every artefact holding the same executor;
/// concurrent requests for the same key block on a [`OnceLock`] so each
/// unique simulation executes exactly once.
#[derive(Debug, Default)]
pub struct Executor {
    jobs: usize,
    cache: Mutex<HashMap<RunKey, Arc<OnceLock<Arc<RunOutput>>>>>,
    scenario_cache: crate::replay::ScenarioCache,
    store: Option<Arc<crate::persist::ResultStore>>,
    runs_executed: AtomicU64,
    cache_hits: AtomicU64,
    store_hits: AtomicU64,
    cycles_simulated: AtomicU64,
    violations: AtomicU64,
    violation_samples: Mutex<Vec<String>>,
}

impl Executor {
    /// Creates an executor with `jobs` worker threads (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Executor {
            jobs: jobs.max(1),
            ..Executor::default()
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Executor::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A single-threaded executor (still memoizes).
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches a persistent result store: from now on every memoized
    /// run is looked up there before simulating and written back after,
    /// so a warm store makes repeat invocations execute zero
    /// simulations. Uncached [`run_config`](Executor::run_config) sweeps
    /// participate too, keyed by the configuration's full rendering.
    pub fn set_store(&mut self, store: Arc<crate::persist::ResultStore>) {
        self.store = Some(store);
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Arc<crate::persist::ResultStore>> {
        self.store.as_ref()
    }

    /// The scenario memo cache (see
    /// [`run_scenario`](Executor::run_scenario)).
    pub(crate) fn scenario_cache(&self) -> &crate::replay::ScenarioCache {
        &self.scenario_cache
    }

    /// Snapshot of the run/cache counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            runs_executed: self.runs_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            cycles_simulated: self.cycles_simulated.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
        }
    }

    /// The first few violation descriptions accumulated across checked
    /// runs (capped; empty when every run was clean).
    pub fn violation_samples(&self) -> Vec<String> {
        self.violation_samples
            .lock()
            .expect("executor samples poisoned")
            .clone()
    }

    fn record_run(&self, out: &RunOutput) {
        self.runs_executed.fetch_add(1, Ordering::Relaxed);
        self.cycles_simulated
            .fetch_add(out.metrics.cycles, Ordering::Relaxed);
        self.record_violations(out);
    }

    /// Accounts a result served from the persistent store: counted as a
    /// store hit, not an executed run (no cycles were simulated), but
    /// its checker report still feeds the violation summary — a stored
    /// dirty run must stay as loud as a fresh one.
    fn record_loaded(&self, out: &RunOutput) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
        self.record_violations(out);
    }

    fn record_violations(&self, out: &RunOutput) {
        if let Some(check) = &out.check {
            if !check.is_clean() {
                self.violations
                    .fetch_add(check.violations, Ordering::Relaxed);
                let mut samples = self
                    .violation_samples
                    .lock()
                    .expect("executor samples poisoned");
                for s in &check.samples {
                    if samples.len() >= 32 {
                        break;
                    }
                    samples.push(s.clone());
                }
            }
        }
    }

    /// Applies `f` to every item, fanning the calls across the worker
    /// pool. Results are returned in input order regardless of which
    /// thread finished first, so downstream rendering is deterministic.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-index panic from `f` — but only after every
    /// other item has run to completion, so one poisoned item never
    /// strands the rest of the batch mid-flight.
    pub fn map<I, R, F>(&self, items: &[I], f: F) -> Vec<R>
    where
        I: Sync,
        R: Send,
        F: Fn(&I) -> R + Sync,
    {
        type Caught<R> = Result<R, Box<dyn std::any::Any + Send>>;
        let n = items.len();
        let workers = self.jobs.min(n);
        let tagged: Vec<(usize, Caught<R>)> = if workers <= 1 {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| (i, catch_unwind(AssertUnwindSafe(|| f(item)))))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            // Each worker tags results with their input index; no locks on
            // the hot path. Panics from `f` are caught per item, so every
            // worker drains the queue even when some items crash.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, catch_unwind(AssertUnwindSafe(|| f(&items[i])))));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("executor worker panicked"))
                    .collect()
            })
        };
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for (i, r) in tagged {
            match r {
                Ok(v) => slots[i] = Some(v),
                Err(p) => match &first_panic {
                    Some((j, _)) if *j <= i => {}
                    _ => first_panic = Some((i, p)),
                },
            }
        }
        if let Some((_, p)) = first_panic {
            resume_unwind(p);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index visited exactly once"))
            .collect()
    }

    /// Memoized [`run`]: the first request for a `(choice, workload,
    /// plan)` key simulates; every later request — from any artefact or
    /// thread sharing this executor — returns the cached output.
    pub fn run(&self, choice: L2Choice, workload: &Workload, plan: &RunPlan) -> Arc<RunOutput> {
        let cell = {
            let mut cache = self.cache.lock().expect("executor cache poisoned");
            Arc::clone(
                cache
                    .entry(run_key(choice, workload, plan))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut fresh = false;
        let out = Arc::clone(cell.get_or_init(|| {
            fresh = true;
            if let Some(store) = &self.store {
                let key = crate::persist::run_store_key(choice, &workload.name, plan);
                if let Some(loaded) = store.load(&key) {
                    let out = Arc::new(loaded);
                    self.record_loaded(&out);
                    return out;
                }
                let out = Arc::new(run(choice, workload, plan));
                self.record_run(&out);
                store.save(&key, &out);
                return out;
            }
            let out = Arc::new(run(choice, workload, plan));
            self.record_run(&out);
            out
        }));
        if !fresh {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// [`run_config`] for sweeps over ad-hoc configurations
    /// (threshold/associativity/retention ablations). Counted in
    /// [`stats`](Executor::stats) but never memoized in memory:
    /// arbitrary `GpuConfig`s have no compact identity to key on.
    /// With a store attached they *are* persisted, keyed by the
    /// configuration's full rendering (see
    /// [`config_store_key`](crate::persist::config_store_key)), so warm
    /// ablation sweeps also skip simulation.
    pub fn run_config(
        &self,
        cfg: GpuConfig,
        workload: &Workload,
        plan: &RunPlan,
    ) -> Arc<RunOutput> {
        if let Some(store) = &self.store {
            let key = crate::persist::config_store_key(&cfg, &workload.name, plan);
            if let Some(loaded) = store.load(&key) {
                let out = Arc::new(loaded);
                self.record_loaded(&out);
                return out;
            }
            let out = Arc::new(run_config(cfg, workload, plan));
            self.record_run(&out);
            store.save(&key, &out);
            return out;
        }
        let out = Arc::new(run_config(cfg, workload, plan));
        self.record_run(&out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            scale: 0.05,
            max_cycles: 2_000_000,
            ..RunPlan::full()
        }
    }

    #[test]
    fn baseline_run_produces_metrics() {
        let w = suite::by_name("lud").expect("lud");
        let out = run(L2Choice::SramBaseline, &w, &tiny_plan());
        assert!(out.metrics.finished);
        assert!(out.metrics.ipc() > 0.0);
        assert!(out.two_part.is_none());
        assert!(!out.write_matrix.is_empty());
    }

    #[test]
    fn two_part_run_captures_internals() {
        let w = suite::by_name("nw").expect("nw");
        let out = run(L2Choice::TwoPartC1, &w, &tiny_plan());
        assert!(out.metrics.finished);
        let tp = out.two_part.expect("two-part stats");
        assert!(tp.demand_writes() > 0);
        assert!(out.lr_rewrite_intervals.is_some());
    }

    #[test]
    fn map_preserves_input_order() {
        let exec = Executor::new(4);
        let items: Vec<u64> = (0..37).collect();
        let out = exec.map(&items, |&i| i * i);
        assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_one_item_or_one_job_runs_inline() {
        assert_eq!(Executor::sequential().map(&[5], |&x: &i32| x + 1), vec![6]);
        assert_eq!(Executor::new(8).map(&[5], |&x: &i32| x + 1), vec![6]);
        let empty: Vec<i32> = Vec::new();
        assert!(Executor::new(8).map(&empty, |&x: &i32| x).is_empty());
    }

    #[test]
    fn run_is_memoized_per_key() {
        let exec = Executor::new(2);
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let a = exec.run(L2Choice::SramBaseline, &w, &plan);
        let b = exec.run(L2Choice::SramBaseline, &w, &plan);
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        let s = exec.stats();
        assert_eq!(s.runs_executed, 1);
        assert_eq!(s.cache_hits, 1);
        assert!(s.cycles_simulated > 0);

        // A different plan (or choice, or workload) is a different key.
        let other = RunPlan {
            scale: 0.04,
            max_cycles: 2_000_000,
            ..RunPlan::full()
        };
        let c = exec.run(L2Choice::SramBaseline, &w, &other);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(exec.stats().runs_executed, 2);
    }

    #[test]
    fn concurrent_requests_for_one_key_simulate_once() {
        let exec = Executor::new(4);
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let outs = exec.map(&[(); 8], |_| exec.run(L2Choice::SramBaseline, &w, &plan));
        for o in &outs[1..] {
            assert!(Arc::ptr_eq(&outs[0], o));
        }
        let s = exec.stats();
        assert_eq!(s.runs_executed, 1, "one simulation for eight requests");
        assert_eq!(s.cache_hits, 7);
    }

    #[test]
    fn parallel_and_sequential_runs_agree_exactly() {
        let w = suite::by_name("nw").expect("nw");
        let plan = tiny_plan();
        let seq = run(L2Choice::TwoPartC1, &w, &plan);
        let par = Executor::new(4).map(&[(); 3], |_| run(L2Choice::TwoPartC1, &w, &plan));
        for p in &par {
            assert_eq!(p.metrics, seq.metrics);
            assert_eq!(p.two_part, seq.two_part);
            assert_eq!(p.write_matrix, seq.write_matrix);
        }
    }

    #[test]
    fn plans_scale_work() {
        let w = suite::by_name("gaussian").expect("gaussian");
        let small = run(L2Choice::SramBaseline, &w, &tiny_plan());
        let smaller = run(
            L2Choice::SramBaseline,
            &w,
            &RunPlan {
                scale: 0.02,
                max_cycles: 2_000_000,
                ..RunPlan::full()
            },
        );
        assert!(smaller.metrics.instructions < small.metrics.instructions);
    }

    #[test]
    fn map_isolates_panicking_items_until_the_batch_completes() {
        use std::sync::atomic::AtomicU32;
        let exec = Executor::new(4);
        let items: Vec<u32> = (0..16).collect();
        let completed = AtomicU32::new(0);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.map(&items, |&i| {
                if i == 3 {
                    panic!("poisoned item {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        std::panic::set_hook(hook);
        let payload = result.expect_err("the poisoned item's panic must re-raise");
        assert_eq!(
            crate::error::panic_message(payload.as_ref()),
            "poisoned item 3"
        );
        assert_eq!(
            completed.load(Ordering::Relaxed),
            15,
            "every healthy item runs to completion first"
        );
    }

    #[test]
    fn try_run_succeeds_on_healthy_runs() {
        let w = suite::by_name("lud").expect("lud");
        let out = try_run(L2Choice::SramBaseline, &w, &tiny_plan()).expect("healthy run");
        assert!(out.metrics.finished);
    }

    #[test]
    fn watchdog_leaves_healthy_runs_untouched() {
        let w = suite::by_name("lud").expect("lud");
        let plain = try_run(L2Choice::SramBaseline, &w, &tiny_plan()).expect("plain");
        let watched = try_run(
            L2Choice::SramBaseline,
            &w,
            &tiny_plan().with_run_timeout(600),
        )
        .expect("watched");
        assert_eq!(plain.metrics, watched.metrics);
        assert_eq!(plain.write_matrix, watched.write_matrix);
    }

    #[test]
    fn watchdog_converts_hangs_into_a_typed_timeout() {
        // The hang hook matches on the workload *name*, so a renamed
        // clone keeps the hook from touching any other test's runs.
        let mut w = suite::by_name("lud").expect("lud");
        w.name = "hang-probe".into();
        std::env::set_var("STTGPU_RUN_HANG", "hang-probe");
        let err = try_run(L2Choice::SramBaseline, &w, &tiny_plan().with_run_timeout(1))
            .expect_err("hung run must not succeed");
        std::env::remove_var("STTGPU_RUN_HANG");
        assert_eq!(
            err,
            RunError::Timeout {
                attempts: MAX_RUN_ATTEMPTS,
                seconds: 1
            }
        );
    }

    #[test]
    fn executor_serves_warm_runs_from_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "sttgpu-exec-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(crate::persist::ResultStore::open(&dir).expect("open store"));
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();

        let mut cold = Executor::new(1);
        cold.set_store(Arc::clone(&store));
        let a = cold.run(L2Choice::SramBaseline, &w, &plan);
        let ac = cold.run_config(gpu_config(L2Choice::TwoPartC1), &w, &plan);
        let s = cold.stats();
        assert_eq!((s.runs_executed, s.store_hits), (2, 0));

        // A fresh executor sharing the store simulates nothing.
        let mut warm = Executor::new(1);
        warm.set_store(Arc::clone(&store));
        let b = warm.run(L2Choice::SramBaseline, &w, &plan);
        let bc = warm.run_config(gpu_config(L2Choice::TwoPartC1), &w, &plan);
        let s = warm.stats();
        assert_eq!((s.runs_executed, s.store_hits), (0, 2));
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.write_matrix, b.write_matrix);
        assert_eq!(ac.metrics, bc.metrics);
        assert_eq!(ac.two_part, bc.two_part);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_spec_changes_the_memo_key() {
        let exec = Executor::new(1);
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let a = exec.run(L2Choice::TwoPartC1, &w, &plan);
        let b = exec.run(L2Choice::TwoPartC1, &w, &plan.with_faults(1e-4, 9));
        assert!(
            !Arc::ptr_eq(&a, &b),
            "faulted plan must not hit the clean cache"
        );
        assert_eq!(exec.stats().runs_executed, 2);
    }

    #[test]
    fn policy_changes_the_memo_key() {
        let exec = Executor::new(1);
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let a = exec.run(L2Choice::TwoPartC1, &w, &plan);
        let b = exec.run(
            L2Choice::TwoPartC1,
            &w,
            &plan.with_policy(LlcPolicy::AdaptiveRetention),
        );
        assert!(
            !Arc::ptr_eq(&a, &b),
            "adaptive plan must not hit the fixed-policy cache"
        );
        assert_eq!(exec.stats().runs_executed, 2);
    }

    #[test]
    fn explicit_fixed_policy_plan_is_byte_transparent() {
        let w = suite::by_name("nw").expect("nw");
        let plan = tiny_plan();
        let default_run = run(L2Choice::TwoPartC1, &w, &plan);
        let fixed = run(L2Choice::TwoPartC1, &w, &plan.with_policy(LlcPolicy::Fixed));
        assert_eq!(default_run.metrics, fixed.metrics);
        assert_eq!(default_run.two_part, fixed.two_part);
        assert_eq!(default_run.write_matrix, fixed.write_matrix);
    }

    #[test]
    fn zero_rate_fault_spec_is_byte_transparent() {
        let w = suite::by_name("nw").expect("nw");
        let plan = tiny_plan();
        let clean = run(L2Choice::TwoPartC1, &w, &plan);
        let zeroed = run(L2Choice::TwoPartC1, &w, &plan.with_faults(0.0, 1234));
        assert_eq!(clean.metrics, zeroed.metrics);
        assert_eq!(clean.two_part, zeroed.two_part);
        assert_eq!(clean.write_matrix, zeroed.write_matrix);
    }

    #[test]
    fn faulted_runs_stay_deterministic_and_counted() {
        let w = suite::by_name("nw").expect("nw");
        let plan = tiny_plan().with_faults(5e-4, 7).with_check(true);
        let a = run(L2Choice::TwoPartC1, &w, &plan);
        let b = run(L2Choice::TwoPartC1, &w, &plan);
        assert_eq!(a.metrics, b.metrics, "fault stream must be replayable");
        assert_eq!(a.two_part, b.two_part);
        let tp = a.two_part.expect("two-part stats");
        assert!(
            tp.ecc_corrections + tp.ecc_uncorrectable + tp.refresh_drops + tp.buffer_stalls > 0,
            "a nonzero rate must actually inject"
        );
        let report = a.check.expect("checker attached");
        assert!(report.is_clean(), "checker must stay green under injection");
    }
}
