//! Typed errors for the experiment harness.
//!
//! The simulation core is assertion-heavy by design — the invariant
//! checker and `debug_assert`s are how it earns trust — but the harness
//! boundary (CLI parsing, artefact execution, file IO) must not abort a
//! whole sweep because one run misbehaved. [`RunError`] is the carrier:
//! [`try_run_config`](crate::runner::try_run_config) catches panics and
//! converts them, the `repro` binary quarantines artefacts that fail all
//! retries, and IO/argument problems surface as structured variants
//! instead of `expect` aborts.

use std::fmt;

/// Why an experiment run (or an artefact wrapping several runs) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The simulation panicked on every attempt; `what` is the final
    /// panic payload.
    Panicked {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last panic message observed.
        what: String,
    },
    /// A workload name did not resolve against the suite.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        what: String,
    },
    /// A configuration or argument was rejected before simulating.
    InvalidConfig {
        /// Human-readable description of the rejection.
        what: String,
    },
    /// Every attempt exceeded the wall-clock watchdog
    /// (`--run-timeout`). The hung simulation threads were abandoned;
    /// the artefact is quarantined like a panicking one.
    Timeout {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The per-attempt budget that was exceeded, seconds.
        seconds: u64,
    },
    /// A `--resume` journal was written by an incompatible invocation
    /// (different format version, run plan, or store generation), so
    /// its completion records cannot be trusted.
    JournalMismatch {
        /// Which header field disagreed, and how.
        what: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panicked { attempts, what } => {
                write!(f, "run panicked on all {attempts} attempts: {what}")
            }
            RunError::UnknownWorkload { name } => write!(f, "unknown workload '{name}'"),
            RunError::Io { path, what } => write!(f, "io error on {path}: {what}"),
            RunError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            RunError::Timeout { attempts, seconds } => {
                write!(
                    f,
                    "run exceeded the {seconds}s watchdog on all {attempts} attempts"
                )
            }
            RunError::JournalMismatch { what } => {
                write!(f, "resume journal mismatch: {what}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Wraps a [`std::io::Error`] with the path it struck.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> Self {
        RunError::Io {
            path: path.into(),
            what: err.to_string(),
        }
    }
}

/// Renders a caught panic payload (`&str` or `String`, the two shapes
/// `panic!` produces) into a displayable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases = [
            (
                RunError::Panicked {
                    attempts: 3,
                    what: "boom".into(),
                },
                "panicked on all 3 attempts: boom",
            ),
            (
                RunError::UnknownWorkload {
                    name: "nope".into(),
                },
                "unknown workload 'nope'",
            ),
            (
                RunError::Io {
                    path: "/tmp/x".into(),
                    what: "denied".into(),
                },
                "io error on /tmp/x: denied",
            ),
            (
                RunError::InvalidConfig { what: "bad".into() },
                "invalid configuration: bad",
            ),
            (
                RunError::Timeout {
                    attempts: 3,
                    seconds: 30,
                },
                "exceeded the 30s watchdog on all 3 attempts",
            ),
            (
                RunError::JournalMismatch {
                    what: "store_gen 1 != 2".into(),
                },
                "resume journal mismatch: store_gen 1 != 2",
            ),
        ];
        for (err, fragment) in cases {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment}"
            );
        }
    }

    #[test]
    fn panic_payloads_render() {
        let p = std::panic::catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static message");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }
}
