//! The five evaluated GPU configurations (paper Table 2).
//!
//! All five share the baseline GPU model (15 SMs, 16 KB L1D, 48 KB shared
//! memory, 6 MCs, 40 nm) and differ in the L2 and the register file:
//!
//! * **SRAM baseline** — 384 KB 8-way SRAM L2, 32 K registers/SM;
//! * **STT-RAM baseline** — same area spent on a 4×-denser conventional
//!   STT-RAM: 1536 KB 8-way, 10-year retention, 32 K registers/SM;
//! * **C1** — same area on the proposed two-part L2: 1344 KB 7-way HR +
//!   192 KB 2-way LR;
//! * **C2** — a same-*size* (384 KB) two-part L2 (336 KB HR + 48 KB LR);
//!   the area saved relative to the SRAM L2 buys a larger register file;
//! * **C3** — the compromise: double-size L2 (672 KB HR + 96 KB LR) plus
//!   a register file between the baseline's and C2's.
//!
//! The OCR of the paper's Table 2 garbles the C2/C3 register counts, so
//! they are **derived** from the same area arithmetic the paper describes
//! (STT-RAM 4× denser; saved SRAM-equivalent area converted to 32-bit
//! registers spread over 15 SMs) — see [`registers_per_sm_with_saved_area`].

use sttgpu_core::TwoPartConfig;
use sttgpu_sim::{GpuConfig, L2ModelConfig};

/// SRAM-equivalent KB of the baseline L2 data array.
pub const BASELINE_L2_KB: u64 = 384;

/// Baseline registers per SM (32 K 32-bit registers).
pub const BASELINE_REGISTERS_PER_SM: u32 = 32 * 1024;

/// One of the five evaluated configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Choice {
    /// The SRAM baseline GPU.
    SramBaseline,
    /// The conventional (10-year) STT-RAM baseline with 4x capacity.
    SttBaseline,
    /// C1: two-part L2 at 4x capacity, baseline register file.
    TwoPartC1,
    /// C2: two-part L2 at 1x capacity, enlarged register file.
    TwoPartC2,
    /// C3: two-part L2 at 2x capacity, moderately enlarged register file.
    TwoPartC3,
}

impl L2Choice {
    /// All five configurations in the paper's presentation order.
    pub const ALL: [L2Choice; 5] = [
        L2Choice::SramBaseline,
        L2Choice::SttBaseline,
        L2Choice::TwoPartC1,
        L2Choice::TwoPartC2,
        L2Choice::TwoPartC3,
    ];

    /// Short label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            L2Choice::SramBaseline => "baseline",
            L2Choice::SttBaseline => "STT-RAM",
            L2Choice::TwoPartC1 => "C1",
            L2Choice::TwoPartC2 => "C2",
            L2Choice::TwoPartC3 => "C3",
        }
    }

    /// Total L2 STT-RAM capacity of this configuration in KB (0 for the
    /// SRAM baseline).
    pub fn stt_kb(self) -> u64 {
        match self {
            L2Choice::SramBaseline => 0,
            L2Choice::SttBaseline | L2Choice::TwoPartC1 => 1536,
            L2Choice::TwoPartC2 => 384,
            L2Choice::TwoPartC3 => 768,
        }
    }
}

/// Registers per SM after converting the SRAM area saved by an `stt_kb`
/// STT-RAM L2 (4× denser, so it occupies `stt_kb / 4` SRAM-equivalent KB)
/// into 32-bit registers spread over `sms` SMs, rounded down to a 256-
/// register allocation granule.
pub fn registers_per_sm_with_saved_area(stt_kb: u64, sms: u64) -> u32 {
    let sram_equiv_kb = stt_kb / 4;
    let saved_kb = BASELINE_L2_KB.saturating_sub(sram_equiv_kb);
    let extra_regs = saved_kb * 1024 / 4 / sms;
    let extra_rounded = (extra_regs / 256 * 256) as u32;
    BASELINE_REGISTERS_PER_SM + extra_rounded
}

/// The two-part geometry of a configuration (LR KB, HR KB).
pub fn two_part_geometry(choice: L2Choice) -> Option<(u64, u64)> {
    match choice {
        L2Choice::TwoPartC1 => Some((192, 1344)),
        L2Choice::TwoPartC2 => Some((48, 336)),
        L2Choice::TwoPartC3 => Some((96, 672)),
        _ => None,
    }
}

/// The [`TwoPartConfig`] of a two-part configuration.
pub fn two_part_config(choice: L2Choice) -> Option<TwoPartConfig> {
    two_part_geometry(choice).map(|(lr, hr)| TwoPartConfig::new(lr, 2, hr, 7, 256))
}

/// Builds the full GPU configuration for one of the five design points.
///
/// # Example
///
/// ```
/// use sttgpu_experiments::configs::{gpu_config, L2Choice};
///
/// let c2 = gpu_config(L2Choice::TwoPartC2);
/// let base = gpu_config(L2Choice::SramBaseline);
/// assert!(c2.registers_per_sm > base.registers_per_sm);
/// assert_eq!(c2.l2.capacity_kb(), 384);
/// ```
pub fn gpu_config(choice: L2Choice) -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    match choice {
        L2Choice::SramBaseline => {
            // gtx480() already is the SRAM baseline.
        }
        L2Choice::SttBaseline => {
            cfg.l2 = L2ModelConfig::SttRam {
                kb: 1536,
                ways: 8,
                banks: 6,
                retention_years: 10.0,
            };
        }
        L2Choice::TwoPartC1 | L2Choice::TwoPartC2 | L2Choice::TwoPartC3 => {
            let tp = two_part_config(choice).expect("two-part choice");
            cfg.l2 = L2ModelConfig::TwoPart(tp);
            if choice != L2Choice::TwoPartC1 {
                cfg.registers_per_sm =
                    registers_per_sm_with_saved_area(choice.stt_kb(), cfg.num_sms as u64);
            }
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_derivation() {
        // C2: 384 KB STT occupies 96 KB SRAM-equivalent, saving 288 KB
        // -> 4915 regs/SM -> 4864 after granule rounding.
        assert_eq!(registers_per_sm_with_saved_area(384, 15), 32_768 + 4_864);
        // C3: 768 KB STT -> 192 KB saved -> 3276 -> 3072.
        assert_eq!(registers_per_sm_with_saved_area(768, 15), 32_768 + 3_072);
        // C1/STT baseline: no area saved.
        assert_eq!(registers_per_sm_with_saved_area(1536, 15), 32_768);
    }

    #[test]
    fn capacities_match_table2() {
        assert_eq!(gpu_config(L2Choice::SramBaseline).l2.capacity_kb(), 384);
        assert_eq!(gpu_config(L2Choice::SttBaseline).l2.capacity_kb(), 1536);
        assert_eq!(gpu_config(L2Choice::TwoPartC1).l2.capacity_kb(), 1536);
        assert_eq!(gpu_config(L2Choice::TwoPartC2).l2.capacity_kb(), 384);
        assert_eq!(gpu_config(L2Choice::TwoPartC3).l2.capacity_kb(), 768);
    }

    #[test]
    fn register_files_ordered_base_le_c3_le_c2() {
        let base = gpu_config(L2Choice::SramBaseline).registers_per_sm;
        let c1 = gpu_config(L2Choice::TwoPartC1).registers_per_sm;
        let c2 = gpu_config(L2Choice::TwoPartC2).registers_per_sm;
        let c3 = gpu_config(L2Choice::TwoPartC3).registers_per_sm;
        assert_eq!(base, c1, "C1 spends all area on cache");
        assert!(c3 > base);
        assert!(c2 > c3, "C2 saves more area than C3");
    }

    #[test]
    fn two_part_geometries() {
        assert_eq!(two_part_geometry(L2Choice::TwoPartC1), Some((192, 1344)));
        assert_eq!(two_part_geometry(L2Choice::TwoPartC2), Some((48, 336)));
        assert_eq!(two_part_geometry(L2Choice::TwoPartC3), Some((96, 672)));
        assert_eq!(two_part_geometry(L2Choice::SramBaseline), None);
        // LR is an eighth of HR in every design, and the paper's 7+2 way split.
        for choice in [
            L2Choice::TwoPartC1,
            L2Choice::TwoPartC2,
            L2Choice::TwoPartC3,
        ] {
            let cfg = two_part_config(choice).expect("geometry");
            assert_eq!(cfg.lr_ways, 2);
            assert_eq!(cfg.hr_ways, 7);
            assert_eq!(cfg.hr_kb / cfg.lr_kb, 7);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            L2Choice::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn all_configs_build() {
        for choice in L2Choice::ALL {
            let cfg = gpu_config(choice);
            let _ = cfg.l2.build(cfg.l2_line_bytes);
        }
    }
}
