//! Fault ablation: injected error rate vs. performance, energy and data
//! loss on the two-part C1 configuration.
//!
//! The retention-backed LLC trades cell stability for write energy, so
//! the natural robustness question is how gracefully the design degrades
//! when the retention gamble misses: early bit flips (caught or not by
//! the per-line SECDED), dropped refreshes, stalled swap buffers and
//! transient bank faults. This sweep drives the deterministic
//! [`FaultPlan`](sttgpu_core::FaultPlan) across a rate ladder and reports
//! the IPC, ECC activity and architectural data loss at each point; rate
//! 0 is byte-identical to the clean C1 run and anchors the normalisation.

use sttgpu_device::energy::EnergyEvent;
use sttgpu_workloads::suite;

use crate::configs::L2Choice;
use crate::report;
use crate::runner::{Executor, RunPlan};

/// One point of the fault-rate ladder, aggregated over the subset.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Injected per-mechanism error rate.
    pub rate: f64,
    /// Geometric-mean IPC normalised to the rate-0 run.
    pub ipc_norm: f64,
    /// Single-bit errors corrected by SECDED across the subset.
    pub ecc_corrections: u64,
    /// Uncorrectable errors (line dropped, access missed).
    pub ecc_uncorrectable: u64,
    /// Uncorrectable errors striking dirty lines — actual data loss.
    pub data_loss_events: u64,
    /// LR refreshes dropped by the fault process.
    pub refresh_drops: u64,
    /// ECC share of dynamic L2 energy.
    pub ecc_energy_share: f64,
}

/// Error rates swept by the ablation (per-mechanism, uniform).
pub const FAULT_RATES: [f64; 6] = [0.0, 1e-6, 1e-5, 1e-4, 5e-4, 1e-3];

/// Workloads the sweep runs on: a read-led, a write-led and a
/// long-resident workload, so all fault mechanisms get exercised.
const SUBSET: [&str; 3] = ["nw", "lud", "streamcluster"];

/// Runs the fault-rate sweep. The fault seed comes from the plan
/// (`--fault-seed`); every (rate, workload) point fans across the
/// executor's pool and rate 0 shares the memoized clean run.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<FaultRow> {
    let workloads: Vec<_> = SUBSET
        .iter()
        .map(|n| suite::by_name(n).expect("suite workload"))
        .collect();
    let points: Vec<(usize, usize)> = (0..FAULT_RATES.len())
        .flat_map(|ri| (0..workloads.len()).map(move |wi| (ri, wi)))
        .collect();
    let outs = exec.map(&points, |&(ri, wi)| {
        let faulted = plan.with_faults(FAULT_RATES[ri], plan.fault.seed);
        exec.run(L2Choice::TwoPartC1, &workloads[wi], &faulted)
    });
    let baseline_ipc: Vec<f64> = (0..workloads.len())
        .map(|wi| outs[wi].metrics.ipc())
        .collect();
    FAULT_RATES
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let mut corrections = 0;
            let mut uncorrectable = 0;
            let mut data_loss = 0;
            let mut drops = 0;
            let mut ecc_nj = 0.0;
            let mut total_nj = 0.0;
            let mut ipc_ratios = Vec::with_capacity(workloads.len());
            for wi in 0..workloads.len() {
                let out = &outs[ri * workloads.len() + wi];
                let tp = out.two_part.expect("C1 is two-part");
                corrections += tp.ecc_corrections;
                uncorrectable += tp.ecc_uncorrectable;
                data_loss += tp.data_loss_events;
                drops += tp.refresh_drops;
                ecc_nj += out.metrics.l2_energy.dynamic_nj_for(EnergyEvent::Ecc);
                total_nj += out.metrics.l2_energy.dynamic_nj();
                ipc_ratios.push(out.metrics.ipc() / baseline_ipc[wi].max(1e-9));
            }
            FaultRow {
                rate,
                ipc_norm: report::gmean(&ipc_ratios),
                ecc_corrections: corrections,
                ecc_uncorrectable: uncorrectable,
                data_loss_events: data_loss,
                refresh_drops: drops,
                ecc_energy_share: if total_nj == 0.0 {
                    0.0
                } else {
                    ecc_nj / total_nj
                },
            }
        })
        .collect()
}

/// Renders the sweep as the paper-style text table.
pub fn render(rows: &[FaultRow]) -> String {
    let mut out = String::from(
        "Fault ablation — injected error rate vs. IPC / ECC / data loss (C1, nw+lud+streamcluster)\n\n",
    );
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0e}", r.rate),
                report::ratio(r.ipc_norm),
                format!("{}", r.ecc_corrections),
                format!("{}", r.ecc_uncorrectable),
                format!("{}", r.data_loss_events),
                format!("{}", r.refresh_drops),
                report::pct(r.ecc_energy_share),
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "rate",
            "IPC vs clean",
            "corrected",
            "uncorrectable",
            "data loss",
            "refresh drops",
            "ECC energy",
        ],
        &body,
    ));
    out
}

/// CSV form of the sweep.
pub fn to_csv(rows: &[FaultRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:e}", r.rate),
                format!("{:.6}", r.ipc_norm),
                format!("{}", r.ecc_corrections),
                format!("{}", r.ecc_uncorrectable),
                format!("{}", r.data_loss_events),
                format!("{}", r.refresh_drops),
                format!("{:.6}", r.ecc_energy_share),
            ]
        })
        .collect();
    report::csv(
        &[
            "rate",
            "ipc_norm",
            "ecc_corrections",
            "ecc_uncorrectable",
            "data_loss_events",
            "refresh_drops",
            "ecc_energy_share",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_anchored_and_escalates() {
        let exec = Executor::auto();
        let plan = RunPlan {
            scale: 0.05,
            max_cycles: 2_000_000,
            ..RunPlan::full()
        }
        .with_faults(0.0, 42);
        let rows = compute(&exec, &plan);
        assert_eq!(rows.len(), FAULT_RATES.len());
        let clean = &rows[0];
        assert_eq!(clean.rate, 0.0);
        assert!((clean.ipc_norm - 1.0).abs() < 1e-12, "rate 0 is the anchor");
        assert_eq!(clean.ecc_corrections + clean.ecc_uncorrectable, 0);
        assert_eq!(clean.ecc_energy_share, 0.0);
        let heavy = rows.last().expect("rows");
        assert!(
            heavy.ecc_corrections + heavy.ecc_uncorrectable + heavy.refresh_drops > 0,
            "the heaviest rate must inject"
        );
        let csv = to_csv(&rows);
        assert!(csv.lines().count() == rows.len() + 1);
        assert!(render(&rows).contains("rate"));
    }
}
