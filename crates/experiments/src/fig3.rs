//! Fig. 3: inter- and intra-set write variation (COV) per workload.
//!
//! Each workload runs on the baseline GPU; the L2 accumulates physical
//! per-(set, way) write counts, from which the i2WAP-style coefficients of
//! variation are computed. The paper's observation: applications like
//! `bfs`, `kmeans` and `backprop` concentrate writes on few blocks (COV
//! well above 1), while `stencil`, `cfd` and `lbm` write evenly.

use sttgpu_stats::WriteVariation;
use sttgpu_workloads::suite;

use crate::configs::L2Choice;
use crate::report;
use crate::runner::{Executor, RunPlan};

/// One bar pair of Fig. 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Workload name.
    pub workload: String,
    /// Inter-set write COV.
    pub inter_set: f64,
    /// Intra-set write COV.
    pub intra_set: f64,
}

/// Runs the whole suite and computes both COV metrics per workload.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<Fig3Row> {
    let workloads = suite::all();
    exec.map(&workloads, |w| {
        let out = exec.run(L2Choice::SramBaseline, w, plan);
        let wv = WriteVariation::from_counts(&out.write_matrix);
        Fig3Row {
            workload: w.name.clone(),
            inter_set: wv.inter_set,
            intra_set: wv.intra_set,
        }
    })
}

/// Renders the figure as a table (values in percent, as the paper's axis).
pub fn render(rows: &[Fig3Row]) -> String {
    let mut out = String::from("Fig. 3: inter- and intra-set write variation (COV)\n");
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                report::pct(r.inter_set),
                report::pct(r.intra_set),
            ]
        })
        .collect();
    let g_inter = report::gmean(&rows.iter().map(|r| r.inter_set).collect::<Vec<_>>());
    let g_intra = report::gmean(&rows.iter().map(|r| r.intra_set).collect::<Vec<_>>());
    body.push(vec![
        "Gmean".to_owned(),
        report::pct(g_inter),
        report::pct(g_intra),
    ]);
    out.push_str(&report::table(
        &["workload", "inter-set", "intra-set"],
        &body,
    ));
    out
}

/// Renders the rows as CSV (raw fractions, not percentages).
pub fn to_csv(rows: &[Fig3Row]) -> String {
    report::csv(
        &["workload", "inter_set_cov", "intra_set_cov"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    format!("{:.6}", r.inter_set),
                    format!("{:.6}", r.intra_set),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline property of Fig. 3: write-concentrated workloads show
    /// far higher variation than streaming/even-write workloads.
    #[test]
    fn concentrated_writers_beat_even_writers() {
        let plan = RunPlan {
            scale: 0.08,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        let rows = compute(&Executor::auto(), &plan);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.workload == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        let hot = get("mri_gridding");
        let even = get("stencil");
        assert!(
            hot.inter_set + hot.intra_set > 2.0 * (even.inter_set + even.intra_set),
            "mri_gridding ({:.2}/{:.2}) must dwarf stencil ({:.2}/{:.2})",
            hot.inter_set,
            hot.intra_set,
            even.inter_set,
            even.intra_set
        );
        let render = render(&rows);
        assert!(render.contains("Gmean"));
    }
}
