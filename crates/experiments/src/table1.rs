//! Table 1: STT-RAM parameters for different data retention times.
//!
//! A thin wrapper over the device model's [`sttgpu_device::table1`]; it
//! lives here so the `repro` binary exposes every paper artefact from one
//! place.

pub use sttgpu_device::table1::{rows, Table1Row};

/// Renders Table 1.
pub fn render() -> String {
    sttgpu_device::table1::render()
}

/// Renders Table 1 as CSV.
pub fn to_csv() -> String {
    crate::report::csv(
        &[
            "design",
            "delta",
            "retention_ns",
            "write_latency_ns",
            "write_energy_nj",
            "refreshing",
        ],
        &rows()
            .into_iter()
            .map(|r| {
                vec![
                    r.label.to_owned(),
                    format!("{:.2}", r.delta),
                    format!("{:.0}", r.retention.as_nanos()),
                    format!("{:.3}", r.write_latency_ns),
                    format!("{:.4}", r.write_energy_nj),
                    r.refreshing.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let t = super::render();
        assert!(t.contains("Table 1"));
        assert!(t.contains("HR part"));
        assert!(t.contains("LR part"));
    }
}
