//! Fig. 8: the headline evaluation — speedup (a), dynamic power (b) and
//! total L2 power (c) of all five configurations, normalised to the SRAM
//! baseline, grouped by behavioural region.
//!
//! Paper shape to reproduce:
//!
//! * STT-RAM baseline: ~+5 % average IPC but **regressions** on
//!   write-heavy workloads; C1 ~+16 % average (up to >100 %) with **no**
//!   regressions; C2/C3 help register-limited workloads;
//! * dynamic power: every STT design costs more than SRAM (C1 ≈ 1.69×,
//!   C3 ≈ 1.94×), and the uniform STT baseline is several times C1;
//! * total power: leakage dominates — C1 ≈ −20 %, C2 ≈ −63.5 %,
//!   C3 ≈ −42 % vs. SRAM, while the STT baseline *gains* (~+19 %).

use sttgpu_workloads::{suite, Region};

use crate::configs::L2Choice;
use crate::report;
use crate::runner::{Executor, RunPlan};

/// Results of one workload across all five configurations.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// Behavioural region (figure grouping).
    pub region: Region,
    /// Speedup vs. SRAM baseline, indexed by [`L2Choice::ALL`] (the
    /// baseline's own entry is 1.0).
    pub speedup: [f64; 5],
    /// Dynamic L2 power normalised to the SRAM baseline.
    pub dynamic_power: [f64; 5],
    /// Total L2 power normalised to the SRAM baseline.
    pub total_power: [f64; 5],
}

/// Aggregate (geometric-mean) row across the suite.
#[derive(Debug, Clone)]
pub struct Fig8Summary {
    /// Gmean speedups by configuration.
    pub speedup: [f64; 5],
    /// Gmean normalised dynamic power.
    pub dynamic_power: [f64; 5],
    /// Gmean normalised total power.
    pub total_power: [f64; 5],
}

/// Runs the full (workload × configuration) cross product — every point
/// fanned across the executor's pool — and normalises against the SRAM
/// baseline.
pub fn compute(exec: &Executor, plan: &RunPlan) -> (Vec<Fig8Row>, Fig8Summary) {
    let workloads = suite::all();
    let points: Vec<(usize, L2Choice)> = (0..workloads.len())
        .flat_map(|wi| L2Choice::ALL.iter().map(move |&choice| (wi, choice)))
        .collect();
    let all_outputs = exec.map(&points, |&(wi, choice)| {
        exec.run(choice, &workloads[wi], plan)
    });
    let mut rows = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let outputs = &all_outputs[wi * L2Choice::ALL.len()..(wi + 1) * L2Choice::ALL.len()];
        let base = &outputs[0].metrics;
        let base_dyn = base.l2_dynamic_power_mw().max(1e-9);
        let base_tot = base.l2_total_power_mw().max(1e-9);
        let mut speedup = [0.0f64; 5];
        let mut dynamic_power = [0.0f64; 5];
        let mut total_power = [0.0f64; 5];
        for (i, out) in outputs.iter().enumerate() {
            speedup[i] = out.metrics.speedup_over(base);
            dynamic_power[i] = out.metrics.l2_dynamic_power_mw() / base_dyn;
            total_power[i] = out.metrics.l2_total_power_mw() / base_tot;
        }
        rows.push(Fig8Row {
            workload: w.name.clone(),
            region: suite::region_of(&w.name).expect("suite workload"),
            speedup,
            dynamic_power,
            total_power,
        });
    }
    let mut summary = Fig8Summary {
        speedup: [0.0; 5],
        dynamic_power: [0.0; 5],
        total_power: [0.0; 5],
    };
    for i in 0..5 {
        summary.speedup[i] = report::gmean(&rows.iter().map(|r| r.speedup[i]).collect::<Vec<_>>());
        summary.dynamic_power[i] =
            report::gmean(&rows.iter().map(|r| r.dynamic_power[i]).collect::<Vec<_>>());
        summary.total_power[i] =
            report::gmean(&rows.iter().map(|r| r.total_power[i]).collect::<Vec<_>>());
    }
    (rows, summary)
}

fn panel(
    title: &str,
    rows: &[Fig8Row],
    summary_vals: [f64; 5],
    pick: fn(&Fig8Row) -> [f64; 5],
) -> String {
    let mut out = format!("{title}\n");
    let mut sorted: Vec<&Fig8Row> = rows.iter().collect();
    sorted.sort_by_key(|r| (r.region.index(), r.workload.clone()));
    let mut body: Vec<Vec<String>> = sorted
        .iter()
        .map(|r| {
            let vals = pick(r);
            let mut cells = vec![format!("[{}] {}", r.region.index(), r.workload)];
            cells.extend(vals.iter().map(|v| report::ratio(*v)));
            cells
        })
        .collect();
    let mut g = vec!["Gmean".to_owned()];
    g.extend(summary_vals.iter().map(|v| report::ratio(*v)));
    body.push(g);
    out.push_str(&report::table(
        &["workload", "baseline", "STT-RAM", "C1", "C2", "C3"],
        &body,
    ));
    out.push('\n');
    out
}

/// Renders all three panels.
pub fn render(rows: &[Fig8Row], summary: &Fig8Summary) -> String {
    let mut out = String::from(
        "Fig. 8: performance and power normalised to the SRAM baseline\n\
         (workloads prefixed by their region: 1=insensitive, 2=register-limited,\n\
          3=register+cache, 4=cache-friendly)\n\n",
    );
    out.push_str(&panel("(a) speedup", rows, summary.speedup, |r| r.speedup));
    out.push_str(&panel(
        "(b) L2 dynamic power",
        rows,
        summary.dynamic_power,
        |r| r.dynamic_power,
    ));
    out.push_str(&panel(
        "(c) L2 total power",
        rows,
        summary.total_power,
        |r| r.total_power,
    ));

    out.push_str("per-region speedup (gmean):\n");
    let body: Vec<Vec<String>> = region_summary(rows)
        .into_iter()
        .map(|(region, vals)| {
            let mut cells = vec![region.to_string()];
            cells.extend(vals.iter().map(|v| report::ratio(*v)));
            cells
        })
        .collect();
    out.push_str(&report::table(
        &["region", "baseline", "STT-RAM", "C1", "C2", "C3"],
        &body,
    ));
    out
}

/// Geometric-mean speedups per behavioural region (the paper walks Fig. 8a
/// region by region).
pub fn region_summary(rows: &[Fig8Row]) -> Vec<(Region, [f64; 5])> {
    Region::ALL
        .iter()
        .map(|&region| {
            let mut vals = [0.0f64; 5];
            for (i, v) in vals.iter_mut().enumerate() {
                let col: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.region == region)
                    .map(|r| r.speedup[i])
                    .collect();
                *v = report::gmean(&col);
            }
            (region, vals)
        })
        .collect()
}

/// Renders all three panels as long-format CSV (one row per workload x
/// configuration).
pub fn to_csv(rows: &[Fig8Row]) -> String {
    use crate::configs::L2Choice;
    let mut body = Vec::new();
    for r in rows {
        for (i, choice) in L2Choice::ALL.iter().enumerate() {
            body.push(vec![
                r.workload.clone(),
                r.region.index().to_string(),
                choice.label().to_owned(),
                format!("{:.6}", r.speedup[i]),
                format!("{:.6}", r.dynamic_power[i]),
                format!("{:.6}", r.total_power[i]),
            ]);
        }
    }
    report::csv(
        &[
            "workload",
            "region",
            "config",
            "speedup",
            "dynamic_power_norm",
            "total_power_norm",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    /// A reduced-scale end-to-end check of the headline shape on two
    /// contrasting workloads (the full suite runs in the repro binary).
    #[test]
    fn c1_beats_stt_baseline_on_write_heavy_work() {
        let plan = RunPlan {
            scale: 0.3,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        let w = suite::by_name("nw").expect("nw");
        let base = run(L2Choice::SramBaseline, &w, &plan);
        let stt = run(L2Choice::SttBaseline, &w, &plan);
        let c1 = run(L2Choice::TwoPartC1, &w, &plan);
        let stt_speedup = stt.metrics.speedup_over(&base.metrics);
        let c1_speedup = c1.metrics.speedup_over(&base.metrics);
        assert!(
            c1_speedup > stt_speedup,
            "C1 ({c1_speedup:.3}) must beat the uniform STT baseline \
             ({stt_speedup:.3}) on the write-heaviest workload"
        );
    }

    #[test]
    fn total_power_drops_with_c1_and_c2() {
        let plan = RunPlan {
            scale: 0.08,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        let w = suite::by_name("lud").expect("lud");
        let base = run(L2Choice::SramBaseline, &w, &plan);
        let c1 = run(L2Choice::TwoPartC1, &w, &plan);
        let c2 = run(L2Choice::TwoPartC2, &w, &plan);
        let base_tot = base.metrics.l2_total_power_mw();
        assert!(c1.metrics.l2_total_power_mw() < base_tot);
        assert!(c2.metrics.l2_total_power_mw() < c1.metrics.l2_total_power_mw());
    }
}
