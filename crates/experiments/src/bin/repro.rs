//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all               # everything, reference scale
//! repro fig8              # one artefact
//! repro fig8 --scale 0.25 # reduced-scale quick look
//! repro --quick all       # scale 0.25 everywhere
//! repro --out results all # also write <artefact>.txt/.csv under results/
//! ```

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sttgpu_experiments::{
    ablations, fig3, fig4, fig5, fig6, fig8, table1, table2, workload_table, RunPlan,
};

const ARTEFACTS: [&str; 9] = [
    "table1",
    "table2",
    "workloads",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "ablations",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--scale F] [--out DIR] <all|{}> ...",
        ARTEFACTS.join("|")
    );
    ExitCode::FAILURE
}

/// Computes one artefact: the rendered text plus, where meaningful, a CSV.
fn run_artefact(name: &str, plan: &RunPlan) -> Option<(String, Option<String>)> {
    let (text, csv) = match name {
        "table1" => (table1::render(), Some(table1::to_csv())),
        "table2" => (table2::render(), Some(table2::to_csv())),
        "workloads" => {
            let rows = workload_table::compute(plan);
            (
                workload_table::render(&rows),
                Some(workload_table::to_csv(&rows)),
            )
        }
        "fig3" => {
            let rows = fig3::compute(plan);
            (fig3::render(&rows), Some(fig3::to_csv(&rows)))
        }
        "fig4" => {
            let rows = fig4::compute(plan);
            (fig4::render(&rows), Some(fig4::to_csv(&rows)))
        }
        "fig5" => {
            let rows = fig5::compute(plan);
            (fig5::render(&rows), Some(fig5::to_csv(&rows)))
        }
        "fig6" => {
            let rows = fig6::compute(plan);
            (fig6::render(&rows), Some(fig6::to_csv(&rows)))
        }
        "fig8" => {
            let (rows, summary) = fig8::compute(plan);
            (fig8::render(&rows, &summary), Some(fig8::to_csv(&rows)))
        }
        "ablations" => (ablations::render(plan), None),
        _ => return None,
    };
    Some((text, csv))
}

fn main() -> ExitCode {
    let mut plan = RunPlan::full();
    let mut targets: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => plan = RunPlan::quick(),
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                if v <= 0.0 {
                    return usage();
                }
                plan = plan.with_scale(v);
            }
            "--out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = ARTEFACTS.iter().map(|s| s.to_string()).collect();
    }
    eprintln!(
        "# repro: scale={} max_cycles={} artefacts={:?}",
        plan.scale, plan.max_cycles, targets
    );
    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for t in &targets {
        let started = std::time::Instant::now();
        let Some((text, csv)) = run_artefact(t, &plan) else {
            eprintln!("unknown artefact: {t}");
            return usage();
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = fs::write(dir.join(format!("{t}.txt")), &text) {
                eprintln!("cannot write {t}.txt: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(csv) = csv {
                if let Err(e) = fs::write(dir.join(format!("{t}.csv")), csv) {
                    eprintln!("cannot write {t}.csv: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        eprintln!("# {t} done in {:.1}s", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
