//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all               # everything, reference scale
//! repro fig8              # one artefact
//! repro fig8 --scale 0.25 # reduced-scale quick look
//! repro --quick all       # scale 0.25 everywhere
//! repro --jobs 8 all      # executor thread count (default: all cores)
//! repro --out results all # also write <artefact>.txt/.csv under results/
//! repro all --check       # attach the runtime invariant checker
//! repro --sim-threads 4 all               # parallel SM stepping (byte-identical)
//! repro --faults 2e-4 --fault-seed 7 all  # deterministic fault injection
//! repro --llc-policy adaptive-ways all    # runtime-adaptive LLC policy on two-part runs
//! repro --out results --resume all        # continue an interrupted sweep
//! repro --fuzz 10000 --fuzz-seed 7        # differential fuzz vs the oracle
//! ```
//!
//! All artefacts share one [`Executor`], so a simulation needed by several
//! of them — e.g. the SRAM-baseline suite (fig3, fig8, workloads) or the
//! C1 suite (fig4 TH1, fig5 2-way, fig6, fig8, ablations) — runs exactly
//! once. The run summary printed at the end reports executed runs vs.
//! cache hits and simulated-cycle throughput; the same numbers plus
//! per-artefact wall-clock timings land in `BENCH_repro.json`.
//!
//! # Crash resilience
//!
//! With `--out`, every completed artefact is journalled to
//! `<dir>/repro.journal` *after* its files hit the disk; the journal
//! opens with a versioned header pinning the plan and store generation,
//! and `--resume` refuses (typed error) if that header disagrees with
//! the current invocation, else skips artefacts whose `ok` entry and
//! `.txt` both exist — so a killed sweep continues where it stopped and
//! produces byte-identical outputs. An artefact that panics (after the
//! runner's internal retries) is **quarantined**: the sweep continues,
//! the failure lands in `<dir>/QUARANTINE.txt` (one `artefact<TAB>reason`
//! line each), and the exit code is nonzero. `--run-timeout SECS` arms a
//! per-attempt wall-clock watchdog that turns hung simulations into the
//! same retry-then-quarantine path.
//!
//! # Persistent result store
//!
//! `--store DIR` attaches a crash-safe content-addressed result store:
//! every simulation is looked up there first and written back after, so
//! a warm store regenerates every artefact byte-identically while
//! executing **zero** simulations. Corrupt or version-skewed entries are
//! detected by checksum, quarantined to `DIR/quarantine/` and
//! transparently recomputed; a second concurrent invocation joins
//! read-only (a lock file with a heartbeat serializes writers); any
//! infrastructure failure degrades the store to a warning, never a
//! failed sweep.
//!
//! # Differential fuzzing
//!
//! `--fuzz N` runs `N` seeded random traces through the two-part LLC
//! and the reference model in `sttgpu-oracle`, rotating across the
//! oracle's corner geometries, instead of producing artefacts.
//! `--fuzz-seed` varies the campaign (default 7). With `--sim-threads T`
//! the campaign is sharded into contiguous case ranges on `T` worker
//! threads; per-case seeds derive from the global case index, so the
//! report is byte-identical to the serial sweep. Any divergence is
//! minimized, printed as ready-to-check-in `Op` literals, and fails
//! the run with a nonzero exit code.

use std::env;
use std::fs;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sttgpu_experiments::error::panic_message;
use sttgpu_experiments::persist::StoreReport;
use sttgpu_experiments::{
    ablations, adaptive, cli, faults, fig3, fig4, fig5, fig6, fig8, table1, table2, workload_table,
    Executor, ResultStore, RunError, RunPlan, STORE_GENERATION,
};

const ARTEFACTS: [&str; 11] = [
    "table1",
    "table2",
    "workloads",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "ablations",
    "faults",
    "adaptive",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--scale F] [--jobs N] [--sim-threads T] [--out DIR] \
         [--check] [--faults RATE] [--fault-seed N] [--llc-policy NAME] [--resume] \
         [--store DIR] [--run-timeout SECS] <all|{}> ...\n\
         \x20      repro --fuzz N [--fuzz-seed S] [--sim-threads T]  # differential fuzz vs the oracle\n\
         \x20      repro --canary [--out DIR]       # perf canary vs checked-in baseline\n\
         \x20      repro --scenario NAME[:seed] [--check]   # scenario family vs oracle + C1 replay ('list' lists)\n\
         \x20      repro --trace FILE [--check]     # replay a trace file against the C1 geometry\n\
         \x20      repro --record WORKLOAD --trace-out FILE [--scale F] [--sim-threads T]  # dump a workload's LLC call stream",
        ARTEFACTS.join("|")
    );
    ExitCode::FAILURE
}

/// The canary's fixed workload scale — small enough to finish in seconds,
/// large enough that throughput is not dominated by startup.
const CANARY_SCALE: f64 = 0.25;

/// Throughput below this fraction of the checked-in baseline fails CI.
const CANARY_FLOOR: f64 = 0.7;

/// Where the committed baseline lives (relative to the repo root, which
/// is where `ci.sh` runs).
const CANARY_BASELINE_PATH: &str = "results/BENCH_repro.json";

/// Extracts `"key": <number>` from hand-rolled JSON, no parser needed.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let tail = &text[text.find(&format!("\"{key}\""))?..];
    let tail = &tail[tail.find(':')? + 1..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == ' '))
        .unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// One timed canary measurement: the Fig. 8 suite at the canary scale on
/// a fresh single-job executor with `threads` SM-stepping threads.
/// Returns `(wall_clock_s, cycles_simulated, cycles_per_second)`, or
/// `None` when the artefact came out empty (a broken run must be loud).
fn canary_measurement(threads: u32) -> Option<(f64, u64, f64)> {
    let exec = Executor::new(1);
    let plan = RunPlan::full()
        .with_scale(CANARY_SCALE)
        .with_sim_threads(threads);
    let started = Instant::now();
    let (rows, summary) = fig8::compute(&exec, &plan);
    let secs = started.elapsed().as_secs_f64();
    // Keep the artefact alive so the compute cannot be optimized away.
    if rows.is_empty() || fig8::render(&rows, &summary).is_empty() {
        eprintln!("# canary produced an empty fig8 artefact (sim-threads {threads})");
        return None;
    }
    let stats = exec.stats();
    let cps = stats.cycles_simulated as f64 / secs.max(1e-9);
    Some((secs, stats.cycles_simulated, cps))
}

/// Perf canary: times a fixed deterministic workload (the Fig. 8 suite at
/// a reduced scale, one executor job so the number is comparable across
/// hosts with different core counts) at `--sim-threads 1` and
/// `--sim-threads 4`, writes both measured throughputs into
/// `BENCH_repro.json`, and fails when the *serial* number drops more than
/// 30% below the checked-in baseline (the serial number is the
/// host-comparable one; the parallel speedup depends on core count and is
/// recorded, not gated).
fn run_canary(out_dir: Option<&Path>) -> ExitCode {
    eprintln!("# repro --canary: fig8 suite at scale {CANARY_SCALE}, 1 job, sim-threads 1 and 4");
    let Some((secs_1, cycles_1, cps_1)) = canary_measurement(1) else {
        return ExitCode::FAILURE;
    };
    let Some((secs_4, cycles_4, cps_4)) = canary_measurement(4) else {
        return ExitCode::FAILURE;
    };
    let baseline = fs::read_to_string(CANARY_BASELINE_PATH)
        .ok()
        .and_then(|t| json_number(&t, "canary_baseline_cycles_per_second"));
    let mut json = String::from("{\n  \"canary\": {\n");
    json.push_str(&format!("    \"scale\": {CANARY_SCALE},\n"));
    json.push_str("    \"sim_threads_1\": {\n");
    json.push_str(&format!("      \"wall_clock_s\": {secs_1:.3},\n"));
    json.push_str(&format!("      \"cycles_simulated\": {cycles_1},\n"));
    json.push_str(&format!("      \"cycles_per_second\": {cps_1:.0}\n"));
    json.push_str("    },\n");
    json.push_str("    \"sim_threads_4\": {\n");
    json.push_str(&format!("      \"wall_clock_s\": {secs_4:.3},\n"));
    json.push_str(&format!("      \"cycles_simulated\": {cycles_4},\n"));
    json.push_str(&format!("      \"cycles_per_second\": {cps_4:.0}\n"));
    json.push_str("    },\n");
    json.push_str(&format!(
        "    \"parallel_speedup\": {:.3},\n",
        cps_4 / cps_1.max(1e-9)
    ));
    json.push_str(&format!(
        "    \"baseline_cycles_per_second\": {}\n",
        baseline.map_or_else(|| "null".into(), |b| format!("{b:.0}"))
    ));
    json.push_str("  }\n}\n");
    let bench_path = out_dir
        .map(|d| d.join("BENCH_repro.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_repro.json"));
    if let Some(dir) = out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = fs::write(&bench_path, json) {
        eprintln!("cannot write {}: {e}", bench_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "# canary: sim-threads 1: {:.1}M cycles in {secs_1:.1}s = {:.2}M cycles/s",
        cycles_1 as f64 / 1e6,
        cps_1 / 1e6,
    );
    eprintln!(
        "# canary: sim-threads 4: {:.1}M cycles in {secs_4:.1}s = {:.2}M cycles/s \
         (speedup {:.2}x, written to {})",
        cycles_4 as f64 / 1e6,
        cps_4 / 1e6,
        cps_4 / cps_1.max(1e-9),
        bench_path.display()
    );
    let cps = cps_1;
    match baseline {
        None => {
            eprintln!("# canary: no baseline at {CANARY_BASELINE_PATH} — recording only");
            ExitCode::SUCCESS
        }
        Some(b) if cps < b * CANARY_FLOOR => {
            eprintln!(
                "# CANARY FAILED: {:.2}M cycles/s is below {:.0}% of the \
                 {:.2}M cycles/s baseline",
                cps / 1e6,
                CANARY_FLOOR * 100.0,
                b / 1e6
            );
            ExitCode::FAILURE
        }
        Some(b) => {
            eprintln!(
                "# canary passed: {:.0}% of the {:.2}M cycles/s baseline",
                cps / b * 100.0,
                b / 1e6
            );
            ExitCode::SUCCESS
        }
    }
}

/// Differential fuzz mode: `N` seeded traces through implementation and
/// oracle, round-robin over the corner geometries, odd case indices
/// drawn from the scenario families instead of the corners' own specs.
/// Divergences are minimized and printed; any divergence fails the run.
fn run_fuzz(cases: u64, seed: u64, shards: u64) -> ExitCode {
    let corners = sttgpu_oracle::corner_geometries();
    let families = sttgpu_oracle::scenario_families();
    eprintln!(
        "# repro --fuzz: {cases} cases over {} corner geometries (odd cases drawn from \
         {} scenario families), base seed {seed}, {shards} shard(s)",
        corners.len(),
        families.len()
    );
    let started = Instant::now();
    let report = sttgpu_oracle::fuzz_sharded(cases, seed, shards);
    for corner in &corners {
        let failed = report
            .failures
            .iter()
            .filter(|f| f.corner == corner.name)
            .count();
        eprintln!("#   corner   {:<16} {failed} divergence(s)", corner.name);
    }
    for fam in &families {
        let failed = report
            .failures
            .iter()
            .filter(|f| f.scenario == Some(fam.name))
            .count();
        eprintln!("#   scenario {:<16} {failed} divergence(s)", fam.name);
    }
    for f in &report.failures {
        let scenario = f
            .scenario
            .map(|s| format!(" scenario {s}"))
            .unwrap_or_default();
        println!(
            "divergence [{}{scenario} seed {:#x}]: {}",
            f.corner, f.seed, f.divergence
        );
        println!(
            "minimized trace ({} ops):\n{}",
            f.minimized.len(),
            sttgpu_oracle::format_trace(&f.minimized)
        );
    }
    eprintln!(
        "# repro --fuzz: {} cases, {} divergence(s) in {:.1}s",
        report.cases,
        report.failures.len(),
        started.elapsed().as_secs_f64()
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scenario mode: `--scenario NAME[:seed]` lowers one named scenario,
/// differential-tests it across every corner geometry and replays it on
/// the C1 geometry for a stats block. `--scenario list` lists the
/// families. Any divergence (or checker violation under `--check`)
/// fails the run.
fn run_scenario_mode(arg: &str, check: bool) -> ExitCode {
    if arg == "list" {
        println!("scenario families (use --scenario NAME[:seed]):");
        for fam in sttgpu_oracle::scenario_families() {
            println!("  {:<16} {}", fam.name, fam.what);
        }
        return ExitCode::SUCCESS;
    }
    let (name, seed) = match arg.split_once(':') {
        Some((name, seed)) => match seed.parse::<u64>() {
            Ok(seed) => (name, seed),
            Err(_) => {
                eprintln!("bad scenario seed in {arg:?} (want NAME or NAME:SEED)");
                return ExitCode::FAILURE;
            }
        },
        None => (arg, 7),
    };
    let exec = Executor::sequential();
    let out = match exec.run_scenario(name, seed, check) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("(--scenario list shows the known families)");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "# repro --scenario: {} ({} ops) across {} corner geometries, C1 replay to {} ns",
        out.spec_name,
        out.ops,
        sttgpu_oracle::corner_geometries().len(),
        out.replay.end_ns
    );
    println!("{}", sttgpu_experiments::render_stats(&out.replay.stats));
    for (corner, d) in &out.divergences {
        println!("divergence [{corner} scenario {}]: {d}", out.spec_name);
    }
    if let Some(report) = &out.replay.check {
        if report.is_clean() {
            eprintln!("# check passed: 0 invariant violations in the replay");
        } else {
            eprintln!(
                "# CHECK FAILED: {} violation(s) in the replay",
                report.violations
            );
            for s in &report.samples {
                eprintln!("#   {s}");
            }
        }
    }
    if out.is_clean() {
        eprintln!("# scenario {} clean", out.spec_name);
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Trace-replay mode: `--trace FILE` replays a trace file against the
/// C1 geometry. Requests-mode traces additionally run the oracle
/// differential (raw traces encode an exact call sequence the oracle's
/// discipline cannot re-derive). Nonzero exit on divergence or checker
/// violation.
fn run_trace_mode(path: &Path, check: bool) -> ExitCode {
    let (header, records) = match sttgpu_tracefile::load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot load {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mode = match header.mode {
        sttgpu_tracefile::TraceMode::Requests => "requests",
        sttgpu_tracefile::TraceMode::Raw => "raw",
    };
    eprintln!(
        "# repro --trace: {} ({mode} mode, {} records, {} B lines) on the C1 geometry",
        path.display(),
        records.len(),
        header.line_bytes
    );
    let cfg = sttgpu_experiments::configs::two_part_config(sttgpu_experiments::L2Choice::TwoPartC1)
        .expect("C1 is two-part");
    let replay = match sttgpu_experiments::replay_records(&cfg, &header, &records, check) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", sttgpu_experiments::render_stats(&replay.stats));
    let mut failed = false;
    if header.mode == sttgpu_tracefile::TraceMode::Requests {
        let ops = match sttgpu_oracle::records_to_ops(&records) {
            Ok(ops) => ops,
            Err(e) => {
                eprintln!("cannot interpret records as requests: {e}");
                return ExitCode::FAILURE;
            }
        };
        match sttgpu_oracle::run_case(&cfg, &ops) {
            None => eprintln!("# differential vs the oracle: clean"),
            Some(d) => {
                println!("divergence [C1 trace {}]: {d}", path.display());
                failed = true;
            }
        }
    }
    if let Some(report) = &replay.check {
        if report.is_clean() {
            eprintln!("# check passed: 0 invariant violations in the replay");
        } else {
            eprintln!(
                "# CHECK FAILED: {} violation(s) in the replay",
                report.violations
            );
            for s in &report.samples {
                eprintln!("#   {s}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Record mode: `--record WORKLOAD --trace-out FILE` runs a built-in
/// workload on C1 with the LLC call log on and saves the verbatim call
/// stream as a raw-mode trace (text twin for `.txt`/`.text` paths).
fn run_record_mode(workload: &str, out_path: &Path, plan: &RunPlan) -> ExitCode {
    eprintln!(
        "# repro --record: {workload} at scale {} on C1, call stream to {}",
        plan.scale,
        out_path.display()
    );
    let recording = match sttgpu_experiments::record_workload(
        sttgpu_experiments::L2Choice::TwoPartC1,
        workload,
        plan,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = sttgpu_tracefile::save(out_path, recording.header, &recording.records) {
        eprintln!("cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("{}", sttgpu_experiments::render_stats(&recording.stats));
    eprintln!(
        "# recorded {} LLC calls to {}",
        recording.records.len(),
        out_path.display()
    );
    ExitCode::SUCCESS
}

/// Journal format version. v1 had no header and stamped every `ok` line
/// with the full plan; v2 pins the plan (and the result-store
/// generation) once in a header line, so a `--resume` against a journal
/// written by an incompatible invocation is a typed refusal instead of
/// a silent full re-run — or worse, a silent skip of stale artefacts;
/// v3 adds the LLC policy to the pinned plan.
const JOURNAL_VERSION: u32 = 3;

/// The v3 journal header. Bit patterns for the floats: resume must
/// match exactly, not approximately. `run_timeout_s` is absent by
/// design — supervision cannot change the bytes of a completed
/// artefact, so it must not invalidate a resume.
fn journal_header(plan: &RunPlan) -> String {
    format!(
        "sttgpu-journal v{JOURNAL_VERSION} scale={:016x} max_cycles={} check={} \
         fault_rate={:016x} fault_seed={} policy={} sim_threads={} \
         store_gen={STORE_GENERATION}",
        plan.scale.to_bits(),
        plan.max_cycles,
        u8::from(plan.check),
        plan.fault.rate.to_bits(),
        plan.fault.seed,
        plan.policy.name(),
        plan.sim_threads,
    )
}

/// One journal line identifying a completed artefact (the header pins
/// everything else about how it was produced).
fn journal_line(name: &str) -> String {
    format!("ok {name}")
}

/// Names the first header field that disagrees, for the mismatch error.
fn header_mismatch(found: &str, expected: &str) -> String {
    if !found.starts_with("sttgpu-journal ") {
        return format!("journal has no version header (first line {found:?})");
    }
    for (f, e) in found.split_whitespace().zip(expected.split_whitespace()) {
        if f != e {
            return format!("journal was written with {f}, this invocation is {e}");
        }
    }
    format!("journal header {found:?} does not match {expected:?}")
}

/// Reads the journal and returns the artefact names already completed.
/// A missing or empty journal means nothing completed; a journal whose
/// header disagrees with this invocation is a typed
/// [`RunError::JournalMismatch`] — its completion records describe
/// artefacts this run would not reproduce, so trusting them would
/// corrupt the sweep. A torn trailing line (the previous run died
/// mid-append) is harmlessly ignored: it never matches a completed
/// artefact's `.txt` check downstream.
fn completed_artefacts(dir: &Path, plan: &RunPlan) -> Result<Vec<String>, RunError> {
    let path = dir.join("repro.journal");
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(RunError::io(path.display().to_string(), e)),
    };
    let mut lines = text.lines();
    let expected = journal_header(plan);
    match lines.next() {
        None => Ok(Vec::new()),
        Some(first) if first == expected => Ok(lines
            .filter_map(|l| l.strip_prefix("ok "))
            .filter_map(|n| n.split_whitespace().next())
            .map(str::to_string)
            .collect()),
        Some(first) => Err(RunError::JournalMismatch {
            what: header_mismatch(first, &expected),
        }),
    }
}

/// Writes a file atomically: unique temp file in the same directory,
/// flushed to disk, then renamed over the target. A crash mid-write
/// leaves the old content (or no file) — never a torn one.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artefact");
    let tmp = path.with_file_name(format!("{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Starts a fresh journal containing only the header, atomically (a
/// crash leaves either the old journal or the new one, never a torn
/// in-between).
fn start_journal(dir: &Path, plan: &RunPlan) -> std::io::Result<()> {
    write_atomic(
        &dir.join("repro.journal"),
        format!("{}\n", journal_header(plan)).as_bytes(),
    )
}

/// Appends one line to the journal as a single full-line write on an
/// append-mode handle, so a crash mid-append can tear at most the final
/// line (which resume then ignores) and concurrent appends never
/// interleave within a line.
fn append_journal(dir: &Path, line: &str) -> std::io::Result<()> {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("repro.journal"))?;
    f.write_all(format!("{line}\n").as_bytes())
}

/// Computes one artefact: the rendered text plus, where meaningful, a CSV.
fn run_artefact(name: &str, exec: &Executor, plan: &RunPlan) -> Option<(String, Option<String>)> {
    if env::var("STTGPU_REPRO_PANIC").as_deref() == Ok(name) {
        // Test hook: deterministically poison one artefact so the
        // quarantine path is exercisable end to end.
        panic!("injected test panic for artefact {name}");
    }
    let (text, csv) = match name {
        "table1" => (table1::render(), Some(table1::to_csv())),
        "table2" => (table2::render(), Some(table2::to_csv())),
        "workloads" => {
            let rows = workload_table::compute(exec, plan);
            (
                workload_table::render(&rows),
                Some(workload_table::to_csv(&rows)),
            )
        }
        "fig3" => {
            let rows = fig3::compute(exec, plan);
            (fig3::render(&rows), Some(fig3::to_csv(&rows)))
        }
        "fig4" => {
            let rows = fig4::compute(exec, plan);
            (fig4::render(&rows), Some(fig4::to_csv(&rows)))
        }
        "fig5" => {
            let rows = fig5::compute(exec, plan);
            (fig5::render(&rows), Some(fig5::to_csv(&rows)))
        }
        "fig6" => {
            let rows = fig6::compute(exec, plan);
            (fig6::render(&rows), Some(fig6::to_csv(&rows)))
        }
        "fig8" => {
            let (rows, summary) = fig8::compute(exec, plan);
            (fig8::render(&rows, &summary), Some(fig8::to_csv(&rows)))
        }
        "ablations" => (ablations::render(exec, plan), None),
        "faults" => {
            let rows = faults::compute(exec, plan);
            (faults::render(&rows), Some(faults::to_csv(&rows)))
        }
        "adaptive" => {
            let rep = adaptive::compute(exec, plan);
            (adaptive::render(&rep), Some(adaptive::to_csv(&rep)))
        }
        _ => return None,
    };
    Some((text, csv))
}

/// Hand-rolled JSON for the timing report (no serde in the tree).
fn bench_json(
    jobs: usize,
    plan: &RunPlan,
    timings: &[(String, f64)],
    stats: sttgpu_experiments::ExecutorStats,
    store: Option<StoreReport>,
    total_s: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"sim_threads\": {},\n", plan.sim_threads));
    out.push_str(&format!("  \"scale\": {},\n", plan.scale));
    out.push_str(&format!("  \"max_cycles\": {},\n", plan.max_cycles));
    out.push_str(&format!("  \"wall_clock_s\": {total_s:.3},\n"));
    out.push_str(&format!("  \"runs_executed\": {},\n", stats.runs_executed));
    out.push_str(&format!("  \"cache_hits\": {},\n", stats.cache_hits));
    out.push_str(&format!("  \"store_hits\": {},\n", stats.store_hits));
    match store {
        None => out.push_str("  \"store\": null,\n"),
        Some(r) => out.push_str(&format!(
            "  \"store\": {{\"hits\": {}, \"misses\": {}, \"corrupt\": {}, \"writes\": {}, \
             \"degraded\": {}, \"read_only\": {}}},\n",
            r.hits, r.misses, r.corrupt, r.writes, r.degraded, r.read_only
        )),
    }
    out.push_str(&format!(
        "  \"cycles_simulated\": {},\n",
        stats.cycles_simulated
    ));
    out.push_str(&format!(
        "  \"cycles_per_second\": {:.0},\n",
        stats.cycles_simulated as f64 / total_s.max(1e-9)
    ));
    out.push_str("  \"artefacts\": [\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_clock_s\": {secs:.3}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut plan = RunPlan::full();
    let mut targets: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut sim_threads = 1u32;
    let mut check = false;
    let mut fault_rate = 0.0;
    let mut fault_seed = 0;
    let mut policy = sttgpu_core::LlcPolicy::Fixed;
    let mut resume = false;
    let mut fuzz_cases: Option<u64> = None;
    let mut fuzz_seed = 7u64;
    let mut canary = false;
    let mut scenario: Option<String> = None;
    let mut trace_in: Option<PathBuf> = None;
    let mut record: Option<String> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut store_dir: Option<PathBuf> = None;
    let mut run_timeout: Option<u64> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => plan = RunPlan::quick(),
            "--scale" => match cli::parse_scale(args.next().as_deref()) {
                Ok(v) => plan = plan.with_scale(v),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--jobs" => match cli::parse_jobs(args.next().as_deref()) {
                Ok(n) => jobs = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--sim-threads" => match cli::parse_sim_threads(args.next().as_deref()) {
                Ok(n) => sim_threads = n,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--run-timeout" => match cli::parse_run_timeout(args.next().as_deref()) {
                Ok(n) => run_timeout = Some(n),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--store" => {
                let Some(dir) = args.next() else {
                    eprintln!("--store needs a directory");
                    return usage();
                };
                store_dir = Some(PathBuf::from(dir));
            }
            "--out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--check" => check = true,
            "--faults" => {
                let Some(r) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                if !(0.0..=1.0).contains(&r) {
                    return usage();
                }
                fault_rate = r;
            }
            "--fault-seed" => {
                let Some(n) = args.next().and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                fault_seed = n;
            }
            "--llc-policy" => match cli::parse_llc_policy(args.next().as_deref()) {
                Ok(p) => policy = p,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            },
            "--resume" => resume = true,
            "--canary" => canary = true,
            "--fuzz" => {
                let Some(n) = args.next().and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                if n == 0 {
                    return usage();
                }
                fuzz_cases = Some(n);
            }
            "--fuzz-seed" => {
                let Some(n) = args.next().and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                fuzz_seed = n;
            }
            "--scenario" => {
                let Some(s) = args.next() else {
                    return usage();
                };
                scenario = Some(s);
            }
            "--trace" => {
                let Some(p) = args.next() else {
                    return usage();
                };
                trace_in = Some(PathBuf::from(p));
            }
            "--record" => {
                let Some(w) = args.next() else {
                    return usage();
                };
                record = Some(w);
            }
            "--trace-out" => {
                let Some(p) = args.next() else {
                    return usage();
                };
                trace_out = Some(PathBuf::from(p));
            }
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_owned()),
        }
    }
    let modes = [
        canary,
        fuzz_cases.is_some(),
        scenario.is_some(),
        trace_in.is_some(),
        record.is_some(),
    ];
    if modes.iter().filter(|&&m| m).count() > 1 {
        eprintln!("--canary, --fuzz, --scenario, --trace and --record are separate run modes");
        return usage();
    }
    if trace_out.is_some() && record.is_none() {
        eprintln!("--trace-out only makes sense with --record WORKLOAD");
        return usage();
    }
    if canary {
        if !targets.is_empty() {
            eprintln!("--canary does not combine with artefact targets");
            return usage();
        }
        if store_dir.is_some() {
            eprintln!("--canary measures real simulation throughput; --store would skip the work");
            return usage();
        }
        return run_canary(out_dir.as_deref());
    }
    if let Some(cases) = fuzz_cases {
        if !targets.is_empty() {
            eprintln!("--fuzz does not take artefact targets");
            return usage();
        }
        return run_fuzz(cases, fuzz_seed, u64::from(sim_threads));
    }
    if let Some(arg) = scenario {
        if !targets.is_empty() {
            eprintln!("--scenario does not take artefact targets");
            return usage();
        }
        return run_scenario_mode(&arg, check);
    }
    if let Some(workload) = record {
        if !targets.is_empty() {
            eprintln!("--record does not take artefact targets");
            return usage();
        }
        let Some(out_path) = trace_out else {
            eprintln!("--record needs --trace-out FILE");
            return usage();
        };
        let plan = plan.with_sim_threads(sim_threads);
        return run_record_mode(&workload, &out_path, &plan);
    }
    if let Some(path) = trace_in {
        if !targets.is_empty() {
            eprintln!("--trace does not take artefact targets");
            return usage();
        }
        return run_trace_mode(&path, check);
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = ARTEFACTS.iter().map(|s| s.to_string()).collect();
    }
    plan = plan
        .with_check(check)
        .with_faults(fault_rate, fault_seed)
        .with_policy(policy)
        .with_sim_threads(sim_threads);
    if let Some(secs) = run_timeout {
        plan = plan.with_run_timeout(secs);
    }
    if resume && out_dir.is_none() {
        eprintln!("--resume needs --out DIR (that's where the journal lives)");
        return usage();
    }
    let mut exec = match jobs {
        Some(n) => Executor::new(n),
        None => Executor::auto(),
    };
    if let Some(dir) = &store_dir {
        // A store that cannot open is a warning, not a failure: the
        // sweep still produces every artefact, it just re-simulates.
        match ResultStore::open(dir) {
            Ok(store) => exec.set_store(Arc::new(store)),
            Err(e) => eprintln!(
                "# store: cannot open {} ({e}); continuing without persistence",
                dir.display()
            ),
        }
    }
    eprintln!(
        "# repro: scale={} max_cycles={} jobs={} sim_threads={} artefacts={:?}",
        plan.scale,
        plan.max_cycles,
        exec.jobs(),
        plan.sim_threads,
        targets
    );
    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let done_already: Vec<String> = match (&out_dir, resume) {
        (Some(dir), true) => match completed_artefacts(dir, &plan) {
            Ok(names) => names
                .into_iter()
                .filter(|name| dir.join(format!("{name}.txt")).is_file())
                .collect(),
            Err(e) => {
                eprintln!("{e}");
                eprintln!(
                    "(delete {} or rerun without --resume to start fresh)",
                    dir.join("repro.journal").display()
                );
                return ExitCode::FAILURE;
            }
        },
        _ => Vec::new(),
    };
    if let Some(dir) = &out_dir {
        // A non-resume run starts a fresh journal; a resume keeps the
        // verified one (creating it if the previous run died before the
        // header landed).
        if !resume || !dir.join("repro.journal").is_file() {
            if let Err(e) = start_journal(dir, &plan) {
                eprintln!("cannot start journal in {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let started_all = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut quarantined: Vec<(String, String)> = Vec::new();
    for t in &targets {
        if done_already.iter().any(|d| d == t) {
            eprintln!("# {t} already complete (resume) — skipped");
            continue;
        }
        let started = Instant::now();
        // Isolate each artefact: a panic (after the runner's own retries)
        // quarantines this artefact and the sweep moves on.
        let computed = catch_unwind(AssertUnwindSafe(|| run_artefact(t, &exec, &plan)));
        let outcome = match computed {
            Ok(o) => o,
            Err(payload) => {
                let why = panic_message(payload.as_ref());
                eprintln!("# {t} QUARANTINED: {why}");
                quarantined.push((t.clone(), why));
                continue;
            }
        };
        let Some((text, csv)) = outcome else {
            eprintln!("unknown artefact: {t}");
            return usage();
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = write_atomic(&dir.join(format!("{t}.txt")), text.as_bytes()) {
                eprintln!("cannot write {t}.txt: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(csv) = csv {
                if let Err(e) = write_atomic(&dir.join(format!("{t}.csv")), csv.as_bytes()) {
                    eprintln!("cannot write {t}.csv: {e}");
                    return ExitCode::FAILURE;
                }
            }
            // Journal only after the artefact's files are durably on
            // disk, so a crash between write and journal re-runs it.
            if let Err(e) = append_journal(dir, &journal_line(t)) {
                eprintln!("cannot update journal: {e}");
                return ExitCode::FAILURE;
            }
        }
        let secs = started.elapsed().as_secs_f64();
        eprintln!("# {t} done in {secs:.1}s");
        timings.push((t.clone(), secs));
    }
    let total_s = started_all.elapsed().as_secs_f64();
    let stats = exec.stats();
    eprintln!(
        "# total {:.1}s on {} jobs: {} runs executed, {} served from cache, \
         {} from the store, {:.1}M cycles simulated ({:.2}M cycles/s)",
        total_s,
        exec.jobs(),
        stats.runs_executed,
        stats.cache_hits,
        stats.store_hits,
        stats.cycles_simulated as f64 / 1e6,
        stats.cycles_simulated as f64 / 1e6 / total_s.max(1e-9)
    );
    let store_report = exec.store().map(|s| s.report());
    if let (Some(store), Some(r)) = (exec.store(), store_report) {
        eprintln!(
            "# store: {} hit(s), {} miss(es), {} corrupt quarantined, {} written{}{} ({})",
            r.hits,
            r.misses,
            r.corrupt,
            r.writes,
            if r.read_only { ", read-only" } else { "" },
            if r.degraded { ", DEGRADED" } else { "" },
            store.root().display()
        );
    }
    let json = bench_json(exec.jobs(), &plan, &timings, stats, store_report, total_s);
    let bench_path = out_dir
        .as_deref()
        .map(|d| d.join("BENCH_repro.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_repro.json"));
    if let Err(e) = write_atomic(&bench_path, json.as_bytes()) {
        eprintln!("cannot write {}: {e}", bench_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("# timings written to {}", bench_path.display());
    if check {
        if stats.violations > 0 {
            eprintln!(
                "# CHECK FAILED: {} invariant violation(s) across {} runs",
                stats.violations, stats.runs_executed
            );
            for s in exec.violation_samples() {
                eprintln!("#   {s}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "# check passed: 0 invariant violations across {} runs",
            stats.runs_executed
        );
    }
    if !quarantined.is_empty() {
        let mut report = String::new();
        for (name, why) in &quarantined {
            report.push_str(&format!("{name}\t{why}\n"));
        }
        let q_path = out_dir
            .as_deref()
            .map(|d| d.join("QUARANTINE.txt"))
            .unwrap_or_else(|| PathBuf::from("QUARANTINE.txt"));
        if let Err(e) = write_atomic(&q_path, report.as_bytes()) {
            eprintln!("cannot write {}: {e}", q_path.display());
        }
        eprintln!(
            "# {} artefact(s) quarantined (see {}):",
            quarantined.len(),
            q_path.display()
        );
        for (name, why) in &quarantined {
            eprintln!("#   {name}: {why}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
