//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all               # everything, reference scale
//! repro fig8              # one artefact
//! repro fig8 --scale 0.25 # reduced-scale quick look
//! repro --quick all       # scale 0.25 everywhere
//! repro --jobs 8 all      # executor thread count (default: all cores)
//! repro --out results all # also write <artefact>.txt/.csv under results/
//! repro all --check       # attach the runtime invariant checker
//! ```
//!
//! All artefacts share one [`Executor`], so a simulation needed by several
//! of them — e.g. the SRAM-baseline suite (fig3, fig8, workloads) or the
//! C1 suite (fig4 TH1, fig5 2-way, fig6, fig8, ablations) — runs exactly
//! once. The run summary printed at the end reports executed runs vs.
//! cache hits and simulated-cycle throughput; the same numbers plus
//! per-artefact wall-clock timings land in `BENCH_repro.json`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use sttgpu_experiments::{
    ablations, fig3, fig4, fig5, fig6, fig8, table1, table2, workload_table, Executor, RunPlan,
};

const ARTEFACTS: [&str; 9] = [
    "table1",
    "table2",
    "workloads",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "ablations",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--scale F] [--jobs N] [--out DIR] [--check] <all|{}> ...",
        ARTEFACTS.join("|")
    );
    ExitCode::FAILURE
}

/// Computes one artefact: the rendered text plus, where meaningful, a CSV.
fn run_artefact(name: &str, exec: &Executor, plan: &RunPlan) -> Option<(String, Option<String>)> {
    let (text, csv) = match name {
        "table1" => (table1::render(), Some(table1::to_csv())),
        "table2" => (table2::render(), Some(table2::to_csv())),
        "workloads" => {
            let rows = workload_table::compute(exec, plan);
            (
                workload_table::render(&rows),
                Some(workload_table::to_csv(&rows)),
            )
        }
        "fig3" => {
            let rows = fig3::compute(exec, plan);
            (fig3::render(&rows), Some(fig3::to_csv(&rows)))
        }
        "fig4" => {
            let rows = fig4::compute(exec, plan);
            (fig4::render(&rows), Some(fig4::to_csv(&rows)))
        }
        "fig5" => {
            let rows = fig5::compute(exec, plan);
            (fig5::render(&rows), Some(fig5::to_csv(&rows)))
        }
        "fig6" => {
            let rows = fig6::compute(exec, plan);
            (fig6::render(&rows), Some(fig6::to_csv(&rows)))
        }
        "fig8" => {
            let (rows, summary) = fig8::compute(exec, plan);
            (fig8::render(&rows, &summary), Some(fig8::to_csv(&rows)))
        }
        "ablations" => (ablations::render(exec, plan), None),
        _ => return None,
    };
    Some((text, csv))
}

/// Hand-rolled JSON for the timing report (no serde in the tree).
fn bench_json(
    jobs: usize,
    plan: &RunPlan,
    timings: &[(String, f64)],
    stats: sttgpu_experiments::ExecutorStats,
    total_s: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"scale\": {},\n", plan.scale));
    out.push_str(&format!("  \"max_cycles\": {},\n", plan.max_cycles));
    out.push_str(&format!("  \"wall_clock_s\": {total_s:.3},\n"));
    out.push_str(&format!("  \"runs_executed\": {},\n", stats.runs_executed));
    out.push_str(&format!("  \"cache_hits\": {},\n", stats.cache_hits));
    out.push_str(&format!(
        "  \"cycles_simulated\": {},\n",
        stats.cycles_simulated
    ));
    out.push_str(&format!(
        "  \"cycles_per_second\": {:.0},\n",
        stats.cycles_simulated as f64 / total_s.max(1e-9)
    ));
    out.push_str("  \"artefacts\": [\n");
    for (i, (name, secs)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_clock_s\": {secs:.3}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut plan = RunPlan::full();
    let mut targets: Vec<String> = Vec::new();
    let mut out_dir: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut check = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => plan = RunPlan::quick(),
            "--scale" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                if v <= 0.0 {
                    return usage();
                }
                plan = plan.with_scale(v);
            }
            "--jobs" => {
                let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                if n == 0 {
                    return usage();
                }
                jobs = Some(n);
            }
            "--out" => {
                let Some(dir) = args.next() else {
                    return usage();
                };
                out_dir = Some(PathBuf::from(dir));
            }
            "--check" => check = true,
            "-h" | "--help" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        return usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = ARTEFACTS.iter().map(|s| s.to_string()).collect();
    }
    plan = plan.with_check(check);
    let exec = match jobs {
        Some(n) => Executor::new(n),
        None => Executor::auto(),
    };
    eprintln!(
        "# repro: scale={} max_cycles={} jobs={} artefacts={:?}",
        plan.scale,
        plan.max_cycles,
        exec.jobs(),
        targets
    );
    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let started_all = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for t in &targets {
        let started = Instant::now();
        let Some((text, csv)) = run_artefact(t, &exec, &plan) else {
            eprintln!("unknown artefact: {t}");
            return usage();
        };
        println!("{text}");
        if let Some(dir) = &out_dir {
            if let Err(e) = fs::write(dir.join(format!("{t}.txt")), &text) {
                eprintln!("cannot write {t}.txt: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(csv) = csv {
                if let Err(e) = fs::write(dir.join(format!("{t}.csv")), csv) {
                    eprintln!("cannot write {t}.csv: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let secs = started.elapsed().as_secs_f64();
        eprintln!("# {t} done in {secs:.1}s");
        timings.push((t.clone(), secs));
    }
    let total_s = started_all.elapsed().as_secs_f64();
    let stats = exec.stats();
    eprintln!(
        "# total {:.1}s on {} jobs: {} runs executed, {} served from cache, \
         {:.1}M cycles simulated ({:.2}M cycles/s)",
        total_s,
        exec.jobs(),
        stats.runs_executed,
        stats.cache_hits,
        stats.cycles_simulated as f64 / 1e6,
        stats.cycles_simulated as f64 / 1e6 / total_s.max(1e-9)
    );
    let json = bench_json(exec.jobs(), &plan, &timings, stats, total_s);
    let bench_path = out_dir
        .as_deref()
        .map(|d| d.join("BENCH_repro.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_repro.json"));
    if let Err(e) = fs::write(&bench_path, json) {
        eprintln!("cannot write {}: {e}", bench_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("# timings written to {}", bench_path.display());
    if check {
        if stats.violations > 0 {
            eprintln!(
                "# CHECK FAILED: {} invariant violation(s) across {} runs",
                stats.violations, stats.runs_executed
            );
            for s in exec.violation_samples() {
                eprintln!("#   {s}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "# check passed: 0 invariant violations across {} runs",
            stats.runs_executed
        );
    }
    ExitCode::SUCCESS
}
