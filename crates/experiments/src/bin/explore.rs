//! `explore` — design-space exploration for custom two-part L2 designs.
//!
//! Sweeps LR capacity × LR retention (and optionally HR retention) on one
//! workload and reports performance, power, refresh load and endurance —
//! everything a designer would weigh when picking a point the paper did
//! not evaluate.
//!
//! ```text
//! explore --workload kmeans --scale 0.3 \
//!         --lr-kb 48,96,192 --lr-retention-us 10,26.5,100
//! ```

use std::env;
use std::process::ExitCode;

use sttgpu_core::{LlcPolicy, TwoPartConfig};
use sttgpu_device::endurance::LifetimeEstimate;
use sttgpu_device::mtj::RetentionTime;
use sttgpu_experiments::cli;
use sttgpu_experiments::configs::{gpu_config, L2Choice};
use sttgpu_experiments::report;
use sttgpu_experiments::runner::{Executor, RunPlan};
use sttgpu_sim::L2ModelConfig;
use sttgpu_workloads::suite;

struct Options {
    workload: String,
    scale: f64,
    lr_kb: Vec<u64>,
    lr_retention_us: Vec<f64>,
    hr_retention_ms: f64,
    hr_kb: u64,
    jobs: Option<usize>,
    sim_threads: u32,
    check: bool,
    policy: LlcPolicy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "kmeans".to_owned(),
            scale: 0.3,
            lr_kb: vec![48, 96, 192],
            lr_retention_us: vec![10.0, 26.5, 100.0],
            hr_retention_ms: 4.0,
            hr_kb: 1344,
            jobs: None,
            sim_threads: 1,
            check: false,
            policy: LlcPolicy::Fixed,
        }
    }
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Option<Vec<T>> {
    s.split(',').map(|x| x.trim().parse::<T>().ok()).collect()
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--workload" => opts.workload = value("--workload")?,
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "bad --scale".to_owned())?
            }
            "--lr-kb" => {
                opts.lr_kb =
                    parse_list(&value("--lr-kb")?).ok_or_else(|| "bad --lr-kb".to_owned())?
            }
            "--lr-retention-us" => {
                opts.lr_retention_us = parse_list(&value("--lr-retention-us")?)
                    .ok_or_else(|| "bad --lr-retention-us".to_owned())?
            }
            "--hr-retention-ms" => {
                opts.hr_retention_ms = value("--hr-retention-ms")?
                    .parse()
                    .map_err(|_| "bad --hr-retention-ms".to_owned())?
            }
            "--hr-kb" => {
                opts.hr_kb = value("--hr-kb")?
                    .parse()
                    .map_err(|_| "bad --hr-kb".to_owned())?
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs".to_owned())?;
                if n == 0 {
                    return Err("bad --jobs".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--sim-threads" => {
                let n: u32 = value("--sim-threads")?
                    .parse()
                    .map_err(|_| "bad --sim-threads".to_owned())?;
                if n == 0 {
                    return Err("bad --sim-threads".to_owned());
                }
                opts.sim_threads = n;
            }
            "--llc-policy" => {
                opts.policy = cli::parse_llc_policy(Some(&value("--llc-policy")?))
                    .map_err(|e| e.to_string())?
            }
            "--check" => opts.check = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: explore [--workload NAME] [--scale F] [--jobs N] [--sim-threads T] \
                 [--check] [--llc-policy NAME] [--lr-kb A,B,..]\n\
                 \t[--lr-retention-us A,B,..] [--hr-retention-ms X] [--hr-kb N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let Some(workload) = suite::by_name(&opts.workload) else {
        eprintln!(
            "unknown workload {:?}; available: {:?}",
            opts.workload,
            suite::names()
        );
        return ExitCode::FAILURE;
    };
    let plan = RunPlan {
        scale: opts.scale,
        max_cycles: 20_000_000,
        check: opts.check,
        policy: opts.policy,
        sim_threads: opts.sim_threads,
        ..RunPlan::full()
    };

    let exec = match opts.jobs {
        Some(n) => Executor::new(n),
        None => Executor::auto(),
    };

    // Baseline for normalisation.
    let base = exec.run(L2Choice::SramBaseline, &workload, &plan);
    let base_ipc = base.metrics.ipc();
    let base_power = base.metrics.l2_total_power_mw();
    println!(
        "workload {} (scale {}): SRAM baseline IPC {:.1}, L2 power {:.1} mW",
        opts.workload, opts.scale, base_ipc, base_power
    );
    println!(
        "sweeping {} LR sizes x {} LR retentions against {} KB HR @ {} ms on {} jobs\n",
        opts.lr_kb.len(),
        opts.lr_retention_us.len(),
        opts.hr_kb,
        opts.hr_retention_ms,
        exec.jobs()
    );

    let points: Vec<(u64, f64)> = opts
        .lr_kb
        .iter()
        .flat_map(|&lr_kb| {
            opts.lr_retention_us
                .iter()
                .map(move |&ret_us| (lr_kb, ret_us))
        })
        .collect();
    let rows: Vec<Vec<String>> = exec.map(&points, |&(lr_kb, ret_us)| {
        let tp = TwoPartConfig::new(lr_kb, 2, opts.hr_kb, 7, 256)
            .with_lr_retention(RetentionTime::from_micros(ret_us))
            .with_hr_retention(RetentionTime::from_millis(opts.hr_retention_ms));
        let mut cfg = gpu_config(L2Choice::TwoPartC1);
        cfg.l2 = L2ModelConfig::TwoPart(tp.clone());
        let out = exec.run_config(cfg, &workload, &plan);
        let stats = out.two_part.expect("two-part");
        let lr_rows = tp.lr_sets() as usize;
        let lifetime = LifetimeEstimate::from_write_matrix(
            &out.write_matrix[..lr_rows],
            out.metrics.elapsed_ns.max(1),
        );
        vec![
            format!("{lr_kb}KB @ {ret_us}us"),
            report::ratio(out.metrics.ipc() / base_ipc.max(1e-9)),
            report::pct(out.metrics.l2.hit_rate()),
            report::ratio(out.metrics.l2_total_power_mw() / base_power.max(1e-9)),
            stats.refreshes.to_string(),
            report::pct(stats.lr_write_utilization()),
            if lifetime.lifetime_years().is_infinite() {
                "inf".to_owned()
            } else {
                format!("{:.2}", lifetime.lifetime_years())
            },
        ]
    });
    println!(
        "{}",
        report::table(
            &[
                "LR design",
                "speedup",
                "L2 hit",
                "power vs SRAM",
                "refreshes",
                "LR write util",
                "LR life (yrs)"
            ],
            &rows
        )
    );
    if opts.check {
        let stats = exec.stats();
        if stats.violations > 0 {
            eprintln!(
                "CHECK FAILED: {} invariant violation(s) across {} runs",
                stats.violations, stats.runs_executed
            );
            for s in exec.violation_samples() {
                eprintln!("  {s}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "check passed: 0 invariant violations across {} runs",
            stats.runs_executed
        );
    }
    ExitCode::SUCCESS
}
