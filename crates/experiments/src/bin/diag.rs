//! Developer diagnostic: per-workload, per-config dump of the raw
//! quantities behind Fig. 8 (not a paper artefact).

use sttgpu_experiments::configs::L2Choice;
use sttgpu_experiments::runner::{run, RunPlan};
use sttgpu_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let names: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<f64>().is_err())
        .cloned()
        .collect();
    let names = if names.is_empty() {
        suite::names()
    } else {
        names
    };
    let plan = RunPlan {
        scale,
        max_cycles: 6_000_000,
    };
    for name in names {
        let w = suite::by_name(&name).expect("workload");
        println!("== {name} (scale {scale}) ==");
        for choice in L2Choice::ALL {
            let out = run(choice, &w, &plan);
            let m = &out.metrics;
            print!(
                "  {:<9} ipc {:7.2} cyc {:>9} fin {} l2hit {:.3} acc {:>8} dramR {:>7} dramW {:>6} dynP {:8.2}mW totP {:8.2}mW",
                choice.label(),
                m.ipc(),
                m.cycles,
                m.finished as u8,
                m.l2.hit_rate(),
                m.l2.accesses(),
                m.dram_reads,
                m.dram_writes,
                m.l2_dynamic_power_mw(),
                m.l2_total_power_mw(),
            );
            print!(
                " l1hit {:.3} mshrStall {} idle {} rdLat {:.1}ns",
                m.l1_hit_rate(),
                m.mshr_stalls,
                m.sm_idle_cycles,
                m.l2_read_hit_latency_ns
            );
            if let Some(tp) = &out.two_part {
                print!(
                    " | lrW {} hrW {} mig {} dem {} rfr {} hrExp {} ovf {}",
                    tp.demand_writes_lr,
                    tp.demand_writes_hr,
                    tp.migrations_to_lr,
                    tp.demotions_to_hr,
                    tp.refreshes,
                    tp.hr_expirations,
                    tp.overflow_writebacks
                );
            }
            println!();
        }
    }
}
