//! Developer diagnostic: per-workload, per-config dump of the raw
//! quantities behind Fig. 8 (not a paper artefact).
//!
//! `--trace-jsonl PATH` switches to trace-dump mode: the first named
//! workload (default `kmeans`) runs once on the two-part C1 configuration
//! with a streaming JSONL sink attached, writing one typed event per line
//! to PATH for offline inspection.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use sttgpu_experiments::configs::{gpu_config, L2Choice};
use sttgpu_experiments::error::RunError;
use sttgpu_experiments::runner::{run, RunPlan};
use sttgpu_sim::Gpu;
use sttgpu_trace::{JsonlSink, Trace};
use sttgpu_workloads::suite;

fn lookup(name: &str) -> Result<sttgpu_sim::Workload, RunError> {
    suite::by_name(name).ok_or_else(|| RunError::UnknownWorkload {
        name: name.to_string(),
    })
}

fn dump_trace(path: &str, name: &str, plan: &RunPlan) -> Result<(), RunError> {
    let w = lookup(name)?;
    let scaled = suite::scaled(&w, plan.scale);
    let file = BufWriter::new(File::create(path).map_err(|e| RunError::io(path, e))?);
    let sink = Arc::new(Mutex::new(JsonlSink::new(file)));
    let mut gpu = Gpu::new(gpu_config(L2Choice::TwoPartC1));
    gpu.set_trace(Trace::to_sink(Arc::clone(&sink)));
    let metrics = gpu.run_workload(&scaled, plan.max_cycles);
    drop(gpu);
    let sink = Arc::try_unwrap(sink)
        .unwrap_or_else(|_| unreachable!("gpu dropped its trace handles"))
        .into_inner()
        .expect("trace sink poisoned");
    let written = sink.written();
    sink.into_inner()
        .flush()
        .map_err(|e| RunError::io(path, e))?;
    println!(
        "wrote {written} events to {path} ({name} @ scale {}, {} cycles, finished: {})",
        plan.scale, metrics.cycles, metrics.finished
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let trace_jsonl: Option<String> = args
        .iter()
        .position(|a| a == "--trace-jsonl")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let names: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--scale" || *a == "--trace-jsonl" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .cloned()
            .collect()
    };
    let plan = RunPlan {
        scale,
        max_cycles: 6_000_000,
        check: false,
        ..RunPlan::full()
    };
    if let Some(path) = trace_jsonl {
        let name = names.first().map(String::as_str).unwrap_or("kmeans");
        if let Err(e) = dump_trace(&path, name, &plan) {
            eprintln!("diag: {e}");
            if let RunError::UnknownWorkload { .. } = e {
                eprintln!("available workloads: {:?}", suite::names());
            }
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let names = if names.is_empty() {
        suite::names()
    } else {
        names
    };
    for name in names {
        let w = match lookup(&name) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("diag: {e}; available workloads: {:?}", suite::names());
                return ExitCode::FAILURE;
            }
        };
        println!("== {name} (scale {scale}) ==");
        for choice in L2Choice::ALL {
            let out = run(choice, &w, &plan);
            let m = &out.metrics;
            print!(
                "  {:<9} ipc {:7.2} cyc {:>9} fin {} l2hit {:.3} acc {:>8} dramR {:>7} dramW {:>6} dynP {:8.2}mW totP {:8.2}mW",
                choice.label(),
                m.ipc(),
                m.cycles,
                m.finished as u8,
                m.l2.hit_rate(),
                m.l2.accesses(),
                m.dram_reads,
                m.dram_writes,
                m.l2_dynamic_power_mw(),
                m.l2_total_power_mw(),
            );
            print!(
                " l1hit {:.3} mshrStall {} idle {} rdLat {:.1}ns",
                m.l1_hit_rate(),
                m.mshr_stalls,
                m.sm_idle_cycles,
                m.l2_read_hit_latency_ns
            );
            if let Some(tp) = &out.two_part {
                print!(
                    " | lrW {} hrW {} mig {} dem {} rfr {} hrExp {} ovf {}",
                    tp.demand_writes_lr,
                    tp.demand_writes_hr,
                    tp.migrations_to_lr,
                    tp.demotions_to_hr,
                    tp.refreshes,
                    tp.hr_expirations,
                    tp.overflow_writebacks
                );
            }
            println!();
        }
    }
    ExitCode::SUCCESS
}
