//! Trace-driven replay: driving a [`TwoPartLlc`] from a trace file or a
//! generated scenario, without the SM front-end.
//!
//! Three entry points:
//!
//! * [`record_workload`] runs a built-in workload with the simulator's
//!   LLC call log on and returns the verbatim probe/fill/maintain
//!   stream as raw-mode trace records — replaying them through
//!   [`replay_records`] reproduces the run's [`TwoPartStats`] bit for
//!   bit, which is the property the record/replay equivalence test
//!   pins.
//! * [`replay_records`] replays either trace mode against a fresh LLC:
//!   raw records are issued exactly as written; requests-mode records
//!   run under the oracle's fill-on-miss discipline (maintenance swept
//!   at the cadence, miss filled immediately, dirty iff the access was
//!   a write).
//! * [`Executor::run_scenario`] lowers a named scenario family under a
//!   seed, differential-tests the resulting trace across every oracle
//!   corner geometry, replays it on the C1 geometry for a stats block,
//!   and memoizes the outcome under the scenario axes
//!   `(family, seed, check)`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc, TwoPartStats};
use sttgpu_device::energy::EnergyEvent;
use sttgpu_oracle::{
    corner_geometries, records_to_ops, run_case, scenario_by_name, Divergence, Op,
};
use sttgpu_sim::Gpu;
use sttgpu_trace::{CheckReport, Checker, EventSink, Trace, TraceEvent, ENERGY_CATEGORIES};
use sttgpu_tracefile::{TraceHeader, TraceMode, TraceRecord};
use sttgpu_workloads::suite;

use crate::configs::{gpu_config, two_part_config, L2Choice};
use crate::runner::{Executor, RunPlan};

/// Everything captured from one trace replay.
#[derive(Debug, Clone)]
pub struct ReplayOutput {
    /// The replayed LLC's full statistics block.
    pub stats: TwoPartStats,
    /// Records replayed.
    pub records: u64,
    /// Timestamp of the last replayed call, ns.
    pub end_ns: u64,
    /// Invariant-checker report when requested; `None` otherwise.
    pub check: Option<CheckReport>,
}

/// A recorded workload run: the raw-mode call stream plus the stats the
/// recording run itself produced (the replay must reproduce them).
#[derive(Debug, Clone)]
pub struct Recording {
    /// Raw-mode header (the recording config's line size).
    pub header: TraceHeader,
    /// The verbatim LLC call stream.
    pub records: Vec<TraceRecord>,
    /// The recording run's own LLC statistics block.
    pub stats: TwoPartStats,
}

/// Builds the replay checker for `llc`: retention thresholds from the
/// geometry plus the same timing slack the simulator harness uses —
/// recorded probes time-stamp at interconnect arrival, so they can
/// trail the maintenance engines by up to a cadence plus traversal lag.
fn replay_checker(cfg: &TwoPartConfig, llc: &TwoPartLlc) -> Arc<Mutex<Checker>> {
    let interval = llc.maintenance_interval_ns();
    let slack = if interval == u64::MAX {
        0
    } else {
        interval + 4 * gpu_config(L2Choice::TwoPartC1).icnt_latency_ns + 2_000
    };
    Arc::new(Mutex::new(Checker::new(
        cfg.check_config().with_slack_ns(slack),
    )))
}

/// Feeds the end-of-run conservation reports into `checker` and closes
/// the run, returning the accumulated report.
fn close_replay_check(checker: &Arc<Mutex<Checker>>, llc: &TwoPartLlc) -> CheckReport {
    let s = llc.summary();
    let mut c = checker.lock().expect("checker poisoned");
    c.emit(&TraceEvent::MetricsReport {
        read_hits: s.read_hits,
        read_misses: s.read_misses,
        write_hits: s.write_hits,
        write_misses: s.write_misses,
        writebacks: s.writebacks,
    });
    let mut by_category = [0.0; ENERGY_CATEGORIES];
    for ev in EnergyEvent::ALL {
        by_category[ev.index()] = llc.energy().dynamic_nj_for(ev);
    }
    c.emit(&TraceEvent::EnergyReport {
        by_category,
        total_nj: llc.energy().dynamic_nj(),
    });
    c.finish_run(true);
    c.report()
}

/// Replays trace records against a fresh [`TwoPartLlc`] built from
/// `cfg`.
///
/// Raw-mode records are issued verbatim — every probe, fill and
/// maintain exactly as recorded, in recorded order — so the resulting
/// statistics block matches the recording run's. Requests-mode records
/// run under the oracle's replay discipline: the clock starts one tick
/// past the epoch, maintenance sweeps at the cadence before each
/// access, and every miss fills immediately (dirty iff the access was
/// a write).
///
/// Fails (with a printable message, never a panic) when the trace's
/// line size does not match the geometry's.
pub fn replay_records(
    cfg: &TwoPartConfig,
    header: &TraceHeader,
    records: &[TraceRecord],
    check: bool,
) -> Result<ReplayOutput, String> {
    if header.line_bytes != cfg.line_bytes {
        return Err(format!(
            "trace is {}-byte-line granular but the replay geometry uses {}-byte lines",
            header.line_bytes, cfg.line_bytes
        ));
    }
    let mut llc = TwoPartLlc::new(cfg.clone());
    let checker = check.then(|| {
        let checker = replay_checker(cfg, &llc);
        llc.set_trace(Trace::to_sink(Arc::clone(&checker)));
        checker
    });
    let line_bytes = cfg.line_bytes as u64;
    let mut end_ns = 0u64;
    match header.mode {
        TraceMode::Raw => {
            for rec in records {
                end_ns = rec.at_ns();
                match *rec {
                    TraceRecord::Access { at_ns, line, write } => {
                        let kind = if write {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        llc.probe(line * line_bytes, kind, at_ns);
                    }
                    TraceRecord::Fill { at_ns, line, dirty } => {
                        llc.fill(line * line_bytes, dirty, at_ns);
                    }
                    TraceRecord::Maintain { at_ns } => llc.maintain(at_ns),
                }
            }
        }
        TraceMode::Requests => {
            let ops = records_to_ops(records).map_err(|e| e.to_string())?;
            end_ns = replay_ops(&mut llc, &ops);
        }
    }
    let check = checker.map(|c| close_replay_check(&c, &llc));
    Ok(ReplayOutput {
        stats: *llc.stats(),
        records: records.len() as u64,
        end_ns,
        check,
    })
}

/// Drives `llc` through `ops` under the oracle's replay discipline;
/// returns the final clock.
fn replay_ops(llc: &mut TwoPartLlc, ops: &[Op]) -> u64 {
    let cadence = llc.maintenance_interval_ns();
    let line_bytes = llc.config().line_bytes as u64;
    let mut now = 1u64;
    let mut last_maintain = now;
    for op in ops {
        now += op.dt_ns.max(1);
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let byte_addr = op.line * line_bytes;
        let kind = if op.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if !llc.probe(byte_addr, kind, now).hit {
            llc.fill(byte_addr, op.write, now);
        }
    }
    now
}

/// Runs `workload` (scaled by the plan) on the `choice` GPU with the
/// LLC call log on, and returns the verbatim call stream as raw-mode
/// records together with the run's own stats block. The log is
/// deterministic for any `sim_threads` setting — requests batch and
/// apply on the coordinating thread.
///
/// Fails when `choice` is not a two-part design point: raw traces exist
/// to replay against [`TwoPartLlc`].
pub fn record_workload(
    choice: L2Choice,
    workload_name: &str,
    plan: &RunPlan,
) -> Result<Recording, String> {
    if two_part_config(choice).is_none() {
        return Err(format!(
            "{} is not a two-part configuration; record against C1/C2/C3",
            choice.label()
        ));
    }
    let workload = suite::by_name(workload_name)
        .ok_or_else(|| format!("unknown workload: {workload_name}"))?;
    let scaled = if (plan.scale - 1.0).abs() < 1e-9 {
        workload
    } else {
        suite::scaled(&workload, plan.scale)
    };
    let cfg = gpu_config(choice);
    let line_bytes = cfg.l2_line_bytes;
    let mut gpu = Gpu::new(cfg);
    gpu.set_sim_threads(plan.sim_threads as usize);
    gpu.start_llc_call_log();
    gpu.run_workload(&scaled, plan.max_cycles);
    let records = gpu.take_llc_call_log().expect("call log was started");
    let stats = *gpu
        .llc()
        .as_two_part()
        .expect("two-part choice checked above")
        .stats();
    Ok(Recording {
        header: TraceHeader::raw(line_bytes),
        records,
        stats,
    })
}

/// Outcome of one scenario run: the differential verdict across every
/// corner geometry plus a C1 stats block.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Family the trace was drawn from.
    pub family: &'static str,
    /// Seed the spec and trace were drawn under.
    pub seed: u64,
    /// Display name of the concrete spec (family plus seed).
    pub spec_name: String,
    /// Operations in the lowered trace.
    pub ops: usize,
    /// Corners that diverged (empty = differential clean).
    pub divergences: Vec<(&'static str, Divergence)>,
    /// Replay of the trace on the C1 geometry.
    pub replay: ReplayOutput,
}

impl ScenarioOutcome {
    /// Whether the differential ran clean and any attached checker
    /// stayed green.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty() && self.replay.check.as_ref().is_none_or(CheckReport::is_clean)
    }
}

/// Memoization key of one scenario run: the scenario axes.
type ScenarioKey = (String, u64, bool);

/// The scenario memo cache hanging off an [`Executor`] (see
/// [`Executor::run_scenario`]); keyed by the scenario axes, shared by
/// every artefact holding the same executor.
#[derive(Debug, Default)]
pub struct ScenarioCache {
    cells: Mutex<HashMap<ScenarioKey, Arc<OnceLock<Arc<ScenarioOutcome>>>>>,
}

fn run_scenario_uncached(
    family: &'static str,
    make: fn(u64) -> sttgpu_oracle::ScenarioSpec,
    seed: u64,
    check: bool,
) -> Result<ScenarioOutcome, String> {
    let spec = make(seed);
    let ops = spec.lower(seed.rotate_left(17));
    let divergences: Vec<(&'static str, Divergence)> = corner_geometries()
        .iter()
        .filter_map(|corner| run_case(&corner.cfg, &ops).map(|d| (corner.name, d)))
        .collect();
    let cfg = two_part_config(L2Choice::TwoPartC1).expect("C1 is two-part");
    let records = sttgpu_oracle::ops_to_records(&ops);
    let header = TraceHeader::requests(cfg.line_bytes);
    let replay = replay_records(&cfg, &header, &records, check)?;
    Ok(ScenarioOutcome {
        family,
        seed,
        spec_name: spec.name,
        ops: ops.len(),
        divergences,
        replay,
    })
}

impl Executor {
    /// Memoized scenario run: lowers `family` under `seed`,
    /// differential-tests the trace across every corner geometry and
    /// replays it on C1. The outcome is cached under the scenario axes
    /// `(family, seed, check)`, so artefacts sharing this executor run
    /// each unique scenario exactly once.
    pub fn run_scenario(
        &self,
        family: &str,
        seed: u64,
        check: bool,
    ) -> Result<Arc<ScenarioOutcome>, String> {
        let fam =
            scenario_by_name(family).ok_or_else(|| format!("unknown scenario family: {family}"))?;
        let cell = {
            let mut cells = self
                .scenario_cache()
                .cells
                .lock()
                .expect("scenario cache poisoned");
            Arc::clone(
                cells
                    .entry((fam.name.to_string(), seed, check))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        // OnceLock::get_or_init has no fallible variant; initialize
        // manually so an error is returned, not cached.
        if let Some(out) = cell.get() {
            return Ok(Arc::clone(out));
        }
        let out = Arc::new(run_scenario_uncached(fam.name, fam.make, seed, check)?);
        Ok(Arc::clone(cell.get_or_init(|| out)))
    }
}

/// Renders a [`TwoPartStats`] block, one `name value` line per counter —
/// the block `--trace`, `--scenario` and `--record` print, and the one
/// record/replay equivalence compares.
pub fn render_stats(s: &TwoPartStats) -> String {
    let fields: [(&str, u64); 27] = [
        ("lr_read_hits", s.lr_read_hits),
        ("hr_read_hits", s.hr_read_hits),
        ("lr_write_hits", s.lr_write_hits),
        ("hr_write_hits", s.hr_write_hits),
        ("read_misses", s.read_misses),
        ("write_misses", s.write_misses),
        ("demand_writes_lr", s.demand_writes_lr),
        ("demand_writes_hr", s.demand_writes_hr),
        ("lr_array_writes", s.lr_array_writes),
        ("hr_array_writes", s.hr_array_writes),
        ("migrations_to_lr", s.migrations_to_lr),
        ("demotions_to_hr", s.demotions_to_hr),
        ("refreshes", s.refreshes),
        ("lr_expirations", s.lr_expirations),
        ("hr_expirations", s.hr_expirations),
        ("writebacks", s.writebacks),
        ("overflow_writebacks", s.overflow_writebacks),
        ("second_search_hits", s.second_search_hits),
        ("fills_to_lr", s.fills_to_lr),
        ("fills_to_hr", s.fills_to_hr),
        ("lr_rotations", s.lr_rotations),
        ("ecc_corrections", s.ecc_corrections),
        ("ecc_uncorrectable", s.ecc_uncorrectable),
        ("data_loss_events", s.data_loss_events),
        ("refresh_drops", s.refresh_drops),
        ("buffer_stalls", s.buffer_stalls),
        ("bank_faults", s.bank_faults),
    ];
    let mut out = String::new();
    for (name, v) in fields {
        out.push_str(&format!("{name:<22} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> RunPlan {
        RunPlan::full().with_scale(0.05)
    }

    #[test]
    fn recording_refuses_non_two_part_choices() {
        let err = record_workload(L2Choice::SramBaseline, "nw", &tiny_plan()).unwrap_err();
        assert!(err.contains("not a two-part"), "{err}");
    }

    #[test]
    fn recording_an_unknown_workload_fails_cleanly() {
        let err = record_workload(L2Choice::TwoPartC1, "no-such", &tiny_plan()).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn replay_rejects_mismatched_line_sizes() {
        let cfg = two_part_config(L2Choice::TwoPartC1).expect("C1");
        let header = TraceHeader::requests(64);
        let err = replay_records(&cfg, &header, &[], false).unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn scenario_runs_are_memoized_per_axes() {
        let exec = Executor::sequential();
        let a = exec
            .run_scenario("zipf-hot", 7, false)
            .expect("known family");
        let b = exec
            .run_scenario("zipf-hot", 7, false)
            .expect("known family");
        assert!(Arc::ptr_eq(&a, &b), "same axes must hit the cache");
        let c = exec
            .run_scenario("zipf-hot", 8, false)
            .expect("known family");
        assert!(!Arc::ptr_eq(&a, &c), "a different seed is a different run");
        assert!(a.is_clean(), "zipf-hot:7 must be divergence-free");
        assert!(a.ops > 0);
    }

    #[test]
    fn unknown_scenario_families_fail_cleanly() {
        let err = Executor::sequential()
            .run_scenario("no-such-family", 1, false)
            .unwrap_err();
        assert!(err.contains("unknown scenario family"), "{err}");
    }

    #[test]
    fn scenario_replay_with_checker_stays_green() {
        let exec = Executor::sequential();
        let out = exec
            .run_scenario("grid-burst", 3, true)
            .expect("known family");
        let report = out.replay.check.as_ref().expect("checker attached");
        assert!(
            report.is_clean(),
            "checker violations: {:?}",
            report.samples
        );
    }

    #[test]
    fn rendered_stats_cover_every_counter() {
        let s = TwoPartStats::default();
        let text = render_stats(&s);
        assert_eq!(text.lines().count(), 27);
        assert!(text.contains("second_search_hits"));
    }
}
