//! Fig. 6: distribution of rewrite-interval times in the LR cache.
//!
//! Runs each workload on C1 and buckets the time between successive
//! writes to the same LR line (≤1 µs, ≤5 µs, ≤10 µs, ≤1 ms, ≤2.5 ms,
//! >2.5 ms). The paper's observation — most LR blocks are rewritten well
//! > within 10 µs, which is what makes a µs-class retention LR viable — is
//! > what justifies the LR retention target and its 4-bit retention counter.

use sttgpu_workloads::suite;

use crate::configs::L2Choice;
use crate::report;
use crate::runner::{Executor, RunPlan};

/// Bucket labels, matching [`sttgpu_core`]'s rewrite-interval histogram
/// layout.
pub const BUCKET_LABELS: [&str; 6] = ["<=1us", "<=5us", "<=10us", "<=1ms", "<=2.5ms", ">2.5ms"];

/// One workload's rewrite-interval distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Workload name.
    pub workload: String,
    /// Fraction of rewrite intervals per bucket (sums to 1 when any
    /// rewrites were observed).
    pub fractions: [f64; 6],
    /// Total rewrite intervals observed.
    pub total: u64,
}

/// Runs the suite on C1 and collects LR rewrite-interval distributions.
pub fn compute(exec: &Executor, plan: &RunPlan) -> Vec<Fig6Row> {
    let workloads = suite::all();
    exec.map(&workloads, |w| {
        let out = exec.run(L2Choice::TwoPartC1, w, plan);
        let h = out.lr_rewrite_intervals.as_ref().expect("C1 is two-part");
        let f = h.fractions();
        let mut fractions = [0.0f64; 6];
        fractions.copy_from_slice(&f);
        Fig6Row {
            workload: w.name.clone(),
            fractions,
            total: h.total(),
        }
    })
}

/// Renders the distribution table (percentages, as the paper's stacked
/// bars).
pub fn render(rows: &[Fig6Row]) -> String {
    let mut out = String::from("Fig. 6: rewrite interval time distribution in the LR cache\n");
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![r.workload.clone()];
            cells.extend(r.fractions.iter().map(|f| report::pct(*f)));
            cells
        })
        .collect();
    let mut avg = vec!["AVG".to_owned()];
    for i in 0..6 {
        let col: Vec<f64> = rows.iter().map(|r| r.fractions[i]).collect();
        avg.push(report::pct(report::mean(&col)));
    }
    body.push(avg);
    let mut headers = vec!["workload"];
    headers.extend(BUCKET_LABELS);
    out.push_str(&report::table(&headers, &body));
    out
}

/// Renders the distributions as long-format CSV.
pub fn to_csv(rows: &[Fig6Row]) -> String {
    let mut body = Vec::new();
    for r in rows {
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            body.push(vec![
                r.workload.clone(),
                (*label).to_owned(),
                format!("{:.6}", r.fractions[i]),
                r.total.to_string(),
            ]);
        }
    }
    report::csv(&["workload", "bucket", "fraction", "total_rewrites"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 6's message: the bulk of LR rewrites happen within 10 us.
    #[test]
    fn most_rewrites_are_fast() {
        let plan = RunPlan {
            scale: 0.06,
            max_cycles: 3_000_000,
            check: false,
            ..RunPlan::full()
        };
        let w = suite::by_name("kmeans").expect("kmeans");
        let out = crate::runner::run(L2Choice::TwoPartC1, &w, &plan);
        let h = out.lr_rewrite_intervals.expect("two-part");
        assert!(
            h.total() > 100,
            "kmeans must rewrite LR lines, saw {}",
            h.total()
        );
        let within_10us = h.cumulative_fraction_at(10_000);
        assert!(
            within_10us > 0.5,
            "most rewrites must be within 10us, got {within_10us}"
        );
    }
}
