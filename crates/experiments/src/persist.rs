//! Persistent result store integration: a binary codec for
//! [`RunOutput`] and a degrading wrapper around [`sttgpu_store::Store`].
//!
//! Three concerns live here:
//!
//! * **Stable keys** — [`run_store_key`] / [`config_store_key`] hash a
//!   `(configuration, workload, RunPlan)` triple into a content address
//!   that is identical across processes and invocations, so a warm
//!   store serves every repeat run without simulating. The
//!   [`STORE_GENERATION`] constant is folded into every key: bumping it
//!   when the simulator's output semantics change silently retires all
//!   previously stored entries (they become unreachable, never wrong).
//! * **A versioned payload codec** — [`encode_run_output`] /
//!   [`decode_run_output`] serialize the full [`RunOutput`] (metrics,
//!   two-part internals, histograms, write matrix, checker report) with
//!   the bounds-checked [`sttgpu_store::codec`] primitives. Decoding
//!   never panics; any mismatch is a typed [`CodecError`].
//! * **Graceful degradation** — [`ResultStore`] wraps the raw store so
//!   callers see only `Option<RunOutput>`: corrupt entries are
//!   quarantined and reported as misses (the runner recomputes), and
//!   the first infrastructure failure (unwritable directory, disk
//!   full, mangled metadata) trips a one-way `degraded` latch that
//!   turns every later call into a cheap no-op — the sweep finishes on
//!   in-memory memoization alone, with a single warning.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sttgpu_core::TwoPartStats;
use sttgpu_device::energy::{EnergyAccount, EnergyEvent};
use sttgpu_sim::metrics::KernelSpan;
use sttgpu_sim::{GpuConfig, RunMetrics};
use sttgpu_stats::Histogram;
use sttgpu_store::codec::{CodecError, Dec, Enc};
use sttgpu_store::{Fetch, Key, StableHasher, Store, StoreError};
use sttgpu_trace::CheckReport;

use crate::configs::L2Choice;
use crate::runner::{RunOutput, RunPlan};

/// Generation stamp folded into every store key and the repro journal
/// header. Bump it whenever simulator output semantics change in a way
/// byte-level reproduction must not paper over: old entries become
/// unreachable (a clean cold start) instead of silently stale.
pub const STORE_GENERATION: u32 = 1;

/// Version byte of the [`RunOutput`] payload layout itself, checked
/// before any field decode. Independent of the entry-container version
/// (`sttgpu_store::FORMAT_VERSION`) and of [`STORE_GENERATION`]: the
/// container guards bytes, the generation guards semantics, this guards
/// the field layout below.
const PAYLOAD_VERSION: u8 = 1;

/// Hashes the key-relevant fields of a [`RunPlan`]. The wall-clock
/// watchdog (`run_timeout_s`) is deliberately excluded: a timeout can
/// only abort a run, never alter the bytes of one that completed.
fn hash_plan(h: &mut StableHasher, plan: &RunPlan) {
    h.f64_bits(plan.scale)
        .u64(plan.max_cycles)
        .bool(plan.check)
        .f64_bits(plan.fault.rate)
        .u64(plan.fault.seed)
        .str(plan.policy.name())
        .u32(plan.sim_threads);
}

/// Content address of a named-configuration run — the persistent twin
/// of the executor's in-memory memo key.
pub fn run_store_key(choice: L2Choice, workload: &str, plan: &RunPlan) -> Key {
    let mut h = StableHasher::new("sttgpu-run");
    h.u32(STORE_GENERATION).str(choice.label()).str(workload);
    hash_plan(&mut h, plan);
    h.finish()
}

/// Content address of an ad-hoc configuration run (ablation sweeps).
/// `GpuConfig` has no compact identity, so the key hashes its full
/// `Debug` rendering: the derive chain prints every field, so any
/// config difference changes the key, and a future field addition
/// changes the rendering — which safely *misses* and recomputes rather
/// than serving a result for the wrong configuration.
pub fn config_store_key(cfg: &GpuConfig, workload: &str, plan: &RunPlan) -> Key {
    let mut h = StableHasher::new("sttgpu-config-run");
    h.u32(STORE_GENERATION)
        .str(&format!("{cfg:?}"))
        .str(workload);
    hash_plan(&mut h, plan);
    h.finish()
}

fn enc_energy(e: &mut Enc, acct: &EnergyAccount) {
    e.f64(acct.leakage_mw());
    for ev in EnergyEvent::ALL {
        e.f64(acct.dynamic_nj_for(ev));
    }
}

fn dec_energy(d: &mut Dec) -> Result<EnergyAccount, CodecError> {
    let mut acct = EnergyAccount::with_leakage_mw(d.f64()?);
    for ev in EnergyEvent::ALL {
        // Depositing onto a zero account is exact (0.0 + x == x), so the
        // rebuilt ledger is bit-identical to the one that was encoded.
        acct.deposit(ev, d.f64()?);
    }
    Ok(acct)
}

fn enc_metrics(e: &mut Enc, m: &RunMetrics) {
    e.str(&m.workload);
    e.u64(m.cycles).u64(m.elapsed_ns).u64(m.instructions);
    e.bool(m.finished).u32(m.kernels_skipped);
    e.u64(m.l2.read_hits)
        .u64(m.l2.read_misses)
        .u64(m.l2.write_hits)
        .u64(m.l2.write_misses)
        .u64(m.l2.writebacks);
    enc_energy(e, &m.l2_energy);
    e.u64(m.l1_read_hits)
        .u64(m.l1_read_misses)
        .u64(m.dram_reads)
        .u64(m.dram_writes)
        .u64(m.dram_row_hits)
        .u64(m.mshr_stalls)
        .u64(m.sm_idle_cycles)
        .f64(m.l2_read_hit_latency_ns);
    e.len(m.kernel_spans.len());
    for span in &m.kernel_spans {
        e.str(&span.name).u64(span.cycles).u64(span.instructions);
    }
}

fn dec_metrics(d: &mut Dec) -> Result<RunMetrics, CodecError> {
    let workload = d.str()?;
    let (cycles, elapsed_ns, instructions) = (d.u64()?, d.u64()?, d.u64()?);
    let (finished, kernels_skipped) = (d.bool()?, d.u32()?);
    let l2 = sttgpu_core::LlcStats {
        read_hits: d.u64()?,
        read_misses: d.u64()?,
        write_hits: d.u64()?,
        write_misses: d.u64()?,
        writebacks: d.u64()?,
    };
    let l2_energy = dec_energy(d)?;
    let l1_read_hits = d.u64()?;
    let l1_read_misses = d.u64()?;
    let dram_reads = d.u64()?;
    let dram_writes = d.u64()?;
    let dram_row_hits = d.u64()?;
    let mshr_stalls = d.u64()?;
    let sm_idle_cycles = d.u64()?;
    let l2_read_hit_latency_ns = d.f64()?;
    let n = d.len()?;
    let mut kernel_spans = Vec::with_capacity(n);
    for _ in 0..n {
        kernel_spans.push(KernelSpan {
            name: d.str()?,
            cycles: d.u64()?,
            instructions: d.u64()?,
        });
    }
    Ok(RunMetrics {
        workload,
        cycles,
        elapsed_ns,
        instructions,
        finished,
        kernels_skipped,
        l2,
        l2_energy,
        l1_read_hits,
        l1_read_misses,
        dram_reads,
        dram_writes,
        dram_row_hits,
        mshr_stalls,
        sm_idle_cycles,
        l2_read_hit_latency_ns,
        kernel_spans,
    })
}

fn enc_two_part(e: &mut Enc, tp: &TwoPartStats) {
    // Field order mirrors the struct declaration; the decoder's struct
    // literal keeps both sides honest (a new field fails to compile).
    e.u64(tp.lr_read_hits)
        .u64(tp.hr_read_hits)
        .u64(tp.lr_write_hits)
        .u64(tp.hr_write_hits)
        .u64(tp.read_misses)
        .u64(tp.write_misses)
        .u64(tp.demand_writes_lr)
        .u64(tp.demand_writes_hr)
        .u64(tp.lr_array_writes)
        .u64(tp.hr_array_writes)
        .u64(tp.migrations_to_lr)
        .u64(tp.demotions_to_hr)
        .u64(tp.refreshes)
        .u64(tp.lr_expirations)
        .u64(tp.hr_expirations)
        .u64(tp.writebacks)
        .u64(tp.overflow_writebacks)
        .u64(tp.second_search_hits)
        .u64(tp.fills_to_lr)
        .u64(tp.fills_to_hr)
        .u64(tp.lr_rotations)
        .u64(tp.ecc_corrections)
        .u64(tp.ecc_uncorrectable)
        .u64(tp.data_loss_events)
        .u64(tp.refresh_drops)
        .u64(tp.buffer_stalls)
        .u64(tp.bank_faults);
}

fn dec_two_part(d: &mut Dec) -> Result<TwoPartStats, CodecError> {
    Ok(TwoPartStats {
        lr_read_hits: d.u64()?,
        hr_read_hits: d.u64()?,
        lr_write_hits: d.u64()?,
        hr_write_hits: d.u64()?,
        read_misses: d.u64()?,
        write_misses: d.u64()?,
        demand_writes_lr: d.u64()?,
        demand_writes_hr: d.u64()?,
        lr_array_writes: d.u64()?,
        hr_array_writes: d.u64()?,
        migrations_to_lr: d.u64()?,
        demotions_to_hr: d.u64()?,
        refreshes: d.u64()?,
        lr_expirations: d.u64()?,
        hr_expirations: d.u64()?,
        writebacks: d.u64()?,
        overflow_writebacks: d.u64()?,
        second_search_hits: d.u64()?,
        fills_to_lr: d.u64()?,
        fills_to_hr: d.u64()?,
        lr_rotations: d.u64()?,
        ecc_corrections: d.u64()?,
        ecc_uncorrectable: d.u64()?,
        data_loss_events: d.u64()?,
        refresh_drops: d.u64()?,
        buffer_stalls: d.u64()?,
        bank_faults: d.u64()?,
    })
}

fn enc_histogram(e: &mut Enc, h: &Histogram) {
    let bounds = h.bounds();
    e.len(bounds.len());
    for b in &bounds {
        e.u64(*b);
    }
    let counts = h.counts();
    e.len(counts.len());
    for c in &counts {
        e.u64(*c);
    }
    e.u64(h.total());
}

fn dec_histogram(d: &mut Dec) -> Result<Histogram, CodecError> {
    let n = d.len()?;
    let mut bounds = Vec::with_capacity(n);
    for _ in 0..n {
        bounds.push(d.u64()?);
    }
    let n = d.len()?;
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(d.u64()?);
    }
    let total = d.u64()?;
    Histogram::try_from_parts(bounds, counts, total).ok_or(CodecError {
        offset: 0,
        what: "consistent histogram parts".into(),
    })
}

fn enc_opt<T>(e: &mut Enc, v: Option<&T>, f: impl FnOnce(&mut Enc, &T)) {
    match v {
        Some(v) => {
            e.bool(true);
            f(e, v);
        }
        None => {
            e.bool(false);
        }
    }
}

fn dec_opt<T>(
    d: &mut Dec,
    f: impl FnOnce(&mut Dec) -> Result<T, CodecError>,
) -> Result<Option<T>, CodecError> {
    if d.bool()? {
        Ok(Some(f(d)?))
    } else {
        Ok(None)
    }
}

/// Serializes a [`RunOutput`] into a store payload.
pub fn encode_run_output(out: &RunOutput) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(PAYLOAD_VERSION);
    enc_metrics(&mut e, &out.metrics);
    enc_opt(&mut e, out.two_part.as_ref(), enc_two_part);
    enc_opt(&mut e, out.lr_rewrite_intervals.as_ref(), enc_histogram);
    enc_opt(&mut e, out.hr_rewrite_intervals.as_ref(), enc_histogram);
    e.len(out.write_matrix.len());
    for row in &out.write_matrix {
        e.len(row.len());
        for v in row {
            e.u64(*v);
        }
    }
    enc_opt(&mut e, out.check.as_ref(), |e, c: &CheckReport| {
        e.u64(c.events_seen).u64(c.violations);
        e.len(c.samples.len());
        for s in &c.samples {
            e.str(s);
        }
    });
    e.finish()
}

/// Deserializes a store payload back into a [`RunOutput`]. Never
/// panics: version skew, truncation and inconsistent fields all come
/// back as typed [`CodecError`]s (the caller quarantines and
/// recomputes).
pub fn decode_run_output(bytes: &[u8]) -> Result<RunOutput, CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u8()?;
    if version != PAYLOAD_VERSION {
        return Err(CodecError {
            offset: 0,
            what: format!("payload version {PAYLOAD_VERSION}, got {version}"),
        });
    }
    let metrics = dec_metrics(&mut d)?;
    let two_part = dec_opt(&mut d, dec_two_part)?;
    let lr_rewrite_intervals = dec_opt(&mut d, dec_histogram)?;
    let hr_rewrite_intervals = dec_opt(&mut d, dec_histogram)?;
    let rows = d.len()?;
    let mut write_matrix = Vec::with_capacity(rows);
    for _ in 0..rows {
        let n = d.len()?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(d.u64()?);
        }
        write_matrix.push(row);
    }
    let check = dec_opt(&mut d, |d| {
        let events_seen = d.u64()?;
        let violations = d.u64()?;
        let n = d.len()?;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(d.str()?);
        }
        Ok(CheckReport {
            events_seen,
            violations,
            samples,
        })
    })?;
    d.expect_end()?;
    Ok(RunOutput {
        metrics,
        two_part,
        lr_rewrite_intervals,
        hr_rewrite_intervals,
        write_matrix,
        check,
    })
}

/// Counters describing what a [`ResultStore`] actually did, for the
/// bench report and the end-of-run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Entries decoded and served without simulating.
    pub hits: u64,
    /// Lookups that found no entry (the runner simulated and stored).
    pub misses: u64,
    /// Entries rejected as corrupt or version-skewed, quarantined, and
    /// recomputed.
    pub corrupt: u64,
    /// Entries committed to disk.
    pub writes: u64,
    /// Writes skipped because another process holds the writer lock.
    pub skipped_writes: u64,
    /// Whether an infrastructure failure degraded the store to a no-op.
    pub degraded: bool,
    /// Whether the store opened without the writer lock.
    pub read_only: bool,
}

/// A [`Store`] wrapped in the harness's failure policy: corrupt entries
/// quarantine-and-miss, infrastructure errors degrade the whole store
/// to an inert shell, and every path is panic-free. Shared across the
/// executor's worker threads.
#[derive(Debug)]
pub struct ResultStore {
    store: Store,
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    skipped_writes: AtomicU64,
}

impl ResultStore {
    /// Opens (or creates) the store at `root`. A second live process is
    /// not an error — this opener just joins in read-only mode. Real
    /// infrastructure failures (unwritable path, mangled metadata)
    /// surface as a typed [`StoreError`] so the caller can warn and run
    /// without persistence.
    pub fn open(root: &Path) -> Result<ResultStore, StoreError> {
        let store = Store::open(root)?;
        if store.read_only() {
            eprintln!(
                "# store: another process holds the writer lock on {}; \
                 continuing read-only (no new entries will be written)",
                root.display()
            );
        }
        Ok(ResultStore {
            store,
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            skipped_writes: AtomicU64::new(0),
        })
    }

    /// Whether an infrastructure failure has degraded the store.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Trips the one-way degradation latch, warning exactly once.
    fn degrade(&self, context: &str, err: &StoreError) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "# store: DEGRADED ({context}: {err}); continuing with \
                 in-memory memoization only — results are unaffected, \
                 they just won't persist"
            );
        }
    }

    /// Looks `key` up, decoding a hit into a [`RunOutput`]. Corrupt or
    /// version-skewed entries are quarantined and reported as a miss so
    /// the caller recomputes; infrastructure errors degrade the store.
    /// Never panics, never blocks a sweep.
    pub fn load(&self, key: &Key) -> Option<RunOutput> {
        if self.is_degraded() {
            return None;
        }
        match self.store.get(key) {
            Ok(Fetch::Hit(payload)) => match decode_run_output(&payload) {
                Ok(out) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(out)
                }
                Err(e) => {
                    // The container checksum passed but the payload did
                    // not decode — a codec version skew. Same policy as
                    // byte corruption: quarantine and recompute.
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "# store: entry {} undecodable ({e}); quarantined, recomputing",
                        key.hex()
                    );
                    self.store.quarantine_entry(key);
                    None
                }
            },
            Ok(Fetch::Corrupt(e)) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "# store: entry {} corrupt ({e}); quarantined, recomputing",
                    key.hex()
                );
                None
            }
            Ok(Fetch::Miss) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                self.degrade("read failed", &e);
                None
            }
        }
    }

    /// Persists `out` under `key`. Write failures degrade the store;
    /// they never fail the run that produced the result.
    pub fn save(&self, key: &Key, out: &RunOutput) {
        if self.is_degraded() {
            return;
        }
        match self.store.put(key, &encode_run_output(out)) {
            Ok(true) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {
                self.skipped_writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.degrade("write failed", &e),
        }
    }

    /// Snapshot of the hit/miss/corruption counters.
    pub fn report(&self) -> StoreReport {
        StoreReport {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            skipped_writes: self.skipped_writes.load(Ordering::Relaxed),
            degraded: self.is_degraded(),
            read_only: self.store.read_only(),
        }
    }

    /// Entries sitting in the quarantine directory.
    pub fn quarantined_count(&self) -> usize {
        self.store.quarantined_count()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        self.store.root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run, FaultSpec};
    use sttgpu_workloads::suite;

    fn tiny_plan() -> RunPlan {
        RunPlan {
            scale: 0.05,
            max_cycles: 2_000_000,
            check: false,
            fault: FaultSpec::NONE,
            policy: sttgpu_core::LlcPolicy::Fixed,
            sim_threads: 1,
            run_timeout_s: None,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sttgpu-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_outputs_equal(a: &RunOutput, b: &RunOutput) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.two_part, b.two_part);
        assert_eq!(a.lr_rewrite_intervals, b.lr_rewrite_intervals);
        assert_eq!(a.hr_rewrite_intervals, b.hr_rewrite_intervals);
        assert_eq!(a.write_matrix, b.write_matrix);
        match (&a.check, &b.check) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.events_seen, y.events_seen);
                assert_eq!(x.violations, y.violations);
                assert_eq!(x.samples, y.samples);
            }
            _ => panic!("check presence differs"),
        }
    }

    #[test]
    fn two_part_checked_run_round_trips_exactly() {
        // A two-part run with the checker on exercises every optional
        // branch of the codec: stats, both histograms, a check report.
        let w = suite::by_name("nw").expect("nw");
        let out = run(L2Choice::TwoPartC1, &w, &tiny_plan().with_check(true));
        assert!(out.two_part.is_some() && out.check.is_some());
        let bytes = encode_run_output(&out);
        let back = decode_run_output(&bytes).expect("round trip");
        assert_outputs_equal(&out, &back);
        // The rebuilt energy ledger must be bit-exact, not just close.
        assert_eq!(
            out.metrics.l2_energy.dynamic_nj().to_bits(),
            back.metrics.l2_energy.dynamic_nj().to_bits()
        );
    }

    #[test]
    fn baseline_run_round_trips_with_absent_options() {
        let w = suite::by_name("lud").expect("lud");
        let out = run(L2Choice::SramBaseline, &w, &tiny_plan());
        assert!(out.two_part.is_none() && out.check.is_none());
        let back = decode_run_output(&encode_run_output(&out)).expect("round trip");
        assert_outputs_equal(&out, &back);
    }

    #[test]
    fn every_payload_truncation_is_typed() {
        let w = suite::by_name("lud").expect("lud");
        let out = run(L2Choice::SramBaseline, &w, &tiny_plan());
        let full = encode_run_output(&out);
        for cut in 0..full.len() {
            assert!(
                decode_run_output(&full[..cut]).is_err(),
                "truncation to {cut}/{} bytes went undetected",
                full.len()
            );
        }
    }

    #[test]
    fn wrong_payload_version_is_typed() {
        let w = suite::by_name("lud").expect("lud");
        let mut bytes = encode_run_output(&run(L2Choice::SramBaseline, &w, &tiny_plan()));
        bytes[0] = PAYLOAD_VERSION + 1;
        let err = decode_run_output(&bytes).expect_err("version skew");
        assert!(err.what.contains("payload version"), "{err}");
    }

    #[test]
    fn store_keys_separate_every_dimension() {
        let plan = tiny_plan();
        let base = run_store_key(L2Choice::TwoPartC1, "lud", &plan);
        assert_eq!(base, run_store_key(L2Choice::TwoPartC1, "lud", &plan));
        let variants = [
            run_store_key(L2Choice::TwoPartC2, "lud", &plan),
            run_store_key(L2Choice::TwoPartC1, "nw", &plan),
            run_store_key(L2Choice::TwoPartC1, "lud", &plan.with_scale(0.06)),
            run_store_key(L2Choice::TwoPartC1, "lud", &plan.with_check(true)),
            run_store_key(L2Choice::TwoPartC1, "lud", &plan.with_faults(1e-4, 3)),
            run_store_key(
                L2Choice::TwoPartC1,
                "lud",
                &plan.with_policy(sttgpu_core::LlcPolicy::AdaptiveWays),
            ),
            run_store_key(L2Choice::TwoPartC1, "lud", &plan.with_sim_threads(2)),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} collided with the base key");
        }
    }

    #[test]
    fn run_timeout_does_not_change_the_key() {
        let plan = tiny_plan();
        assert_eq!(
            run_store_key(L2Choice::TwoPartC1, "lud", &plan),
            run_store_key(L2Choice::TwoPartC1, "lud", &plan.with_run_timeout(30)),
        );
    }

    #[test]
    fn config_keys_track_the_configuration() {
        let plan = tiny_plan();
        let a = config_store_key(
            &crate::configs::gpu_config(L2Choice::TwoPartC1),
            "lud",
            &plan,
        );
        let b = config_store_key(
            &crate::configs::gpu_config(L2Choice::TwoPartC2),
            "lud",
            &plan,
        );
        assert_ne!(a, b);
        // Named keys and config keys live in separate namespaces even for
        // the same underlying configuration.
        assert_ne!(a, run_store_key(L2Choice::TwoPartC1, "lud", &plan));
    }

    #[test]
    fn result_store_round_trips_and_counts() {
        let dir = temp_dir("roundtrip");
        let store = ResultStore::open(&dir).expect("open");
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let key = run_store_key(L2Choice::SramBaseline, "lud", &plan);
        assert!(store.load(&key).is_none(), "cold store must miss");
        let out = run(L2Choice::SramBaseline, &w, &plan);
        store.save(&key, &out);
        let back = store.load(&key).expect("warm store must hit");
        assert_outputs_equal(&out, &back);
        let r = store.report();
        assert_eq!((r.hits, r.misses, r.writes, r.corrupt), (1, 1, 1, 0));
        assert!(!r.degraded && !r.read_only);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unopenable_root_is_a_typed_error_not_a_panic() {
        let dir = temp_dir("notadir");
        std::fs::create_dir_all(dir.parent().unwrap()).ok();
        std::fs::write(&dir, b"i am a file").unwrap();
        assert!(ResultStore::open(&dir).is_err());
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn corrupt_entry_degrades_to_recompute_not_panic() {
        let dir = temp_dir("corrupt");
        let store = ResultStore::open(&dir).expect("open");
        let w = suite::by_name("lud").expect("lud");
        let plan = tiny_plan();
        let key = run_store_key(L2Choice::SramBaseline, "lud", &plan);
        store.save(&key, &run(L2Choice::SramBaseline, &w, &plan));
        // Flip one payload byte on disk, past the header.
        let path = dir.join("objects").join(format!("{}.ent", key.hex()));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_none(), "corrupt entry must miss");
        let r = store.report();
        assert_eq!(r.corrupt, 1);
        assert!(!r.degraded, "corruption must not degrade the store");
        assert_eq!(store.quarantined_count(), 1);
        // The slot is free again: a recomputed result stores cleanly.
        store.save(&key, &run(L2Choice::SramBaseline, &w, &plan));
        assert!(store.load(&key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
