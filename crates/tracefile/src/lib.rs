//! Compact, versioned memory-trace file format with a text twin.
//!
//! A trace file carries the stream of operations an LLC observes, in one
//! of two disciplines:
//!
//! * **requests** — line-granular demand accesses only (read or write,
//!   each with an absolute nanosecond timestamp). A replayer supplies
//!   the fill-on-miss and maintenance discipline itself, exactly as the
//!   differential oracle's `run_case` does, so a requests-mode file is
//!   interchangeable with a generated `Op` sequence.
//! * **raw** — the verbatim call stream (`probe`/`fill`/`maintain` with
//!   their original timestamps), as captured from a live simulation.
//!   Replaying a raw file re-issues exactly the recorded calls, which is
//!   what makes record→replay statistics byte-identical.
//!
//! # Binary layout (version 1)
//!
//! ```text
//! magic    8 B   "STTGTRC\0"
//! version  2 B   little-endian u16, currently 1
//! mode     1 B   0 = requests, 1 = raw
//! line     4 B   little-endian u32 line size in bytes (power of two)
//! records  ...   until EOF
//! ```
//!
//! Each record is a kind byte (`0` read, `1` write, `2` clean fill, `3`
//! dirty fill, `4` maintain) followed by the **zigzag-varint delta** of
//! its timestamp from the previous record's, and — for every kind except
//! maintain — the zigzag-varint delta of its line address from the
//! previous line-carrying record's. Delta encoding keeps dense streams
//! to a few bytes per record; signed deltas are required because a raw
//! stream is *not* monotone in time (a probe time-stamps at interconnect
//! arrival, which can lead the maintenance deadline that runs next).
//!
//! # Text twin
//!
//! The same stream, line-oriented and diff-friendly: a header line
//! `sttgpu-trace v1 <mode> line_bytes=<n>`, then one record per line
//! (`r`/`w`/`fc`/`fd` `<at_ns> <line>`, or `m <at_ns>`). Blank lines and
//! `#` comments are ignored. [`load`] sniffs the magic, so both
//! encodings open through one entry point.
//!
//! # Invariants
//!
//! * Requests-mode streams contain only accesses, with strictly
//!   increasing timestamps — the replay discipline derives inter-arrival
//!   gaps from them, so ties would silently stretch time.
//! * Raw-mode streams may interleave all five kinds in any time order.
//! * Readers never panic on malformed input: every failure surfaces as a
//!   typed [`TraceError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: identifies a binary sttgpu trace.
pub const MAGIC: [u8; 8] = *b"STTGTRC\0";

/// Newest format version this crate writes and understands.
pub const VERSION: u16 = 1;

/// The replay discipline a trace file encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Demand accesses only; the replayer owns fill-on-miss and
    /// maintenance cadence.
    Requests,
    /// The verbatim probe/fill/maintain call stream of a live run.
    Raw,
}

impl TraceMode {
    fn to_byte(self) -> u8 {
        match self {
            TraceMode::Requests => 0,
            TraceMode::Raw => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(TraceMode::Requests),
            1 => Some(TraceMode::Raw),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            TraceMode::Requests => "requests",
            TraceMode::Raw => "raw",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        match s {
            "requests" => Some(TraceMode::Requests),
            "raw" => Some(TraceMode::Raw),
            _ => None,
        }
    }
}

/// Everything a file states about itself before the records begin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Replay discipline of the stream.
    pub mode: TraceMode,
    /// Cache line size the line addresses are granular to, bytes.
    pub line_bytes: u32,
}

impl TraceHeader {
    /// A requests-mode header for the given line size.
    pub fn requests(line_bytes: u32) -> Self {
        TraceHeader {
            mode: TraceMode::Requests,
            line_bytes,
        }
    }

    /// A raw-mode header for the given line size.
    pub fn raw(line_bytes: u32) -> Self {
        TraceHeader {
            mode: TraceMode::Raw,
            line_bytes,
        }
    }

    fn validate(&self) -> Result<(), TraceError> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(TraceError::BadLineBytes(self.line_bytes));
        }
        Ok(())
    }
}

/// One trace record, timestamps absolute (the encodings delta-compress
/// them; the API never exposes deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// A demand access to `line` (read or write) at `at_ns`.
    Access {
        /// Absolute time, ns.
        at_ns: u64,
        /// Line address (byte address / line size).
        line: u64,
        /// Write (`true`) or read (`false`).
        write: bool,
    },
    /// A fill installing `line` (dirty for write-allocate) at `at_ns`.
    /// Raw mode only.
    Fill {
        /// Absolute time, ns.
        at_ns: u64,
        /// Line address.
        line: u64,
        /// Whether the filled line is born dirty.
        dirty: bool,
    },
    /// A maintenance sweep (refresh/expiry engines) at `at_ns`.
    /// Raw mode only.
    Maintain {
        /// Absolute time, ns.
        at_ns: u64,
    },
}

impl TraceRecord {
    /// The record's absolute timestamp, ns.
    pub fn at_ns(&self) -> u64 {
        match *self {
            TraceRecord::Access { at_ns, .. }
            | TraceRecord::Fill { at_ns, .. }
            | TraceRecord::Maintain { at_ns } => at_ns,
        }
    }

    fn kind_byte(&self) -> u8 {
        match *self {
            TraceRecord::Access { write: false, .. } => 0,
            TraceRecord::Access { write: true, .. } => 1,
            TraceRecord::Fill { dirty: false, .. } => 2,
            TraceRecord::Fill { dirty: true, .. } => 3,
            TraceRecord::Maintain { .. } => 4,
        }
    }

    fn line(&self) -> Option<u64> {
        match *self {
            TraceRecord::Access { line, .. } | TraceRecord::Fill { line, .. } => Some(line),
            TraceRecord::Maintain { .. } => None,
        }
    }
}

/// Every way reading or writing a trace can fail. Readers return these;
/// they never panic on malformed input.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this crate understands.
    UnsupportedVersion(u16),
    /// The mode byte is not a known [`TraceMode`].
    BadMode(u8),
    /// The header's line size is zero or not a power of two.
    BadLineBytes(u32),
    /// The stream ended in the middle of record `record` (0-based).
    Truncated {
        /// Index of the half-read record.
        record: u64,
    },
    /// Record `record` has an unknown kind byte.
    BadKind {
        /// Index of the offending record.
        record: u64,
        /// The unknown kind byte.
        kind: u8,
    },
    /// A varint in record `record` ran past 10 bytes.
    VarintOverflow {
        /// Index of the offending record.
        record: u64,
    },
    /// A delta in record `record` does not fit the signed 64-bit range.
    DeltaOverflow {
        /// Index of the offending record.
        record: u64,
    },
    /// Record `record` is a fill or maintain inside a requests-mode
    /// stream, or a requests-mode timestamp failed to strictly increase.
    Discipline {
        /// Index of the offending record.
        record: u64,
        /// What the requests-mode invariant expected.
        what: &'static str,
    },
    /// A text-twin line failed to parse.
    Text {
        /// 1-based line number in the text file.
        line: usize,
        /// What was wrong with it.
        what: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an sttgpu trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads <= {VERSION})"
                )
            }
            TraceError::BadMode(b) => write!(f, "unknown trace mode byte {b:#04x}"),
            TraceError::BadLineBytes(n) => {
                write!(f, "line size must be a nonzero power of two, got {n}")
            }
            TraceError::Truncated { record } => {
                write!(f, "trace truncated inside record #{record}")
            }
            TraceError::BadKind { record, kind } => {
                write!(f, "record #{record} has unknown kind byte {kind:#04x}")
            }
            TraceError::VarintOverflow { record } => {
                write!(f, "record #{record} carries an over-long varint")
            }
            TraceError::DeltaOverflow { record } => {
                write!(f, "record #{record} delta exceeds the signed 64-bit range")
            }
            TraceError::Discipline { record, what } => {
                write!(
                    f,
                    "record #{record} violates the requests-mode discipline: {what}"
                )
            }
            TraceError::Text { line, what } => write!(f, "text trace line {line}: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads one LEB128 varint. `record` only labels errors.
fn read_varint<R: Read>(r: &mut R, record: u64) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for _ in 0..10 {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated { record })
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        let low = u64::from(byte[0] & 0x7F);
        if shift == 63 && low > 1 {
            return Err(TraceError::VarintOverflow { record });
        }
        v |= low << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(TraceError::VarintOverflow { record })
}

/// Signed delta between two absolute values, or a typed overflow.
fn delta(prev: u64, next: u64, record: u64) -> Result<i64, TraceError> {
    let d = i128::from(next) - i128::from(prev);
    i64::try_from(d).map_err(|_| TraceError::DeltaOverflow { record })
}

/// Enforces the requests-mode invariants on one record.
fn check_discipline(
    mode: TraceMode,
    prev_ns: Option<u64>,
    rec: &TraceRecord,
    record: u64,
) -> Result<(), TraceError> {
    if mode == TraceMode::Raw {
        return Ok(());
    }
    match rec {
        TraceRecord::Access { at_ns, .. } => {
            if *at_ns == 0 {
                return Err(TraceError::Discipline {
                    record,
                    what: "timestamps start at 1 ns",
                });
            }
            if let Some(p) = prev_ns {
                if *at_ns <= p {
                    return Err(TraceError::Discipline {
                        record,
                        what: "timestamps must strictly increase",
                    });
                }
            }
            Ok(())
        }
        _ => Err(TraceError::Discipline {
            record,
            what: "only accesses are allowed",
        }),
    }
}

/// Streaming binary writer. Call [`finish`](Self::finish) to flush.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    header: TraceHeader,
    prev_ns: u64,
    prev_line: u64,
    written: u64,
    last_ns: Option<u64>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns a writer for the record stream.
    pub fn new(mut w: W, header: TraceHeader) -> Result<Self, TraceError> {
        header.validate()?;
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[header.mode.to_byte()])?;
        w.write_all(&header.line_bytes.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            header,
            prev_ns: 0,
            prev_line: 0,
            written: 0,
            last_ns: None,
        })
    }

    /// Appends one record. Requests-mode writers reject fills,
    /// maintenance records and non-increasing timestamps up front, so a
    /// file this writer produced always replays.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        check_discipline(self.header.mode, self.last_ns, rec, self.written)?;
        let dt = delta(self.prev_ns, rec.at_ns(), self.written)?;
        self.w.write_all(&[rec.kind_byte()])?;
        write_varint(&mut self.w, zigzag_encode(dt))?;
        if let Some(line) = rec.line() {
            let dl = delta(self.prev_line, line, self.written)?;
            write_varint(&mut self.w, zigzag_encode(dl))?;
            self.prev_line = line;
        }
        self.prev_ns = rec.at_ns();
        self.last_ns = Some(rec.at_ns());
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming binary reader: an iterator over records.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    header: TraceHeader,
    prev_ns: u64,
    prev_line: u64,
    read: u64,
    last_ns: Option<u64>,
    failed: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parses the header and returns a reader for the record stream.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        match r.read_exact(&mut magic) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(TraceError::BadMagic),
            Err(e) => return Err(TraceError::Io(e)),
        }
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut buf = [0u8; 7];
        match r.read_exact(&mut buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Err(TraceError::Truncated { record: 0 })
            }
            Err(e) => return Err(TraceError::Io(e)),
        }
        let version = u16::from_le_bytes([buf[0], buf[1]]);
        if version == 0 || version > VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mode = TraceMode::from_byte(buf[2]).ok_or(TraceError::BadMode(buf[2]))?;
        let line_bytes = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]);
        let header = TraceHeader { mode, line_bytes };
        header.validate()?;
        Ok(TraceReader {
            r,
            header,
            prev_ns: 0,
            prev_line: 0,
            read: 0,
            last_ns: None,
            failed: false,
        })
    }

    /// The parsed header.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let mut kind = [0u8; 1];
        match self.r.read_exact(&mut kind) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(TraceError::Io(e)),
        }
        let record = self.read;
        let dt = zigzag_decode(read_varint(&mut self.r, record)?);
        let at = i128::from(self.prev_ns) + i128::from(dt);
        let at_ns = u64::try_from(at).map_err(|_| TraceError::DeltaOverflow { record })?;
        let rec = match kind[0] {
            0..=3 => {
                let dl = zigzag_decode(read_varint(&mut self.r, record)?);
                let line = i128::from(self.prev_line) + i128::from(dl);
                let line = u64::try_from(line).map_err(|_| TraceError::DeltaOverflow { record })?;
                self.prev_line = line;
                match kind[0] {
                    0 => TraceRecord::Access {
                        at_ns,
                        line,
                        write: false,
                    },
                    1 => TraceRecord::Access {
                        at_ns,
                        line,
                        write: true,
                    },
                    2 => TraceRecord::Fill {
                        at_ns,
                        line,
                        dirty: false,
                    },
                    _ => TraceRecord::Fill {
                        at_ns,
                        line,
                        dirty: true,
                    },
                }
            }
            4 => TraceRecord::Maintain { at_ns },
            k => return Err(TraceError::BadKind { record, kind: k }),
        };
        check_discipline(self.header.mode, self.last_ns, &rec, record)?;
        self.prev_ns = at_ns;
        self.last_ns = Some(at_ns);
        self.read += 1;
        Ok(Some(rec))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_record() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Streaming text-twin writer.
#[derive(Debug)]
pub struct TextTraceWriter<W: Write> {
    w: W,
    header: TraceHeader,
    written: u64,
    last_ns: Option<u64>,
}

impl<W: Write> TextTraceWriter<W> {
    /// Writes the header line and returns a writer for the stream.
    pub fn new(mut w: W, header: TraceHeader) -> Result<Self, TraceError> {
        header.validate()?;
        writeln!(
            w,
            "sttgpu-trace v{VERSION} {} line_bytes={}",
            header.mode.label(),
            header.line_bytes
        )?;
        Ok(TextTraceWriter {
            w,
            header,
            written: 0,
            last_ns: None,
        })
    }

    /// Appends one record as a text line.
    pub fn write(&mut self, rec: &TraceRecord) -> Result<(), TraceError> {
        check_discipline(self.header.mode, self.last_ns, rec, self.written)?;
        match *rec {
            TraceRecord::Access { at_ns, line, write } => {
                writeln!(self.w, "{} {at_ns} {line}", if write { "w" } else { "r" })?
            }
            TraceRecord::Fill { at_ns, line, dirty } => {
                writeln!(self.w, "{} {at_ns} {line}", if dirty { "fd" } else { "fc" })?
            }
            TraceRecord::Maintain { at_ns } => writeln!(self.w, "m {at_ns}")?,
        }
        self.last_ns = Some(rec.at_ns());
        self.written += 1;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Parses the text twin from a buffered reader.
pub fn read_text<R: BufRead>(r: R) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let mut lines = r.lines().enumerate();
    let header = loop {
        let Some((i, line)) = lines.next() else {
            return Err(TraceError::Text {
                line: 1,
                what: "empty file (missing header line)".into(),
            });
        };
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        break parse_text_header(trimmed, i + 1)?;
    };
    let mut records = Vec::new();
    let mut last_ns = None;
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec = parse_text_record(trimmed, i + 1)?;
        check_discipline(header.mode, last_ns, &rec, records.len() as u64).map_err(|e| {
            TraceError::Text {
                line: i + 1,
                what: e.to_string(),
            }
        })?;
        last_ns = Some(rec.at_ns());
        records.push(rec);
    }
    Ok((header, records))
}

fn parse_text_header(line: &str, lineno: usize) -> Result<TraceHeader, TraceError> {
    let fail = |what: String| TraceError::Text { line: lineno, what };
    let mut parts = line.split_whitespace();
    match parts.next() {
        Some("sttgpu-trace") => {}
        _ => return Err(fail("header must start with `sttgpu-trace`".into())),
    }
    let version = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse::<u16>().ok())
        .ok_or_else(|| fail("expected `v<version>`".into()))?;
    if version == 0 || version > VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mode = parts
        .next()
        .and_then(TraceMode::from_label)
        .ok_or_else(|| fail("expected mode `requests` or `raw`".into()))?;
    let line_bytes = parts
        .next()
        .and_then(|v| v.strip_prefix("line_bytes="))
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or_else(|| fail("expected `line_bytes=<n>`".into()))?;
    let header = TraceHeader { mode, line_bytes };
    header.validate()?;
    Ok(header)
}

fn parse_text_record(line: &str, lineno: usize) -> Result<TraceRecord, TraceError> {
    let fail = |what: String| TraceError::Text { line: lineno, what };
    let mut parts = line.split_whitespace();
    let kind = parts.next().expect("non-empty line has a first token");
    let at_ns: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| fail("expected a timestamp".into()))?;
    let mut line_field = || -> Result<u64, TraceError> {
        parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| fail("expected a line address".into()))
    };
    let rec = match kind {
        "r" => TraceRecord::Access {
            at_ns,
            line: line_field()?,
            write: false,
        },
        "w" => TraceRecord::Access {
            at_ns,
            line: line_field()?,
            write: true,
        },
        "fc" => TraceRecord::Fill {
            at_ns,
            line: line_field()?,
            dirty: false,
        },
        "fd" => TraceRecord::Fill {
            at_ns,
            line: line_field()?,
            dirty: true,
        },
        "m" => TraceRecord::Maintain { at_ns },
        other => return Err(fail(format!("unknown record kind `{other}`"))),
    };
    if parts.next().is_some() {
        return Err(fail("trailing tokens after the record".into()));
    }
    Ok(rec)
}

/// Whether a path names the text twin (by `.txt`/`.text` extension).
fn is_text_path(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("txt") | Some("text")
    )
}

/// Writes a whole trace to `path`: the text twin when the extension is
/// `.txt`/`.text`, the binary encoding otherwise.
pub fn save(path: &Path, header: TraceHeader, records: &[TraceRecord]) -> Result<(), TraceError> {
    let file = fs::File::create(path)?;
    let buf = BufWriter::new(file);
    if is_text_path(path) {
        let mut w = TextTraceWriter::new(buf, header)?;
        for rec in records {
            w.write(rec)?;
        }
        w.finish()?;
    } else {
        let mut w = TraceWriter::new(buf, header)?;
        for rec in records {
            w.write(rec)?;
        }
        w.finish()?;
    }
    Ok(())
}

/// Reads a whole trace from `path`, sniffing binary vs text by magic.
pub fn load(path: &Path) -> Result<(TraceHeader, Vec<TraceRecord>), TraceError> {
    let file = fs::File::open(path)?;
    let mut buf = BufReader::new(file);
    let sniff = buf.fill_buf()?;
    if sniff.starts_with(&MAGIC) {
        let mut reader = TraceReader::new(buf)?;
        let header = reader.header();
        let records: Result<Vec<_>, _> = reader.by_ref().collect();
        Ok((header, records?))
    } else {
        read_text(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Access {
                at_ns: 5,
                line: 100,
                write: false,
            },
            TraceRecord::Access {
                at_ns: 9,
                line: 3,
                write: true,
            },
            TraceRecord::Access {
                at_ns: 400,
                line: 100,
                write: false,
            },
        ]
    }

    fn sample_raw() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Access {
                at_ns: 120,
                line: 7,
                write: true,
            },
            // Raw streams go backwards in time: a maintenance deadline can
            // trail the icnt-lead probe timestamp.
            TraceRecord::Maintain { at_ns: 100 },
            TraceRecord::Fill {
                at_ns: 310,
                line: 7,
                dirty: true,
            },
            TraceRecord::Fill {
                at_ns: 320,
                line: 2,
                dirty: false,
            },
        ]
    }

    fn binary_round_trip(header: TraceHeader, records: &[TraceRecord]) {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, header).expect("writer");
        for r in records {
            w.write(r).expect("write");
        }
        w.finish().expect("finish");
        let mut reader = TraceReader::new(&buf[..]).expect("reader");
        assert_eq!(reader.header(), header);
        let back: Vec<_> = reader.by_ref().collect::<Result<_, _>>().expect("read");
        assert_eq!(back, records);
    }

    #[test]
    fn binary_round_trips_both_modes() {
        binary_round_trip(TraceHeader::requests(256), &sample_requests());
        binary_round_trip(TraceHeader::raw(128), &sample_raw());
    }

    #[test]
    fn text_round_trips_both_modes() {
        for (header, records) in [
            (TraceHeader::requests(256), sample_requests()),
            (TraceHeader::raw(64), sample_raw()),
        ] {
            let mut buf = Vec::new();
            let mut w = TextTraceWriter::new(&mut buf, header).expect("writer");
            for r in &records {
                w.write(r).expect("write");
            }
            w.finish().expect("finish");
            let (h, back) = read_text(&buf[..]).expect("read");
            assert_eq!(h, header);
            assert_eq!(back, records);
        }
    }

    #[test]
    fn text_ignores_comments_and_blank_lines() {
        let text = "# leading comment\n\nsttgpu-trace v1 requests line_bytes=256\n\
                    # a note\n\nr 5 100\nw 9 3\n";
        let (h, recs) = read_text(text.as_bytes()).expect("read");
        assert_eq!(h, TraceHeader::requests(256));
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = TraceReader::new(&b"NOTATRACEFILE"[..]).expect_err("must fail");
        assert!(matches!(err, TraceError::BadMagic), "{err}");
        let err = TraceReader::new(&b"ST"[..]).expect_err("short file");
        assert!(matches!(err, TraceError::BadMagic), "{err}");
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&256u32.to_le_bytes());
        let err = TraceReader::new(&buf[..]).expect_err("must fail");
        assert!(matches!(err, TraceError::UnsupportedVersion(99)), "{err}");
    }

    #[test]
    fn bad_mode_and_line_bytes_are_typed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(9);
        buf.extend_from_slice(&256u32.to_le_bytes());
        assert!(matches!(
            TraceReader::new(&buf[..]).expect_err("mode"),
            TraceError::BadMode(9)
        ));
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(0);
        buf.extend_from_slice(&48u32.to_le_bytes());
        assert!(matches!(
            TraceReader::new(&buf[..]).expect_err("line bytes"),
            TraceError::BadLineBytes(48)
        ));
    }

    #[test]
    fn truncated_header_and_records_are_typed() {
        let mut full = Vec::new();
        let mut w = TraceWriter::new(&mut full, TraceHeader::requests(256)).expect("writer");
        for r in &sample_requests() {
            w.write(r).expect("write");
        }
        w.finish().expect("finish");
        // Chop the stream at every prefix length: every cut must yield a
        // typed error or a clean shorter stream, never a panic.
        for cut in 0..full.len() {
            let slice = &full[..cut];
            match TraceReader::new(slice) {
                Ok(reader) => {
                    for rec in reader {
                        if let Err(e) = rec {
                            assert!(
                                matches!(e, TraceError::Truncated { .. }),
                                "cut {cut}: unexpected {e}"
                            );
                            break;
                        }
                    }
                }
                Err(e) => assert!(
                    matches!(e, TraceError::BadMagic | TraceError::Truncated { .. }),
                    "cut {cut}: unexpected {e}"
                ),
            }
        }
    }

    #[test]
    fn requests_mode_rejects_fills_and_time_ties() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TraceHeader::requests(256)).expect("writer");
        let err = w
            .write(&TraceRecord::Fill {
                at_ns: 5,
                line: 1,
                dirty: false,
            })
            .expect_err("fill in requests mode");
        assert!(matches!(err, TraceError::Discipline { .. }), "{err}");
        w.write(&TraceRecord::Access {
            at_ns: 5,
            line: 1,
            write: false,
        })
        .expect("first access");
        let err = w
            .write(&TraceRecord::Access {
                at_ns: 5,
                line: 2,
                write: false,
            })
            .expect_err("tied timestamp");
        assert!(matches!(err, TraceError::Discipline { .. }), "{err}");
    }

    #[test]
    fn text_errors_are_typed_not_panics() {
        for bad in [
            "",
            "garbage header\nr 1 2\n",
            "sttgpu-trace v1 requests line_bytes=256\nq 1 2\n",
            "sttgpu-trace v1 requests line_bytes=256\nr one 2\n",
            "sttgpu-trace v1 requests line_bytes=256\nr 1\n",
            "sttgpu-trace v1 requests line_bytes=256\nr 1 2 3\n",
            "sttgpu-trace v1 requests line_bytes=256\nm 1\n",
            "sttgpu-trace v9 requests line_bytes=256\n",
            "sttgpu-trace v1 sideways line_bytes=256\n",
            "sttgpu-trace v1 requests line_bytes=13\n",
        ] {
            let err = read_text(bad.as_bytes()).expect_err(bad);
            assert!(
                matches!(
                    err,
                    TraceError::Text { .. }
                        | TraceError::UnsupportedVersion(_)
                        | TraceError::BadLineBytes(_)
                ),
                "input {bad:?} gave {err}"
            );
        }
    }

    #[test]
    fn save_and_load_sniff_binary_and_text() {
        let dir = std::env::temp_dir();
        let records = sample_requests();
        let header = TraceHeader::requests(256);
        let bin = dir.join("sttgpu_tracefile_test.sttr");
        let txt = dir.join("sttgpu_tracefile_test.txt");
        save(&bin, header, &records).expect("save binary");
        save(&txt, header, &records).expect("save text");
        assert_eq!(load(&bin).expect("load binary"), (header, records.clone()));
        assert_eq!(load(&txt).expect("load text"), (header, records));
        let _ = fs::remove_file(bin);
        let _ = fs::remove_file(txt);
    }

    #[test]
    fn delta_compression_is_compact_for_dense_streams() {
        let records: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord::Access {
                at_ns: 1 + i * 3,
                line: 100 + (i % 7),
                write: i % 3 == 0,
            })
            .collect();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, TraceHeader::requests(256)).expect("writer");
        for r in &records {
            w.write(r).expect("write");
        }
        w.finish().expect("finish");
        assert!(
            buf.len() <= 15 + records.len() * 4,
            "dense stream must average a few bytes per record, got {} for {}",
            buf.len(),
            records.len()
        );
    }

    #[test]
    fn seeded_streams_round_trip_binary_and_text() {
        use sttgpu_stats::Rng;
        for seed in 0..25u64 {
            let mut rng = Rng::new(seed);
            let n = rng.range_usize(0, 200);
            let raw = seed % 2 == 0;
            let mut at = 0u64;
            let records: Vec<TraceRecord> = (0..n)
                .map(|_| {
                    at += rng.range_u64(1, 1_000);
                    let line = rng.range_u64(0, 1 << 40);
                    if raw {
                        match rng.range_u64(0, 3) {
                            0 => TraceRecord::Access {
                                // Raw timestamps may jitter backwards.
                                at_ns: at.saturating_sub(rng.range_u64(0, 50)),
                                line,
                                write: rng.chance(0.5),
                            },
                            1 => TraceRecord::Fill {
                                at_ns: at,
                                line,
                                dirty: rng.chance(0.5),
                            },
                            _ => TraceRecord::Maintain { at_ns: at },
                        }
                    } else {
                        TraceRecord::Access {
                            at_ns: at,
                            line,
                            write: rng.chance(0.5),
                        }
                    }
                })
                .collect();
            let header = if raw {
                TraceHeader::raw(256)
            } else {
                TraceHeader::requests(256)
            };
            binary_round_trip(header, &records);
            let mut buf = Vec::new();
            let mut w = TextTraceWriter::new(&mut buf, header).expect("writer");
            for r in &records {
                w.write(r).expect("write");
            }
            w.finish().expect("finish");
            let (h, back) = read_text(&buf[..]).expect("read");
            assert_eq!(h, header);
            assert_eq!(back, records, "seed {seed}");
        }
    }
}
