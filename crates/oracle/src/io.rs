//! Bridging the oracle's [`Op`] vocabulary and the on-disk trace
//! format.
//!
//! Oracle traces carry *relative* time (`dt_ns`), which is what makes
//! them shrinkable; trace files carry *absolute* time (`at_ns`), which
//! is what makes them streamable and mergeable. The two views are
//! exactly inverse as long as every `dt_ns` is at least 1 — the same
//! clamp [`run_case`](crate::run_case) applies — so a round trip
//! through [`ops_to_records`] and [`records_to_ops`] reproduces the
//! `Op` sequence bit for bit.

use std::path::Path;

use sttgpu_tracefile::{load, save, TraceError, TraceHeader, TraceMode, TraceRecord};

use crate::trace_gen::Op;

/// Converts an oracle trace to requests-mode records. Timestamps are
/// the running sum of `dt_ns.max(1)` — the exact clock
/// [`run_case`](crate::run_case) replays under (first op at
/// `1 + dt_0`, one tick past the machines' epoch).
pub fn ops_to_records(ops: &[Op]) -> Vec<TraceRecord> {
    let mut at_ns = 0u64;
    ops.iter()
        .map(|op| {
            at_ns += op.dt_ns.max(1);
            TraceRecord::Access {
                at_ns,
                line: op.line,
                write: op.write,
            }
        })
        .collect()
}

/// Converts requests-mode records back to oracle ops by differencing
/// the absolute clock. Rejects raw-only records and non-monotone
/// timestamps with the same typed errors the readers use.
pub fn records_to_ops(records: &[TraceRecord]) -> Result<Vec<Op>, TraceError> {
    let mut prev = 0u64;
    records
        .iter()
        .enumerate()
        .map(|(i, rec)| match *rec {
            TraceRecord::Access { at_ns, line, write } => {
                if at_ns <= prev {
                    return Err(TraceError::Discipline {
                        record: i as u64,
                        what: "timestamps must strictly increase",
                    });
                }
                let dt_ns = at_ns - prev;
                prev = at_ns;
                Ok(Op { dt_ns, line, write })
            }
            _ => Err(TraceError::Discipline {
                record: i as u64,
                what: "only accesses are allowed",
            }),
        })
        .collect()
}

/// Saves an oracle trace as a requests-mode file (binary, or the text
/// twin for `.txt`/`.text` paths).
pub fn save_ops(path: &Path, line_bytes: u32, ops: &[Op]) -> Result<(), TraceError> {
    save(
        path,
        TraceHeader::requests(line_bytes),
        &ops_to_records(ops),
    )
}

/// Loads a requests-mode trace file as oracle ops, returning the line
/// size the addresses are granular to. Raw-mode files are rejected:
/// they encode an exact call sequence, not a request stream, and only
/// the raw replayer may interpret them.
pub fn load_ops(path: &Path) -> Result<(u32, Vec<Op>), TraceError> {
    let (header, records) = load(path)?;
    if header.mode != TraceMode::Requests {
        return Err(TraceError::Discipline {
            record: 0,
            what: "requests-mode trace required (this file is raw mode)",
        });
    }
    Ok((header.line_bytes, records_to_ops(&records)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<Op> {
        vec![
            Op {
                dt_ns: 5,
                line: 3,
                write: true,
            },
            Op {
                dt_ns: 1,
                line: 900,
                write: false,
            },
            Op {
                dt_ns: 4_000,
                line: 3,
                write: false,
            },
        ]
    }

    #[test]
    fn ops_round_trip_through_records() {
        let records = ops_to_records(&ops());
        assert_eq!(records_to_ops(&records).expect("clean records"), ops());
    }

    #[test]
    fn timestamps_are_the_running_dt_sum() {
        let records = ops_to_records(&ops());
        let at: Vec<u64> = records.iter().map(|r| r.at_ns()).collect();
        assert_eq!(at, vec![5, 6, 4_006]);
    }

    #[test]
    fn raw_records_are_rejected() {
        let err = records_to_ops(&[TraceRecord::Maintain { at_ns: 9 }]).unwrap_err();
        assert!(
            matches!(err, TraceError::Discipline { record: 0, .. }),
            "{err}"
        );
    }
}
