//! The functional reference model of the two-part LLC.
//!
//! Everything here favours obviousness over speed: parts are flat
//! `Vec<Option<Line>>` scanned linearly, retention is re-derived from
//! per-line clocks on every sweep (no deadline heaps), and the swap
//! buffers are sorted multisets of completion times. The model also
//! carries a content token per line and a shadow DRAM image, so the
//! write-back discipline (a clean line always equals DRAM) is checked
//! as an internal invariant on every drop.

use std::collections::BTreeMap;

use sttgpu_cache::ReplacementPolicy;
use sttgpu_core::{
    lr_maintenance_floor_ns, lr_tracker_at, PolicyEngine, RetentionTracker, SearchMode,
    TwoPartConfig, TwoPartStats,
};
use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::mtj::{MtjDesign, RetentionTime};

/// One of the two parts, probe-order aware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    Lr,
    Hr,
}

/// One resident line: residency is the slot it occupies, the rest is
/// the per-line state the architecture tracks.
#[derive(Debug, Clone)]
struct Line {
    la: u64,
    dirty: bool,
    write_count: u32,
    /// Retention clock: when the cell array last physically wrote the
    /// line (fill, demand write or refresh).
    written_at_ns: u64,
    /// When a *demand* write last touched the line (0 = never).
    last_write_ns: u64,
    /// LRU recency stamp, monotone per part.
    stamp: u64,
    /// Content token: which DRAM version (or later demand write) the
    /// payload corresponds to.
    content: u64,
}

/// A set-associative array scanned the obvious way.
#[derive(Debug, Clone)]
struct PartArray {
    sets: u64,
    ways: usize,
    /// Ways currently in service; a partition policy may park the tail
    /// `ways - active_ways` ways of every set (they are drained first,
    /// so residency lookups over the full row stay correct).
    active_ways: usize,
    slots: Vec<Option<Line>>,
    stamp: u64,
}

impl PartArray {
    fn new(sets: u64, ways: usize) -> Self {
        PartArray {
            sets,
            ways,
            active_ways: ways,
            slots: vec![None; sets as usize * ways],
            stamp: 0,
        }
    }

    fn set_range(&self, la: u64) -> std::ops::Range<usize> {
        let set = (la % self.sets) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// The slots a fill may install into — the set's active prefix.
    fn victim_range(&self, la: u64) -> std::ops::Range<usize> {
        let set = (la % self.sets) as usize;
        set * self.ways..set * self.ways + self.active_ways
    }

    /// Empties every parked way (`from_way..`), set-major, returning the
    /// extracted lines in drain order.
    fn drain_ways(&mut self, from_way: usize) -> Vec<Line> {
        let mut drained = Vec::new();
        for set in 0..self.sets as usize {
            for way in from_way..self.ways {
                if let Some(line) = self.slots[set * self.ways + way].take() {
                    drained.push(line);
                }
            }
        }
        drained
    }

    fn slot_of(&self, la: u64) -> Option<usize> {
        self.set_range(la)
            .find(|&s| self.slots[s].as_ref().is_some_and(|l| l.la == la))
    }

    fn contains(&self, la: u64) -> bool {
        self.slot_of(la).is_some()
    }

    fn line(&self, la: u64) -> Option<&Line> {
        self.slot_of(la).map(|s| self.slots[s].as_ref().unwrap())
    }

    fn line_mut(&mut self, la: u64) -> Option<&mut Line> {
        self.slot_of(la).map(|s| self.slots[s].as_mut().unwrap())
    }

    /// Services a hit: bumps recency (LRU touches on every hit) and,
    /// for writes, the write counter / dirty bit / last-write clock.
    fn lookup_hit(&mut self, la: u64, write: bool, now_ns: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let line = self.line_mut(la).expect("lookup_hit needs a resident line");
        line.stamp = stamp;
        if write {
            line.write_count = line.write_count.saturating_add(1);
            line.dirty = true;
            line.last_write_ns = now_ns;
        }
    }

    /// Installs `la`, evicting the set's LRU victim if the set is full.
    /// A line already present only merges the dirty bit (and takes the
    /// new content if the fill carries a write); history and recency
    /// stay untouched — exactly the cache substrate's `fill_with`.
    fn fill(
        &mut self,
        la: u64,
        dirty: bool,
        carried_writes: u32,
        content: u64,
        now_ns: u64,
    ) -> Option<Line> {
        if let Some(line) = self.line_mut(la) {
            line.dirty |= dirty;
            if dirty {
                line.content = content;
            }
            return None;
        }
        let range = self.victim_range(la);
        let slot = range
            .clone()
            .find(|&s| self.slots[s].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&s| self.slots[s].as_ref().unwrap().stamp)
                    .expect("a set has at least one way")
            });
        self.stamp += 1;
        let victim = self.slots[slot].take();
        self.slots[slot] = Some(Line {
            la,
            dirty,
            write_count: carried_writes.saturating_add(dirty as u32),
            written_at_ns: now_ns,
            last_write_ns: if dirty { now_ns } else { 0 },
            stamp: self.stamp,
            content,
        });
        victim
    }

    fn extract(&mut self, la: u64) -> Option<Line> {
        self.slot_of(la).and_then(|s| self.slots[s].take())
    }

    fn lines(&self) -> impl Iterator<Item = &Line> {
        self.slots.iter().flatten()
    }
}

/// Swap buffer as a sorted multiset of completion times.
#[derive(Debug, Clone, Default)]
struct Buffer {
    capacity: usize,
    in_flight: BTreeMap<u64, u32>,
    admissions: u64,
    overflows: u64,
    peak: usize,
}

impl Buffer {
    fn new(capacity: usize) -> Self {
        Buffer {
            capacity,
            ..Buffer::default()
        }
    }

    fn occupancy_at(&mut self, now_ns: u64) -> usize {
        // A slot is free the instant its write completes.
        self.in_flight = self.in_flight.split_off(&(now_ns + 1));
        self.in_flight.values().map(|&c| c as usize).sum()
    }

    fn try_reserve(&mut self, now_ns: u64, completes_at_ns: u64) -> bool {
        let occupied = self.occupancy_at(now_ns);
        if occupied >= self.capacity {
            self.overflows += 1;
            return false;
        }
        *self.in_flight.entry(completes_at_ns).or_insert(0) += 1;
        self.admissions += 1;
        self.peak = self.peak.max(occupied + 1);
        true
    }
}

/// The reference model. Drive it through [`probe`](Self::probe),
/// [`fill`](Self::fill) and [`maintain`](Self::maintain) with the same
/// request stream as the [`TwoPartLlc`](sttgpu_core::TwoPartLlc) under
/// test, then compare observations (the [`run_case`](crate::run_case)
/// driver automates this).
#[derive(Debug, Clone)]
pub struct OracleLlc {
    search: SearchMode,
    refresh_slack: u64,
    /// The same runtime policy registry the implementation embeds —
    /// decisions are a pure function of the shared statistics and time,
    /// so the two machines cannot take different adaptive actions
    /// without first diverging on a compared counter.
    engine: PolicyEngine,
    lr_base_retention: RetentionTime,
    lr_rc_bits: u32,
    hr_max_ways: u32,
    lr: PartArray,
    hr: PartArray,
    lr_rc: RetentionTracker,
    hr_rc: RetentionTracker,
    hr_to_lr: Buffer,
    lr_to_hr: Buffer,
    stats: TwoPartStats,
    lr_tag_ns: u64,
    hr_tag_ns: u64,
    lr_read_ns: u64,
    hr_read_ns: u64,
    lr_write_ns: u64,
    hr_write_ns: u64,
    /// Shadow DRAM image: content token last written back per line.
    dram: BTreeMap<u64, u64>,
    /// Fresh-token source for demand writes (never 0: token 0 means
    /// "DRAM content of a line never written back").
    next_token: u64,
}

fn priced(
    kb: u64,
    ways: u32,
    banks: u32,
    line_bytes: u32,
    retention: RetentionTime,
    ewt_savings: f64,
) -> ArrayDesign {
    let geom = ArrayGeometry::new(kb * 1024, line_bytes, ways, banks);
    let mtj = MtjDesign::for_retention(retention).with_ewt_savings(ewt_savings);
    ArrayDesign::new(geom, MemTechnology::SttRam(mtj))
}

/// `Config::validate` has already bounded every device latency, so the
/// ceil-to-integer-nanoseconds cast cannot misbehave here.
fn lat(ns: f64) -> u64 {
    ns.ceil() as u64
}

impl OracleLlc {
    /// Builds the reference model for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, or if it enables a
    /// feature outside the oracle's scope: wear rotation, non-LRU
    /// replacement, or a fault plan with any nonzero rate (zero-rate
    /// plans are accepted — the implementation promises they are
    /// exactly transparent, and the oracle holds it to that).
    pub fn new(cfg: &TwoPartConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        assert!(
            cfg.lr_rotation_period_ns.is_none(),
            "the oracle does not model wear rotation"
        );
        assert_eq!(
            cfg.replacement,
            ReplacementPolicy::Lru,
            "the oracle models LRU replacement only"
        );
        assert!(
            !cfg.fault.is_enabled(),
            "the oracle models fault-free behaviour; only zero-rate fault plans are comparable"
        );
        let lr_design = priced(
            cfg.lr_kb,
            cfg.lr_ways,
            cfg.lr_banks,
            cfg.line_bytes,
            cfg.lr_retention,
            cfg.ewt_savings,
        );
        let hr_design = priced(
            cfg.hr_kb,
            cfg.hr_ways,
            cfg.hr_banks,
            cfg.line_bytes,
            cfg.hr_retention,
            cfg.ewt_savings,
        );
        OracleLlc {
            search: cfg.search,
            refresh_slack: cfg.refresh_slack_ticks as u64,
            engine: PolicyEngine::new(cfg),
            lr_base_retention: cfg.lr_retention,
            lr_rc_bits: cfg.lr_rc_bits,
            hr_max_ways: cfg.hr_ways,
            lr: PartArray::new(cfg.lr_sets(), cfg.lr_ways as usize),
            hr: PartArray::new(cfg.hr_sets(), cfg.hr_ways as usize),
            lr_rc: RetentionTracker::new(cfg.lr_retention, cfg.lr_rc_bits),
            hr_rc: RetentionTracker::new(cfg.hr_retention, cfg.hr_rc_bits),
            hr_to_lr: Buffer::new(cfg.buffer_blocks),
            lr_to_hr: Buffer::new(cfg.buffer_blocks),
            stats: TwoPartStats::default(),
            lr_tag_ns: lat(lr_design.tag_latency_ns()),
            hr_tag_ns: lat(hr_design.tag_latency_ns()),
            lr_read_ns: lat(lr_design.read_latency_ns()),
            hr_read_ns: lat(hr_design.read_latency_ns()),
            lr_write_ns: lat(lr_design.write_latency_ns()),
            hr_write_ns: lat(hr_design.write_latency_ns()),
            dram: BTreeMap::new(),
            next_token: 0,
        }
    }

    /// Architecture statistics (same counters as the implementation).
    pub fn stats(&self) -> &TwoPartStats {
        &self.stats
    }

    /// Whether `la` resides in the LR part.
    pub fn lr_resident(&self, la: u64) -> bool {
        self.lr.contains(la)
    }

    /// Whether `la` resides in the HR part.
    pub fn hr_resident(&self, la: u64) -> bool {
        self.hr.contains(la)
    }

    /// Total swap-buffer overflows across both directions.
    pub fn buffer_overflows(&self) -> u64 {
        self.hr_to_lr.overflows + self.lr_to_hr.overflows
    }

    /// Total swap-buffer admissions across both directions.
    pub fn buffer_admissions(&self) -> u64 {
        self.hr_to_lr.admissions + self.lr_to_hr.admissions
    }

    /// Peak simultaneous occupancy of the (HR→LR, LR→HR) buffers.
    pub fn buffer_peaks(&self) -> (usize, usize) {
        (self.hr_to_lr.peak, self.lr_to_hr.peak)
    }

    /// Required maintenance cadence, ns — same bound the implementation
    /// derives (each tracker: one tick, narrowed to the deadline-to-
    /// expiry window when a rounded-up tick shrinks it).
    pub fn maintenance_interval_ns(&self) -> u64 {
        lr_maintenance_floor_ns(
            self.engine.policy(),
            self.lr_base_retention,
            self.lr_rc_bits,
        )
        .min(self.hr_rc.maintenance_interval_ns())
    }

    fn fresh_token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Content a clean fill of `la` carries: whatever DRAM last saw.
    fn dram_content(&self, la: u64) -> u64 {
        self.dram.get(&la).copied().unwrap_or(0)
    }

    /// A dirty line leaving the hierarchy lands in DRAM; a clean one is
    /// dropped, and the write-back discipline says its payload must
    /// already *be* DRAM's — checked here on every drop.
    fn retire(&mut self, line: &Line) {
        if line.dirty {
            self.dram.insert(line.la, line.content);
        } else {
            assert_eq!(
                line.content,
                self.dram_content(line.la),
                "model invariant broken: clean line {:#x} diverged from DRAM",
                line.la
            );
        }
    }

    /// Probes for `la`. Returns `(hit, writebacks)` — the two
    /// observable outcomes a probe has besides its statistics.
    pub fn probe(&mut self, la: u64, write: bool, now_ns: u64) -> (bool, u32) {
        // Search selector: writes probe LR first, reads HR first.
        let order = if write {
            [Part::Lr, Part::Hr]
        } else {
            [Part::Hr, Part::Lr]
        };
        let part_contains = |model: &Self, part: Part| match part {
            Part::Lr => model.lr.contains(la),
            Part::Hr => model.hr.contains(la),
        };
        let (hit_part, tag_done_ns) = match self.search {
            SearchMode::Sequential => {
                let mut t = now_ns;
                let mut found = None;
                for (i, part) in order.into_iter().enumerate() {
                    t += match part {
                        Part::Lr => self.lr_tag_ns,
                        Part::Hr => self.hr_tag_ns,
                    };
                    if part_contains(self, part) {
                        if i == 1 {
                            self.stats.second_search_hits += 1;
                        }
                        found = Some(part);
                        break;
                    }
                }
                (found, t)
            }
            SearchMode::Parallel => {
                let t = now_ns + self.lr_tag_ns.max(self.hr_tag_ns);
                let found = if part_contains(self, Part::Lr) {
                    Some(Part::Lr)
                } else if part_contains(self, Part::Hr) {
                    Some(Part::Hr)
                } else {
                    None
                };
                (found, t)
            }
        };

        match (hit_part, write) {
            (Some(Part::Lr), false) => {
                self.lr.lookup_hit(la, false, now_ns);
                self.stats.lr_read_hits += 1;
                (true, 0)
            }
            (Some(Part::Hr), false) => {
                self.hr.lookup_hit(la, false, now_ns);
                self.stats.hr_read_hits += 1;
                (true, 0)
            }
            (Some(Part::Lr), true) => {
                // Demand write in place in LR: the physical write also
                // restarts the retention clock.
                self.lr.lookup_hit(la, true, now_ns);
                let token = self.fresh_token();
                let line = self.lr.line_mut(la).expect("LR hit");
                line.written_at_ns = now_ns;
                line.content = token;
                self.stats.lr_write_hits += 1;
                self.stats.demand_writes_lr += 1;
                self.stats.lr_array_writes += 1;
                (true, 0)
            }
            (Some(Part::Hr), true) => {
                let wb = self.hr_write_hit(la, tag_done_ns, now_ns);
                (true, wb)
            }
            (None, true) => {
                self.stats.write_misses += 1;
                (false, 0)
            }
            (None, false) => {
                self.stats.read_misses += 1;
                (false, 0)
            }
        }
    }

    /// A write that hit in HR: migrate to LR once the write-count
    /// threshold is reached (and a HR→LR buffer slot is free), else
    /// service it in place.
    fn hr_write_hit(&mut self, la: u64, tag_done_ns: u64, now_ns: u64) -> u32 {
        self.hr.lookup_hit(la, true, now_ns);
        let token = self.fresh_token();
        self.hr.line_mut(la).expect("HR hit").content = token;
        self.stats.hr_write_hits += 1;
        let count = self.hr.line(la).map_or(1, |l| l.write_count);

        if self.engine.should_migrate(count) {
            // The migration reads the block out of HR and writes it
            // (merged with the demand data) into LR through the buffer.
            let write_done = tag_done_ns + self.hr_read_ns + self.lr_write_ns;
            if self.hr_to_lr.try_reserve(now_ns, write_done) {
                let victim = self.hr.extract(la).expect("HR hit extracts");
                self.stats.migrations_to_lr += 1;
                self.stats.demand_writes_lr += 1;
                self.stats.lr_array_writes += 1;
                let evicted = self
                    .lr
                    .fill(la, true, victim.write_count, victim.content, now_ns);
                if let Some(lr_victim) = evicted {
                    return self.demote(lr_victim, now_ns);
                }
                return 0;
            }
        }
        // Below threshold, or no buffer slot: write in place.
        let line = self.hr.line_mut(la).expect("HR hit");
        line.written_at_ns = now_ns;
        self.stats.demand_writes_hr += 1;
        self.stats.hr_array_writes += 1;
        0
    }

    /// Demotes an LR victim into HR through the LR→HR buffer; with no
    /// slot free the block is forced out (dirty → DRAM write-back).
    /// Returns write-backs generated.
    fn demote(&mut self, victim: Line, now_ns: u64) -> u32 {
        let write_done = now_ns + self.lr_read_ns + self.hr_write_ns;
        if !self.lr_to_hr.try_reserve(now_ns, write_done) {
            self.retire(&victim);
            if victim.dirty {
                self.stats.writebacks += 1;
                self.stats.overflow_writebacks += 1;
                return 1;
            }
            return 0;
        }
        self.stats.demotions_to_hr += 1;
        self.stats.hr_array_writes += 1;
        let evicted = self
            .hr
            .fill(victim.la, victim.dirty, 0, victim.content, now_ns);
        // Write counts restart for the new HR residency: `fill` counts
        // the filling write via the dirty flag, which would leave dirty
        // demotions one demand write ahead at thresholds 2..3.
        if let Some(line) = self.hr.line_mut(victim.la) {
            line.write_count = 0;
        }
        if let Some(hr_victim) = evicted {
            self.retire(&hr_victim);
            if hr_victim.dirty {
                self.stats.writebacks += 1;
                return 1;
            }
        }
        0
    }

    /// Installs a DRAM fill: dirty fills at threshold 1 go to LR (a
    /// write-allocated block is write-working-set by definition there),
    /// everything else to HR. Returns write-backs generated.
    pub fn fill(&mut self, la: u64, dirty: bool, now_ns: u64) -> u32 {
        let content = if dirty {
            self.fresh_token()
        } else {
            self.dram_content(la)
        };
        let to_lr = self.engine.fill_to_lr(dirty);
        if to_lr {
            self.stats.fills_to_lr += 1;
            self.stats.demand_writes_lr += 1;
            self.stats.lr_array_writes += 1;
            if let Some(victim) = self.lr.fill(la, dirty, 0, content, now_ns) {
                return self.demote(victim, now_ns);
            }
            0
        } else {
            self.stats.fills_to_hr += 1;
            if dirty {
                self.stats.demand_writes_hr += 1;
            }
            self.stats.hr_array_writes += 1;
            if let Some(victim) = self.hr.fill(la, dirty, 0, content, now_ns) {
                self.retire(&victim);
                if victim.dirty {
                    self.stats.writebacks += 1;
                    return 1;
                }
            }
            0
        }
    }

    /// Retention maintenance at `now_ns`: the LR refresh engine, then
    /// the HR expiry engine. Due lines are processed in `(deadline,
    /// line, clock)` order — the same total order the implementation's
    /// min-heaps pop in, which matters because LR refreshes compete for
    /// LR→HR buffer slots.
    pub fn maintain(&mut self, now_ns: u64) {
        // --- Runtime policy epoch ------------------------------------
        // Evaluated before the retention engines, exactly like the
        // implementation's `policy_epoch` — the shared engine sees the
        // same statistics at the same times, so its decisions coincide.
        if !self.engine.is_fixed() {
            let actions = self.engine.poll(
                now_ns,
                &self.stats,
                self.hr.active_ways as u32,
                self.hr_max_ways,
                self.hr.sets,
            );
            if let Some(level) = actions.retention_level {
                self.apply_retention_level(level, now_ns);
            }
            if let Some(ways) = actions.hr_ways {
                self.apply_hr_ways(ways, now_ns);
            }
        }

        // --- LR refresh engine ---------------------------------------
        let slack = self.refresh_slack;
        let mut due: Vec<(u64, u64, u64)> = self
            .lr
            .lines()
            .filter_map(|l| {
                let deadline = self
                    .lr_rc
                    .refresh_deadline_with_slack_ns(l.written_at_ns, slack);
                (deadline <= now_ns).then_some((deadline, l.la, l.written_at_ns))
            })
            .collect();
        due.sort_unstable();
        for (_, la, clock) in due {
            // A predecessor in this sweep cannot have touched this
            // line, but stay defensive about the clock.
            if self.lr.line(la).is_none_or(|l| l.written_at_ns != clock) {
                continue;
            }
            if self.lr_rc.is_expired(clock, now_ns) {
                // Cadence violated: the data is already gone.
                self.stats.lr_expirations += 1;
                let victim = self.lr.extract(la).expect("due line is resident");
                self.retire(&victim);
                if victim.dirty {
                    self.stats.writebacks += 1;
                }
                continue;
            }
            let done = now_ns + self.lr_read_ns + self.lr_write_ns;
            if self.lr_to_hr.try_reserve(now_ns, done) {
                self.stats.refreshes += 1;
                self.stats.lr_array_writes += 1;
                self.lr
                    .line_mut(la)
                    .expect("due line is resident")
                    .written_at_ns = now_ns;
            } else {
                // No slot before expiry: evacuate instead of losing data.
                let victim = self.lr.extract(la).expect("due line is resident");
                self.retire(&victim);
                if victim.dirty {
                    self.stats.writebacks += 1;
                    self.stats.overflow_writebacks += 1;
                }
            }
        }

        // --- HR expiry engine ----------------------------------------
        // HR has no refresh: lines at the last retention-counter tick
        // are invalidated (clean) or written back (dirty).
        let mut due: Vec<(u64, u64, u64)> = self
            .hr
            .lines()
            .filter_map(|l| {
                let deadline = self.hr_rc.refresh_deadline_ns(l.written_at_ns);
                (deadline <= now_ns).then_some((deadline, l.la, l.written_at_ns))
            })
            .collect();
        due.sort_unstable();
        for (_, la, clock) in due {
            if self.hr.line(la).is_none_or(|l| l.written_at_ns != clock) {
                continue;
            }
            self.stats.hr_expirations += 1;
            let victim = self.hr.extract(la).expect("due line is resident");
            self.retire(&victim);
            if victim.dirty {
                self.stats.writebacks += 1;
            }
        }
    }

    /// Switches the LR part to retention ladder `level`: swap the
    /// tracker, then rewrite-sweep every resident LR line at `now + 1`
    /// so its retention clock restarts under the new tracker (the same
    /// stamp discipline the implementation uses to invalidate its
    /// pre-switch heap entries).
    fn apply_retention_level(&mut self, level: u32, now_ns: u64) {
        self.lr_rc = lr_tracker_at(self.lr_base_retention, self.lr_rc_bits, level);
        let stamp = now_ns + 1;
        for line in self.lr.slots.iter_mut().flatten() {
            line.written_at_ns = stamp;
            self.stats.lr_array_writes += 1;
        }
    }

    /// Reconfigures the HR part to `ways` active ways, draining the
    /// parked range first on a shrink (dirty victims write back to DRAM,
    /// clean ones drop).
    fn apply_hr_ways(&mut self, ways: u32, now_ns: u64) {
        let _ = now_ns;
        let target = ways as usize;
        if target < self.hr.active_ways {
            for victim in self.hr.drain_ways(target) {
                self.retire(&victim);
                if victim.dirty {
                    self.stats.writebacks += 1;
                }
            }
        }
        self.hr.active_ways = target;
    }
}
