//! Seeded random request-stream generation.
//!
//! A trace is a flat list of [`Op`]s with *relative* timestamps and
//! line-granular addresses. Relative time is what makes traces
//! shrinkable: removing any subsequence of ops leaves a stream that is
//! still monotone in time and still well formed, so the shrinker never
//! has to repair a candidate.

use sttgpu_stats::Rng;

/// One request: wait `dt_ns`, then access `line` (read or write); on a
/// miss the driver immediately fills the line (dirty iff the access
/// was a write) — the fill-on-miss discipline every replay harness in
/// this repo uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Nanoseconds since the previous op (clamped to at least 1).
    pub dt_ns: u64,
    /// Line address (the driver scales by the configured line size).
    pub line: u64,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

/// Shape of a generated trace: length, address-locality mix,
/// read/write ratio and inter-arrival bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// Number of operations.
    pub ops: usize,
    /// Size of the full address pool, lines.
    pub lines: u64,
    /// Size of the hot subset (lines `0..hot_lines`).
    pub hot_lines: u64,
    /// Probability an op targets the hot subset.
    pub hot_fraction: f64,
    /// Probability an op is a write.
    pub write_fraction: f64,
    /// Upper bound on the inter-arrival gap, ns (inclusive).
    pub max_dt_ns: u64,
}

/// Expands `(seed, spec)` into a concrete trace, deterministically.
pub fn generate(seed: u64, spec: &TraceSpec) -> Vec<Op> {
    assert!(spec.lines >= 1 && spec.hot_lines >= 1, "empty address pool");
    assert!(spec.max_dt_ns >= 1, "ops need to advance time");
    let mut rng = Rng::new(seed);
    (0..spec.ops)
        .map(|_| {
            let dt_ns = rng.range_u64(1, spec.max_dt_ns + 1);
            let line = if rng.chance(spec.hot_fraction) {
                rng.range_u64(0, spec.hot_lines)
            } else {
                rng.range_u64(0, spec.lines)
            };
            let write = rng.chance(spec.write_fraction);
            Op { dt_ns, line, write }
        })
        .collect()
}

/// Renders a trace as Rust `Op` literals, one per line — the format
/// regression tests check minimized traces in as.
pub fn format_trace(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&format!(
            "Op {{ dt_ns: {}, line: {}, write: {} }},\n",
            op.dt_ns, op.line, op.write
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            ops: 200,
            lines: 100,
            hot_lines: 8,
            hot_fraction: 0.5,
            write_fraction: 0.4,
            max_dt_ns: 300,
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        assert_eq!(generate(42, &spec()), generate(42, &spec()));
        assert_ne!(generate(42, &spec()), generate(43, &spec()));
    }

    #[test]
    fn ops_respect_the_spec_bounds() {
        for op in generate(7, &spec()) {
            assert!((1..=300).contains(&op.dt_ns));
            assert!(op.line < 100);
        }
    }

    #[test]
    fn format_round_trips_visually() {
        let ops = [Op {
            dt_ns: 5,
            line: 3,
            write: true,
        }];
        assert_eq!(
            format_trace(&ops),
            "Op { dt_ns: 5, line: 3, write: true },\n"
        );
    }
}
