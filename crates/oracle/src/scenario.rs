//! Seeded scenario generation: composable phases lowered to [`Op`]s.
//!
//! Where [`TraceSpec`](crate::TraceSpec) describes one homogeneous
//! request mix, a [`ScenarioSpec`] composes **phases** — each with its
//! own working-set window, Zipf skew, write-fraction ramp, optional
//! grid-end write burst and optional rewrite-interval target — into a
//! single stream. That is the access-pattern vocabulary the paper's §4
//! characterisation uses (small furiously-rewritten WWS, writes bursting
//! at grid ends, sub-10 µs rewrite intervals) and the one the 16
//! synthetic workloads are tuned in; the scenario engine makes the same
//! vocabulary available to the differential oracle, so every class of
//! stream is fuzzable, shrinkable and regression-pinnable through the
//! unchanged [`run_case`](crate::run_case)/[`shrink`](crate::shrink)
//! machinery.
//!
//! [`scenario_families`] names the built-in classes. Each family is a
//! seeded *generator of specs*: `make(seed)` draws the phase parameters
//! from family-characteristic ranges, so one family covers arbitrarily
//! many concrete scenarios while staying deterministic in the seed.

use sttgpu_stats::Rng;

use crate::trace_gen::Op;

/// One phase of a scenario: a working-set window with its own mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Operations in this phase (including the trailing burst).
    pub ops: usize,
    /// First line of the phase's working set (working-set shifts move
    /// this between phases).
    pub base_line: u64,
    /// Working-set size, lines (≥ 1).
    pub working_set: u64,
    /// Zipf skew exponent over the working set (0 = uniform; rank 0 is
    /// the hottest line).
    pub zipf_s: f64,
    /// Write fraction at the start of the phase.
    pub write_start: f64,
    /// Write fraction at the end of the phase (linear ramp between).
    pub write_end: f64,
    /// Inclusive upper bound on inter-arrival gaps, ns (≥ 1).
    pub max_dt_ns: u64,
    /// Trailing ops that model a grid-end write burst: back-to-back
    /// writes (1 ns apart) into the hottest eighth of the working set.
    pub burst_ops: usize,
    /// When set, written lines are re-written ~this many ns later —
    /// the Fig. 6 rewrite-interval behaviour the LR part feeds on.
    pub rewrite_interval_ns: Option<u64>,
}

impl Phase {
    fn validate(&self) {
        assert!(self.working_set >= 1, "empty working set");
        assert!(self.max_dt_ns >= 1, "ops need to advance time");
        assert!(self.burst_ops <= self.ops, "burst longer than phase");
        for f in [self.write_start, self.write_end] {
            assert!((0.0..=1.0).contains(&f), "write fraction outside [0, 1]");
        }
        assert!(self.zipf_s >= 0.0, "negative Zipf exponent");
    }
}

/// A named composition of phases, lowered to a concrete trace by
/// [`lower`](ScenarioSpec::lower).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable name (family plus the drawing seed).
    pub name: String,
    /// The phases, replayed in order.
    pub phases: Vec<Phase>,
}

impl ScenarioSpec {
    /// Total operations across all phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Expands the spec into a concrete [`Op`] stream, deterministically
    /// in `seed`. The result obeys the same well-formedness contract as
    /// [`generate`](crate::generate) — `dt_ns ≥ 1` everywhere, every
    /// subsequence still valid — so shrinking works unchanged.
    pub fn lower(&self, seed: u64) -> Vec<Op> {
        let mut rng = Rng::new(seed);
        let mut ops = Vec::with_capacity(self.total_ops());
        let mut now = 0u64;
        // Rewrite targets outlive phases: a line written late in phase k
        // comes due early in phase k+1, exactly like a grid consuming its
        // predecessor's output.
        let mut due: std::collections::VecDeque<(u64, u64)> = std::collections::VecDeque::new();
        for phase in &self.phases {
            phase.validate();
            let cdf = zipf_cdf(phase.working_set, phase.zipf_s);
            let steady = phase.ops - phase.burst_ops;
            for i in 0..phase.ops {
                let burst = i >= steady;
                let dt_ns = if burst {
                    1
                } else {
                    rng.range_u64(1, phase.max_dt_ns + 1)
                };
                now += dt_ns;
                let t = if steady <= 1 {
                    0.0
                } else {
                    i.min(steady - 1) as f64 / (steady - 1) as f64
                };
                let write_fraction = phase.write_start + (phase.write_end - phase.write_start) * t;
                let (line, write) = if burst {
                    let hot = (phase.working_set / 8).max(1);
                    (phase.base_line + rng.range_u64(0, hot), true)
                } else if due.front().is_some_and(|&(_, due_ns)| due_ns <= now) {
                    // A rewrite-interval target came due: re-write it.
                    let (line, _) = due.pop_front().expect("front checked");
                    (line, true)
                } else {
                    let rank = sample_rank(&mut rng, &cdf, phase.working_set);
                    (phase.base_line + rank, rng.chance(write_fraction))
                };
                if write {
                    if let Some(interval) = phase.rewrite_interval_ns {
                        due.push_back((line, now + interval));
                    }
                }
                ops.push(Op { dt_ns, line, write });
            }
        }
        ops
    }
}

/// Cumulative Zipf weights for ranks `0..n` with exponent `s`; `None`
/// for the uniform case (`s == 0`), which needs no table.
fn zipf_cdf(n: u64, s: f64) -> Option<Vec<f64>> {
    if s == 0.0 {
        return None;
    }
    // Large working sets with skew concentrate on the head anyway; cap
    // the table and fold the tail into the last bucket.
    let m = n.min(4096) as usize;
    let mut cdf = Vec::with_capacity(m);
    let mut total = 0.0;
    for r in 0..m {
        total += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(total);
    }
    for w in &mut cdf {
        *w /= total;
    }
    Some(cdf)
}

fn sample_rank(rng: &mut Rng, cdf: &Option<Vec<f64>>, n: u64) -> u64 {
    match cdf {
        None => rng.range_u64(0, n),
        Some(cdf) => {
            let u = rng.f64_unit();
            let idx = cdf.partition_point(|&c| c < u);
            (idx as u64).min(n - 1)
        }
    }
}

/// A named scenario class: a seeded generator of [`ScenarioSpec`]s.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioFamily {
    /// Stable family name (CLI `--scenario NAME`, fuzz reports, memo keys).
    pub name: &'static str,
    /// One-line description for listings.
    pub what: &'static str,
    /// Draws a concrete spec from the family's parameter ranges.
    pub make: fn(u64) -> ScenarioSpec,
}

/// Salt separating family parameter draws from trace lowering draws.
const FAMILY_SALT: u64 = 0xA076_1D64_78BD_642F;

fn family_rng(name: &str, seed: u64) -> Rng {
    let mut h = FAMILY_SALT ^ seed;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    Rng::new(h)
}

fn steady_phase(ws: u64, base: u64, wf: f64, ops: usize, max_dt: u64) -> Phase {
    Phase {
        ops,
        base_line: base,
        working_set: ws,
        zipf_s: 0.0,
        write_start: wf,
        write_end: wf,
        max_dt_ns: max_dt,
        burst_ops: 0,
        rewrite_interval_ns: None,
    }
}

fn make_phase_shift(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("phase-shift", seed);
    let phases = rng.range_usize(2, 6);
    let ws = rng.range_u64(48, 200);
    let wf = rng.range_f64(0.2, 0.6);
    let max_dt = rng.range_u64(100, 500);
    let specs = (0..phases)
        .map(|p| {
            // Each phase slides the window; overlap is partial, so some
            // lines survive the shift and some are cold-missed anew.
            let base = p as u64 * ws / rng.range_u64(1, 4);
            steady_phase(ws, base, wf, rng.range_usize(60, 140), max_dt)
        })
        .collect();
    ScenarioSpec {
        name: format!("phase-shift:{seed}"),
        phases: specs,
    }
}

fn make_zipf_hot(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("zipf-hot", seed);
    let ws = rng.range_u64(100, 600);
    let phase = Phase {
        ops: rng.range_usize(200, 400),
        base_line: rng.range_u64(0, 64),
        working_set: ws,
        zipf_s: rng.range_f64(0.7, 1.8),
        write_start: rng.range_f64(0.2, 0.7),
        write_end: rng.range_f64(0.2, 0.7),
        max_dt_ns: rng.range_u64(100, 500),
        burst_ops: 0,
        rewrite_interval_ns: None,
    };
    ScenarioSpec {
        name: format!("zipf-hot:{seed}"),
        phases: vec![phase],
    }
}

fn make_write_ramp(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("write-ramp", seed);
    let ws = rng.range_u64(64, 300);
    let up = Phase {
        ops: rng.range_usize(120, 250),
        base_line: 0,
        working_set: ws,
        zipf_s: rng.range_f64(0.0, 0.8),
        write_start: 0.0,
        write_end: rng.range_f64(0.7, 0.95),
        max_dt_ns: rng.range_u64(100, 400),
        burst_ops: 0,
        rewrite_interval_ns: None,
    };
    let down = Phase {
        write_start: up.write_end,
        write_end: 0.05,
        ops: rng.range_usize(60, 150),
        ..up.clone()
    };
    ScenarioSpec {
        name: format!("write-ramp:{seed}"),
        phases: vec![up, down],
    }
}

fn make_grid_burst(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("grid-burst", seed);
    let grids = rng.range_usize(2, 5);
    let ws = rng.range_u64(64, 250);
    let phases = (0..grids)
        .map(|_| {
            let ops = rng.range_usize(80, 160);
            Phase {
                ops,
                // Grids share the footprint: each consumes its
                // predecessor's output, so base_line stays put.
                base_line: 0,
                working_set: ws,
                zipf_s: rng.range_f64(0.0, 0.6),
                write_start: rng.range_f64(0.02, 0.15),
                write_end: rng.range_f64(0.02, 0.15),
                max_dt_ns: rng.range_u64(100, 400),
                burst_ops: (ops / rng.range_usize(4, 8)).max(4),
                rewrite_interval_ns: None,
            }
        })
        .collect();
    ScenarioSpec {
        name: format!("grid-burst:{seed}"),
        phases,
    }
}

fn make_rewrite_clock(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("rewrite-clock", seed);
    let ws = rng.range_u64(32, 160);
    let phase = Phase {
        ops: rng.range_usize(200, 400),
        base_line: 0,
        working_set: ws,
        zipf_s: rng.range_f64(0.0, 1.0),
        write_start: rng.range_f64(0.25, 0.5),
        write_end: rng.range_f64(0.25, 0.5),
        max_dt_ns: rng.range_u64(80, 300),
        burst_ops: 0,
        // Sub-10 µs rewrite intervals: the temporal-WWS regime the LR
        // part's short retention is sized for.
        rewrite_interval_ns: Some(rng.range_u64(200, 8_000)),
    };
    ScenarioSpec {
        name: format!("rewrite-clock:{seed}"),
        phases: vec![phase],
    }
}

fn make_scan_thrash(seed: u64) -> ScenarioSpec {
    let mut rng = family_rng("scan-thrash", seed);
    let hot_ws = rng.range_u64(16, 64);
    let scan_ws = rng.range_u64(400, 1_200);
    let rounds = rng.range_usize(1, 3);
    let mut phases = Vec::new();
    for r in 0..rounds {
        phases.push(Phase {
            ops: rng.range_usize(60, 120),
            base_line: 0,
            working_set: hot_ws,
            zipf_s: rng.range_f64(0.8, 1.5),
            write_start: rng.range_f64(0.3, 0.6),
            write_end: rng.range_f64(0.3, 0.6),
            max_dt_ns: rng.range_u64(100, 300),
            burst_ops: 0,
            rewrite_interval_ns: None,
        });
        // A streaming scan bigger than any corner cache thrashes every
        // set between visits to the hot phase.
        phases.push(steady_phase(
            scan_ws,
            1_000 + r as u64 * scan_ws,
            rng.range_f64(0.1, 0.4),
            rng.range_usize(80, 160),
            rng.range_u64(100, 300),
        ));
    }
    ScenarioSpec {
        name: format!("scan-thrash:{seed}"),
        phases,
    }
}

/// The built-in scenario families, in stable order (fuzz case indices
/// and memo keys depend on it).
pub fn scenario_families() -> Vec<ScenarioFamily> {
    vec![
        ScenarioFamily {
            name: "phase-shift",
            what: "working set slides between phases; partial overlap",
            make: make_phase_shift,
        },
        ScenarioFamily {
            name: "zipf-hot",
            what: "single phase, Zipf-skewed hot set",
            make: make_zipf_hot,
        },
        ScenarioFamily {
            name: "write-ramp",
            what: "write fraction ramps up then back down",
            make: make_write_ramp,
        },
        ScenarioFamily {
            name: "grid-burst",
            what: "read-mostly grids, writes bursting at grid ends",
            make: make_grid_burst,
        },
        ScenarioFamily {
            name: "rewrite-clock",
            what: "written lines re-written on a target interval",
            make: make_rewrite_clock,
        },
        ScenarioFamily {
            name: "scan-thrash",
            what: "hot Zipf set alternating with cache-busting scans",
            make: make_scan_thrash,
        },
    ]
}

/// Looks a family up by name.
pub fn scenario_by_name(name: &str) -> Option<ScenarioFamily> {
    scenario_families().into_iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_uniquely_named_and_at_least_four() {
        let fams = scenario_families();
        assert!(fams.len() >= 4, "acceptance floor: four scenario families");
        let mut names: Vec<_> = fams.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fams.len(), "duplicate family names");
    }

    #[test]
    fn lowering_is_deterministic_and_seed_sensitive() {
        for fam in scenario_families() {
            let a = (fam.make)(11);
            let b = (fam.make)(11);
            assert_eq!(a, b, "{}: spec must be deterministic", fam.name);
            assert_eq!(
                a.lower(3),
                b.lower(3),
                "{}: lowering must be deterministic",
                fam.name
            );
            assert_ne!(
                a.lower(3),
                a.lower(4),
                "{}: lowering must vary in the seed",
                fam.name
            );
            assert_ne!(
                (fam.make)(11),
                (fam.make)(12),
                "{}: spec must vary in the seed",
                fam.name
            );
        }
    }

    #[test]
    fn lowered_ops_are_well_formed() {
        for fam in scenario_families() {
            for seed in [0, 7, 99] {
                let spec = (fam.make)(seed);
                let ops = spec.lower(seed);
                assert_eq!(ops.len(), spec.total_ops(), "{}", fam.name);
                assert!(!ops.is_empty(), "{}: empty scenario", fam.name);
                for op in &ops {
                    assert!(op.dt_ns >= 1, "{}: dt must advance time", fam.name);
                }
            }
        }
    }

    #[test]
    fn write_ramp_actually_ramps() {
        let spec = (scenario_by_name("write-ramp").expect("family").make)(5);
        let ops = spec.lower(5);
        let first = &ops[..ops.len() / 4];
        let up_end = spec.phases[0].ops;
        let peak = &ops[3 * up_end / 4..up_end];
        let frac = |s: &[Op]| s.iter().filter(|o| o.write).count() as f64 / s.len() as f64;
        assert!(
            frac(peak) > frac(first) + 0.2,
            "ramp must raise the write fraction: start {:.2}, peak {:.2}",
            frac(first),
            frac(peak)
        );
    }

    #[test]
    fn grid_burst_ends_in_writes() {
        let spec = (scenario_by_name("grid-burst").expect("family").make)(5);
        let ops = spec.lower(5);
        let burst = spec.phases[0].burst_ops;
        let end = spec.phases[0].ops;
        assert!(burst >= 4);
        for op in &ops[end - burst..end] {
            assert!(op.write, "grid-end ops must all be writes");
            assert_eq!(op.dt_ns, 1, "burst ops are back to back");
        }
    }

    #[test]
    fn zipf_concentrates_on_the_head() {
        let spec = (scenario_by_name("zipf-hot").expect("family").make)(1);
        let ops = spec.lower(1);
        let base = spec.phases[0].base_line;
        let ws = spec.phases[0].working_set;
        let head = ops
            .iter()
            .filter(|o| o.line - base < (ws / 10).max(1))
            .count();
        assert!(
            head as f64 > ops.len() as f64 * 0.3,
            "a Zipf head must draw well over its uniform share ({head}/{})",
            ops.len()
        );
    }

    #[test]
    fn rewrite_clock_rewrites_written_lines() {
        let spec = (scenario_by_name("rewrite-clock").expect("family").make)(3);
        let ops = spec.lower(3);
        let mut seen = std::collections::HashMap::new();
        let mut rewrites = 0usize;
        for op in &ops {
            if op.write {
                rewrites += usize::from(seen.contains_key(&op.line));
                seen.insert(op.line, ());
            }
        }
        assert!(
            rewrites > ops.len() / 10,
            "rewrite targets must produce repeated writes ({rewrites})"
        );
    }

    #[test]
    fn phase_shift_moves_the_window() {
        let spec = (scenario_by_name("phase-shift").expect("family").make)(9);
        assert!(spec.phases.len() >= 2);
        let bases: std::collections::HashSet<u64> =
            spec.phases.iter().map(|p| p.base_line).collect();
        assert!(bases.len() >= 2, "phases must not all share a base");
    }
}
