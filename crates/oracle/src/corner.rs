//! Corner geometries the fuzzer rotates through.
//!
//! Each corner pairs a configuration that stresses a different slice of
//! the architecture with a trace shape tuned to reach it: tiny parts so
//! conflict evictions and demotions actually happen, thresholds above
//! one so write-count carrying matters, single-slot buffers so overflow
//! paths fire, retention targets whose tick rounds so the refresh
//! engine runs off the remainder window, and a zero-rate fault plan
//! that must be exactly transparent.

use sttgpu_core::{FaultConfig, SearchMode, TwoPartConfig};
use sttgpu_device::mtj::RetentionTime;

use crate::trace_gen::TraceSpec;

/// One fuzzing corner: a named configuration plus its trace shape.
#[derive(Debug, Clone)]
pub struct Corner {
    /// Short stable name (appears in fuzz reports and test output).
    pub name: &'static str,
    /// The configuration under test.
    pub cfg: TwoPartConfig,
    /// Trace shape driven against it.
    pub spec: TraceSpec,
}

fn spec(ops: usize, lines: u64, write_fraction: f64, max_dt_ns: u64) -> TraceSpec {
    TraceSpec {
        ops,
        lines,
        hot_lines: (lines / 8).max(1),
        hot_fraction: 0.5,
        write_fraction,
        max_dt_ns,
    }
}

/// A small 8 KB LR / 56 KB HR instance of the paper's shape — big
/// enough for real set behaviour, small enough that a few hundred ops
/// churn every set.
fn paper_shape() -> TwoPartConfig {
    TwoPartConfig::new(8, 2, 56, 7, 256)
}

/// The corner set the differential suite and `repro --fuzz` rotate
/// through.
pub fn corner_geometries() -> Vec<Corner> {
    vec![
        Corner {
            name: "paper-shape",
            cfg: paper_shape(),
            spec: spec(300, 150, 0.6, 400),
        },
        Corner {
            // 1-way LR: every LR set conflict is an immediate demotion.
            name: "one-way-lr",
            cfg: TwoPartConfig::new(4, 1, 56, 7, 256),
            spec: spec(300, 150, 0.6, 400),
        },
        Corner {
            // Both parts direct-mapped: maximal conflict pressure.
            name: "direct-mapped",
            cfg: TwoPartConfig::new(4, 1, 32, 1, 256),
            spec: spec(300, 200, 0.5, 400),
        },
        Corner {
            // Fully associative LR (one set, 32 ways): pure LRU churn.
            name: "fully-assoc-lr",
            cfg: TwoPartConfig::new(8, 32, 56, 7, 256),
            spec: spec(300, 150, 0.6, 400),
        },
        Corner {
            name: "parallel-search",
            cfg: paper_shape().with_search(SearchMode::Parallel),
            spec: spec(300, 150, 0.5, 400),
        },
        Corner {
            // Threshold 3 exercises write-count carrying across fills
            // and migrations; a single-slot buffer makes every overflow
            // fallback path reachable.
            name: "th3-tight-buffers",
            cfg: paper_shape().with_write_threshold(3).with_buffer_blocks(1),
            spec: spec(300, 120, 0.75, 400),
        },
        Corner {
            // Maximum refresh slack: the engine refreshes 14 ticks
            // early, so nearly every sweep finds due lines.
            name: "tail-slack-max",
            cfg: paper_shape().with_refresh_slack_ticks(14),
            spec: spec(250, 120, 0.6, 400),
        },
        Corner {
            // 1000 ns LR retention with a 4-bit counter: the tick
            // rounds up (63 ns) and the maintenance cadence narrows to
            // the 55 ns remainder window; 20 µs HR retention expires
            // HR lines inside the trace. The heaviest retention churn.
            name: "odd-retention",
            cfg: paper_shape()
                .with_lr_retention(RetentionTime::from_nanos(1000.0))
                .with_hr_retention(RetentionTime::from_micros(20.0)),
            spec: spec(250, 120, 0.6, 200),
        },
        Corner {
            // A fault plan with a seed but all-zero rates must be
            // exactly transparent.
            name: "zero-rate-fault",
            cfg: paper_shape().with_fault(FaultConfig {
                seed: 0xBEEF,
                ..FaultConfig::disabled()
            }),
            spec: spec(300, 150, 0.6, 400),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_set_is_large_and_uniquely_named() {
        let corners = corner_geometries();
        assert!(
            corners.len() >= 6,
            "acceptance floor: six corner geometries"
        );
        let mut names: Vec<_> = corners.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corners.len(), "duplicate corner names");
    }

    #[test]
    fn every_corner_validates_and_builds_an_oracle() {
        for corner in corner_geometries() {
            assert!(corner.cfg.validate().is_ok(), "{} invalid", corner.name);
            let _ = crate::OracleLlc::new(&corner.cfg);
        }
    }
}
