//! The differential driver: run a trace through the implementation and
//! the reference model in lockstep and report the first divergence.

use std::fmt;

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc, TwoPartStats};

use crate::corner::corner_geometries;
use crate::model::OracleLlc;
use crate::scenario::scenario_families;
use crate::shrink::shrink;
use crate::trace_gen::{generate, Op};

/// The first observable disagreement between model and implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the op after which the disagreement surfaced (`None`
    /// for pre-trace checks such as the maintenance cadence).
    pub op_index: Option<usize>,
    /// Which observation differed (`hit`, `writebacks`, a residency
    /// bit, a `stats.*` counter or a `buffer.*` counter).
    pub field: &'static str,
    /// The reference model's value (booleans as 0/1).
    pub model: u64,
    /// The implementation's value.
    pub dut: u64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op_index {
            Some(i) => write!(
                f,
                "after op #{i}: {} diverged (model {}, implementation {})",
                self.field, self.model, self.dut
            ),
            None => write!(
                f,
                "before the trace: {} diverged (model {}, implementation {})",
                self.field, self.model, self.dut
            ),
        }
    }
}

/// Every counter of [`TwoPartStats`], named, for first-mismatch
/// reporting.
fn stats_fields(s: &TwoPartStats) -> [(&'static str, u64); 27] {
    [
        ("stats.lr_read_hits", s.lr_read_hits),
        ("stats.hr_read_hits", s.hr_read_hits),
        ("stats.lr_write_hits", s.lr_write_hits),
        ("stats.hr_write_hits", s.hr_write_hits),
        ("stats.read_misses", s.read_misses),
        ("stats.write_misses", s.write_misses),
        ("stats.demand_writes_lr", s.demand_writes_lr),
        ("stats.demand_writes_hr", s.demand_writes_hr),
        ("stats.lr_array_writes", s.lr_array_writes),
        ("stats.hr_array_writes", s.hr_array_writes),
        ("stats.migrations_to_lr", s.migrations_to_lr),
        ("stats.demotions_to_hr", s.demotions_to_hr),
        ("stats.refreshes", s.refreshes),
        ("stats.lr_expirations", s.lr_expirations),
        ("stats.hr_expirations", s.hr_expirations),
        ("stats.writebacks", s.writebacks),
        ("stats.overflow_writebacks", s.overflow_writebacks),
        ("stats.second_search_hits", s.second_search_hits),
        ("stats.fills_to_lr", s.fills_to_lr),
        ("stats.fills_to_hr", s.fills_to_hr),
        ("stats.lr_rotations", s.lr_rotations),
        ("stats.ecc_corrections", s.ecc_corrections),
        ("stats.ecc_uncorrectable", s.ecc_uncorrectable),
        ("stats.data_loss_events", s.data_loss_events),
        ("stats.refresh_drops", s.refresh_drops),
        ("stats.buffer_stalls", s.buffer_stalls),
        ("stats.bank_faults", s.bank_faults),
    ]
}

/// Compares every post-op observation; returns the first mismatch.
fn compare_state(
    op_index: usize,
    la: u64,
    byte_addr: u64,
    dut: &TwoPartLlc,
    model: &OracleLlc,
) -> Option<Divergence> {
    let diverge = |field, model: u64, dut: u64| {
        (model != dut).then_some(Divergence {
            op_index: Some(op_index),
            field,
            model,
            dut,
        })
    };
    let dut_lr = dut.lr_contains(byte_addr);
    let dut_hr = dut.hr_contains(byte_addr);
    if dut_lr && dut_hr {
        // Not model-vs-implementation, but the exclusivity invariant is
        // free to check here and a residency bug often trips it first.
        return Some(Divergence {
            op_index: Some(op_index),
            field: "exclusive-residency",
            model: 0,
            dut: 2,
        });
    }
    diverge("lr_resident", model.lr_resident(la) as u64, dut_lr as u64)
        .or_else(|| diverge("hr_resident", model.hr_resident(la) as u64, dut_hr as u64))
        .or_else(|| {
            if dut.stats() == model.stats() {
                return None;
            }
            for ((field, m), (_, d)) in stats_fields(model.stats())
                .into_iter()
                .zip(stats_fields(dut.stats()))
            {
                if m != d {
                    return Some(Divergence {
                        op_index: Some(op_index),
                        field,
                        model: m,
                        dut: d,
                    });
                }
            }
            unreachable!("unequal stats with equal fields");
        })
        .or_else(|| {
            diverge(
                "buffer.overflows",
                model.buffer_overflows(),
                dut.buffer_overflows(),
            )
        })
        .or_else(|| {
            let (m_hl, m_lh) = model.buffer_peaks();
            let (d_hl, d_lh) = dut.buffer_peaks();
            diverge("buffer.hr_to_lr_peak", m_hl as u64, d_hl as u64)
                .or_else(|| diverge("buffer.lr_to_hr_peak", m_lh as u64, d_lh as u64))
        })
}

/// Replays `ops` against a fresh implementation and a fresh model in
/// lockstep — fill-on-miss, maintenance swept at the cadence both
/// machines agree on — and returns the first divergence, or `None`
/// when the machines stay observationally identical end to end.
pub fn run_case(cfg: &TwoPartConfig, ops: &[Op]) -> Option<Divergence> {
    let mut dut = TwoPartLlc::new(cfg.clone());
    let mut model = OracleLlc::new(cfg);

    let cadence = dut.maintenance_interval_ns();
    if cadence != model.maintenance_interval_ns() {
        return Some(Divergence {
            op_index: None,
            field: "maintenance_interval_ns",
            model: model.maintenance_interval_ns(),
            dut: cadence,
        });
    }

    let line_bytes = cfg.line_bytes as u64;
    let mut now = 1u64;
    let mut last_maintain = now;
    for (i, op) in ops.iter().enumerate() {
        now += op.dt_ns.max(1);
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            dut.maintain(last_maintain);
            model.maintain(last_maintain);
        }
        let byte_addr = op.line * line_bytes;
        let kind = if op.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };

        let dut_probe = dut.probe(byte_addr, kind, now);
        let (model_hit, model_probe_wb) = model.probe(op.line, op.write, now);
        if dut_probe.hit != model_hit {
            return Some(Divergence {
                op_index: Some(i),
                field: "hit",
                model: model_hit as u64,
                dut: dut_probe.hit as u64,
            });
        }

        let mut dut_wb = dut_probe.writebacks;
        let mut model_wb = model_probe_wb;
        if !dut_probe.hit {
            dut_wb += dut.fill(byte_addr, op.write, now).writebacks;
        }
        if !model_hit {
            model_wb += model.fill(op.line, op.write, now);
        }
        if dut_wb != model_wb {
            return Some(Divergence {
                op_index: Some(i),
                field: "writebacks",
                model: model_wb as u64,
                dut: dut_wb as u64,
            });
        }

        if let Some(d) = compare_state(i, op.line, byte_addr, &dut, &model) {
            return Some(d);
        }
    }
    None
}

/// One diverging fuzz case, minimized and ready to report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Global case index within the campaign.
    pub case: u64,
    /// Corner the case ran on.
    pub corner: &'static str,
    /// Seed that generated the diverging trace.
    pub seed: u64,
    /// Scenario family the trace was drawn from, or `None` for a
    /// legacy corner-spec trace.
    pub scenario: Option<&'static str>,
    /// The divergence observed on the *original* trace.
    pub divergence: Divergence,
    /// The greedily minimized trace (still diverging).
    pub minimized: Vec<Op>,
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Corner geometries rotated through.
    pub corners: usize,
    /// Every diverging case, minimized, in global case order.
    pub failures: Vec<FuzzFailure>,
}

/// Runs the contiguous case range `[lo, hi)` of a campaign seeded with
/// `base_seed`. Corner rotation, scenario rotation, per-case seeds and
/// shrinking depend only on the *global* case index, so a range's
/// results are identical whether it runs inside a serial sweep or on a
/// pool shard.
///
/// Even case indices draw the corner's own [`TraceSpec`](crate::TraceSpec) (the legacy
/// homogeneous mix, tuned per geometry); odd indices draw a scenario
/// family instead, rotating through [`scenario_families`] — so every
/// campaign exercises every family against every corner geometry.
fn fuzz_range(lo: u64, hi: u64, base_seed: u64) -> Vec<FuzzFailure> {
    let corners = corner_geometries();
    let families = scenario_families();
    let mut failures = Vec::new();
    for i in lo..hi {
        let corner = &corners[(i % corners.len() as u64) as usize];
        let seed = base_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let (scenario, ops) = if i % 2 == 1 {
            let fam = &families[((i / 2) % families.len() as u64) as usize];
            let spec = (fam.make)(seed);
            (Some(fam.name), spec.lower(seed.rotate_left(17)))
        } else {
            (None, generate(seed, &corner.spec))
        };
        if let Some(divergence) = run_case(&corner.cfg, &ops) {
            let minimized = shrink(&corner.cfg, &ops);
            failures.push(FuzzFailure {
                case: i,
                corner: corner.name,
                seed,
                scenario,
                divergence,
                minimized,
            });
        }
    }
    failures
}

/// Runs `cases` seeded differential cases, round-robin across
/// [`corner_geometries`], deriving per-case seeds from `base_seed`.
/// Every divergence is minimized before it is reported.
pub fn fuzz(cases: u64, base_seed: u64) -> FuzzReport {
    fuzz_sharded(cases, base_seed, 1)
}

/// [`fuzz`], with the campaign split into `shards` contiguous case
/// ranges executed on scoped worker threads.
///
/// Each case derives its seed and corner from its global index exactly as
/// the serial sweep does, each shard shrinks its own failures, and shard
/// results are concatenated in shard (= case) order — so the report is
/// byte-identical to `fuzz(cases, base_seed)` for any shard count.
pub fn fuzz_sharded(cases: u64, base_seed: u64, shards: u64) -> FuzzReport {
    let corners = corner_geometries().len();
    let shards = shards.clamp(1, cases.max(1));
    let per_shard = cases.div_ceil(shards);
    let mut failures = Vec::new();
    if shards <= 1 {
        failures = fuzz_range(0, cases, base_seed);
    } else {
        let ranges: Vec<(u64, u64)> = (0..shards)
            .map(|s| ((s * per_shard).min(cases), ((s + 1) * per_shard).min(cases)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut shard_results: Vec<Vec<FuzzFailure>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .map(|&(lo, hi)| scope.spawn(move || fuzz_range(lo, hi, base_seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fuzz shard panicked"))
                .collect()
        });
        for shard in &mut shard_results {
            failures.append(shard);
        }
    }
    FuzzReport {
        cases,
        corners,
        failures,
    }
}
