//! Model-based differential fuzzing oracle for the two-part LLC.
//!
//! [`TwoPartLlc`](sttgpu_core::TwoPartLlc) is performance-engineered:
//! lazy-deletion deadline heaps instead of array scans, cached integer
//! latencies, bank arbiters, trace and energy plumbing threaded through
//! every path. Each of those optimisations is a place where the
//! implementation can silently drift from the architecture it claims to
//! model. This crate pins it down from the outside:
//!
//! * [`OracleLlc`] is a small, deliberately *unoptimised* functional
//!   model of the same semantics — per-line residency, dirtiness, write
//!   counts, content tokens, retention clocks and swap-buffer occupancy
//!   held in plain scanned vectors and sorted multisets, with no heaps,
//!   no lazy deletion and no caching. Where the implementation earns
//!   speed, the oracle spends clarity.
//! * [`generate`] turns a seed and a [`TraceSpec`] into a request
//!   stream (hot/cold address mix, read/write ratio, bounded
//!   inter-arrival gaps) whose every subsequence is still well formed,
//!   which is what makes traces shrinkable.
//! * [`run_case`] drives both machines through the same
//!   probe/fill/maintain discipline the repo's replay harnesses use and
//!   reports the first observable [`Divergence`]: per-op hit/miss,
//!   write-backs, residency, the full statistics block and the
//!   swap-buffer counters.
//! * [`shrink`] greedily delta-debugs a diverging trace down to a
//!   handful of operations fit for checking in as a regression test.
//! * [`ScenarioSpec`] composes phases — working-set shifts, Zipf skew,
//!   write-fraction ramps, grid-end write bursts, rewrite-interval
//!   targets — and lowers them to the same [`Op`] vocabulary, so the
//!   named families in [`scenario_families`] fuzz, shrink and pin
//!   through the identical machinery; [`ops_to_records`]/[`save_ops`]
//!   bridge to the on-disk trace format.
//! * [`fuzz`] round-robins seeded cases across [`corner_geometries`],
//!   interleaving legacy corner mixes with scenario-family draws —
//!   paper-shape, direct-mapped, fully-associative, parallel-search,
//!   tight-buffer, slack, rounded-tick and zero-rate-fault corners;
//!   [`fuzz_sharded`] splits the same campaign into contiguous case
//!   ranges on worker threads and merges a byte-identical report.
//!
//! The oracle deliberately models the *functional* architecture only:
//! completion times (`ready_ns`) depend on the bank arbiter, which is a
//! performance model rather than a correctness property, so they are
//! not compared. Fault injection is compared only at rate zero, where
//! an enabled-but-silent plan must be exactly transparent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corner;
mod diff;
mod io;
mod model;
mod scenario;
mod shrink;
mod trace_gen;

pub use corner::{corner_geometries, Corner};
pub use diff::{fuzz, fuzz_sharded, run_case, Divergence, FuzzFailure, FuzzReport};
pub use io::{load_ops, ops_to_records, records_to_ops, save_ops};
pub use model::OracleLlc;
pub use scenario::{scenario_by_name, scenario_families, Phase, ScenarioFamily, ScenarioSpec};
pub use shrink::shrink;
pub use trace_gen::{format_trace, generate, Op, TraceSpec};
