//! Greedy trace minimization (delta debugging).
//!
//! Because traces use relative timestamps, deleting any subsequence of
//! ops yields another well-formed trace, so minimization is plain
//! greedy chunk removal: drop halving-sized chunks while the trace
//! still diverges, then squeeze the surviving inter-arrival gaps to
//! 1 ns where the divergence allows it. The result is what a human
//! debugs — and what gets checked in as a regression test.

use sttgpu_core::TwoPartConfig;

use crate::diff::run_case;
use crate::trace_gen::Op;

/// Minimizes a diverging trace. Returns the input unchanged when it
/// does not diverge (there is nothing to preserve while shrinking).
pub fn shrink(cfg: &TwoPartConfig, ops: &[Op]) -> Vec<Op> {
    let mut cur: Vec<Op> = ops.to_vec();
    if run_case(cfg, &cur).is_none() {
        return cur;
    }

    // Chunk removal, halving the chunk size down to single ops.
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - i));
            candidate.extend_from_slice(&cur[..i]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && run_case(cfg, &candidate).is_some() {
                cur = candidate;
                // Keep `i`: the next chunk has slid into this position.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Gap squeezing: shrink each dt to the 1 ns floor where possible.
    for i in 0..cur.len() {
        if cur[i].dt_ns == 1 {
            continue;
        }
        let mut candidate = cur.clone();
        candidate[i].dt_ns = 1;
        if run_case(cfg, &candidate).is_some() {
            cur = candidate;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner_geometries;
    use crate::trace_gen::generate;

    #[test]
    fn non_diverging_traces_come_back_unchanged() {
        let corner = &corner_geometries()[0];
        let ops = generate(1, &corner.spec);
        assert_eq!(shrink(&corner.cfg, &ops), ops);
    }
}
