//! Per-policy differential sweep: every shipped runtime policy must
//! keep the implementation and the reference model observationally
//! identical across every corner geometry.
//!
//! The policy engine is shared between the two machines, so a
//! divergence here means a machine applied a decision differently —
//! exactly the class of bug the adaptive paths (rewrite sweeps, way
//! drains, epoch clocks) can introduce.

use sttgpu_core::LlcPolicy;
use sttgpu_oracle::{corner_geometries, generate, run_case};

#[test]
fn every_policy_agrees_on_every_corner_geometry() {
    let mut cases = 0u64;
    for corner in corner_geometries() {
        for policy in LlcPolicy::ALL {
            for (round, seed) in [0x5EED_0001u64, 0xDAC0_2014, 0x0BAD_CAFE]
                .into_iter()
                .enumerate()
            {
                let cfg = corner.cfg.clone().with_policy(policy);
                // Longer traces than the plain fuzz corners: adaptive
                // decisions fire on 10 µs epoch crossings, so the trace
                // must span many epochs to exercise switches.
                let mut spec = corner.spec;
                spec.ops = 1_200;
                let ops = generate(seed ^ (round as u64) << 32, &spec);
                assert_eq!(
                    run_case(&cfg, &ops),
                    None,
                    "[{}/{}/seed {seed:#x}] model and implementation diverged",
                    corner.name,
                    policy.name(),
                );
                cases += 1;
            }
        }
    }
    assert!(
        cases >= 81,
        "acceptance floor: 9 corners x 3 policies x 3 seeds"
    );
}
