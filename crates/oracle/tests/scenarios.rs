//! Differential tests per scenario class: every named family runs the
//! implementation against the reference model across every corner
//! geometry. A divergence is shrunk before it is reported, so a failure
//! message here is already a ready-to-check-in regression trace
//! (`crates/oracle/tests/regressions.rs` is where it goes).

use sttgpu_oracle::{corner_geometries, format_trace, run_case, scenario_families, shrink};

/// Seeds per family — small enough to stay tier-1-fast (the full sweep
/// is `repro --fuzz`), wide enough that each family meets each corner
/// in several concrete shapes.
const SEEDS: [u64; 3] = [1, 7, 1234];

#[test]
fn every_scenario_family_agrees_with_the_oracle_on_every_corner() {
    let corners = corner_geometries();
    for fam in scenario_families() {
        for &seed in &SEEDS {
            let spec = (fam.make)(seed);
            let ops = spec.lower(seed.rotate_left(17));
            for corner in &corners {
                if let Some(divergence) = run_case(&corner.cfg, &ops) {
                    let minimized = shrink(&corner.cfg, &ops);
                    panic!(
                        "scenario {} (seed {seed}) diverged on {}: {divergence}\n\
                         check this in under crates/oracle/tests/ as a regression:\n\
                         minimized trace ({} ops):\n{}",
                        spec.name,
                        corner.name,
                        minimized.len(),
                        format_trace(&minimized)
                    );
                }
            }
        }
    }
}

#[test]
fn scenario_traces_shrink_like_generated_ones() {
    // The shrinker's contract — any subsequence of a well-formed trace
    // is still well formed — must hold for scenario-lowered traces too,
    // or a scenario divergence could not be minimized. Spot-check that
    // truncations and deletions replay without panicking.
    let fam = scenario_families();
    let spec = (fam[0].make)(7);
    let ops = spec.lower(7);
    let corner = &corner_geometries()[0];
    let half = &ops[..ops.len() / 2];
    let _ = run_case(&corner.cfg, half);
    let mut gap: Vec<_> = ops.clone();
    gap.drain(10..20.min(gap.len()));
    let _ = run_case(&corner.cfg, &gap);
}
