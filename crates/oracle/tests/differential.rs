//! Bounded differential sweep: every corner geometry, several seeds.
//!
//! This is the tier-1 face of the fuzzing oracle — small enough to run
//! in every `cargo test`, broad enough that a semantic drift between
//! `TwoPartLlc` and the reference model shows up here first. On
//! failure the diverging trace is minimized and printed as checkable
//! `Op` literals.

use sttgpu_oracle::{
    corner_geometries, format_trace, fuzz, fuzz_sharded, generate, run_case, shrink,
};

#[test]
fn oracle_matches_the_implementation_across_corner_geometries() {
    for (c, corner) in corner_geometries().iter().enumerate() {
        for s in 0..4u64 {
            let seed = 0xD1FF_0000 + (c as u64) * 16 + s;
            let ops = generate(seed, &corner.spec);
            if let Some(divergence) = run_case(&corner.cfg, &ops) {
                let minimized = shrink(&corner.cfg, &ops);
                panic!(
                    "[{} seed {seed:#x}] {divergence}\nminimized trace ({} ops):\n{}",
                    corner.name,
                    minimized.len(),
                    format_trace(&minimized)
                );
            }
        }
    }
}

#[test]
fn fuzz_campaign_smoke_run_is_clean() {
    let report = fuzz(27, 0xF422_5EED);
    assert_eq!(report.cases, 27);
    assert!(report.corners >= 6);
    if let Some(f) = report.failures.first() {
        panic!(
            "[{} seed {:#x}] {}\nminimized trace:\n{}",
            f.corner,
            f.seed,
            f.divergence,
            format_trace(&f.minimized)
        );
    }
}

/// Sharding a campaign across worker threads must not change the report:
/// per-case seeds and corners are functions of the global case index, and
/// shard results merge back in case order.
#[test]
fn sharded_fuzz_report_is_identical_to_serial() {
    let serial = fuzz(53, 0x5AD_5EED);
    for shards in [1u64, 2, 3, 4, 8, 64, 1000] {
        let sharded = fuzz_sharded(53, 0x5AD_5EED, shards);
        assert_eq!(serial, sharded, "report diverged at shards={shards}");
    }
}
