//! Minimized oracle traces pinning the bugs this fuzzing layer was
//! built to catch — each checked in exactly as the shrinker emitted it.
//!
//! Every test replays a tiny trace through [`run_case`] (model and
//! implementation in lockstep) *and* asserts the concrete behaviour
//! directly on the implementation, so the regression stays meaningful
//! even if the oracle itself evolves.

use sttgpu_core::{FaultConfig, TwoPartConfig, TwoPartLlc};
use sttgpu_device::mtj::RetentionTime;
use sttgpu_oracle::{run_case, Op, OracleLlc};

fn paper_shape() -> TwoPartConfig {
    TwoPartConfig::new(8, 2, 56, 7, 256)
}

/// Replays a trace on the implementation alone with the oracle's
/// fill-on-miss discipline, returning the machine for inspection.
fn replay(cfg: &TwoPartConfig, ops: &[Op]) -> TwoPartLlc {
    use sttgpu_cache::AccessKind;
    use sttgpu_core::LlcModel;
    let mut llc = TwoPartLlc::new(cfg.clone());
    let cadence = llc.maintenance_interval_ns();
    let line_bytes = cfg.line_bytes as u64;
    let mut now = 1u64;
    let mut last_maintain = now;
    for op in ops {
        now += op.dt_ns.max(1);
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let addr = op.line * line_bytes;
        let kind = if op.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if !llc.probe(addr, kind, now).hit {
            llc.fill(addr, op.write, now);
        }
    }
    llc
}

#[test]
fn dirty_fill_does_not_double_count_the_filling_write() {
    // Shrinker output for the fill() write-count seeding bug (HR fills
    // carried `dirty as u32` on top of `fill_with`'s own dirty
    // accounting): at threshold 3, a dirty fill seeded count 2 instead
    // of 1, so the very next demand write reached 3 and migrated one
    // write early — `lr_resident` diverged after op #1.
    let cfg = paper_shape().with_write_threshold(3).with_buffer_blocks(1);
    let trace = [
        Op {
            dt_ns: 1,
            line: 13,
            write: true,
        },
        Op {
            dt_ns: 1,
            line: 13,
            write: true,
        },
    ];
    assert_eq!(run_case(&cfg, &trace), None);

    // Pin the fixed behaviour directly: dirty fill = write 1, second
    // demand write = 2 < 3, so the line must still be HR-resident; the
    // *third* write is the migration trigger.
    let llc = replay(&cfg, &trace);
    assert!(llc.hr_contains(13 * 256), "write 2 of 3 must stay in HR");
    assert!(!llc.lr_contains(13 * 256));
    assert_eq!(llc.stats().migrations_to_lr, 0);
    let llc = replay(
        &cfg,
        &[
            Op {
                dt_ns: 1,
                line: 13,
                write: true,
            },
            Op {
                dt_ns: 1,
                line: 13,
                write: true,
            },
            Op {
                dt_ns: 1,
                line: 13,
                write: true,
            },
        ],
    );
    assert!(llc.lr_contains(13 * 256), "write 3 of 3 migrates");
    assert_eq!(llc.stats().migrations_to_lr, 1);
}

#[test]
fn demoted_dirty_line_restarts_its_hr_write_count() {
    // Shrinker output for the demotion write-count seeding bug: `demote`
    // and `rotate_lr` handed the victim's dirty bit to `fill_with`,
    // whose line constructor counts the filling write — so a *dirty*
    // demoted line re-entered HR at count 1 instead of 0. At threshold
    // 2 its first post-demotion demand write reached 2 and migrated one
    // write early; `lr_resident` diverged on the final op.
    //
    // LR at this shape is 32 lines / 2-way / 16 sets, so lines 1, 17
    // and 33 share an LR set: two migrations fill the set, the third
    // demotes line 1 (dirty) back to HR.
    let cfg = paper_shape().with_write_threshold(2);
    let mut trace: Vec<Op> = Vec::new();
    for line in [1u64, 17, 33] {
        // Dirty fill (write 1, stays HR at TH=2) + second write
        // (migrates to LR).
        trace.push(Op {
            dt_ns: 1,
            line,
            write: true,
        });
        trace.push(Op {
            dt_ns: 1,
            line,
            write: true,
        });
    }
    // Line 1 was demoted dirty. One demand write must *not* migrate it
    // (count restarts at 0 → this write is 1 of 2).
    trace.push(Op {
        dt_ns: 1,
        line: 1,
        write: true,
    });
    assert_eq!(run_case(&cfg, &trace), None);

    let llc = replay(&cfg, &trace);
    assert!(
        llc.hr_contains(256),
        "write 1 of 2 after demotion must stay in HR"
    );
    assert!(!llc.lr_contains(256));
    assert_eq!(llc.stats().migrations_to_lr, 3);
    assert_eq!(llc.stats().demotions_to_hr, 1);

    // The second post-demotion write is the legitimate trigger.
    trace.push(Op {
        dt_ns: 1,
        line: 1,
        write: true,
    });
    assert_eq!(run_case(&cfg, &trace), None);
    let llc = replay(&cfg, &trace);
    assert!(llc.lr_contains(256), "write 2 of 2 migrates again");
    assert_eq!(llc.stats().migrations_to_lr, 4);
}

#[test]
fn rounded_retention_tick_refreshes_instead_of_expiring() {
    // 1000 ns LR retention / 4-bit counter: the truncated tick (62 ns)
    // under-covered the retention period and the naive rounded-up tick
    // (63 ns) would overshoot it. With the clamped rounding plus the
    // narrowed maintenance window (55 ns), a hot LR line must always
    // be refreshed in its remainder window — never expire. The trace
    // parks a dirty line in LR across many retention periods.
    let cfg = paper_shape()
        .with_lr_retention(RetentionTime::from_nanos(1000.0))
        .with_hr_retention(RetentionTime::from_micros(20.0));
    let mut trace = vec![Op {
        dt_ns: 1,
        line: 7,
        write: true,
    }];
    trace.extend((0..40).map(|_| Op {
        dt_ns: 150,
        line: 7,
        write: false,
    }));
    assert_eq!(run_case(&cfg, &trace), None);

    let llc = replay(&cfg, &trace);
    assert!(llc.lr_contains(7 * 256), "the hot line survives");
    assert!(llc.stats().refreshes > 0, "it survives by being refreshed");
    assert_eq!(
        llc.stats().lr_expirations,
        0,
        "cadence must never be violated"
    );
}

#[test]
fn zero_rate_fault_plan_is_exactly_transparent() {
    // The probe's fault block (bank faults, read ECC and the
    // migration-read ECC added with the `.expect`-removal fix) must be
    // completely skipped for a plan with a seed but all-zero rates —
    // the oracle models only fault-free behaviour, so any leakage of
    // the fault path into a rate-0 run diverges here. The trace drives
    // the migration path the ECC hook sits on.
    let cfg = paper_shape().with_fault(FaultConfig {
        seed: 0xBEEF,
        ..FaultConfig::disabled()
    });
    let trace = [
        Op {
            dt_ns: 1,
            line: 3,
            write: false,
        },
        Op {
            dt_ns: 5,
            line: 3,
            write: true,
        },
        Op {
            dt_ns: 5,
            line: 3,
            write: true,
        },
    ];
    assert_eq!(run_case(&cfg, &trace), None);

    let llc = replay(&cfg, &trace);
    assert_eq!(
        llc.stats().migrations_to_lr,
        1,
        "the trace reaches the ECC hook"
    );
    assert_eq!(llc.stats().ecc_corrections, 0);
    assert_eq!(llc.stats().ecc_uncorrectable, 0);
    assert_eq!(llc.stats().bank_faults, 0);
}

#[test]
fn wide_counter_geometry_runs_without_deadline_overflow() {
    // 16-bit counters made the old `tick * max_count` refresh-deadline
    // product the closest to overflow the tracker gets; the fix
    // saturates it. The oracle drives a full differential trace on a
    // 16-bit-counter geometry (1 ms retention → 15 ns tick) to prove
    // the machines agree under the heaviest sweep cadence.
    let mut cfg = paper_shape().with_lr_retention(RetentionTime::from_millis(1.0));
    cfg.lr_rc_bits = 16;
    cfg.validate().expect("wide-counter geometry is valid");
    let trace: Vec<Op> = (0..60)
        .map(|i| Op {
            dt_ns: 1 + (i % 7),
            line: i % 5,
            write: i % 2 == 0,
        })
        .collect();
    assert_eq!(run_case(&cfg, &trace), None);
}

#[test]
fn single_slot_buffer_overflow_accounting_matches() {
    // Four dirty fills into one LR set with a single-slot LR→HR swap
    // buffer: the second demotion finds the slot still occupied and is
    // forced out to DRAM. Buffer overflow, admission and peak counters
    // are part of the differential surface.
    let cfg = paper_shape().with_buffer_blocks(1);
    // LR is 32 lines, 2-way, 16 sets: lines 0, 16, 32, 48 share a set.
    let trace = [
        Op {
            dt_ns: 1,
            line: 0,
            write: true,
        },
        Op {
            dt_ns: 1,
            line: 16,
            write: true,
        },
        Op {
            dt_ns: 1,
            line: 32,
            write: true,
        },
        Op {
            dt_ns: 1,
            line: 48,
            write: true,
        },
    ];
    assert_eq!(run_case(&cfg, &trace), None);

    let llc = replay(&cfg, &trace);
    assert!(llc.buffer_overflows() > 0, "the trace exercises overflow");
    assert!(
        llc.stats().overflow_writebacks > 0,
        "a dirty victim was forced out to DRAM"
    );
}

#[test]
fn oracle_rejects_out_of_scope_configurations() {
    // The oracle's preconditions are part of its contract: silently
    // accepting a config it cannot model would fabricate divergences.
    for bad in [
        paper_shape().with_lr_rotation_ms(1.0),
        paper_shape().with_fault(FaultConfig {
            seed: 1,
            flip_rate: 0.5,
            ..FaultConfig::disabled()
        }),
    ] {
        assert!(
            std::panic::catch_unwind(|| OracleLlc::new(&bad)).is_err(),
            "out-of-scope config must be rejected"
        );
    }
}
