//! Round-trip property tests: arbitrary generated traces survive the
//! binary and text encodings exactly, and corrupted files come back as
//! typed errors, never panics.

use std::io::Cursor;

use sttgpu_oracle::{generate, ops_to_records, records_to_ops, Op, TraceSpec};
use sttgpu_stats::Rng;
use sttgpu_tracefile::{
    read_text, TextTraceWriter, TraceError, TraceHeader, TraceReader, TraceRecord, TraceWriter,
};

/// A seeded spec with seed-dependent shape, so different seeds exercise
/// different lengths, address ranges and gap distributions.
fn spec_for(seed: u64) -> TraceSpec {
    let mut rng = Rng::new(seed ^ 0xD1CE);
    TraceSpec {
        ops: rng.range_usize(1, 400),
        lines: rng.range_u64(1, 5_000),
        hot_lines: 1,
        hot_fraction: rng.range_f64(0.0, 1.0),
        write_fraction: rng.range_f64(0.0, 1.0),
        max_dt_ns: rng.range_u64(1, 10_000),
    }
}

fn binary_round_trip(records: &[TraceRecord]) -> (TraceHeader, Vec<TraceRecord>) {
    let mut w = TraceWriter::new(Vec::new(), TraceHeader::requests(256)).expect("header");
    for rec in records {
        w.write(rec).expect("well-formed record");
    }
    let bytes = w.finish().expect("flush");
    let r = TraceReader::new(Cursor::new(bytes)).expect("header");
    let header = r.header();
    let back: Vec<TraceRecord> = r.map(|rec| rec.expect("clean stream")).collect();
    (header, back)
}

fn text_round_trip(records: &[TraceRecord]) -> (TraceHeader, Vec<TraceRecord>) {
    let mut w = TextTraceWriter::new(Vec::new(), TraceHeader::requests(256)).expect("header");
    for rec in records {
        w.write(rec).expect("well-formed record");
    }
    let bytes = w.finish().expect("flush");
    read_text(Cursor::new(bytes)).expect("clean text")
}

#[test]
fn generated_traces_round_trip_through_both_encodings() {
    for seed in 0..50 {
        let ops = generate(seed, &spec_for(seed));
        let records = ops_to_records(&ops);

        let (bin_header, bin_back) = binary_round_trip(&records);
        assert_eq!(bin_header.line_bytes, 256);
        assert_eq!(
            bin_back, records,
            "seed {seed}: binary encoding must be lossless"
        );

        let (_, text_back) = text_round_trip(&records);
        assert_eq!(
            text_back, records,
            "seed {seed}: text encoding must be lossless"
        );

        let back_ops = records_to_ops(&bin_back).expect("requests discipline held");
        assert_eq!(
            back_ops, ops,
            "seed {seed}: the exact Op sequence must come back"
        );
    }
}

#[test]
fn extreme_deltas_round_trip() {
    // Huge forward jumps and maximal line addresses stress the varint
    // and zigzag paths beyond what `generate` produces.
    let ops = vec![
        Op {
            dt_ns: 1,
            line: u64::MAX / 256,
            write: true,
        },
        Op {
            dt_ns: u32::MAX as u64,
            line: 0,
            write: false,
        },
        Op {
            dt_ns: 1,
            line: u64::MAX / 256,
            write: false,
        },
    ];
    let records = ops_to_records(&ops);
    let (_, back) = binary_round_trip(&records);
    assert_eq!(records_to_ops(&back).expect("clean"), ops);
    let (_, text_back) = text_round_trip(&records);
    assert_eq!(text_back, records);
}

#[test]
fn corrupt_headers_are_typed_errors() {
    let bytes = {
        let mut w = TraceWriter::new(Vec::new(), TraceHeader::requests(256)).expect("header");
        w.write(&TraceRecord::Access {
            at_ns: 5,
            line: 9,
            write: false,
        })
        .expect("record");
        w.finish().expect("flush")
    };

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        TraceReader::new(Cursor::new(wrong_magic)).unwrap_err(),
        TraceError::BadMagic
    ));

    let mut future_version = bytes.clone();
    future_version[8] = 0xFF;
    future_version[9] = 0xFF;
    assert!(matches!(
        TraceReader::new(Cursor::new(future_version)).unwrap_err(),
        TraceError::UnsupportedVersion(0xFFFF)
    ));

    let mut bad_mode = bytes.clone();
    bad_mode[10] = 9;
    assert!(matches!(
        TraceReader::new(Cursor::new(bad_mode)).unwrap_err(),
        TraceError::BadMode(9)
    ));

    let mut bad_lines = bytes;
    bad_lines[11..15].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        TraceReader::new(Cursor::new(bad_lines)).unwrap_err(),
        TraceError::BadLineBytes(0)
    ));
}

#[test]
fn truncation_at_every_byte_is_an_error_never_a_panic() {
    let ops = generate(3, &spec_for(3));
    let records = ops_to_records(&ops[..20.min(ops.len())]);
    let bytes = {
        let mut w = TraceWriter::new(Vec::new(), TraceHeader::requests(256)).expect("header");
        for rec in &records {
            w.write(rec).expect("record");
        }
        w.finish().expect("flush")
    };
    for cut in 0..bytes.len() {
        match TraceReader::new(Cursor::new(bytes[..cut].to_vec())) {
            Err(e) => assert!(
                matches!(e, TraceError::BadMagic | TraceError::Truncated { .. }),
                "cut {cut}: header failure must be typed, got {e}"
            ),
            Ok(reader) => {
                for rec in reader {
                    match rec {
                        Ok(_) => {}
                        Err(e) => {
                            assert!(
                                matches!(e, TraceError::Truncated { .. }),
                                "cut {cut}: body failure must be Truncated, got {e}"
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn mangled_text_traces_are_typed_errors() {
    for bad in [
        "",
        "not-a-trace v1 requests line_bytes=256\n",
        "sttgpu-trace v9 requests line_bytes=256\n",
        "sttgpu-trace v1 requests line_bytes=256\nz 1 2\n",
        "sttgpu-trace v1 requests line_bytes=256\nr one 2\n",
        "sttgpu-trace v1 requests line_bytes=256\nr 5 1\nr 5 2\n",
        "sttgpu-trace v1 requests line_bytes=256\nm 5\n",
    ] {
        match read_text(Cursor::new(bad.as_bytes().to_vec())) {
            Err(TraceError::Text { .. })
            | Err(TraceError::Discipline { .. })
            | Err(TraceError::UnsupportedVersion(_)) => {}
            other => panic!("{bad:?}: expected a typed error, got {other:?}"),
        }
    }
}
