//! Property-based tests for the cache substrate's invariants.

use proptest::prelude::*;
use sttgpu_cache::{AccessKind, MshrOutcome, MshrTable, ReplacementPolicy, SetAssocCache};

/// Applies a random mix of fills/lookups/extracts and checks structural
/// invariants after every step.
fn run_ops(sets: usize, ways: usize, policy: ReplacementPolicy, ops: &[(u8, u64)]) {
    let mut c: SetAssocCache<()> = SetAssocCache::new(sets, ways, 128, policy);
    let mut now = 0u64;
    for &(op, addr) in ops {
        now += 1;
        match op % 4 {
            0 => {
                c.lookup(addr, AccessKind::Read, now);
            }
            1 => {
                c.lookup(addr, AccessKind::Write, now);
            }
            2 => {
                c.fill(addr, op % 2 == 0, now);
            }
            _ => {
                c.extract(addr);
            }
        }

        // Invariant 1: a line address appears at most once among valid lines.
        let mut seen = std::collections::HashSet::new();
        for l in c.iter().filter(|l| l.is_valid()) {
            assert!(
                seen.insert(l.line_addr()),
                "duplicate line {:#x}",
                l.line_addr()
            );
        }
        // Invariant 2: every valid line sits in its home set.
        for (i, l) in c.iter().enumerate() {
            if l.is_valid() {
                let set = i / ways;
                assert_eq!(c.set_index(l.line_addr()), set, "line in wrong set");
            }
        }
    }
}

proptest! {
    /// No duplicate tags, correct set placement — under all policies.
    #[test]
    fn structural_invariants_lru(ops in proptest::collection::vec((0u8..4, 0u64..64), 1..300)) {
        run_ops(4, 2, ReplacementPolicy::Lru, &ops);
    }

    #[test]
    fn structural_invariants_fifo(ops in proptest::collection::vec((0u8..4, 0u64..64), 1..300)) {
        run_ops(4, 2, ReplacementPolicy::Fifo, &ops);
    }

    #[test]
    fn structural_invariants_random(ops in proptest::collection::vec((0u8..4, 0u64..64), 1..300)) {
        run_ops(2, 4, ReplacementPolicy::Random, &ops);
    }

    /// A fill makes the line resident; hits never change residency.
    #[test]
    fn fill_then_hit(addrs in proptest::collection::vec(0u64..256, 1..100)) {
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 4, 128, ReplacementPolicy::Lru);
        for (i, &a) in addrs.iter().enumerate() {
            c.fill(a, false, i as u64);
            prop_assert!(c.contains(a), "line must be resident right after fill");
            prop_assert!(c.lookup(a, AccessKind::Read, i as u64).is_some());
            prop_assert!(c.contains(a));
        }
    }

    /// Hit + miss counters equal the number of lookups issued.
    #[test]
    fn stats_conservation(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..200)) {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, 128, ReplacementPolicy::Lru);
        let mut lookups = 0u64;
        for (i, &(is_write, addr)) in ops.iter().enumerate() {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            c.lookup(addr, kind, i as u64);
            lookups += 1;
            if addr % 3 == 0 {
                c.fill(addr, false, i as u64);
            }
        }
        prop_assert_eq!(c.stats().accesses(), lookups);
        prop_assert_eq!(c.stats().hits() + c.stats().misses(), lookups);
    }

    /// The number of valid lines never exceeds capacity, and evictions are
    /// reported exactly when a valid line is displaced.
    #[test]
    fn eviction_accounting(addrs in proptest::collection::vec(0u64..1024, 1..300)) {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, 128, ReplacementPolicy::Lru);
        let mut resident = std::collections::HashSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            if resident.contains(&a) {
                c.fill(a, false, i as u64);
                continue;
            }
            let evicted = c.fill(a, false, i as u64);
            resident.insert(a);
            if let Some(ev) = evicted {
                prop_assert!(resident.remove(&ev.line_addr), "evicted a non-resident line");
            }
            prop_assert!(resident.len() <= c.capacity_lines());
        }
        let valid = c.iter().filter(|l| l.is_valid()).count();
        prop_assert_eq!(valid, resident.len());
    }

    /// LRU property: within a set, filling a full set evicts the line whose
    /// last touch is oldest.
    #[test]
    fn lru_evicts_oldest_touch(n in 2usize..8) {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, n, 128, ReplacementPolicy::Lru);
        for a in 0..n as u64 {
            c.fill(a, false, a);
        }
        // Touch all but line `n/2` in some later order.
        let skip = (n / 2) as u64;
        let mut t = n as u64;
        for a in (0..n as u64).filter(|&a| a != skip) {
            c.lookup(a, AccessKind::Read, t);
            t += 1;
        }
        let ev = c.fill(999, false, t).expect("set was full");
        prop_assert_eq!(ev.line_addr, skip);
    }

    /// MSHR: tokens in equal tokens out, entries drain to empty.
    #[test]
    fn mshr_conserves_tokens(reqs in proptest::collection::vec((0u64..16, 0u64..1000), 1..200)) {
        let mut m = MshrTable::new(8, 4);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for &(line, token) in &reqs {
            match m.allocate(line, token) {
                MshrOutcome::Allocated | MshrOutcome::Merged => {
                    expected.entry(line).or_default().push(token);
                }
                MshrOutcome::Full => {}
            }
        }
        let lines: Vec<u64> = expected.keys().copied().collect();
        for line in lines {
            let got = m.complete(line);
            prop_assert_eq!(got, expected.remove(&line).unwrap_or_default());
        }
        prop_assert!(m.is_empty());
    }
}
