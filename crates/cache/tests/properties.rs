//! Randomized property tests for the cache substrate's invariants, driven
//! by the in-tree deterministic [`Rng`] (no external fuzzing dependency).

use sttgpu_cache::{AccessKind, MshrOutcome, MshrTable, ReplacementPolicy, SetAssocCache};
use sttgpu_stats::Rng;

/// Draws a random op trace: (op selector, line address).
fn random_ops(rng: &mut Rng, max_addr: u64, max_len: usize) -> Vec<(u8, u64)> {
    let len = rng.range_usize(1, max_len);
    (0..len)
        .map(|_| (rng.range_u32(0, 4) as u8, rng.range_u64(0, max_addr)))
        .collect()
}

/// Applies a random mix of fills/lookups/extracts and checks structural
/// invariants after every step.
fn run_ops(sets: usize, ways: usize, policy: ReplacementPolicy, ops: &[(u8, u64)]) {
    let mut c: SetAssocCache<()> = SetAssocCache::new(sets, ways, 128, policy);
    let mut now = 0u64;
    for &(op, addr) in ops {
        now += 1;
        match op % 4 {
            0 => {
                c.lookup(addr, AccessKind::Read, now);
            }
            1 => {
                c.lookup(addr, AccessKind::Write, now);
            }
            2 => {
                c.fill(addr, op % 2 == 0, now);
            }
            _ => {
                c.extract(addr);
            }
        }

        // Invariant 1: a line address appears at most once among valid lines.
        let mut seen = std::collections::HashSet::new();
        for l in c.iter().filter(|l| l.is_valid()) {
            assert!(
                seen.insert(l.line_addr()),
                "duplicate line {:#x}",
                l.line_addr()
            );
        }
        // Invariant 2: every valid line sits in its home set.
        for (i, l) in c.iter().enumerate() {
            if l.is_valid() {
                let set = i / ways;
                assert_eq!(c.set_index(l.line_addr()), set, "line in wrong set");
            }
        }
    }
}

/// No duplicate tags, correct set placement — under all policies.
#[test]
fn structural_invariants_lru() {
    let mut rng = Rng::new(0x10);
    for _ in 0..40 {
        run_ops(4, 2, ReplacementPolicy::Lru, &random_ops(&mut rng, 64, 300));
    }
}

#[test]
fn structural_invariants_fifo() {
    let mut rng = Rng::new(0x20);
    for _ in 0..40 {
        run_ops(
            4,
            2,
            ReplacementPolicy::Fifo,
            &random_ops(&mut rng, 64, 300),
        );
    }
}

#[test]
fn structural_invariants_random() {
    let mut rng = Rng::new(0x30);
    for _ in 0..40 {
        run_ops(
            2,
            4,
            ReplacementPolicy::Random,
            &random_ops(&mut rng, 64, 300),
        );
    }
}

/// A fill makes the line resident; hits never change residency.
#[test]
fn fill_then_hit() {
    let mut rng = Rng::new(0x40);
    for _ in 0..40 {
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 4, 128, ReplacementPolicy::Lru);
        let n = rng.range_usize(1, 100);
        for i in 0..n {
            let a = rng.range_u64(0, 256);
            c.fill(a, false, i as u64);
            assert!(c.contains(a), "line must be resident right after fill");
            assert!(c.lookup(a, AccessKind::Read, i as u64).is_some());
            assert!(c.contains(a));
        }
    }
}

/// Hit + miss counters equal the number of lookups issued.
#[test]
fn stats_conservation() {
    let mut rng = Rng::new(0x50);
    for _ in 0..40 {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, 128, ReplacementPolicy::Lru);
        let mut lookups = 0u64;
        let n = rng.range_usize(1, 200);
        for i in 0..n {
            let addr = rng.range_u64(0, 64);
            let kind = if rng.chance(0.5) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            c.lookup(addr, kind, i as u64);
            lookups += 1;
            if addr.is_multiple_of(3) {
                c.fill(addr, false, i as u64);
            }
        }
        assert_eq!(c.stats().accesses(), lookups);
        assert_eq!(c.stats().hits() + c.stats().misses(), lookups);
    }
}

/// The number of valid lines never exceeds capacity, and evictions are
/// reported exactly when a valid line is displaced.
#[test]
fn eviction_accounting() {
    let mut rng = Rng::new(0x60);
    for _ in 0..40 {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, 128, ReplacementPolicy::Lru);
        let mut resident = std::collections::HashSet::new();
        let n = rng.range_usize(1, 300);
        for i in 0..n {
            let a = rng.range_u64(0, 1024);
            if resident.contains(&a) {
                c.fill(a, false, i as u64);
                continue;
            }
            let evicted = c.fill(a, false, i as u64);
            resident.insert(a);
            if let Some(ev) = evicted {
                assert!(
                    resident.remove(&ev.line_addr),
                    "evicted a non-resident line"
                );
            }
            assert!(resident.len() <= c.capacity_lines());
        }
        let valid = c.iter().filter(|l| l.is_valid()).count();
        assert_eq!(valid, resident.len());
    }
}

/// LRU property: within a set, filling a full set evicts the line whose
/// last touch is oldest.
#[test]
fn lru_evicts_oldest_touch() {
    for n in 2usize..8 {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, n, 128, ReplacementPolicy::Lru);
        for a in 0..n as u64 {
            c.fill(a, false, a);
        }
        // Touch all but line `n/2` in some later order.
        let skip = (n / 2) as u64;
        let mut t = n as u64;
        for a in (0..n as u64).filter(|&a| a != skip) {
            c.lookup(a, AccessKind::Read, t);
            t += 1;
        }
        let ev = c.fill(999, false, t).expect("set was full");
        assert_eq!(ev.line_addr, skip);
    }
}

/// MSHR: tokens in equal tokens out, entries drain to empty.
#[test]
fn mshr_conserves_tokens() {
    let mut rng = Rng::new(0x70);
    for _ in 0..40 {
        let mut m = MshrTable::new(8, 4);
        let mut expected: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        let n = rng.range_usize(1, 200);
        for _ in 0..n {
            let line = rng.range_u64(0, 16);
            let token = rng.range_u64(0, 1000);
            match m.allocate(line, token) {
                MshrOutcome::Allocated | MshrOutcome::Merged => {
                    expected.entry(line).or_default().push(token);
                }
                MshrOutcome::Full => {}
            }
        }
        let lines: Vec<u64> = expected.keys().copied().collect();
        for line in lines {
            let got = m.complete(line);
            assert_eq!(got, expected.remove(&line).unwrap_or_default());
        }
        assert!(m.is_empty());
    }
}

// MSHR: a `Full` outcome is a pure rejection — the entry it bounced off
// keeps exactly the targets it had, and completing it releases each
// token exactly once while freeing the entry's capacity.
#[test]
fn mshr_full_leaves_entry_unmodified() {
    // Target-list saturation: third merge into a 2-target entry bounces.
    let mut m = MshrTable::new(8, 2);
    assert_eq!(m.allocate(7, 1), MshrOutcome::Allocated);
    assert_eq!(m.allocate(7, 2), MshrOutcome::Merged);
    assert_eq!(m.allocate(7, 3), MshrOutcome::Full);
    assert_eq!(m.allocate(7, 4), MshrOutcome::Full);
    assert!(m.is_pending(7));
    assert_eq!(m.len(), 1);
    assert_eq!(
        m.complete(7),
        vec![1, 2],
        "rejected tokens must not leak in"
    );
    assert!(m.is_empty(), "complete frees the entry");
    assert!(!m.is_pending(7));
    assert_eq!(
        m.complete(7),
        Vec::<u64>::new(),
        "tokens release exactly once"
    );

    // Table saturation: with every entry taken, a new line bounces but
    // existing entries still merge, and completing one frees an entry
    // for the previously rejected line.
    let mut m = MshrTable::new(2, 4);
    assert_eq!(m.allocate(10, 100), MshrOutcome::Allocated);
    assert_eq!(m.allocate(20, 200), MshrOutcome::Allocated);
    assert!(!m.has_free_entry());
    assert_eq!(m.allocate(30, 300), MshrOutcome::Full);
    assert!(!m.is_pending(30), "a rejected line must not appear pending");
    assert_eq!(m.allocate(10, 101), MshrOutcome::Merged);
    assert_eq!(m.complete(10), vec![100, 101]);
    assert!(m.has_free_entry(), "completion frees table capacity");
    assert_eq!(m.allocate(30, 300), MshrOutcome::Allocated);
    assert_eq!(m.complete(30), vec![300]);
    assert_eq!(m.complete(20), vec![200]);
    assert!(m.is_empty());
}
