//! A `HashMap` keyed by line addresses with a cheap multiplicative hasher.
//!
//! The MSHR tables and the memory system's pending-miss map are keyed by
//! `u64` line addresses and sit on the per-access hot path, where the
//! standard library's DoS-resistant SipHash is measurable overhead. Line
//! addresses come from a simulator-internal address stream, so hash-flood
//! hardening buys nothing here. The replacement is a Fibonacci multiply
//! followed by an XOR fold of the high bits into the low bits — the fold
//! matters because line addresses share their low alignment bits, and
//! hashbrown derives both the bucket index and its control tag from
//! opposite ends of the hash.
//!
//! Swapping the hasher is invisible to simulation results: neither map is
//! ever iterated, so only keyed lookups (order-free) observe the layout.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher for simulator-internal `u64` keys. Only `write_u64` is on the
/// hot path; the byte fallback exists to satisfy the `Hasher` contract.
#[derive(Default)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

/// `HashMap<u64, V>` with the [`LineHasher`].
pub type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// An empty [`LineMap`] with room for `capacity` entries.
pub fn line_map_with_capacity<V>(capacity: usize) -> LineMap<V> {
    LineMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_operations_behave_like_a_map() {
        let mut m: LineMap<u32> = LineMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&(i as u32)));
        }
        assert_eq!(m.remove(&(5 * 128)), Some(5));
        assert!(!m.contains_key(&(5 * 128)));
    }

    #[test]
    fn aligned_keys_spread_over_low_bits() {
        // Line addresses are 64/128-byte aligned; the XOR fold must keep
        // the low hash bits (hashbrown's bucket index) varied anyway.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            let mut h = LineHasher::default();
            h.write_u64(i * 128);
            low_bits.insert(h.finish() & 0x7f);
        }
        assert!(
            low_bits.len() > 100,
            "low bits collapsed: {}",
            low_bits.len()
        );
    }
}
