//! Per-cache access statistics.

use sttgpu_stats::Counter;

/// Hit/miss/eviction counters maintained by [`SetAssocCache`].
///
/// [`SetAssocCache`]: crate::SetAssocCache
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read lookups that hit.
    pub read_hits: Counter,
    /// Read lookups that missed.
    pub read_misses: Counter,
    /// Write lookups that hit.
    pub write_hits: Counter,
    /// Write lookups that missed.
    pub write_misses: Counter,
    /// Lines filled into the array.
    pub fills: Counter,
    /// Valid lines evicted by fills.
    pub evictions: Counter,
    /// Evicted lines that were dirty (write-back traffic).
    pub dirty_evictions: Counter,
    /// Lines removed by explicit invalidation.
    pub invalidations: Counter,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total lookups (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.read_hits.get()
            + self.read_misses.get()
            + self.write_hits.get()
            + self.write_misses.get()
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits.get() + self.write_hits.get()
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses.get() + self.write_misses.get()
    }

    /// Hit rate over all lookups, 0.0 when no accesses.
    pub fn hit_rate(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.hits() as f64 / acc as f64
        }
    }

    /// Total write lookups.
    pub fn writes(&self) -> u64 {
        self.write_hits.get() + self.write_misses.get()
    }

    /// Total read lookups.
    pub fn reads(&self) -> u64 {
        self.read_hits.get() + self.read_misses.get()
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_totals() {
        let mut s = CacheStats::new();
        s.read_hits.add(3);
        s.read_misses.add(1);
        s.write_hits.add(2);
        s.write_misses.add(4);
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.hits(), 5);
        assert_eq!(s.misses(), 5);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 6);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(CacheStats::new().hit_rate(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = CacheStats::new();
        s.fills.inc();
        s.reset();
        assert_eq!(s, CacheStats::new());
    }
}
