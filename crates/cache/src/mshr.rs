//! Miss-status holding registers (MSHRs).
//!
//! GPU caches are heavily non-blocking: dozens of warps miss concurrently
//! and secondary misses to an in-flight line must merge rather than issue
//! duplicate memory requests. The [`MshrTable`] tracks in-flight line
//! fills and the opaque tokens (warp/request ids) waiting on them.

use sttgpu_trace::{Trace, TraceEvent};

use crate::linemap::{line_map_with_capacity, LineMap};

/// Result of trying to allocate an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated — the caller must send a fill request.
    Allocated,
    /// The line is already in flight — the token was merged, no new
    /// request needed.
    Merged,
    /// The table (or the entry's target list) is full — the access must
    /// stall and retry.
    Full,
}

/// A table of in-flight misses keyed by line address.
///
/// # Example
///
/// ```
/// use sttgpu_cache::{MshrOutcome, MshrTable};
///
/// let mut mshr = MshrTable::new(32, 8);
/// assert_eq!(mshr.allocate(0x10, 1), MshrOutcome::Allocated);
/// assert_eq!(mshr.allocate(0x10, 2), MshrOutcome::Merged);
/// assert_eq!(mshr.complete(0x10), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrTable {
    capacity: usize,
    targets_per_entry: usize,
    entries: LineMap<Vec<u64>>,
    trace: Trace,
    space: u32,
}

impl MshrTable {
    /// Creates a table of at most `capacity` in-flight lines, each holding
    /// up to `targets_per_entry` waiting tokens.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(capacity: usize, targets_per_entry: usize) -> Self {
        assert!(capacity > 0 && targets_per_entry > 0);
        MshrTable {
            capacity,
            targets_per_entry,
            entries: line_map_with_capacity(capacity),
            trace: Trace::off(),
            space: 0,
        }
    }

    /// Attaches a trace sink; `space` distinguishes this table in the
    /// event stream (0 is the L2 miss tracker, `1 + sm_id` an L1's).
    pub fn set_trace(&mut self, trace: Trace, space: u32) {
        self.trace = trace;
        self.space = space;
    }

    /// Attempts to register `token` as waiting for `line_addr`.
    pub fn allocate(&mut self, line_addr: u64, token: u64) -> MshrOutcome {
        if let Some(targets) = self.entries.get_mut(&line_addr) {
            if targets.len() >= self.targets_per_entry {
                return MshrOutcome::Full;
            }
            targets.push(token);
            self.trace.emit(|| TraceEvent::MshrMerge {
                space: self.space,
                la: line_addr,
            });
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(line_addr, vec![token]);
        self.trace.emit(|| TraceEvent::MshrAlloc {
            space: self.space,
            la: line_addr,
        });
        MshrOutcome::Allocated
    }

    /// Completes the fill of `line_addr`, releasing and returning the
    /// waiting tokens (empty when the line was not in flight).
    pub fn complete(&mut self, line_addr: u64) -> Vec<u64> {
        match self.entries.remove(&line_addr) {
            Some(targets) => {
                self.trace.emit(|| TraceEvent::MshrComplete {
                    space: self.space,
                    la: line_addr,
                });
                targets
            }
            None => Vec::new(),
        }
    }

    /// Whether `line_addr` currently has an in-flight fill.
    pub fn is_pending(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Number of in-flight lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fills are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table can accept a brand-new line miss.
    pub fn has_free_entry(&self) -> bool {
        self.entries.len() < self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrTable::new(2, 2);
        assert_eq!(m.allocate(1, 100), MshrOutcome::Allocated);
        assert_eq!(m.allocate(1, 101), MshrOutcome::Merged);
        assert!(m.is_pending(1));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn entry_target_limit() {
        let mut m = MshrTable::new(2, 2);
        m.allocate(1, 100);
        m.allocate(1, 101);
        assert_eq!(m.allocate(1, 102), MshrOutcome::Full);
    }

    #[test]
    fn table_capacity_limit() {
        let mut m = MshrTable::new(1, 4);
        assert_eq!(m.allocate(1, 0), MshrOutcome::Allocated);
        assert_eq!(m.allocate(2, 0), MshrOutcome::Full);
        assert!(!m.has_free_entry());
    }

    #[test]
    fn complete_releases_tokens_in_order() {
        let mut m = MshrTable::new(4, 4);
        m.allocate(9, 1);
        m.allocate(9, 2);
        m.allocate(9, 3);
        assert_eq!(m.complete(9), vec![1, 2, 3]);
        assert!(!m.is_pending(9));
        assert!(m.is_empty());
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m = MshrTable::new(4, 4);
        assert!(m.complete(42).is_empty());
    }

    #[test]
    fn capacity_frees_after_completion() {
        let mut m = MshrTable::new(1, 1);
        m.allocate(1, 0);
        m.complete(1);
        assert_eq!(m.allocate(2, 0), MshrOutcome::Allocated);
    }
}
