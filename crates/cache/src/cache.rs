//! Generic set-associative cache array.

use crate::{CacheStats, ReplacementPolicy};

/// Kind of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (load, fetch, fill probe).
    Read,
    /// A write (store, write-through from an inner level).
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One cache line's bookkeeping state plus caller-defined metadata `M`.
///
/// The line address and replacement stamp live in parallel arrays on
/// [`SetAssocCache`] (not here): way lookups and victim scans read one
/// contiguous `u64` row per set instead of striding across these fatter
/// records.
#[derive(Debug, Clone)]
pub struct Line<M> {
    line_addr: u64,
    valid: bool,
    dirty: bool,
    write_count: u32,
    last_write_ns: u64,
    /// Caller-defined metadata (e.g. retention counters in the two-part
    /// LLC). Reset to `M::default()` on fill.
    pub meta: M,
}

impl<M> Line<M> {
    /// The line-granular address cached here (only meaningful when valid).
    pub fn line_addr(&self) -> u64 {
        self.line_addr
    }

    /// Whether the line holds valid data.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the line has been written since fill (the "modified bit" the
    /// paper reuses as its write-working-set monitor at threshold 1).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the line dirty without going through a lookup (used by
    /// migration paths that move dirty data between arrays).
    pub fn set_dirty(&mut self, dirty: bool) {
        self.dirty = dirty;
    }

    /// Saturating count of writes this line has received since fill.
    pub fn write_count(&self) -> u32 {
        self.write_count
    }

    /// Simulation time (ns) of the last write to this line, 0 if never.
    pub fn last_write_ns(&self) -> u64 {
        self.last_write_ns
    }

    /// Records a write for WWS accounting (normally done by `lookup`).
    pub fn note_write(&mut self, now_ns: u64) {
        self.write_count = self.write_count.saturating_add(1);
        self.dirty = true;
        self.last_write_ns = now_ns;
    }

    /// Overwrites the WWS write count (used by demotion paths whose
    /// residency restarts the count regardless of the fill's dirtiness).
    pub fn set_write_count(&mut self, count: u32) {
        self.write_count = count;
    }
}

/// A line evicted (or extracted) from the array, with everything the owner
/// needs to write it back or migrate it elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<M> {
    /// Line-granular address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (needs a write-back).
    pub dirty: bool,
    /// Accumulated write count of the victim.
    pub write_count: u32,
    /// Time of the victim's last write, ns.
    pub last_write_ns: u64,
    /// Caller metadata carried by the victim.
    pub meta: M,
}

/// A set-associative cache array with pluggable replacement and per-line
/// metadata.
///
/// Addresses are handled at line granularity (`line_addr = byte_addr /
/// line_bytes`); the [`line_addr`](SetAssocCache::line_addr) helper does the
/// conversion. Physical (set, way) write counts are accumulated across
/// evictions for write-variation analysis (Fig. 3 of the paper).
///
/// # Example
///
/// ```
/// use sttgpu_cache::{AccessKind, ReplacementPolicy, SetAssocCache};
///
/// let mut c: SetAssocCache<()> = SetAssocCache::new(16, 4, 128, ReplacementPolicy::Lru);
/// let la = c.line_addr(0xABCD);
/// assert!(c.lookup(la, AccessKind::Write, 10).is_none());
/// c.fill(la, true, 10);
/// let line = c.peek(la).expect("filled");
/// assert!(line.is_dirty());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<M> {
    sets: usize,
    ways: usize,
    /// Ways `[0, active_ways)` are in service; the rest are parked by a
    /// runtime reconfiguration policy and never selected as victims.
    active_ways: usize,
    line_bytes: u32,
    policy: ReplacementPolicy,
    lines: Vec<Line<M>>,
    /// Per-slot line address, [`INVALID_TAG`] when the slot is empty.
    /// Mirrors `lines[slot].{line_addr, valid}` so the per-access way scan
    /// touches one cache-friendly `u64` row per set.
    tags: Vec<u64>,
    /// Per-slot replacement stamp (monotone; LRU/FIFO victim = min).
    stamps: Vec<u64>,
    position_writes: Vec<u64>,
    set_salt: u64,
    stamp: u64,
    rng_state: u64,
    stats: CacheStats,
}

/// Tag sentinel for an empty slot. Line addresses are byte addresses
/// divided by the line size, so no valid line can reach it.
const INVALID_TAG: u64 = u64::MAX;

impl<M: Default> SetAssocCache<M> {
    /// Creates an empty cache of `sets` × `ways` lines of `line_bytes`.
    ///
    /// A fully-associative cache is `sets == 1`; a direct-mapped one is
    /// `ways == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `sets`, `ways` or `line_bytes` is zero, or if `line_bytes`
    /// is not a power of two.
    pub fn new(sets: usize, ways: usize, line_bytes: u32, policy: ReplacementPolicy) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two, got {line_bytes}"
        );
        let mut lines = Vec::with_capacity(sets * ways);
        for _ in 0..sets * ways {
            lines.push(Line {
                line_addr: 0,
                valid: false,
                dirty: false,
                write_count: 0,
                last_write_ns: 0,
                meta: M::default(),
            });
        }
        SetAssocCache {
            sets,
            ways,
            active_ways: ways,
            line_bytes,
            policy,
            lines,
            tags: vec![INVALID_TAG; sets * ways],
            stamps: vec![0; sets * ways],
            position_writes: vec![0; sets * ways],
            set_salt: 0,
            stamp: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::new(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Ways per set currently in service (≤ [`ways`](Self::ways)).
    pub fn active_ways(&self) -> usize {
        self.active_ways
    }

    /// Changes the number of in-service ways. Shrinking callers must
    /// first evacuate the parked range with
    /// [`drain_ways_into`](Self::drain_ways_into): victim selection only
    /// ever picks ways `[0, n)`, so a valid line left behind in a parked
    /// way would sit unreachable-for-replacement forever.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the physical associativity;
    /// panics in debug builds if a shrink leaves valid lines parked.
    pub fn set_active_ways(&mut self, n: usize) {
        assert!(
            (1..=self.ways).contains(&n),
            "active ways {n} outside [1, {}]",
            self.ways
        );
        debug_assert!(
            n >= self.active_ways
                || (0..self.sets)
                    .all(|s| { (n..self.ways).all(|w| !self.lines[self.slot(s, w)].valid) }),
            "shrinking active ways requires draining the parked range first"
        );
        self.active_ways = n;
    }

    /// Invalidates every valid line in ways `[from_way, ways)` across all
    /// sets — the evacuation step before parking those ways — appending
    /// each victim (dirty or clean) to `out` in (set, way) order.
    pub fn drain_ways_into(&mut self, from_way: usize, out: &mut Vec<Evicted<M>>) {
        for set in 0..self.sets {
            for way in from_way..self.ways {
                let slot = self.slot(set, way);
                if self.lines[slot].valid {
                    self.stats.invalidations.inc();
                    self.tags[slot] = INVALID_TAG;
                    let line = &mut self.lines[slot];
                    line.valid = false;
                    out.push(Evicted {
                        line_addr: line.line_addr,
                        dirty: line.dirty,
                        write_count: line.write_count,
                        last_write_ns: line.last_write_ns,
                        meta: std::mem::take(&mut line.meta),
                    });
                }
            }
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_lines() as u64 * self.line_bytes as u64
    }

    /// Converts a byte address to this cache's line-granular address.
    pub fn line_addr(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes as u64
    }

    /// Set index of a line address (offset by the current set salt).
    pub fn set_index(&self, line_addr: u64) -> usize {
        (line_addr.wrapping_add(self.set_salt) % self.sets as u64) as usize
    }

    /// Changes the address→set mapping salt, used by wear-rotation schemes
    /// to spread hot blocks over different physical sets across epochs.
    ///
    /// The caller **must flush the cache first**: resident lines were
    /// placed under the old mapping and become unreachable otherwise.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any valid line remains.
    pub fn set_salt(&mut self, salt: u64) {
        debug_assert!(
            self.lines.iter().all(|l| !l.valid),
            "set_salt requires a flushed cache"
        );
        self.set_salt = salt;
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find_way(&self, line_addr: u64) -> Option<usize> {
        let set = self.set_index(line_addr);
        let row = &self.tags[set * self.ways..(set + 1) * self.ways];
        row.iter().position(|&t| t == line_addr)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Looks a line up, updating replacement state, dirty/write counters
    /// and statistics. Returns the line on a hit, `None` on a miss.
    pub fn lookup(
        &mut self,
        line_addr: u64,
        kind: AccessKind,
        now_ns: u64,
    ) -> Option<&mut Line<M>> {
        match self.find_way(line_addr) {
            Some(way) => {
                let set = self.set_index(line_addr);
                let stamp = if self.policy.touches_on_hit() {
                    Some(self.next_stamp())
                } else {
                    None
                };
                let slot = self.slot(set, way);
                if kind.is_write() {
                    self.stats.write_hits.inc();
                    self.position_writes[slot] += 1;
                } else {
                    self.stats.read_hits.inc();
                }
                if let Some(s) = stamp {
                    self.stamps[slot] = s;
                }
                let line = &mut self.lines[slot];
                if kind.is_write() {
                    line.note_write(now_ns);
                }
                Some(line)
            }
            None => {
                if kind.is_write() {
                    self.stats.write_misses.inc();
                } else {
                    self.stats.read_misses.inc();
                }
                None
            }
        }
    }

    /// Returns the line without updating any state, or `None` when absent.
    pub fn peek(&self, line_addr: u64) -> Option<&Line<M>> {
        self.find_way(line_addr)
            .map(|w| &self.lines[self.slot(self.set_index(line_addr), w)])
    }

    /// Returns a mutable reference to the line without updating replacement
    /// or statistics state (for metadata maintenance such as retention
    /// counters).
    pub fn peek_mut(&mut self, line_addr: u64) -> Option<&mut Line<M>> {
        self.find_way(line_addr).map(|w| {
            let slot = self.slot(self.set_index(line_addr), w);
            &mut self.lines[slot]
        })
    }

    /// Whether the line is present and valid.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.find_way(line_addr).is_some()
    }

    fn victim_way(&mut self, set: usize) -> usize {
        // Only in-service ways participate; parked ways stay invalid.
        // Invalid lines are free slots.
        let row = &self.tags[set * self.ways..set * self.ways + self.active_ways];
        if let Some(w) = row.iter().position(|&t| t == INVALID_TAG) {
            return w;
        }
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let stamps = &self.stamps[set * self.ways..set * self.ways + self.active_ways];
                stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| s)
                    .map(|(w, _)| w)
                    .expect("ways > 0")
            }
            ReplacementPolicy::Random => (self.xorshift() % self.active_ways as u64) as usize,
        }
    }

    /// Fills `line_addr` into the array with default metadata, evicting a
    /// victim if the set is full. Returns the victim, if any was valid.
    ///
    /// Filling an already-present line just merges the dirty bit and
    /// returns `None` (this happens when an in-flight fill races a
    /// write-allocate).
    pub fn fill(&mut self, line_addr: u64, dirty: bool, now_ns: u64) -> Option<Evicted<M>> {
        self.fill_with(line_addr, dirty, 0, M::default(), now_ns)
    }

    /// Fills a line carrying existing `write_count` and metadata — the
    /// migration path between the LR and HR arrays uses this so WWS history
    /// survives the move. Semantics otherwise match [`fill`](Self::fill).
    pub fn fill_with(
        &mut self,
        line_addr: u64,
        dirty: bool,
        write_count: u32,
        meta: M,
        now_ns: u64,
    ) -> Option<Evicted<M>> {
        if let Some(way) = self.find_way(line_addr) {
            let slot = self.slot(self.set_index(line_addr), way);
            self.lines[slot].dirty |= dirty;
            return None;
        }
        let set = self.set_index(line_addr);
        let way = self.victim_way(set);
        let stamp = self.next_stamp();
        let slot = self.slot(set, way);
        self.stats.fills.inc();
        // The fill itself writes the data array at this position.
        self.position_writes[slot] += 1;

        let line = &mut self.lines[slot];
        let evicted = if line.valid {
            self.stats.evictions.inc();
            if line.dirty {
                self.stats.dirty_evictions.inc();
            }
            Some(Evicted {
                line_addr: line.line_addr,
                dirty: line.dirty,
                write_count: line.write_count,
                last_write_ns: line.last_write_ns,
                meta: std::mem::take(&mut line.meta),
            })
        } else {
            None
        };
        line.line_addr = line_addr;
        line.valid = true;
        line.dirty = dirty;
        line.write_count = write_count.saturating_add(dirty as u32);
        line.last_write_ns = if dirty { now_ns } else { 0 };
        line.meta = meta;
        self.tags[slot] = line_addr;
        self.stamps[slot] = stamp;
        evicted
    }

    /// Removes a line from the array, returning its state for write-back
    /// or migration. Returns `None` when the line is absent.
    pub fn extract(&mut self, line_addr: u64) -> Option<Evicted<M>> {
        let way = self.find_way(line_addr)?;
        let slot = self.slot(self.set_index(line_addr), way);
        self.stats.invalidations.inc();
        self.tags[slot] = INVALID_TAG;
        let line = &mut self.lines[slot];
        line.valid = false;
        Some(Evicted {
            line_addr: line.line_addr,
            dirty: line.dirty,
            write_count: line.write_count,
            last_write_ns: line.last_write_ns,
            meta: std::mem::take(&mut line.meta),
        })
    }

    /// Invalidates every line, returning the dirty victims (for flush).
    pub fn flush(&mut self) -> Vec<Evicted<M>> {
        let mut dirty = Vec::new();
        self.flush_into(&mut dirty);
        dirty
    }

    /// Like [`flush`](Self::flush) but appends the dirty victims to a
    /// caller-owned buffer, so periodic flushes can reuse one allocation.
    pub fn flush_into(&mut self, dirty: &mut Vec<Evicted<M>>) {
        for slot in 0..self.lines.len() {
            let line = &mut self.lines[slot];
            if line.valid {
                line.valid = false;
                self.tags[slot] = INVALID_TAG;
                self.stats.invalidations.inc();
                if line.dirty {
                    dirty.push(Evicted {
                        line_addr: line.line_addr,
                        dirty: true,
                        write_count: line.write_count,
                        last_write_ns: line.last_write_ns,
                        meta: std::mem::take(&mut line.meta),
                    });
                }
            }
        }
    }

    /// Iterates over all lines (valid and invalid) in (set, way) order.
    pub fn iter(&self) -> impl Iterator<Item = &Line<M>> {
        self.lines.iter()
    }

    /// Iterates mutably over all lines in (set, way) order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Line<M>> {
        self.lines.iter_mut()
    }

    /// Fraction of lines currently valid.
    pub fn occupancy(&self) -> f64 {
        let valid = self.lines.iter().filter(|l| l.valid).count();
        valid as f64 / self.lines.len() as f64
    }

    /// Cumulative per-(set, way) data-array write counts (write hits plus
    /// fills) — the matrix behind the paper's Fig. 3 COV analysis.
    pub fn write_count_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.sets)
            .map(|s| {
                (0..self.ways)
                    .map(|w| self.position_writes[self.slot(s, w)])
                    .collect()
            })
            .collect()
    }

    /// Access statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets access statistics and the write-count matrix.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.position_writes.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> SetAssocCache<()> {
        SetAssocCache::new(sets, ways, 128, ReplacementPolicy::Lru)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4, 2);
        assert!(c.lookup(7, AccessKind::Read, 0).is_none());
        c.fill(7, false, 0);
        assert!(c.lookup(7, AccessKind::Read, 1).is_some());
        assert_eq!(c.stats().read_misses.get(), 1);
        assert_eq!(c.stats().read_hits.get(), 1);
    }

    #[test]
    fn line_addr_conversion() {
        let c = cache(4, 2);
        assert_eq!(c.line_addr(0), 0);
        assert_eq!(c.line_addr(127), 0);
        assert_eq!(c.line_addr(128), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(1, 2);
        c.fill(0, false, 0);
        c.fill(1, false, 1);
        c.lookup(0, AccessKind::Read, 2); // 0 is now MRU
        let ev = c.fill(2, false, 3).expect("set full, someone evicted");
        assert_eq!(ev.line_addr, 1);
        assert!(c.contains(0));
        assert!(c.contains(2));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, 2, 128, ReplacementPolicy::Fifo);
        c.fill(0, false, 0);
        c.fill(1, false, 1);
        c.lookup(0, AccessKind::Read, 2); // would save 0 under LRU
        let ev = c.fill(2, false, 3).expect("eviction");
        assert_eq!(
            ev.line_addr, 0,
            "FIFO evicts oldest fill regardless of hits"
        );
    }

    #[test]
    fn random_policy_evicts_some_valid_line() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, 4, 128, ReplacementPolicy::Random);
        for a in 0..4 {
            c.fill(a, false, a);
        }
        let ev = c.fill(99, false, 10).expect("eviction");
        assert!(ev.line_addr < 4);
        assert!(c.contains(99));
    }

    #[test]
    fn write_sets_dirty_and_counts() {
        let mut c = cache(4, 2);
        c.fill(5, false, 0);
        c.lookup(5, AccessKind::Write, 10);
        c.lookup(5, AccessKind::Write, 20);
        let l = c.peek(5).expect("line present");
        assert!(l.is_dirty());
        assert_eq!(l.write_count(), 2);
        assert_eq!(l.last_write_ns(), 20);
    }

    #[test]
    fn dirty_fill_counts_as_one_write() {
        let mut c = cache(4, 2);
        c.fill(5, true, 7);
        let l = c.peek(5).expect("line");
        assert!(l.is_dirty());
        assert_eq!(l.write_count(), 1);
        assert_eq!(l.last_write_ns(), 7);
    }

    #[test]
    fn eviction_reports_victim_state() {
        let mut c = cache(1, 1);
        c.fill(3, false, 0);
        c.lookup(3, AccessKind::Write, 5);
        let ev = c.fill(4, false, 6).expect("victim");
        assert_eq!(ev.line_addr, 3);
        assert!(ev.dirty);
        assert_eq!(ev.write_count, 1);
        assert_eq!(c.stats().dirty_evictions.get(), 1);
    }

    #[test]
    fn refill_of_present_line_merges_dirty() {
        let mut c = cache(4, 2);
        c.fill(5, false, 0);
        assert!(c.fill(5, true, 1).is_none());
        assert!(c.peek(5).expect("line").is_dirty());
        // No phantom second copy.
        let copies = c
            .iter()
            .filter(|l| l.is_valid() && l.line_addr() == 5)
            .count();
        assert_eq!(copies, 1);
    }

    #[test]
    fn extract_removes_line() {
        let mut c = cache(4, 2);
        c.fill(9, true, 0);
        let ev = c.extract(9).expect("present");
        assert!(ev.dirty);
        assert!(!c.contains(9));
        assert!(c.extract(9).is_none());
    }

    #[test]
    fn flush_returns_only_dirty_lines() {
        let mut c = cache(4, 2);
        c.fill(1, true, 0);
        c.fill(2, false, 0);
        let dirty = c.flush();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].line_addr, 1);
        assert_eq!(c.occupancy(), 0.0);
    }

    #[test]
    fn fill_with_carries_history() {
        let mut c = cache(4, 2);
        c.fill_with(11, true, 6, (), 42);
        let l = c.peek(11).expect("line");
        assert_eq!(l.write_count(), 7, "6 carried + 1 for the dirty fill");
    }

    #[test]
    fn set_mapping_is_modulo() {
        let c = cache(4, 2);
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(5), 1);
        assert_eq!(c.set_index(7), 3);
    }

    #[test]
    fn set_salt_rotates_the_mapping() {
        let mut c = cache(4, 2);
        c.fill(0, false, 0);
        c.flush();
        c.set_salt(1);
        assert_eq!(c.set_index(0), 1);
        assert_eq!(c.set_index(7), 0);
        // Lines filled under the new mapping are found under it.
        c.fill(0, false, 1);
        assert!(c.contains(0));
    }

    #[test]
    fn position_writes_accumulate_across_evictions() {
        let mut c = cache(1, 1);
        c.fill(0, false, 0); // fill writes position
        c.lookup(0, AccessKind::Write, 1); // write hit
        c.fill(1, false, 2); // evicts, writes position again
        let m = c.write_count_matrix();
        assert_eq!(m, vec![vec![3]]);
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = cache(2, 2);
        assert_eq!(c.occupancy(), 0.0);
        c.fill(0, false, 0);
        c.fill(1, false, 0);
        assert_eq!(c.occupancy(), 0.5);
    }

    #[test]
    fn capacity_accessors() {
        let c = cache(16, 4);
        assert_eq!(c.capacity_lines(), 64);
        assert_eq!(c.capacity_bytes(), 64 * 128);
        assert_eq!(c.sets(), 16);
        assert_eq!(c.ways(), 4);
        assert_eq!(c.line_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_line_size() {
        let _: SetAssocCache<()> = SetAssocCache::new(4, 2, 100, ReplacementPolicy::Lru);
    }

    #[test]
    fn fully_associative_uses_whole_array() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, 8, 128, ReplacementPolicy::Lru);
        for a in 0..8 {
            assert!(c.fill(a, false, a).is_none(), "no eviction while not full");
        }
        assert!(c.fill(8, false, 9).is_some());
    }

    #[test]
    fn drain_then_shrink_parks_ways() {
        let mut c = cache(2, 4);
        // Fill every way of set 0 (addresses 0,2,4,6 map to set 0) and one
        // line of set 1.
        for a in [0u64, 2, 4, 6] {
            c.fill(a, a == 4, a);
        }
        c.fill(1, false, 9);
        let mut out = Vec::new();
        c.drain_ways_into(2, &mut out);
        // Set 0 loses ways 2 and 3 (fill order = way order in an empty
        // set); set 1 only had way 0 occupied.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.line_addr == 4 && e.dirty));
        assert!(out.iter().any(|e| e.line_addr == 6 && !e.dirty));
        c.set_active_ways(2);
        assert_eq!(c.active_ways(), 2);
        // New fills never land in the parked range.
        c.fill(8, false, 10); // set 0 is full at 2 ways -> evicts
        for (i, l) in c.iter().enumerate() {
            let way = i % 4;
            assert!(way < 2 || !l.is_valid(), "parked way {way} stayed empty");
        }
        // Growing back re-enables the ways with no residual state.
        c.set_active_ways(4);
        assert!(c.fill(10, false, 11).is_none(), "free parked way reused");
    }

    #[test]
    fn victim_selection_respects_active_ways_for_every_policy() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut c: SetAssocCache<()> = SetAssocCache::new(1, 4, 128, policy);
            c.set_active_ways(2);
            for a in 0..10 {
                c.fill(a, false, a);
            }
            let valid = c.iter().filter(|l| l.is_valid()).count();
            assert_eq!(valid, 2, "{policy:?} overflowed the active prefix");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_zero_active_ways() {
        let mut c = cache(2, 4);
        c.set_active_ways(0);
    }

    #[test]
    fn set_write_count_overwrites_wws_history() {
        let mut c = cache(4, 2);
        c.fill(5, true, 7);
        c.peek_mut(5).expect("line").set_write_count(0);
        assert_eq!(c.peek(5).expect("line").write_count(), 0);
        assert!(c.peek(5).expect("line").is_dirty(), "dirty bit untouched");
    }

    #[test]
    fn metadata_survives_on_hits_resets_on_fill() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 1, 128, ReplacementPolicy::Lru);
        c.fill(0, false, 0);
        c.peek_mut(0).expect("line").meta = 77;
        assert_eq!(c.lookup(0, AccessKind::Read, 1).expect("hit").meta, 77);
        c.fill(1, false, 2); // evicts line 0
        assert_eq!(
            c.peek(1).expect("line").meta,
            0,
            "fresh fill gets default meta"
        );
    }
}
