//! Cache substrate for the `sttgpu` stack.
//!
//! Everything a GPU cache hierarchy needs short of timing: set-associative
//! tag/data bookkeeping with pluggable replacement ([`SetAssocCache`]),
//! per-physical-line write accounting (the raw material of the paper's
//! Fig. 3 write-variation study), miss-status holding registers
//! ([`MshrTable`]), bank arbitration for occupancy modelling
//! ([`BankArbiter`]) and GPU write-policy vocabulary ([`write_policy`]).
//!
//! The cache array is generic over a per-line metadata type `M`, which is
//! how the two-part LLC of `sttgpu-core` attaches retention counters and
//! write-working-set state to lines without this crate knowing about them.
//!
//! # Example
//!
//! ```
//! use sttgpu_cache::{AccessKind, ReplacementPolicy, SetAssocCache};
//!
//! // 4-set, 2-way cache of 128-byte lines with LRU replacement.
//! let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, 128, ReplacementPolicy::Lru);
//! let addr = 0x1000;
//! assert!(c.lookup(c.line_addr(addr), AccessKind::Read, 0).is_none()); // cold miss
//! c.fill(c.line_addr(addr), false, 0);
//! assert!(c.lookup(c.line_addr(addr), AccessKind::Read, 1).is_some()); // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod cache;
mod linemap;
mod mshr;
mod replacement;
mod stats;
pub mod write_policy;

pub use arbiter::BankArbiter;
pub use cache::{AccessKind, Evicted, Line, SetAssocCache};
pub use linemap::{line_map_with_capacity, LineHasher, LineMap};
pub use mshr::{MshrOutcome, MshrTable};
pub use replacement::ReplacementPolicy;
pub use stats::CacheStats;
