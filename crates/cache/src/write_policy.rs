//! GPU cache write-policy vocabulary.
//!
//! The paper's Fig. 1-b spells out the L1 data-cache policy of an NVIDIA
//! GPU: **global** data writes are *write-evict* on hit and
//! *write-no-allocate* on miss (the L1s are not coherent, so global data
//! may not linger), while **local** (per-thread) data is *write-back* /
//! *write-allocate*. The L2 is write-back with respect to DRAM. These
//! types encode that decision table so the simulator's L1 and L2 read as
//! the figure does.

/// What a cache does with a write that hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteHitPolicy {
    /// Update the line, mark it dirty (local data in L1, everything in L2).
    WriteBack,
    /// Update the line and forward the write to the next level.
    WriteThrough,
    /// Forward the write to the next level and invalidate the local copy
    /// (GPU L1 policy for global data).
    WriteEvict,
}

/// What a cache does with a write that misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteMissPolicy {
    /// Fetch the line and perform the write locally.
    WriteAllocate,
    /// Forward the write to the next level without allocating
    /// (GPU L1 policy for global data).
    WriteNoAllocate,
}

/// A complete write policy (hit + miss behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WritePolicy {
    /// Behaviour on write hit.
    pub hit: WriteHitPolicy,
    /// Behaviour on write miss.
    pub miss: WriteMissPolicy,
}

impl WritePolicy {
    /// The GPU L1 policy for **global** data: write-evict on hit,
    /// write-no-allocate on miss (paper Fig. 1-b).
    pub const GLOBAL_L1: WritePolicy = WritePolicy {
        hit: WriteHitPolicy::WriteEvict,
        miss: WriteMissPolicy::WriteNoAllocate,
    };

    /// The GPU L1 policy for **local** (per-thread) data: write-back,
    /// write-allocate.
    pub const LOCAL_L1: WritePolicy = WritePolicy {
        hit: WriteHitPolicy::WriteBack,
        miss: WriteMissPolicy::WriteAllocate,
    };

    /// The L2 policy: write-back, write-allocate, backed by DRAM.
    pub const L2: WritePolicy = WritePolicy {
        hit: WriteHitPolicy::WriteBack,
        miss: WriteMissPolicy::WriteAllocate,
    };

    /// Whether a write hit leaves a valid local copy behind.
    pub fn keeps_line_on_write_hit(&self) -> bool {
        !matches!(self.hit, WriteHitPolicy::WriteEvict)
    }

    /// Whether a write hit generates traffic to the next level.
    pub fn forwards_write_hit(&self) -> bool {
        matches!(
            self.hit,
            WriteHitPolicy::WriteThrough | WriteHitPolicy::WriteEvict
        )
    }

    /// Whether a write miss allocates locally.
    pub fn allocates_on_write_miss(&self) -> bool {
        matches!(self.miss, WriteMissPolicy::WriteAllocate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_l1_matches_figure_1b() {
        let p = WritePolicy::GLOBAL_L1;
        assert!(
            !p.keeps_line_on_write_hit(),
            "write-evict discards the copy"
        );
        assert!(p.forwards_write_hit(), "write goes through to L2");
        assert!(!p.allocates_on_write_miss(), "write-no-allocate on miss");
    }

    #[test]
    fn local_l1_is_write_back_allocate() {
        let p = WritePolicy::LOCAL_L1;
        assert!(p.keeps_line_on_write_hit());
        assert!(!p.forwards_write_hit());
        assert!(p.allocates_on_write_miss());
    }

    #[test]
    fn l2_is_write_back() {
        let p = WritePolicy::L2;
        assert!(p.keeps_line_on_write_hit());
        assert!(!p.forwards_write_hit());
        assert!(p.allocates_on_write_miss());
    }
}
