//! Bank occupancy arbitration.
//!
//! The performance cost of STT-RAM's long write pulse is not (mostly) the
//! latency of one write — GPUs hide latency — it is **bank occupancy**: a
//! bank busy with a 10 ns write cannot serve the reads piling up behind it.
//! [`BankArbiter`] models that serialisation: each access reserves a bank
//! from the first free time and holds it for its service duration.

/// Per-bank busy-until bookkeeping.
///
/// # Example
///
/// ```
/// use sttgpu_cache::BankArbiter;
///
/// let mut arb = BankArbiter::new(2);
/// // Two back-to-back 10 ns writes to bank 0 serialise...
/// assert_eq!(arb.reserve(0, 100, 10), 100);
/// assert_eq!(arb.reserve(0, 100, 10), 110);
/// // ...while bank 1 is still free.
/// assert_eq!(arb.reserve(1, 100, 10), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankArbiter {
    free_at: Vec<u64>,
}

impl BankArbiter {
    /// Creates an arbiter over `banks` initially free banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        BankArbiter {
            free_at: vec![0; banks],
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.free_at.len()
    }

    /// Maps a line address to its bank (line-interleaved).
    pub fn bank_of(&self, line_addr: u64) -> usize {
        (line_addr % self.free_at.len() as u64) as usize
    }

    /// Reserves `bank` for `duration` time units starting no earlier than
    /// `now`. Returns the actual service **start** time; the access
    /// completes at `start + duration`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn reserve(&mut self, bank: usize, now: u64, duration: u64) -> u64 {
        let start = self.free_at[bank].max(now);
        self.free_at[bank] = start + duration;
        start
    }

    /// When `bank` next becomes free.
    pub fn free_at(&self, bank: usize) -> u64 {
        self.free_at[bank]
    }

    /// Queueing delay an access arriving `now` would see on `bank`.
    pub fn queue_delay(&self, bank: usize, now: u64) -> u64 {
        self.free_at[bank].saturating_sub(now)
    }

    /// Forgets all reservations (new kernel / new measurement window).
    pub fn reset(&mut self) {
        self.free_at.iter_mut().for_each(|t| *t = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_same_bank() {
        let mut a = BankArbiter::new(1);
        assert_eq!(a.reserve(0, 0, 5), 0);
        assert_eq!(a.reserve(0, 0, 5), 5);
        assert_eq!(a.reserve(0, 0, 5), 10);
        assert_eq!(a.free_at(0), 15);
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let mut a = BankArbiter::new(1);
        a.reserve(0, 0, 5);
        // Arriving long after the bank went idle.
        assert_eq!(a.reserve(0, 100, 5), 100);
    }

    #[test]
    fn banks_are_independent() {
        let mut a = BankArbiter::new(3);
        a.reserve(0, 0, 100);
        assert_eq!(a.reserve(1, 0, 10), 0);
        assert_eq!(a.reserve(2, 0, 10), 0);
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut a = BankArbiter::new(1);
        a.reserve(0, 0, 30);
        assert_eq!(a.queue_delay(0, 10), 20);
        assert_eq!(a.queue_delay(0, 50), 0);
    }

    #[test]
    fn bank_mapping_is_interleaved() {
        let a = BankArbiter::new(4);
        assert_eq!(a.bank_of(0), 0);
        assert_eq!(a.bank_of(5), 1);
        assert_eq!(a.bank_of(7), 3);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut a = BankArbiter::new(2);
        a.reserve(0, 0, 100);
        a.reset();
        assert_eq!(a.free_at(0), 0);
    }
}
