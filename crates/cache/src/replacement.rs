//! Replacement policies for [`SetAssocCache`](crate::SetAssocCache).

/// Victim-selection policy of a set-associative cache.
///
/// Policies are stamp-based: the cache records a policy-defined stamp per
/// line and the victim is the valid line with the smallest stamp (invalid
/// lines always win).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used: stamp updated on every hit and fill.
    #[default]
    Lru,
    /// First-in-first-out: stamp assigned at fill only.
    Fifo,
    /// Pseudo-random victim (xorshift over the set index and a counter);
    /// deterministic for reproducible simulation.
    Random,
}

impl ReplacementPolicy {
    /// Whether a hit refreshes the line's stamp (true for LRU).
    pub fn touches_on_hit(self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_touches_on_hit_others_do_not() {
        assert!(ReplacementPolicy::Lru.touches_on_hit());
        assert!(!ReplacementPolicy::Fifo.touches_on_hit());
        assert!(!ReplacementPolicy::Random.touches_on_hit());
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }
}
