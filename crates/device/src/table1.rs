//! Regenerates the paper's **Table 1**: STT-RAM parameters for different
//! data retention times.
//!
//! Each row is a design point of the MTJ model: the magnetisation stability
//! height Δ, its retention time, the write latency and write energy that
//! follow, and the refresh scheme required. The paper's table spans a
//! years-scale non-volatile cell down to the µs-scale cell used for the LR
//! partition.

use crate::mtj::{MtjDesign, RetentionTime};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Descriptive label of the design point.
    pub label: &'static str,
    /// Thermal stability factor Δ.
    pub delta: f64,
    /// Retention time (pretty-printed via `Display`).
    pub retention: RetentionTime,
    /// Write pulse latency, ns.
    pub write_latency_ns: f64,
    /// Write energy per line, nJ.
    pub write_energy_nj: f64,
    /// Refresh scheme required at this retention.
    pub refreshing: &'static str,
}

/// The retention design points reported in Table 1, from the fully
/// non-volatile cell down to the aggressive low-retention cell. The two
/// bottom rows are the ones the proposed L2 uses for its HR and LR parts.
pub fn rows() -> Vec<Table1Row> {
    let points: [(&'static str, RetentionTime, &'static str); 4] = [
        ("non-volatile", RetentionTime::from_years(10.0), "none"),
        ("annual", RetentionTime::from_years(1.0), "none"),
        (
            "HR part",
            RetentionTime::from_millis(4.0),
            "per-block (2-bit RC)",
        ),
        (
            "LR part",
            RetentionTime::from_micros(26.5),
            "per-block (4-bit RC)",
        ),
    ];
    points
        .into_iter()
        .map(|(label, retention, refreshing)| {
            let m = MtjDesign::for_retention(retention);
            Table1Row {
                label,
                delta: m.delta().get(),
                retention,
                write_latency_ns: m.write_latency_ns(),
                write_energy_nj: m.write_energy_nj(),
                refreshing,
            }
        })
        .collect()
}

/// Renders Table 1 as an aligned text table.
///
/// # Example
///
/// ```
/// let t = sttgpu_device::table1::render();
/// assert!(t.contains("10.0 years"));
/// assert!(t.contains("LR part"));
/// ```
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("Table 1: STT-RAM parameters for different data retention times\n");
    out.push_str(&format!(
        "{:<14} {:>6} {:>12} {:>10} {:>10}  {}\n",
        "design", "delta", "R.T", "W.L(ns)", "W.E(nJ)", "refreshing"
    ));
    for r in rows() {
        out.push_str(&format!(
            "{:<14} {:>6.1} {:>12} {:>10.2} {:>10.3}  {}\n",
            r.label,
            r.delta,
            r.retention.to_string(),
            r.write_latency_ns,
            r.write_energy_nj,
            r.refreshing
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_design_points() {
        assert_eq!(rows().len(), 4);
    }

    #[test]
    fn monotone_trends_down_the_table() {
        let rs = rows();
        for w in rs.windows(2) {
            assert!(w[0].delta > w[1].delta, "delta must decrease");
            assert!(
                w[0].retention.as_nanos() > w[1].retention.as_nanos(),
                "retention must decrease"
            );
            assert!(
                w[0].write_latency_ns > w[1].write_latency_ns,
                "write latency must decrease"
            );
            assert!(
                w[0].write_energy_nj > w[1].write_energy_nj,
                "write energy must decrease"
            );
        }
    }

    #[test]
    fn only_volatile_rows_refresh() {
        for r in rows() {
            let needs = MtjDesign::for_retention(r.retention).needs_refresh();
            assert_eq!(needs, r.refreshing != "none", "row {}", r.label);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render();
        for r in rows() {
            assert!(t.contains(r.label), "missing {}", r.label);
        }
    }
}
