//! Write-endurance and lifetime estimation.
//!
//! The paper quantifies write variation with the COV metrics of i2WAP
//! (Wang et al., HPCA 2013), whose underlying concern is **lifetime**:
//! an STT-RAM cell survives a bounded number of write pulses, and a cache
//! dies when its *most-written* line wears out — so concentrating the
//! write working set (exactly what the LR partition does on purpose!)
//! trades lifetime for energy/latency. This module turns the simulator's
//! per-line write matrices into lifetime estimates so that trade-off can
//! be measured instead of guessed.

/// Writes an STT-RAM cell endures before its oxide barrier degrades
/// (literature values range 10¹²–10¹⁵; 4×10¹² is the common planning
/// number for cache-class MTJs).
pub const CELL_ENDURANCE_WRITES: f64 = 4e12;

/// Seconds per (Julian) year.
const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Lifetime estimate of one cache array under an observed write load.
///
/// # Example
///
/// ```
/// use sttgpu_device::endurance::LifetimeEstimate;
///
/// // Two sets x two ways, one line twice as hot as the rest, observed
/// // over 1 ms of simulated time.
/// let matrix = vec![vec![200u64, 100], vec![100, 100]];
/// let est = LifetimeEstimate::from_write_matrix(&matrix, 1_000_000);
/// assert!(est.lifetime_years() > 0.0);
/// assert!(est.leveling_headroom() < 1.0, "variation costs lifetime");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeEstimate {
    max_line_writes: u64,
    mean_line_writes: f64,
    lines: usize,
    elapsed_ns: u64,
}

impl LifetimeEstimate {
    /// Builds an estimate from a per-(set, way) write-count matrix
    /// observed over `elapsed_ns` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or `elapsed_ns` is zero.
    pub fn from_write_matrix(matrix: &[Vec<u64>], elapsed_ns: u64) -> Self {
        assert!(elapsed_ns > 0, "need elapsed time to extrapolate a rate");
        let mut max = 0u64;
        let mut sum = 0u128;
        let mut lines = 0usize;
        for row in matrix {
            for &w in row {
                max = max.max(w);
                sum += w as u128;
                lines += 1;
            }
        }
        assert!(lines > 0, "write matrix must not be empty");
        LifetimeEstimate {
            max_line_writes: max,
            mean_line_writes: sum as f64 / lines as f64,
            lines,
            elapsed_ns,
        }
    }

    /// Writes seen by the hottest line.
    pub fn max_line_writes(&self) -> u64 {
        self.max_line_writes
    }

    /// Mean writes per line.
    pub fn mean_line_writes(&self) -> f64 {
        self.mean_line_writes
    }

    /// Number of physical lines in the array.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Write rate of the hottest line, writes per second.
    pub fn max_line_write_rate_per_sec(&self) -> f64 {
        self.max_line_writes as f64 / (self.elapsed_ns as f64 * 1e-9)
    }

    /// Estimated array lifetime in years: the hottest line's cells reach
    /// [`CELL_ENDURANCE_WRITES`] first. Returns `f64::INFINITY` when no
    /// writes were observed.
    pub fn lifetime_years(&self) -> f64 {
        let rate = self.max_line_write_rate_per_sec();
        if rate == 0.0 {
            f64::INFINITY
        } else {
            CELL_ENDURANCE_WRITES / rate / SECONDS_PER_YEAR
        }
    }

    /// Lifetime the same write volume would allow under *perfect* wear
    /// leveling (every line ages at the mean rate), years.
    pub fn ideal_lifetime_years(&self) -> f64 {
        let rate = self.mean_line_writes / (self.elapsed_ns as f64 * 1e-9);
        if rate == 0.0 {
            f64::INFINITY
        } else {
            CELL_ENDURANCE_WRITES / rate / SECONDS_PER_YEAR
        }
    }

    /// mean/max write ratio ∈ [0, 1]: the fraction of the ideal lifetime
    /// actually achieved (i2WAP's figure of merit; 1.0 = perfectly level).
    pub fn leveling_headroom(&self) -> f64 {
        if self.max_line_writes == 0 {
            1.0
        } else {
            self.mean_line_writes / self.max_line_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_writes_are_perfectly_level() {
        let est = LifetimeEstimate::from_write_matrix(&[vec![10, 10], vec![10, 10]], 1_000);
        assert!((est.leveling_headroom() - 1.0).abs() < 1e-12);
        assert!((est.lifetime_years() - est.ideal_lifetime_years()).abs() < 1e-6);
    }

    #[test]
    fn hot_line_bounds_lifetime() {
        let even = LifetimeEstimate::from_write_matrix(&[vec![100, 100]], 1_000_000);
        let skewed = LifetimeEstimate::from_write_matrix(&[vec![190, 10]], 1_000_000);
        // Same total writes, but the skewed array dies ~1.9x sooner.
        assert!(skewed.lifetime_years() < even.lifetime_years());
        let ratio = even.lifetime_years() / skewed.lifetime_years();
        assert!((ratio - 1.9).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn no_writes_means_infinite_lifetime() {
        let est = LifetimeEstimate::from_write_matrix(&[vec![0, 0]], 1_000);
        assert_eq!(est.lifetime_years(), f64::INFINITY);
        assert_eq!(est.leveling_headroom(), 1.0);
    }

    #[test]
    fn rate_extrapolation() {
        // 1000 writes on the hot line over 1 ms -> 1e6 writes/s.
        let est = LifetimeEstimate::from_write_matrix(&[vec![1_000]], 1_000_000);
        assert!((est.max_line_write_rate_per_sec() - 1e6).abs() < 1e-6);
        // 4e12 endurance / 1e6 per s = 4e6 s ≈ 0.1267 years.
        assert!((est.lifetime_years() - 4e6 / SECONDS_PER_YEAR).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_matrix() {
        LifetimeEstimate::from_write_matrix(&[], 1_000);
    }

    #[test]
    #[should_panic(expected = "elapsed time")]
    fn rejects_zero_elapsed() {
        LifetimeEstimate::from_write_matrix(&[vec![1]], 0);
    }
}
