//! Device models for the `sttgpu` stack: STT-RAM (MTJ) cells, SRAM cells and
//! a "CACTI-lite" analytical array model.
//!
//! The DAC 2014 paper sizes and prices its caches with CACTI 6.5 (modified
//! for STT-RAM) and takes its MTJ retention/latency/energy trade-off from
//! Smullen et al. (HPCA 2011) and Sun et al. (MICRO 2012). Neither tool is
//! available here, so this crate implements the published analytical models
//! directly:
//!
//! * [`mtj`] — thermal-stability factor Δ vs. retention time
//!   (τ = τ₀·e^Δ with τ₀ = 1 ns) and the affine write-latency/energy scaling
//!   with Δ that underlies the paper's Table 1;
//! * [`cell`] — SRAM vs. STT-RAM cell footprints (STT ≈ 4× denser) and
//!   leakage (STT ≈ zero cell leakage, periphery only);
//! * [`mod@array`] — an analytical SRAM/STT array model giving area, access
//!   latency, per-access energy and leakage as a function of capacity,
//!   associativity and banking;
//! * [`endurance`] — write-endurance lifetime estimation from per-line
//!   write matrices (the concern behind the paper's i2WAP-style Fig. 3
//!   metrics);
//! * [`energy`] — an event-based energy account used by the simulator to
//!   integrate dynamic energy and leakage into the Fig. 8b/8c power numbers;
//! * [`table1`] — regenerates the paper's Table 1 rows from the MTJ model.
//!
//! # Example
//!
//! ```
//! use sttgpu_device::mtj::{MtjDesign, RetentionTime};
//!
//! // The paper's high-retention (10-year) cell lands at the Δ ≈ 40.3 the
//! // literature reports, and a millisecond-class cell writes much faster.
//! let hi = MtjDesign::for_retention(RetentionTime::from_years(10.0));
//! let lo = MtjDesign::for_retention(RetentionTime::from_millis(1.0));
//! assert!((hi.delta().get() - 40.3).abs() < 0.2);
//! assert!(lo.write_latency_ns() < 0.5 * hi.write_latency_ns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod cell;
pub mod endurance;
pub mod energy;
pub mod mtj;
pub mod table1;

pub use array::{ArrayDesign, ArrayGeometry};
pub use cell::MemTechnology;
pub use endurance::LifetimeEstimate;
pub use energy::{EnergyAccount, EnergyEvent};
pub use mtj::{Delta, MtjDesign, RetentionTime};
