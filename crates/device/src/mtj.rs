//! Magnetic-tunnel-junction (MTJ) retention / write-cost model.
//!
//! An STT-RAM cell stores a bit in the relative magnetisation of an MTJ's
//! free layer. Its **thermal stability factor** Δ = E_b/k_BT sets both how
//! long the cell retains data without power and how hard it is to write:
//!
//! * retention time follows the Arrhenius/Néel relation
//!   **τ(Δ) = τ₀ · e^Δ** with attempt period τ₀ ≈ 1 ns, and
//! * the switching current (hence write pulse width and energy at a fixed
//!   driver) grows with Δ; over the Δ range used in cache design the
//!   published trade-off (Smullen HPCA'11 fig. 5, Sun MICRO'12 tab. 2) is
//!   well captured by an affine fit.
//!
//! This module exposes exactly that model, calibrated so that the 10-year
//! cell lands at Δ ≈ 40.3 with a 10 ns / ~0.42 nJ write — the corner the
//! DAC 2014 paper's Table 1 starts from — and millisecond/microsecond cells
//! get proportionally cheaper writes, which is what makes the paper's
//! low-retention (LR) L2 partition attractive.

use std::fmt;

/// Néel–Arrhenius attempt period τ₀, in nanoseconds.
pub const ATTEMPT_PERIOD_NS: f64 = 1.0;

/// Write-pulse latency model: `WL(Δ) = WRITE_LATENCY_BASE_NS +
/// WRITE_LATENCY_SLOPE_NS * Δ` (calibrated to 10 ns at Δ = 40.3).
pub const WRITE_LATENCY_BASE_NS: f64 = 0.6;
/// Slope of the write-latency fit, ns per unit Δ.
pub const WRITE_LATENCY_SLOPE_NS: f64 = 0.2333;

/// Cell write-energy model: `WE(Δ) = WRITE_ENERGY_BASE_NJ +
/// WRITE_ENERGY_QUAD_NJ * Δ²` (calibrated to ~0.83 nJ at Δ = 40.3).
/// Energy grows superlinearly with Δ because both the switching current
/// and the pulse width rise with the stability barrier (E ≈ I²·R·t).
pub const WRITE_ENERGY_BASE_NJ: f64 = 0.01;
/// Quadratic coefficient of the write-energy fit, nJ per unit Δ².
pub const WRITE_ENERGY_QUAD_NJ: f64 = 0.00025;

/// MTJ read sensing latency, ns (read cost is essentially Δ-independent).
pub const READ_LATENCY_NS: f64 = 1.0;
/// MTJ read sensing energy, nJ per line access.
pub const READ_ENERGY_NJ: f64 = 0.04;

/// Smallest Δ this model accepts; below ~5 the cell is not a memory.
pub const MIN_DELTA: f64 = 5.0;
/// Largest Δ this model accepts.
pub const MAX_DELTA: f64 = 80.0;

/// Thermal stability factor Δ (dimensionless, E_b / k_B·T).
///
/// # Example
///
/// ```
/// use sttgpu_device::mtj::Delta;
///
/// let d = Delta::new(40.3);
/// assert_eq!(d.get(), 40.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Delta(f64);

impl Delta {
    /// Creates a thermal stability factor.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is outside `[MIN_DELTA, MAX_DELTA]` or not finite.
    pub fn new(delta: f64) -> Self {
        assert!(
            delta.is_finite() && (MIN_DELTA..=MAX_DELTA).contains(&delta),
            "thermal stability factor {delta} outside [{MIN_DELTA}, {MAX_DELTA}]"
        );
        Delta(delta)
    }

    /// Returns the raw factor.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}", self.0)
    }
}

/// A data retention time, stored in nanoseconds.
///
/// # Example
///
/// ```
/// use sttgpu_device::mtj::RetentionTime;
///
/// let r = RetentionTime::from_millis(4.0);
/// assert_eq!(r.as_nanos(), 4_000_000.0);
/// assert_eq!(r.to_string(), "4.0 ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct RetentionTime(f64);

impl RetentionTime {
    /// Creates a retention time from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not finite and positive.
    pub fn from_nanos(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns > 0.0,
            "retention must be positive, got {ns}"
        );
        RetentionTime(ns)
    }

    /// Creates a retention time from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_nanos(us * 1e3)
    }

    /// Creates a retention time from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_nanos(ms * 1e6)
    }

    /// Creates a retention time from seconds.
    pub fn from_secs(s: f64) -> Self {
        Self::from_nanos(s * 1e9)
    }

    /// Creates a retention time from (Julian) years.
    pub fn from_years(y: f64) -> Self {
        Self::from_secs(y * 365.25 * 24.0 * 3600.0)
    }

    /// Retention in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// Retention in integer nanoseconds, saturating at `u64::MAX` (useful
    /// as a simulator deadline).
    pub fn as_nanos_u64(self) -> u64 {
        if self.0 >= u64::MAX as f64 {
            u64::MAX
        } else {
            self.0 as u64
        }
    }
}

impl fmt::Display for RetentionTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 365.25 * 24.0 * 3600.0 * 1e9 {
            write!(f, "{:.1} years", ns / (365.25 * 24.0 * 3600.0 * 1e9))
        } else if ns >= 1e9 {
            write!(f, "{:.1} s", ns / 1e9)
        } else if ns >= 1e6 {
            write!(f, "{:.1} ms", ns / 1e6)
        } else if ns >= 1e3 {
            write!(f, "{:.1} us", ns / 1e3)
        } else {
            write!(f, "{ns:.1} ns")
        }
    }
}

/// A concrete MTJ design point: a chosen Δ and everything that follows
/// from it (retention, write pulse, write energy).
///
/// # Example
///
/// ```
/// use sttgpu_device::mtj::{Delta, MtjDesign, RetentionTime};
///
/// // Sizing by retention target (the usual direction in cache design):
/// let lr = MtjDesign::for_retention(RetentionTime::from_micros(26.5));
/// let hr = MtjDesign::for_retention(RetentionTime::from_millis(4.0));
/// assert!(lr.write_energy_nj() < hr.write_energy_nj());
///
/// // Or directly by Δ:
/// let cell = MtjDesign::new(Delta::new(40.3));
/// assert!(cell.retention().as_nanos() > 1e17); // ~10 years
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjDesign {
    delta: Delta,
    ewt_savings: f64,
}

impl MtjDesign {
    /// Creates a design point from a thermal stability factor.
    pub fn new(delta: Delta) -> Self {
        MtjDesign {
            delta,
            ewt_savings: 0.0,
        }
    }

    /// Enables **early write termination** (Zhou et al., ICCAD 2009, the
    /// mechanism the paper's §3 relates to): write drivers sense bits that
    /// already hold the target value and cut their current early, saving
    /// `savings` of the write energy on average.
    ///
    /// # Panics
    ///
    /// Panics if `savings` is outside `[0, 0.9]`.
    pub fn with_ewt_savings(mut self, savings: f64) -> Self {
        assert!(
            (0.0..=0.9).contains(&savings),
            "EWT savings {savings} outside [0, 0.9]"
        );
        self.ewt_savings = savings;
        self
    }

    /// The configured early-write-termination energy savings fraction.
    pub fn ewt_savings(&self) -> f64 {
        self.ewt_savings
    }

    /// Creates the design point whose retention equals `retention`
    /// (Δ = ln(τ/τ₀)).
    ///
    /// # Panics
    ///
    /// Panics if the resulting Δ is outside the supported range — i.e. for
    /// retention targets below ~150 ns or above ~10ⁱ⁸ years.
    pub fn for_retention(retention: RetentionTime) -> Self {
        let delta = (retention.as_nanos() / ATTEMPT_PERIOD_NS).ln();
        MtjDesign::new(Delta::new(delta))
    }

    /// The design's thermal stability factor.
    pub fn delta(&self) -> Delta {
        self.delta
    }

    /// Retention time τ = τ₀·e^Δ.
    pub fn retention(&self) -> RetentionTime {
        RetentionTime::from_nanos(ATTEMPT_PERIOD_NS * self.delta.get().exp())
    }

    /// Write pulse width in nanoseconds (per line write).
    pub fn write_latency_ns(&self) -> f64 {
        WRITE_LATENCY_BASE_NS + WRITE_LATENCY_SLOPE_NS * self.delta.get()
    }

    /// Cell-array write energy in nanojoules (per line write), after any
    /// early-write-termination savings.
    pub fn write_energy_nj(&self) -> f64 {
        (WRITE_ENERGY_BASE_NJ + WRITE_ENERGY_QUAD_NJ * self.delta.get() * self.delta.get())
            * (1.0 - self.ewt_savings)
    }

    /// Read sensing latency in nanoseconds (per line read).
    pub fn read_latency_ns(&self) -> f64 {
        READ_LATENCY_NS
    }

    /// Read sensing energy in nanojoules (per line read).
    pub fn read_energy_nj(&self) -> f64 {
        READ_ENERGY_NJ
    }

    /// Whether a cache built from this cell needs refresh within a typical
    /// application run (retention below one hour).
    pub fn needs_refresh(&self) -> bool {
        self.retention().as_nanos() < 3600.0 * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_year_cell_matches_literature_delta() {
        let d = MtjDesign::for_retention(RetentionTime::from_years(10.0));
        assert!((d.delta().get() - 40.3).abs() < 0.2, "got {}", d.delta());
    }

    #[test]
    fn retention_roundtrip() {
        for target_ns in [1e3, 1e6, 1e9, 3.15e17] {
            let d = MtjDesign::for_retention(RetentionTime::from_nanos(target_ns));
            let back = d.retention().as_nanos();
            assert!((back / target_ns - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lower_retention_means_cheaper_writes() {
        let hi = MtjDesign::for_retention(RetentionTime::from_years(10.0));
        let mid = MtjDesign::for_retention(RetentionTime::from_millis(4.0));
        let lo = MtjDesign::for_retention(RetentionTime::from_micros(26.5));
        assert!(hi.write_latency_ns() > mid.write_latency_ns());
        assert!(mid.write_latency_ns() > lo.write_latency_ns());
        assert!(hi.write_energy_nj() > mid.write_energy_nj());
        assert!(mid.write_energy_nj() > lo.write_energy_nj());
    }

    #[test]
    fn ten_year_write_cost_calibration() {
        let hi = MtjDesign::for_retention(RetentionTime::from_years(10.0));
        assert!((hi.write_latency_ns() - 10.0).abs() < 0.2);
        assert!((hi.write_energy_nj() - 0.42).abs() < 0.03);
    }

    #[test]
    fn refresh_need_threshold() {
        assert!(MtjDesign::for_retention(RetentionTime::from_millis(4.0)).needs_refresh());
        assert!(!MtjDesign::for_retention(RetentionTime::from_years(1.0)).needs_refresh());
    }

    #[test]
    fn read_cost_is_delta_independent() {
        let a = MtjDesign::new(Delta::new(10.0));
        let b = MtjDesign::new(Delta::new(40.0));
        assert_eq!(a.read_latency_ns(), b.read_latency_ns());
        assert_eq!(a.read_energy_nj(), b.read_energy_nj());
    }

    #[test]
    fn ewt_scales_write_energy_only() {
        let base = MtjDesign::for_retention(RetentionTime::from_millis(4.0));
        let ewt = base.with_ewt_savings(0.6);
        assert!((ewt.write_energy_nj() / base.write_energy_nj() - 0.4).abs() < 1e-12);
        assert_eq!(ewt.write_latency_ns(), base.write_latency_ns());
        assert_eq!(ewt.read_energy_nj(), base.read_energy_nj());
        assert_eq!(ewt.ewt_savings(), 0.6);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_excessive_ewt() {
        let _ = MtjDesign::for_retention(RetentionTime::from_millis(4.0)).with_ewt_savings(0.95);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_tiny_delta() {
        Delta::new(1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_retention() {
        RetentionTime::from_nanos(0.0);
    }

    #[test]
    fn retention_display_units() {
        assert_eq!(RetentionTime::from_nanos(500.0).to_string(), "500.0 ns");
        assert_eq!(RetentionTime::from_micros(26.5).to_string(), "26.5 us");
        assert_eq!(RetentionTime::from_millis(4.0).to_string(), "4.0 ms");
        assert_eq!(RetentionTime::from_secs(2.0).to_string(), "2.0 s");
        assert_eq!(RetentionTime::from_years(10.0).to_string(), "10.0 years");
    }

    #[test]
    fn nanos_u64_saturates() {
        assert_eq!(RetentionTime::from_years(1e9).as_nanos_u64(), u64::MAX);
        assert_eq!(RetentionTime::from_micros(1.0).as_nanos_u64(), 1_000);
    }
}
