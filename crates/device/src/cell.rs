//! Memory cell technologies: 6T SRAM vs. 1T1J STT-RAM.
//!
//! Two facts about the cells drive the whole paper:
//!
//! 1. **Density** — an STT-RAM cell (one access transistor + one MTJ) is
//!    about 4× denser than a 6T SRAM cell at the same node, so the same die
//!    area holds a 4× larger L2 (configuration C1) or frees area for other
//!    resources (C2/C3).
//! 2. **Leakage** — the MTJ stores state magnetically; only the periphery
//!    leaks. At 40 nm, where "leakage current increases by 10× per
//!    technology node", this dominates total cache power (Fig. 8c).

use crate::mtj::MtjDesign;

/// 6T SRAM cell footprint in F² (feature-size-squared), typical for a
/// high-performance 40 nm macro.
pub const SRAM_CELL_AREA_F2: f64 = 146.0;

/// 1T1J STT-RAM cell footprint in F²: 4× denser than SRAM, as assumed by
/// the paper when sizing C1–C3.
pub const STT_CELL_AREA_F2: f64 = SRAM_CELL_AREA_F2 / 4.0;

/// SRAM leakage power per kilobyte of data array, in milliwatts (40 nm,
/// high-performance cells; calibrated so a 384 KB L2 leaks ~290 mW —
/// leakage dominates SRAM L2 power at 40 nm, which is what makes the
/// near-zero-leakage STT designs win on total power in Fig. 8c).
pub const SRAM_LEAKAGE_MW_PER_KB: f64 = 0.75;

/// STT-RAM array leakage per kilobyte (periphery only — row/column logic
/// and sense amps; the cells themselves do not leak).
pub const STT_LEAKAGE_MW_PER_KB: f64 = 0.03;

/// SRAM cell read/write latency contribution, ns (bitline + sense).
pub const SRAM_CELL_ACCESS_NS: f64 = 0.4;

/// SRAM cell-array energy per line access, nJ.
pub const SRAM_CELL_ENERGY_NJ: f64 = 0.05;

/// A memory technology choice for a cache data array.
///
/// # Example
///
/// ```
/// use sttgpu_device::cell::MemTechnology;
/// use sttgpu_device::mtj::{MtjDesign, RetentionTime};
///
/// let sram = MemTechnology::Sram;
/// let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
/// // STT is 4x denser...
/// assert!((sram.cell_area_f2() / stt.cell_area_f2() - 4.0).abs() < 1e-9);
/// // ...but its writes are slower.
/// assert!(stt.cell_write_latency_ns() > sram.cell_write_latency_ns());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemTechnology {
    /// Conventional 6T SRAM.
    Sram,
    /// STT-RAM with the given MTJ design point.
    SttRam(MtjDesign),
}

impl MemTechnology {
    /// Convenience constructor: STT-RAM sized for a retention target.
    pub fn stt_for_retention(retention: crate::mtj::RetentionTime) -> Self {
        MemTechnology::SttRam(MtjDesign::for_retention(retention))
    }

    /// Cell footprint in F².
    pub fn cell_area_f2(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_CELL_AREA_F2,
            MemTechnology::SttRam(_) => STT_CELL_AREA_F2,
        }
    }

    /// Array leakage in mW per KB of capacity.
    pub fn leakage_mw_per_kb(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_LEAKAGE_MW_PER_KB,
            MemTechnology::SttRam(_) => STT_LEAKAGE_MW_PER_KB,
        }
    }

    /// Cell-level read latency contribution, ns.
    pub fn cell_read_latency_ns(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_CELL_ACCESS_NS,
            MemTechnology::SttRam(m) => m.read_latency_ns(),
        }
    }

    /// Cell-level write latency contribution, ns. For STT-RAM this is the
    /// MTJ write pulse — the quantity the paper's LR partition shrinks.
    pub fn cell_write_latency_ns(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_CELL_ACCESS_NS,
            MemTechnology::SttRam(m) => m.write_latency_ns(),
        }
    }

    /// Cell-array read energy per line access, nJ.
    pub fn cell_read_energy_nj(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_CELL_ENERGY_NJ,
            MemTechnology::SttRam(m) => m.read_energy_nj(),
        }
    }

    /// Cell-array write energy per line access, nJ.
    pub fn cell_write_energy_nj(&self) -> f64 {
        match self {
            MemTechnology::Sram => SRAM_CELL_ENERGY_NJ,
            MemTechnology::SttRam(m) => m.write_energy_nj(),
        }
    }

    /// The MTJ design point, if this is STT-RAM.
    pub fn mtj(&self) -> Option<&MtjDesign> {
        match self {
            MemTechnology::Sram => None,
            MemTechnology::SttRam(m) => Some(m),
        }
    }

    /// Whether arrays of this technology require refresh (low-retention
    /// STT-RAM only).
    pub fn needs_refresh(&self) -> bool {
        self.mtj().is_some_and(MtjDesign::needs_refresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtj::RetentionTime;

    #[test]
    fn density_ratio_is_four() {
        let sram = MemTechnology::Sram;
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        assert!((sram.cell_area_f2() / stt.cell_area_f2() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stt_leaks_an_order_of_magnitude_less() {
        let sram = MemTechnology::Sram;
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        assert!(sram.leakage_mw_per_kb() / stt.leakage_mw_per_kb() >= 10.0);
    }

    #[test]
    fn stt_write_is_the_expensive_operation() {
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        assert!(stt.cell_write_latency_ns() > 5.0 * stt.cell_read_latency_ns());
        assert!(stt.cell_write_energy_nj() > 5.0 * stt.cell_read_energy_nj());
    }

    #[test]
    fn sram_reads_and_writes_symmetric() {
        let sram = MemTechnology::Sram;
        assert_eq!(sram.cell_read_latency_ns(), sram.cell_write_latency_ns());
        assert_eq!(sram.cell_read_energy_nj(), sram.cell_write_energy_nj());
    }

    #[test]
    fn refresh_only_for_low_retention_stt() {
        assert!(!MemTechnology::Sram.needs_refresh());
        assert!(!MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)).needs_refresh());
        assert!(MemTechnology::stt_for_retention(RetentionTime::from_millis(4.0)).needs_refresh());
    }

    #[test]
    fn mtj_accessor() {
        assert!(MemTechnology::Sram.mtj().is_none());
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_millis(1.0));
        assert!(stt.mtj().is_some());
    }
}
