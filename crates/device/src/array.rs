//! "CACTI-lite": an analytical cache-array model.
//!
//! The paper uses CACTI 6.5 (slightly modified for STT-RAM) to obtain area,
//! latency and power of each L2 candidate. This module reimplements the
//! parts of that flow the evaluation actually depends on, as simple
//! analytical scaling laws:
//!
//! * **area** — bits × cell footprint (F²) × layout overhead, at 40 nm;
//! * **latency** — a fixed decode/sense term plus a wire term growing with
//!   √(bank capacity), plus the technology's cell term (for STT writes this
//!   is the MTJ pulse, which dominates);
//! * **energy/access** — a fixed periphery term plus a √(bank capacity)
//!   bitline/H-tree term plus the cell term;
//! * **leakage** — proportional to capacity, with the technology's per-KB
//!   coefficient.
//!
//! Tag arrays are always SRAM ("we keep tag array SRAM so it is fast",
//! paper §6) and are priced separately.

use crate::cell::{MemTechnology, SRAM_LEAKAGE_MW_PER_KB};

/// Process feature size, nanometres (paper's Table 2: 40 nm node).
pub const FEATURE_NM: f64 = 40.0;

/// mm² per F² at [`FEATURE_NM`].
pub const MM2_PER_F2: f64 = (FEATURE_NM * FEATURE_NM) * 1e-12;

/// Array layout overhead multiplier (decoders, drivers, spare columns).
pub const LAYOUT_OVERHEAD: f64 = 1.4;

/// Fixed (capacity-independent) array access latency: decode + mux + sense
/// control, ns.
pub const ACCESS_FIXED_NS: f64 = 1.2;

/// Wire/bitline latency coefficient, ns per √KB of bank capacity.
pub const ACCESS_WIRE_NS_PER_SQRT_KB: f64 = 0.25;

/// Fixed periphery energy per access, nJ.
pub const ENERGY_FIXED_NJ: f64 = 0.025;

/// Bitline/H-tree energy coefficient, nJ per √KB of bank capacity.
pub const ENERGY_WIRE_NJ_PER_SQRT_KB: f64 = 0.01;

/// Bank pipeline cycle time, ns: a bank accepts a new access at this rate
/// even though one access's full latency is longer — arrays are pipelined.
/// The exception is an STT-RAM **write**, whose MTJ current pulse holds the
/// selected wordline and blocks the bank for the whole pulse (this
/// non-pipelineable occupancy is the performance problem the paper's LR
/// partition attacks).
pub const BANK_CYCLE_NS: f64 = 1.5;

/// Subarrays per bank that can hold concurrent write pulses: consecutive
/// writes to different subarrays of one bank overlap, so the effective
/// per-bank write occupancy is `pulse / SUBARRAY_WRITE_PARALLELISM`.
pub const SUBARRAY_WRITE_PARALLELISM: f64 = 2.0;

/// Physical address width assumed for tag sizing, bits.
pub const ADDR_BITS: u32 = 32;

/// Per-line status bits held in the tag array (valid, dirty, replacement
/// state, write counter / modified bit).
pub const TAG_STATE_BITS: u32 = 6;

/// Geometry of one cache array: total data capacity, line size,
/// associativity and bank count.
///
/// # Example
///
/// ```
/// use sttgpu_device::array::ArrayGeometry;
///
/// // The paper's SRAM baseline L2: 384 KB, 8-way, 256 B lines, 6 banks.
/// let g = ArrayGeometry::new(384 * 1024, 256, 8, 6);
/// assert_eq!(g.lines(), 1536);
/// assert_eq!(g.sets(), 192);
/// assert_eq!(g.bank_kb(), 64.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    data_bytes: u64,
    line_bytes: u32,
    associativity: u32,
    banks: u32,
}

impl ArrayGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if the capacity is not divisible
    /// into whole sets of `associativity` lines, or if the line count is
    /// not divisible by the bank count.
    pub fn new(data_bytes: u64, line_bytes: u32, associativity: u32, banks: u32) -> Self {
        assert!(data_bytes > 0 && line_bytes > 0 && associativity > 0 && banks > 0);
        let lines = data_bytes / line_bytes as u64;
        assert_eq!(
            lines * line_bytes as u64,
            data_bytes,
            "capacity must be a whole number of lines"
        );
        assert_eq!(
            lines % associativity as u64,
            0,
            "capacity must form whole sets"
        );
        ArrayGeometry {
            data_bytes,
            line_bytes,
            associativity,
            banks,
        }
    }

    /// Total data capacity in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (ways per set).
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Total number of cache lines.
    pub fn lines(&self) -> u64 {
        self.data_bytes / self.line_bytes as u64
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.associativity as u64
    }

    /// Capacity of one bank, KB.
    pub fn bank_kb(&self) -> f64 {
        self.data_bytes as f64 / 1024.0 / self.banks as f64
    }

    /// Tag width in bits for one line (address tag + status bits).
    pub fn tag_bits_per_line(&self) -> u32 {
        let index_bits = (self.sets() as f64).log2().ceil() as u32;
        let offset_bits = (self.line_bytes as f64).log2().ceil() as u32;
        ADDR_BITS.saturating_sub(index_bits + offset_bits) + TAG_STATE_BITS
    }

    /// Total tag-array capacity in KB.
    pub fn tag_kb(&self) -> f64 {
        self.lines() as f64 * self.tag_bits_per_line() as f64 / 8.0 / 1024.0
    }
}

/// A fully priced cache array: geometry + data technology (+ SRAM tags).
///
/// # Example
///
/// ```
/// use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
/// use sttgpu_device::cell::MemTechnology;
/// use sttgpu_device::mtj::RetentionTime;
///
/// let geom = ArrayGeometry::new(384 * 1024, 256, 8, 6);
/// let sram = ArrayDesign::new(geom, MemTechnology::Sram);
/// let stt4x = ArrayDesign::new(
///     ArrayGeometry::new(1536 * 1024, 256, 8, 6),
///     MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
/// );
/// // 4x the capacity in (approximately) the same area:
/// let ratio = stt4x.area_mm2() / sram.area_mm2();
/// assert!(ratio < 1.25, "area ratio {ratio}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayDesign {
    geometry: ArrayGeometry,
    tech: MemTechnology,
    // Per-access energies memoized at construction: they are pure
    // functions of (geometry, tech), but the LLC charges them on every
    // access, and the sqrt/exp chains behind them showed up in profiles.
    read_energy_nj: f64,
    write_energy_nj: f64,
    tag_energy_nj: f64,
}

impl ArrayDesign {
    /// Creates a priced array from a geometry and a data-array technology.
    pub fn new(geometry: ArrayGeometry, tech: MemTechnology) -> Self {
        let mut d = ArrayDesign {
            geometry,
            tech,
            read_energy_nj: 0.0,
            write_energy_nj: 0.0,
            tag_energy_nj: 0.0,
        };
        d.read_energy_nj = d.wire_nj() + d.tech.cell_read_energy_nj();
        d.write_energy_nj = d.wire_nj() + d.tech.cell_write_energy_nj();
        d.tag_energy_nj = 0.01 + 0.005 * (d.geometry.tag_kb() / d.geometry.banks as f64).sqrt();
        d
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &ArrayGeometry {
        &self.geometry
    }

    /// The data-array technology.
    pub fn technology(&self) -> &MemTechnology {
        &self.tech
    }

    /// Data-array silicon area, mm².
    pub fn data_area_mm2(&self) -> f64 {
        let bits = self.geometry.data_bytes as f64 * 8.0;
        bits * self.tech.cell_area_f2() * MM2_PER_F2 * LAYOUT_OVERHEAD
    }

    /// Tag-array silicon area (always SRAM), mm².
    pub fn tag_area_mm2(&self) -> f64 {
        let bits = self.geometry.tag_kb() * 1024.0 * 8.0;
        bits * crate::cell::SRAM_CELL_AREA_F2 * MM2_PER_F2 * LAYOUT_OVERHEAD
    }

    /// Total silicon area (data + tags), mm².
    pub fn area_mm2(&self) -> f64 {
        self.data_area_mm2() + self.tag_area_mm2()
    }

    fn wire_ns(&self) -> f64 {
        ACCESS_FIXED_NS + ACCESS_WIRE_NS_PER_SQRT_KB * self.geometry.bank_kb().sqrt()
    }

    fn wire_nj(&self) -> f64 {
        ENERGY_FIXED_NJ + ENERGY_WIRE_NJ_PER_SQRT_KB * self.geometry.bank_kb().sqrt()
    }

    /// Data read latency, ns (decode + wire + cell sensing).
    pub fn read_latency_ns(&self) -> f64 {
        self.wire_ns() + self.tech.cell_read_latency_ns()
    }

    /// Data write latency, ns. For STT-RAM arrays the MTJ write pulse
    /// dominates — this is the bank-occupancy cost the paper attacks.
    pub fn write_latency_ns(&self) -> f64 {
        self.wire_ns() + self.tech.cell_write_latency_ns()
    }

    /// How long a read blocks its bank, ns (pipelined: one bank cycle).
    pub fn read_occupancy_ns(&self) -> f64 {
        BANK_CYCLE_NS
    }

    /// How long a write blocks its bank, ns: one pipeline cycle for SRAM;
    /// for STT-RAM the MTJ pulse is not pipelineable, but two subarrays
    /// per bank can hold pulses concurrently
    /// ([`SUBARRAY_WRITE_PARALLELISM`]).
    pub fn write_occupancy_ns(&self) -> f64 {
        (self.tech.cell_write_latency_ns() / SUBARRAY_WRITE_PARALLELISM).max(BANK_CYCLE_NS)
    }

    /// Data read energy per line access, nJ.
    pub fn read_energy_nj(&self) -> f64 {
        self.read_energy_nj
    }

    /// Data write energy per line access, nJ.
    pub fn write_energy_nj(&self) -> f64 {
        self.write_energy_nj
    }

    /// Tag lookup latency, ns (small SRAM array).
    pub fn tag_latency_ns(&self) -> f64 {
        0.3 + 0.1 * (self.geometry.tag_kb() / self.geometry.banks as f64).sqrt()
    }

    /// Tag lookup energy, nJ.
    pub fn tag_energy_nj(&self) -> f64 {
        self.tag_energy_nj
    }

    /// Total leakage power (data + SRAM tags), mW.
    pub fn leakage_mw(&self) -> f64 {
        let data_kb = self.geometry.data_bytes as f64 / 1024.0;
        data_kb * self.tech.leakage_mw_per_kb() + self.geometry.tag_kb() * SRAM_LEAKAGE_MW_PER_KB
    }
}

/// Returns how many bytes of data array built in `tech` fit in the silicon
/// area of `sram_bytes` of SRAM data array (the paper's "saved area"
/// arithmetic for configurations C1–C3).
///
/// # Example
///
/// ```
/// use sttgpu_device::array::stt_capacity_for_sram_area;
/// use sttgpu_device::cell::MemTechnology;
/// use sttgpu_device::mtj::RetentionTime;
///
/// let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
/// assert_eq!(stt_capacity_for_sram_area(384 * 1024, &stt), 4 * 384 * 1024);
/// ```
pub fn stt_capacity_for_sram_area(sram_bytes: u64, tech: &MemTechnology) -> u64 {
    let ratio = crate::cell::SRAM_CELL_AREA_F2 / tech.cell_area_f2();
    (sram_bytes as f64 * ratio) as u64
}

/// Returns the SRAM-equivalent byte count of `bytes` built in `tech`
/// (inverse of [`stt_capacity_for_sram_area`]).
pub fn sram_equivalent_bytes(bytes: u64, tech: &MemTechnology) -> u64 {
    let ratio = tech.cell_area_f2() / crate::cell::SRAM_CELL_AREA_F2;
    (bytes as f64 * ratio) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtj::RetentionTime;

    fn sram_l2() -> ArrayDesign {
        ArrayDesign::new(
            ArrayGeometry::new(384 * 1024, 256, 8, 6),
            MemTechnology::Sram,
        )
    }

    fn stt_l2(kb: u64, assoc: u32) -> ArrayDesign {
        ArrayDesign::new(
            ArrayGeometry::new(kb * 1024, 256, assoc, 6),
            MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
        )
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = ArrayGeometry::new(1536 * 1024, 256, 8, 6);
        assert_eq!(g.lines(), 6144);
        assert_eq!(g.sets(), 768);
        assert_eq!(g.bank_kb(), 256.0);
        // 32-bit address, 768 sets (10 bits), 256 B line (8 bits):
        // 14 tag bits + 6 state bits.
        assert_eq!(g.tag_bits_per_line(), 20);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn rejects_fractional_sets() {
        ArrayGeometry::new(100 * 1024, 256, 7, 1);
    }

    #[test]
    fn four_x_stt_fits_in_sram_area() {
        let sram = sram_l2();
        let stt = stt_l2(1536, 8);
        // Data arrays match exactly (4x cells, 1/4 area); tags grow a bit.
        assert!((stt.data_area_mm2() / sram.data_area_mm2() - 1.0).abs() < 1e-9);
        assert!(stt.area_mm2() / sram.area_mm2() < 1.25);
    }

    #[test]
    fn stt_leaks_far_less_despite_4x_capacity() {
        let sram = sram_l2();
        let stt = stt_l2(1536, 8);
        assert!(stt.leakage_mw() < 0.7 * sram.leakage_mw());
    }

    #[test]
    fn sram_baseline_leakage_calibration() {
        // Calibration target: 384 KB SRAM L2 leaks ~290 mW (data) plus a
        // little tag leakage — leakage dominates SRAM L2 power at 40 nm.
        let l = sram_l2().leakage_mw();
        assert!((280.0..330.0).contains(&l), "leakage {l} mW");
    }

    #[test]
    fn bigger_banks_are_slower_and_hungrier() {
        let small = stt_l2(384, 8);
        let big = stt_l2(1536, 8);
        assert!(big.read_latency_ns() > small.read_latency_ns());
        assert!(big.read_energy_nj() > small.read_energy_nj());
    }

    #[test]
    fn stt_write_dominated_by_pulse() {
        let stt = stt_l2(1536, 8);
        assert!(stt.write_latency_ns() - stt.read_latency_ns() > 8.0);
    }

    #[test]
    fn sram_access_energy_calibration() {
        // Calibration target: ~0.15 nJ per access for the 64 KB-bank SRAM
        // L2 (fixed periphery + wire + cell terms).
        let e = sram_l2().read_energy_nj();
        assert!((0.1..0.25).contains(&e), "energy {e} nJ");
    }

    #[test]
    fn area_capacity_conversions_roundtrip() {
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        let cap = stt_capacity_for_sram_area(384 * 1024, &stt);
        assert_eq!(cap, 1536 * 1024);
        assert_eq!(sram_equivalent_bytes(cap, &stt), 384 * 1024);
    }

    #[test]
    fn tag_costs_are_small() {
        let stt = stt_l2(1536, 8);
        assert!(stt.tag_latency_ns() < stt.read_latency_ns());
        assert!(stt.tag_energy_nj() < 0.1 * stt.read_energy_nj());
        assert!(stt.tag_area_mm2() < 0.15 * stt.data_area_mm2());
    }
}
