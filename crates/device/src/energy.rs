//! Event-based energy accounting.
//!
//! The simulator reports Fig. 8b (dynamic power) and Fig. 8c (total power)
//! by integrating per-access energies over the run and adding leakage ×
//! time. [`EnergyAccount`] is the ledger: every L2-side event deposits its
//! nanojoules under a category so the breakdown (how much of C1's dynamic
//! energy is LR writes vs. migrations vs. refresh) stays inspectable.

use std::fmt;

/// Categories of dynamic-energy expenditure in an LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyEvent {
    /// Tag-array lookup (always SRAM).
    TagLookup,
    /// Data-array read of a line.
    DataRead,
    /// Data-array write of a line.
    DataWrite,
    /// Refresh of a low-retention line (read + rewrite via buffer).
    Refresh,
    /// Migration of a line between the LR and HR parts.
    Migration,
    /// Swap-buffer read/write.
    Buffer,
    /// Forced write-back to DRAM (expiry or buffer overflow).
    Writeback,
    /// SECDED check/correct work on a faulted line (fault injection).
    Ecc,
}

impl EnergyEvent {
    /// All categories, in display order.
    pub const ALL: [EnergyEvent; 8] = [
        EnergyEvent::TagLookup,
        EnergyEvent::DataRead,
        EnergyEvent::DataWrite,
        EnergyEvent::Refresh,
        EnergyEvent::Migration,
        EnergyEvent::Buffer,
        EnergyEvent::Writeback,
        EnergyEvent::Ecc,
    ];

    /// Position of this category in [`EnergyEvent::ALL`] — the category
    /// code used by the trace layer's energy-conservation events.
    pub fn index(self) -> usize {
        match self {
            EnergyEvent::TagLookup => 0,
            EnergyEvent::DataRead => 1,
            EnergyEvent::DataWrite => 2,
            EnergyEvent::Refresh => 3,
            EnergyEvent::Migration => 4,
            EnergyEvent::Buffer => 5,
            EnergyEvent::Writeback => 6,
            EnergyEvent::Ecc => 7,
        }
    }
}

impl fmt::Display for EnergyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EnergyEvent::TagLookup => "tag-lookup",
            EnergyEvent::DataRead => "data-read",
            EnergyEvent::DataWrite => "data-write",
            EnergyEvent::Refresh => "refresh",
            EnergyEvent::Migration => "migration",
            EnergyEvent::Buffer => "buffer",
            EnergyEvent::Writeback => "writeback",
            EnergyEvent::Ecc => "ecc",
        };
        f.write_str(name)
    }
}

/// A ledger of dynamic energy (nJ) by category plus a leakage-power rate.
///
/// # Example
///
/// ```
/// use sttgpu_device::energy::{EnergyAccount, EnergyEvent};
///
/// let mut acct = EnergyAccount::with_leakage_mw(100.0);
/// acct.deposit(EnergyEvent::DataWrite, 0.85);
/// acct.deposit(EnergyEvent::DataRead, 0.25);
///
/// assert!((acct.dynamic_nj() - 1.10).abs() < 1e-12);
/// // Over 1 us: dynamic power = 1.10 nJ / 1000 ns = 1.1 mW,
/// // total = dynamic + 100 mW leakage.
/// assert!((acct.dynamic_power_mw(1_000) - 1.1).abs() < 1e-9);
/// assert!((acct.total_power_mw(1_000) - 101.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyAccount {
    by_event: [f64; 8],
    leakage_mw: f64,
}

impl EnergyAccount {
    /// Creates an account with zero leakage.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Creates an account with a constant leakage power in mW.
    pub fn with_leakage_mw(leakage_mw: f64) -> Self {
        EnergyAccount {
            by_event: [0.0; 8],
            leakage_mw,
        }
    }

    /// Sets the leakage power rate, mW.
    pub fn set_leakage_mw(&mut self, leakage_mw: f64) {
        self.leakage_mw = leakage_mw;
    }

    /// The configured leakage power, mW.
    pub fn leakage_mw(&self) -> f64 {
        self.leakage_mw
    }

    /// Deposits `nj` nanojoules under `event`.
    pub fn deposit(&mut self, event: EnergyEvent, nj: f64) {
        debug_assert!(nj >= 0.0, "negative energy deposit");
        self.by_event[event.index()] += nj;
    }

    /// Total dynamic energy so far, nJ.
    pub fn dynamic_nj(&self) -> f64 {
        self.by_event.iter().sum()
    }

    /// Dynamic energy for one category, nJ.
    pub fn dynamic_nj_for(&self, event: EnergyEvent) -> f64 {
        self.by_event[event.index()]
    }

    /// Average dynamic power over `elapsed_ns` of simulated time, mW
    /// (1 nJ / 1 ns == 1 W == 1000 mW).
    ///
    /// Returns 0.0 when no time has elapsed.
    pub fn dynamic_power_mw(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.dynamic_nj() / elapsed_ns as f64 * 1000.0
        }
    }

    /// Leakage energy accumulated over `elapsed_ns`, nJ.
    pub fn leakage_nj(&self, elapsed_ns: u64) -> f64 {
        self.leakage_mw * elapsed_ns as f64 / 1000.0
    }

    /// Average total power (dynamic + leakage) over `elapsed_ns`, mW.
    pub fn total_power_mw(&self, elapsed_ns: u64) -> f64 {
        self.dynamic_power_mw(elapsed_ns) + self.leakage_mw
    }

    /// Merges another account's deposits into this one (leakage rate of
    /// `self` is kept).
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (a, b) in self.by_event.iter_mut().zip(&other.by_event) {
            *a += b;
        }
    }

    /// Clears all deposits (keeps the leakage rate).
    pub fn reset(&mut self) {
        self.by_event = [0.0; 8];
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in EnergyEvent::ALL {
            writeln!(f, "  {e:<10} {:.3} nJ", self.dynamic_nj_for(e))?;
        }
        writeln!(f, "  leakage    {:.3} mW", self.leakage_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_accumulate_by_category() {
        let mut a = EnergyAccount::new();
        a.deposit(EnergyEvent::DataRead, 1.0);
        a.deposit(EnergyEvent::DataRead, 2.0);
        a.deposit(EnergyEvent::Refresh, 0.5);
        assert_eq!(a.dynamic_nj_for(EnergyEvent::DataRead), 3.0);
        assert_eq!(a.dynamic_nj_for(EnergyEvent::Refresh), 0.5);
        assert_eq!(a.dynamic_nj_for(EnergyEvent::DataWrite), 0.0);
        assert_eq!(a.dynamic_nj(), 3.5);
    }

    #[test]
    fn power_conversion() {
        let mut a = EnergyAccount::new();
        a.deposit(EnergyEvent::DataWrite, 100.0);
        // 100 nJ over 1e6 ns = 1e-7 J / 1e-3 s = 0.1 mW.
        assert!((a.dynamic_power_mw(1_000_000) - 0.1).abs() < 1e-12);
        assert_eq!(a.dynamic_power_mw(0), 0.0);
    }

    #[test]
    fn leakage_integration() {
        let a = EnergyAccount::with_leakage_mw(50.0);
        // 50 mW for 1000 ns = 50e-3 J/s * 1e-6 s = 5e-8 J = 50 nJ.
        assert!((a.leakage_nj(1_000) - 50.0).abs() < 1e-9);
        assert!((a.total_power_mw(1_000) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_deposits_keeps_own_leakage() {
        let mut a = EnergyAccount::with_leakage_mw(10.0);
        let mut b = EnergyAccount::with_leakage_mw(99.0);
        a.deposit(EnergyEvent::Migration, 1.0);
        b.deposit(EnergyEvent::Migration, 2.0);
        a.merge(&b);
        assert_eq!(a.dynamic_nj_for(EnergyEvent::Migration), 3.0);
        assert_eq!(a.leakage_mw(), 10.0);
    }

    #[test]
    fn reset_keeps_leakage() {
        let mut a = EnergyAccount::with_leakage_mw(5.0);
        a.deposit(EnergyEvent::Buffer, 1.0);
        a.reset();
        assert_eq!(a.dynamic_nj(), 0.0);
        assert_eq!(a.leakage_mw(), 5.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a = EnergyAccount::new();
        assert!(!a.to_string().is_empty());
    }
}
