//! Randomized property tests for the device models, driven by the in-tree
//! deterministic [`Rng`] (no external fuzzing dependency).

use sttgpu_device::array::{
    sram_equivalent_bytes, stt_capacity_for_sram_area, ArrayDesign, ArrayGeometry,
};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::mtj::{Delta, MtjDesign, RetentionTime, MAX_DELTA, MIN_DELTA};
use sttgpu_stats::Rng;

/// Draws an ordered pair `(a, b)` with `a < b` from `[MIN_DELTA, MAX_DELTA)`.
fn delta_pair(rng: &mut Rng) -> (f64, f64) {
    loop {
        let a = rng.range_f64(MIN_DELTA, MAX_DELTA);
        let b = rng.range_f64(MIN_DELTA, MAX_DELTA);
        if a < b {
            return (a, b);
        }
        if b < a {
            return (b, a);
        }
    }
}

/// Retention is strictly monotone in Δ.
#[test]
fn retention_monotone_in_delta() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..200 {
        let (a, b) = delta_pair(&mut rng);
        let ra = MtjDesign::new(Delta::new(a)).retention().as_nanos();
        let rb = MtjDesign::new(Delta::new(b)).retention().as_nanos();
        assert!(ra < rb, "retention not monotone at Δ {a} vs {b}");
    }
}

/// Write latency and energy are strictly monotone in Δ and positive.
#[test]
fn write_cost_monotone_in_delta() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..200 {
        let (a, b) = delta_pair(&mut rng);
        let ma = MtjDesign::new(Delta::new(a));
        let mb = MtjDesign::new(Delta::new(b));
        assert!(ma.write_latency_ns() > 0.0);
        assert!(ma.write_energy_nj() > 0.0);
        assert!(ma.write_latency_ns() < mb.write_latency_ns());
        assert!(ma.write_energy_nj() < mb.write_energy_nj());
    }
}

/// `for_retention` inverts `retention()` within floating-point slack.
#[test]
fn retention_inversion() {
    let mut rng = Rng::new(0xCAFE);
    for _ in 0..200 {
        // Log-uniform over the huge target range [200 ns, 1e18 ns).
        let exp = rng.range_f64(200.0f64.log10(), 18.0);
        let ns = 10f64.powf(exp);
        let m = MtjDesign::for_retention(RetentionTime::from_nanos(ns));
        let back = m.retention().as_nanos();
        assert!((back / ns - 1.0).abs() < 1e-9, "round trip failed at {ns}");
    }
}

/// Array area, latency, energy and leakage are positive and grow with
/// capacity (same tech, same banking).
#[test]
fn array_costs_grow_with_capacity() {
    let mut rng = Rng::new(0xDADA);
    for _ in 0..50 {
        let kb_small = rng.range_u64(32, 256) * 2; // whole 8-way sets of 256 B lines
        let factor = rng.range_u64(2, 8);
        let tech = MemTechnology::Sram;
        let small = ArrayDesign::new(ArrayGeometry::new(kb_small * 1024, 256, 8, 4), tech);
        let big = ArrayDesign::new(
            ArrayGeometry::new(kb_small * factor * 1024, 256, 8, 4),
            tech,
        );
        assert!(small.area_mm2() > 0.0);
        assert!(big.area_mm2() > small.area_mm2());
        assert!(big.read_latency_ns() > small.read_latency_ns());
        assert!(big.read_energy_nj() > small.read_energy_nj());
        assert!(big.leakage_mw() > small.leakage_mw());
    }
}

/// More banks never make a bank slower (smaller banks are faster).
#[test]
fn banking_helps_latency() {
    let tech = MemTechnology::Sram;
    for banks_a in 1u32..8 {
        for banks_b in (banks_a + 1)..8 {
            let a = ArrayDesign::new(ArrayGeometry::new(1024 * 1024, 256, 8, banks_a), tech);
            let b = ArrayDesign::new(ArrayGeometry::new(1024 * 1024, 256, 8, banks_b), tech);
            assert!(b.read_latency_ns() <= a.read_latency_ns());
        }
    }
}

/// Area-capacity conversion round-trips within rounding.
#[test]
fn area_conversion_roundtrip() {
    let mut rng = Rng::new(0xFEED);
    for _ in 0..200 {
        let kb = rng.range_u64(16, 4096);
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        let bytes = kb * 1024;
        let cap = stt_capacity_for_sram_area(bytes, &stt);
        let back = sram_equivalent_bytes(cap, &stt);
        assert!(
            (back as i64 - bytes as i64).abs() <= 1,
            "round trip at {kb} KB"
        );
    }
}

/// STT-RAM of 4x the capacity never exceeds the SRAM area by more than
/// the tag overhead (25 %).
#[test]
fn four_x_density_holds() {
    let mut rng = Rng::new(0x4444);
    for _ in 0..100 {
        let kb = rng.range_u64(32, 512) * 2;
        let sram = ArrayDesign::new(
            ArrayGeometry::new(kb * 1024, 256, 8, 4),
            MemTechnology::Sram,
        );
        let stt = ArrayDesign::new(
            ArrayGeometry::new(4 * kb * 1024, 256, 8, 4),
            MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
        );
        assert!(stt.area_mm2() <= 1.25 * sram.area_mm2(), "at {kb} KB");
    }
}
