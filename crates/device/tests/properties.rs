//! Property-based tests for the device models.

use proptest::prelude::*;
use sttgpu_device::array::{
    sram_equivalent_bytes, stt_capacity_for_sram_area, ArrayDesign, ArrayGeometry,
};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::mtj::{Delta, MtjDesign, RetentionTime, MAX_DELTA, MIN_DELTA};

proptest! {
    /// Retention is strictly monotone in Δ.
    #[test]
    fn retention_monotone_in_delta(a in MIN_DELTA..MAX_DELTA, b in MIN_DELTA..MAX_DELTA) {
        prop_assume!(a < b);
        let ra = MtjDesign::new(Delta::new(a)).retention().as_nanos();
        let rb = MtjDesign::new(Delta::new(b)).retention().as_nanos();
        prop_assert!(ra < rb);
    }

    /// Write latency and energy are strictly monotone in Δ and positive.
    #[test]
    fn write_cost_monotone_in_delta(a in MIN_DELTA..MAX_DELTA, b in MIN_DELTA..MAX_DELTA) {
        prop_assume!(a < b);
        let ma = MtjDesign::new(Delta::new(a));
        let mb = MtjDesign::new(Delta::new(b));
        prop_assert!(ma.write_latency_ns() > 0.0);
        prop_assert!(ma.write_energy_nj() > 0.0);
        prop_assert!(ma.write_latency_ns() < mb.write_latency_ns());
        prop_assert!(ma.write_energy_nj() < mb.write_energy_nj());
    }

    /// `for_retention` inverts `retention()` within floating-point slack.
    #[test]
    fn retention_inversion(ns in 200.0f64..1e18) {
        let m = MtjDesign::for_retention(RetentionTime::from_nanos(ns));
        let back = m.retention().as_nanos();
        prop_assert!((back / ns - 1.0).abs() < 1e-9);
    }

    /// Array area, latency, energy and leakage are positive and grow with
    /// capacity (same tech, same banking).
    #[test]
    fn array_costs_grow_with_capacity(kb_half in 32u64..256, factor in 2u64..8) {
        let kb_small = kb_half * 2; // whole 8-way sets of 256 B lines need even KB
        let tech = MemTechnology::Sram;
        let small = ArrayDesign::new(ArrayGeometry::new(kb_small * 1024, 256, 8, 4), tech);
        let big = ArrayDesign::new(ArrayGeometry::new(kb_small * factor * 1024, 256, 8, 4), tech);
        prop_assert!(small.area_mm2() > 0.0);
        prop_assert!(big.area_mm2() > small.area_mm2());
        prop_assert!(big.read_latency_ns() > small.read_latency_ns());
        prop_assert!(big.read_energy_nj() > small.read_energy_nj());
        prop_assert!(big.leakage_mw() > small.leakage_mw());
    }

    /// More banks never make a bank slower (smaller banks are faster).
    #[test]
    fn banking_helps_latency(banks_a in 1u32..8, banks_b in 1u32..8) {
        prop_assume!(banks_a < banks_b);
        let tech = MemTechnology::Sram;
        let a = ArrayDesign::new(ArrayGeometry::new(1024 * 1024, 256, 8, banks_a), tech);
        let b = ArrayDesign::new(ArrayGeometry::new(1024 * 1024, 256, 8, banks_b), tech);
        prop_assert!(b.read_latency_ns() <= a.read_latency_ns());
    }

    /// Area-capacity conversion round-trips within rounding.
    #[test]
    fn area_conversion_roundtrip(kb in 16u64..4096) {
        let stt = MemTechnology::stt_for_retention(RetentionTime::from_years(10.0));
        let bytes = kb * 1024;
        let cap = stt_capacity_for_sram_area(bytes, &stt);
        let back = sram_equivalent_bytes(cap, &stt);
        prop_assert!((back as i64 - bytes as i64).abs() <= 1);
    }

    /// STT-RAM of 4x the capacity never exceeds the SRAM area by more than
    /// the tag overhead (25 %).
    #[test]
    fn four_x_density_holds(kb_half in 32u64..512) {
        let kb = kb_half * 2;
        let sram = ArrayDesign::new(
            ArrayGeometry::new(kb * 1024, 256, 8, 4),
            MemTechnology::Sram,
        );
        let stt = ArrayDesign::new(
            ArrayGeometry::new(4 * kb * 1024, 256, 8, 4),
            MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
        );
        prop_assert!(stt.area_mm2() <= 1.25 * sram.area_mm2());
    }
}
