//! The paper's four behavioural regions (Fig. 8a grouping).

use std::fmt;

/// Which resources a workload responds to (the paper groups Fig. 8a's
/// x-axis into these regions, following the cache-sensitivity taxonomy of
/// Lee & Kim's TAP study it cites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Region 1: insensitive to both larger L2 and larger register files.
    Insensitive,
    /// Region 2: at least one kernel starved for registers; larger
    /// register files (C2/C3) raise occupancy.
    RegisterLimited,
    /// Region 3: register limited *and* cache friendly.
    RegisterAndCache,
    /// Region 4: cache friendly — larger L2 (STT baseline, C1, C3) cuts
    /// DRAM traffic.
    CacheFriendly,
}

impl Region {
    /// All regions in the paper's presentation order.
    pub const ALL: [Region; 4] = [
        Region::Insensitive,
        Region::RegisterLimited,
        Region::RegisterAndCache,
        Region::CacheFriendly,
    ];

    /// Ordinal used for figure grouping (1-based, as the paper labels).
    pub fn index(self) -> usize {
        match self {
            Region::Insensitive => 1,
            Region::RegisterLimited => 2,
            Region::RegisterAndCache => 3,
            Region::CacheFriendly => 4,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::Insensitive => "region 1 (insensitive)",
            Region::RegisterLimited => "region 2 (register-limited)",
            Region::RegisterAndCache => "region 3 (register+cache)",
            Region::CacheFriendly => "region 4 (cache-friendly)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_one_based_and_distinct() {
        let idx: Vec<usize> = Region::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4]);
    }

    #[test]
    fn display_is_informative() {
        assert!(Region::CacheFriendly.to_string().contains("cache"));
        assert!(Region::RegisterLimited.to_string().contains("register"));
    }
}
