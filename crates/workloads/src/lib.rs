//! Synthetic GPGPU workload suite.
//!
//! The paper evaluates on three benchmark groups (the GPGPU-Sim suite,
//! Rodinia and Parboil, in CUDA). Running CUDA is out of scope for a pure
//! Rust reproduction, so this crate provides **16 named synthetic
//! workloads** — one per benchmark the paper's figures mention — each a
//! [`Workload`] whose statistics (instruction mix, write fraction 0–63 %,
//! footprint, write-working-set size/skew, locality, coalescing, register
//! pressure, grid structure) are tuned to land the benchmark in the
//! behavioural region the paper reports:
//!
//! * **region 1** — benefits from neither larger caches nor larger
//!   register files,
//! * **region 2** — register-file limited (C2/C3's beneficiaries),
//! * **region 3** — register limited *and* cache friendly,
//! * **region 4** — cache friendly (C1's beneficiaries).
//!
//! The same tuning reproduces the paper's §4 characterisation: write
//! concentration (inter/intra-set COV, Fig. 3), small temporal WWS with
//! sub-10 µs rewrite intervals (Fig. 6), and writes bursting at grid ends.
//!
//! # Example
//!
//! ```
//! use sttgpu_workloads::{suite, Region};
//!
//! let all = suite::all();
//! assert_eq!(all.len(), 16);
//!
//! let bfs = suite::by_name("bfs").expect("bfs is in the suite");
//! assert_eq!(suite::region_of("bfs"), Some(Region::CacheFriendly));
//! assert!(!bfs.kernels.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod regions;
pub mod suite;

pub use regions::Region;
pub use sttgpu_sim::{KernelParams, Workload, WritePhase};
