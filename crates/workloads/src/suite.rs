//! The 16-benchmark synthetic suite.
//!
//! Each function below builds one named workload. The parameters are not
//! arbitrary: every knob is chosen to reproduce the behaviour the paper
//! reports for the benchmark of the same name — its Fig. 8a region, its
//! Fig. 3 write-variation character, its write fraction (the suite spans
//! ~0 % for `sad` to 63 % for `nw`), and its grid structure (multi-kernel
//! workloads share a footprint so each grid consumes its predecessor's
//! output, with writes bursting at grid ends — the §4 observation that
//! justifies write threshold 1).

use crate::Region;
use sttgpu_sim::{KernelParams, Workload, WritePhase};

/// Floors below which a scaled kernel stops being a meaningful run.
const MIN_BLOCKS: u32 = 2;
const MIN_INSTRUCTIONS_PER_WARP: u32 = 50;

/// Scales a workload's grid and instruction counts by `factor` (> 0),
/// preserving its statistical character. Used to shrink runs for quick
/// benchmarking; `factor = 1.0` is the reference scale.
///
/// Panics when `factor` is so small that every kernel collapses to the
/// floors — at that point distinct factors would round to identical
/// workloads, which silently breaks anything sweeping over scales.
pub fn scaled(workload: &Workload, factor: f64) -> Workload {
    assert!(factor > 0.0, "scale factor must be positive");
    let mut collapsed = true;
    let kernels: Vec<_> = workload
        .kernels
        .iter()
        .map(|k| {
            let mut k = (**k).clone();
            let blocks = (k.blocks as f64 * factor).round() as u32;
            let ipw = (k.instructions_per_warp as f64 * factor.sqrt()).round() as u32;
            if blocks > MIN_BLOCKS || ipw > MIN_INSTRUCTIONS_PER_WARP {
                collapsed = false;
            }
            k.blocks = blocks.max(MIN_BLOCKS);
            k.instructions_per_warp = ipw.max(MIN_INSTRUCTIONS_PER_WARP);
            k
        })
        .collect();
    assert!(
        !collapsed,
        "scale factor {factor} is too small for workload '{}': every kernel \
         collapses to the floor ({MIN_BLOCKS} blocks, {MIN_INSTRUCTIONS_PER_WARP} \
         instructions/warp), so distinct factors would produce identical runs",
        workload.name
    );
    Workload::new(&workload.name, kernels, workload.seed)
}

fn bfs() -> Workload {
    // Irregular graph traversal: poor locality, divergent accesses, a hot
    // frontier array that is rewritten constantly (high write COV), and a
    // working set that overflows the 384 KB SRAM L2 but fits a 4x one.
    let k = KernelParams::new("bfs_expand", 96, 256)
        .with_instructions(1_800)
        .with_mem_fraction(0.140)
        .with_write_fraction(0.25)
        .with_footprint_kb(1_024)
        .with_wws(0.03, 0.85)
        .with_read_locality(0.20)
        .with_coalescing(4.0)
        .with_regs_per_thread(18);
    Workload::new("bfs", vec![k], 1_001)
}

fn kmeans() -> Workload {
    // Two grids per iteration (assign, update) over shared data; the
    // centroid array is a tiny, furiously rewritten WWS. Register hungry.
    let assign = KernelParams::new("kmeans_assign", 72, 256)
        .with_instructions(1_500)
        .with_mem_fraction(0.122)
        .with_write_fraction(0.30)
        .with_footprint_kb(900)
        .with_wws(0.01, 0.90)
        .with_read_locality(0.70)
        .with_coalescing(1.5)
        .with_regs_per_thread(43)
        .with_write_phase(WritePhase::EndOfKernel);
    let update = KernelParams::new("kmeans_update", 48, 256)
        .with_instructions(1_000)
        .with_mem_fraction(0.140)
        .with_write_fraction(0.40)
        .with_footprint_kb(900)
        .with_wws(0.01, 0.92)
        .with_read_locality(0.60)
        .with_coalescing(1.5)
        .with_regs_per_thread(43);
    Workload::new("kmeans", vec![assign, update], 1_002)
}

fn cfd() -> Workload {
    // Unstructured-mesh solver: large footprint, writes spread evenly
    // over the flux arrays (low COV), cache friendly.
    let k = KernelParams::new("cfd_flux", 112, 256)
        .with_instructions(2_000)
        .with_mem_fraction(0.133)
        .with_write_fraction(0.35)
        .with_footprint_kb(1_400)
        .with_wws(0.50, 0.10)
        .with_read_locality(0.55)
        .with_coalescing(2.0)
        .with_regs_per_thread(24);
    Workload::new("cfd", vec![k], 1_003)
}

fn stencil() -> Workload {
    // 7-point stencil: perfectly coalesced streaming, even writes over
    // the output grid, reuse across the two time-step grids.
    let step = KernelParams::new("stencil_step", 100, 256)
        .with_instructions(1_600)
        .with_mem_fraction(0.122)
        .with_write_fraction(0.30)
        .with_footprint_kb(1_200)
        .with_wws(0.60, 0.05)
        .with_read_locality(0.90)
        .with_coalescing(1.0)
        .with_regs_per_thread(20);
    Workload::new("stencil", vec![step.clone(), step], 1_004)
}

fn pathfinder() -> Workload {
    // Dynamic programming over rows: the active row is a small WWS that
    // each grid rewrites before the next consumes it.
    let row = KernelParams::new("pathfinder_row", 80, 256)
        .with_instructions(1_200)
        .with_mem_fraction(0.122)
        .with_write_fraction(0.35)
        .with_footprint_kb(640)
        .with_wws(0.08, 0.70)
        .with_read_locality(0.80)
        .with_coalescing(1.2)
        .with_regs_per_thread(16)
        .with_write_phase(WritePhase::EndOfKernel);
    Workload::new("pathfinder", vec![row.clone(), row], 1_005)
}

fn streamcluster() -> Workload {
    // Read-dominated clustering: almost no writes, big shared read set.
    let k = KernelParams::new("streamcluster_dist", 96, 256)
        .with_instructions(1_800)
        .with_mem_fraction(0.140)
        .with_write_fraction(0.05)
        .with_footprint_kb(1_024)
        .with_wws(0.02, 0.80)
        .with_read_locality(0.45)
        .with_coalescing(1.5)
        .with_regs_per_thread(22);
    Workload::new("streamcluster", vec![k], 1_006)
}

fn mri_gridding() -> Workload {
    // Scatter-accumulate onto a grid: divergent, very concentrated
    // writes (the top of the Fig. 3 COV chart).
    let k = KernelParams::new("mri_scatter", 64, 256)
        .with_instructions(1_600)
        .with_mem_fraction(0.140)
        .with_write_fraction(0.45)
        .with_footprint_kb(512)
        .with_wws(0.02, 0.92)
        .with_read_locality(0.30)
        .with_coalescing(6.0)
        .with_regs_per_thread(30);
    Workload::new("mri_gridding", vec![k], 1_007)
}

fn srad_v2() -> Workload {
    // Image diffusion with a huge register footprint: 46 regs/thread
    // caps the SM at 2 blocks — the canonical region-2 benchmark.
    let k = KernelParams::new("srad_kernel", 72, 256)
        .with_instructions(1_500)
        .with_mem_fraction(0.105)
        .with_write_fraction(0.30)
        .with_footprint_kb(300)
        .with_wws(0.20, 0.40)
        .with_read_locality(0.70)
        .with_coalescing(1.2)
        .with_regs_per_thread(46)
        .with_local_fraction(0.20); // 46 regs/thread: the compiler spills
    Workload::new("srad_v2", vec![k.clone(), k], 1_008)
}

fn tpacf() -> Workload {
    // Correlation histogramming: register hungry, tiny red-hot histogram
    // bins (extreme write skew).
    let k = KernelParams::new("tpacf_hist", 60, 256)
        .with_instructions(1_800)
        .with_mem_fraction(0.105)
        .with_write_fraction(0.20)
        .with_footprint_kb(300)
        .with_wws(0.01, 0.95)
        .with_read_locality(0.40)
        .with_coalescing(2.0)
        .with_regs_per_thread(48)
        .with_local_fraction(0.10);
    Workload::new("tpacf", vec![k], 1_009)
}

fn backprop() -> Workload {
    // Neural-network training: forward + weight-update grids over shared
    // weights; updates concentrate on the (small) weight matrix.
    let forward = KernelParams::new("backprop_fwd", 64, 256)
        .with_instructions(1_400)
        .with_mem_fraction(0.122)
        .with_write_fraction(0.25)
        .with_footprint_kb(700)
        .with_wws(0.05, 0.80)
        .with_read_locality(0.65)
        .with_coalescing(1.5)
        .with_regs_per_thread(43);
    let update = KernelParams::new("backprop_upd", 48, 256)
        .with_instructions(1_000)
        .with_mem_fraction(0.140)
        .with_write_fraction(0.50)
        .with_footprint_kb(700)
        .with_wws(0.05, 0.85)
        .with_read_locality(0.60)
        .with_coalescing(1.5)
        .with_regs_per_thread(43)
        .with_write_phase(WritePhase::EndOfKernel);
    Workload::new("backprop", vec![forward, update], 1_010)
}

fn hotspot() -> Workload {
    // Thermal simulation: stencil-like but register bound (54/thread).
    let k = KernelParams::new("hotspot_step", 80, 256)
        .with_instructions(1_500)
        .with_mem_fraction(0.112)
        .with_write_fraction(0.30)
        .with_footprint_kb(450)
        .with_wws(0.40, 0.30)
        .with_read_locality(0.85)
        .with_coalescing(1.1)
        .with_regs_per_thread(44)
        .with_local_fraction(0.15);
    Workload::new("hotspot", vec![k.clone(), k], 1_011)
}

fn lud() -> Workload {
    // Small-matrix LU decomposition: working set fits any L2, modest
    // registers — region 1.
    let k = KernelParams::new("lud_diag", 64, 256)
        .with_instructions(1_400)
        .with_mem_fraction(0.105)
        .with_write_fraction(0.25)
        .with_footprint_kb(280)
        .with_wws(0.15, 0.50)
        .with_read_locality(0.70)
        .with_coalescing(1.3)
        .with_regs_per_thread(20);
    Workload::new("lud", vec![k], 1_012)
}

fn nw() -> Workload {
    // Needleman-Wunsch: writes the score matrix as it goes — the
    // suite's write-heaviest member (63 % of memory ops are writes).
    let k = KernelParams::new("nw_diag", 64, 256)
        .with_instructions(1_400)
        .with_mem_fraction(0.133)
        .with_write_fraction(0.63)
        .with_footprint_kb(256)
        .with_wws(0.25, 0.45)
        .with_read_locality(0.60)
        .with_coalescing(1.4)
        .with_regs_per_thread(20);
    Workload::new("nw", vec![k], 1_013)
}

fn gaussian() -> Workload {
    // Gaussian elimination: small footprint, even write traffic,
    // insensitive to every extra resource — region 1.
    let k = KernelParams::new("gaussian_fan", 56, 256)
        .with_instructions(1_200)
        .with_mem_fraction(0.115)
        .with_write_fraction(0.45)
        .with_footprint_kb(200)
        .with_wws(0.40, 0.20)
        .with_read_locality(0.70)
        .with_coalescing(1.2)
        .with_regs_per_thread(12);
    Workload::new("gaussian", vec![k], 1_014)
}

fn lbm() -> Workload {
    // Lattice-Boltzmann: enormous streaming footprint and heavy, evenly
    // spread writes — stresses L2 write bandwidth.
    let k = KernelParams::new("lbm_collide", 112, 256)
        .with_instructions(1_800)
        .with_mem_fraction(0.147)
        .with_write_fraction(0.50)
        .with_footprint_kb(2_048)
        .with_wws(0.70, 0.10)
        .with_read_locality(0.90)
        .with_coalescing(1.2)
        .with_regs_per_thread(28);
    Workload::new("lbm", vec![k], 1_015)
}

fn sad() -> Workload {
    // Sum-of-absolute-differences (video): essentially read-only.
    let k = KernelParams::new("sad_search", 72, 256)
        .with_instructions(1_500)
        .with_mem_fraction(0.133)
        .with_write_fraction(0.02)
        .with_footprint_kb(320)
        .with_wws(0.05, 0.50)
        .with_read_locality(0.80)
        .with_coalescing(1.3)
        .with_regs_per_thread(14);
    Workload::new("sad", vec![k], 1_016)
}

/// Every workload of the suite, in the paper's rough presentation order.
pub fn all() -> Vec<Workload> {
    vec![
        lud(),
        gaussian(),
        nw(),
        sad(),
        srad_v2(),
        tpacf(),
        hotspot(),
        kmeans(),
        backprop(),
        mri_gridding(),
        bfs(),
        cfd(),
        stencil(),
        pathfinder(),
        streamcluster(),
        lbm(),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The behavioural region of a suite workload, `None` for unknown names.
pub fn region_of(name: &str) -> Option<Region> {
    let r = match name {
        "lud" | "gaussian" | "nw" | "sad" => Region::Insensitive,
        "srad_v2" | "tpacf" | "hotspot" => Region::RegisterLimited,
        "kmeans" | "backprop" => Region::RegisterAndCache,
        "mri_gridding" | "bfs" | "cfd" | "stencil" | "pathfinder" | "streamcluster" | "lbm" => {
            Region::CacheFriendly
        }
        _ => return None,
    };
    Some(r)
}

/// Names of all suite workloads, in suite order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_distinct_workloads() {
        let names = names();
        assert_eq!(names.len(), 16);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 16, "names must be unique");
    }

    #[test]
    fn every_workload_has_a_region() {
        for name in names() {
            assert!(region_of(&name).is_some(), "{name} lacks a region");
        }
        assert_eq!(region_of("nonsense"), None);
    }

    #[test]
    fn all_regions_are_populated() {
        for region in Region::ALL {
            let n = names()
                .into_iter()
                .filter(|w| region_of(w) == Some(region))
                .count();
            assert!(n >= 2, "{region} has only {n} workloads");
        }
    }

    #[test]
    fn by_name_round_trips() {
        for name in names() {
            let w = by_name(&name).expect("lookup");
            assert_eq!(w.name, name);
        }
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn write_fractions_span_the_paper_range() {
        let all = all();
        let min = all
            .iter()
            .flat_map(|w| w.kernels.iter())
            .map(|k| k.write_fraction)
            .fold(f64::INFINITY, f64::min);
        let max = all
            .iter()
            .flat_map(|w| w.kernels.iter())
            .map(|k| k.write_fraction)
            .fold(0.0, f64::max);
        assert!(min <= 0.05, "near-zero-write benchmark required, min {min}");
        assert!(
            (max - 0.63).abs() < 1e-9,
            "63% write benchmark required, max {max}"
        );
    }

    #[test]
    fn register_limited_workloads_are_actually_limited() {
        use sttgpu_sim::{GpuConfig, Occupancy};
        let gpu = GpuConfig::gtx480();
        for w in all() {
            if region_of(&w.name) != Some(Region::RegisterLimited) {
                continue;
            }
            for k in &w.kernels {
                let occ = Occupancy::compute(&gpu, k);
                assert_eq!(
                    occ.limit,
                    sttgpu_sim::occupancy::OccupancyLimit::Registers,
                    "{}::{} must be register limited",
                    w.name,
                    k.name
                );
            }
        }
    }

    #[test]
    fn cache_friendly_workloads_overflow_the_sram_l2() {
        for w in all() {
            if region_of(&w.name) != Some(Region::CacheFriendly) {
                continue;
            }
            let max_fp = w
                .kernels
                .iter()
                .map(|k| k.footprint_bytes)
                .max()
                .expect("kernels");
            assert!(
                max_fp > 384 * 1024,
                "{} footprint {max_fp} must exceed the 384 KB SRAM L2",
                w.name
            );
        }
    }

    #[test]
    fn insensitive_workloads_fit_the_sram_l2() {
        for w in all() {
            if region_of(&w.name) != Some(Region::Insensitive) {
                continue;
            }
            for k in &w.kernels {
                assert!(
                    k.footprint_bytes <= 384 * 1024,
                    "{} must fit the SRAM L2",
                    w.name
                );
            }
        }
    }

    #[test]
    fn scaling_shrinks_work_but_keeps_shape() {
        let w = by_name("bfs").expect("bfs");
        let s = scaled(&w, 0.25);
        assert_eq!(s.name, w.name);
        assert!(s.total_thread_instructions() < w.total_thread_instructions() / 2);
        assert_eq!(s.kernels[0].write_fraction, w.kernels[0].write_fraction);
        assert_eq!(s.kernels[0].footprint_bytes, w.kernels[0].footprint_bytes);
    }

    #[test]
    fn scaling_is_monotone_in_factor() {
        // Sweeping the supported scale range must never produce less
        // work at a larger factor, and distinct factors in the range
        // must stay distinguishable for at least one workload.
        let factors = [0.05, 0.1, 0.2, 0.25, 0.5, 0.75, 1.0];
        for w in all() {
            let mut last = 0;
            for &f in &factors {
                let instr = scaled(&w, f).total_thread_instructions();
                assert!(
                    instr >= last,
                    "{} at factor {f}: {instr} < previous {last}",
                    w.name
                );
                last = instr;
            }
        }
        for pair in factors.windows(2) {
            assert!(
                all()
                    .iter()
                    .any(|w| scaled(w, pair[0]).total_thread_instructions()
                        < scaled(w, pair[1]).total_thread_instructions()),
                "factors {} and {} are indistinguishable across the whole suite",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "collapses to the floor")]
    fn scaling_rejects_factors_that_collapse_to_the_floors() {
        let w = by_name("lud").expect("lud");
        let _ = scaled(&w, 0.001);
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = all().iter().map(|w| w.seed).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn workload_sizes_are_tractable() {
        for w in all() {
            let instr = w.total_thread_instructions();
            assert!(
                (10_000_000..200_000_000).contains(&instr),
                "{}: {instr} thread-instructions is out of the tractable band",
                w.name
            );
        }
    }
}
