//! Cache search selector.
//!
//! With two parallel arrays at L2 an access can probe them in parallel
//! (faster, two tag energies) or sequentially (cheaper, slower when the
//! first guess misses). The paper's **cache search selector** picks the
//! sequential probe order from the access type: "as frequently written
//! data are kept in LR part[,] if there is a write request first LR part
//! is searched and then HR part. For read accesses this action happens in
//! reverse."

use sttgpu_cache::AccessKind;

/// One of the two L2 parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Part {
    /// The small, low-retention, write-friendly array.
    Lr,
    /// The large, high-retention array.
    Hr,
}

impl Part {
    /// The other part.
    pub fn other(self) -> Part {
        match self {
            Part::Lr => Part::Hr,
            Part::Hr => Part::Lr,
        }
    }
}

impl From<Part> for sttgpu_trace::PartId {
    fn from(p: Part) -> Self {
        match p {
            Part::Lr => sttgpu_trace::PartId::Lr,
            Part::Hr => sttgpu_trace::PartId::Hr,
        }
    }
}

/// Chooses the probe order for an access type.
///
/// # Example
///
/// ```
/// use sttgpu_cache::AccessKind;
/// use sttgpu_core::{Part, SearchSelector};
///
/// assert_eq!(SearchSelector::order(AccessKind::Write), [Part::Lr, Part::Hr]);
/// assert_eq!(SearchSelector::order(AccessKind::Read), [Part::Hr, Part::Lr]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchSelector;

impl SearchSelector {
    /// Probe order for `kind`: writes search LR first, reads HR first.
    pub fn order(kind: AccessKind) -> [Part; 2] {
        match kind {
            AccessKind::Write => [Part::Lr, Part::Hr],
            AccessKind::Read => [Part::Hr, Part::Lr],
        }
    }

    /// The part searched first for `kind`.
    pub fn first(kind: AccessKind) -> Part {
        Self::order(kind)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_probe_lr_first() {
        assert_eq!(SearchSelector::first(AccessKind::Write), Part::Lr);
        assert_eq!(
            SearchSelector::order(AccessKind::Write),
            [Part::Lr, Part::Hr]
        );
    }

    #[test]
    fn reads_probe_hr_first() {
        assert_eq!(SearchSelector::first(AccessKind::Read), Part::Hr);
        assert_eq!(
            SearchSelector::order(AccessKind::Read),
            [Part::Hr, Part::Lr]
        );
    }

    #[test]
    fn order_covers_both_parts() {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let [a, b] = SearchSelector::order(kind);
            assert_eq!(a.other(), b);
            assert_ne!(a, b);
        }
    }
}
