//! Per-line retention counters and refresh deadlines.
//!
//! The paper attaches an n-bit **retention counter (RC)** to every line —
//! 4 bits in the LR part, 2 bits in the HR part — ticking at a rate such
//! that the counter spans exactly one retention period. A line whose RC
//! reaches the **last tick** is refreshed (LR) or expired (HR): "postpone
//! refresh of data blocks to the last cycles of retention period".
//!
//! Rather than simulating counter flip-flops cycle by cycle, we store the
//! time of the last array write per line and derive the RC value on
//! demand; the semantics are identical and the cost is O(1) per query.

use sttgpu_device::mtj::RetentionTime;

/// Derives retention-counter values and refresh/expiry deadlines for one
/// cache part.
///
/// # Example
///
/// ```
/// use sttgpu_core::RetentionTracker;
/// use sttgpu_device::mtj::RetentionTime;
///
/// // The LR part: 26.5 us retention tracked by a 4-bit counter.
/// let rc = RetentionTracker::new(RetentionTime::from_micros(26.5), 4);
/// assert_eq!(rc.max_count(), 15);
///
/// let written_at = 0;
/// assert_eq!(rc.count(written_at, 0), 0);
/// assert!(!rc.needs_refresh(written_at, 10_000));       // mid-life
/// assert!(rc.needs_refresh(written_at, 25_000));        // last tick
/// assert!(rc.is_expired(written_at, 27_000));           // beyond retention
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionTracker {
    retention_ns: u64,
    bits: u32,
    tick_ns: u64,
}

impl RetentionTracker {
    /// Creates a tracker for a retention period divided into `2^bits`
    /// counter ticks.
    ///
    /// The tick is the retention period over `2^bits` rounded to the
    /// *nearest* nanosecond, not truncated: for a non-power-of-two period
    /// (the paper's 26.5 µs LR point) a floor tick leaves up to
    /// `2^bits - 1` ns of every period uncovered, pulling each refresh
    /// deadline early by that much. Rounding up is clamped back to the
    /// floor whenever it would push the last-tick deadline to or past the
    /// expiry deadline, so `refresh_deadline_ns < expiry_deadline_ns`
    /// holds for every constructible tracker.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16, or if the tick period
    /// would round to zero nanoseconds.
    pub fn new(retention: RetentionTime, bits: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "counter width {bits} out of range"
        );
        let retention_ns = retention.as_nanos_u64();
        let floor = retention_ns >> bits;
        assert!(floor > 0, "retention too short for a {bits}-bit counter");
        // `rem < 2^bits <= 2^16`, so the doubling cannot overflow.
        let rem = retention_ns & ((1u64 << bits) - 1);
        let mut tick_ns = floor + u64::from(rem * 2 >= (1u64 << bits));
        let max_count = (1u64 << bits) - 1;
        if tick_ns.saturating_mul(max_count) >= retention_ns {
            tick_ns = floor;
        }
        RetentionTracker {
            retention_ns,
            bits,
            tick_ns,
        }
    }

    /// The retention period, ns.
    pub fn retention_ns(&self) -> u64 {
        self.retention_ns
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Duration of one counter tick, ns.
    pub fn tick_ns(&self) -> u64 {
        self.tick_ns
    }

    /// Saturation value of the counter (`2^bits - 1`).
    pub fn max_count(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// The counter value a line written at `written_at_ns` shows at
    /// `now_ns` (saturating).
    pub fn count(&self, written_at_ns: u64, now_ns: u64) -> u64 {
        let age = now_ns.saturating_sub(written_at_ns);
        (age / self.tick_ns).min(self.max_count())
    }

    /// Whether the line has entered its last retention tick — the moment
    /// the refresh engine must act.
    pub fn needs_refresh(&self, written_at_ns: u64, now_ns: u64) -> bool {
        self.needs_refresh_with_slack(written_at_ns, now_ns, 0)
    }

    /// Like [`needs_refresh`](Self::needs_refresh) but triggering `slack`
    /// ticks early (0 = the paper's postpone-to-the-last-tick policy).
    pub fn needs_refresh_with_slack(&self, written_at_ns: u64, now_ns: u64, slack: u64) -> bool {
        self.count(written_at_ns, now_ns) >= self.max_count().saturating_sub(slack)
    }

    /// Whether the line's data has outlived the retention period entirely
    /// (data loss if still unrefreshed).
    pub fn is_expired(&self, written_at_ns: u64, now_ns: u64) -> bool {
        now_ns.saturating_sub(written_at_ns) >= self.retention_ns
    }

    /// The absolute time at which the line enters its last tick; the
    /// refresh engine must run before [`expiry_deadline_ns`] but may wait
    /// until here.
    ///
    /// [`expiry_deadline_ns`]: RetentionTracker::expiry_deadline_ns
    pub fn refresh_deadline_ns(&self, written_at_ns: u64) -> u64 {
        written_at_ns.saturating_add(self.tick_ns.saturating_mul(self.max_count()))
    }

    /// The absolute time at which the data is lost.
    pub fn expiry_deadline_ns(&self, written_at_ns: u64) -> u64 {
        written_at_ns.saturating_add(self.retention_ns)
    }

    /// Like [`refresh_deadline_ns`](Self::refresh_deadline_ns) but `slack`
    /// ticks earlier: the first instant at which
    /// [`needs_refresh_with_slack`](Self::needs_refresh_with_slack) holds.
    pub fn refresh_deadline_with_slack_ns(&self, written_at_ns: u64, slack: u64) -> u64 {
        written_at_ns.saturating_add(
            self.tick_ns
                .saturating_mul(self.max_count().saturating_sub(slack)),
        )
    }

    /// Longest gap between maintenance sweeps that still guarantees a
    /// line reaching its refresh deadline is visited before it expires:
    /// the window between the last-tick deadline and the expiry deadline,
    /// capped at one tick so counters are observed at tick granularity.
    ///
    /// With a floor tick the window is at least one tick wide and the cap
    /// is what binds; with a rounded-up tick the window shrinks below a
    /// tick (e.g. 1000 ns / 4-bit: deadline 945, expiry 1000, window 55)
    /// and a tick-cadence sweep could first visit a due line after it
    /// already expired.
    pub fn maintenance_interval_ns(&self) -> u64 {
        let window = self
            .retention_ns
            .saturating_sub(self.tick_ns.saturating_mul(self.max_count()));
        window.min(self.tick_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lr() -> RetentionTracker {
        // 16 us retention, 4-bit counter -> 1 us ticks.
        RetentionTracker::new(RetentionTime::from_micros(16.0), 4)
    }

    #[test]
    fn tick_is_retention_over_two_pow_bits() {
        let rc = lr();
        assert_eq!(rc.tick_ns(), 1_000);
        assert_eq!(rc.max_count(), 15);
        assert_eq!(rc.retention_ns(), 16_000);
    }

    #[test]
    fn count_advances_per_tick_and_saturates() {
        let rc = lr();
        assert_eq!(rc.count(0, 0), 0);
        assert_eq!(rc.count(0, 999), 0);
        assert_eq!(rc.count(0, 1_000), 1);
        assert_eq!(rc.count(0, 14_999), 14);
        assert_eq!(rc.count(0, 15_000), 15);
        assert_eq!(rc.count(0, 1_000_000), 15, "saturates");
    }

    #[test]
    fn refresh_in_last_tick_only() {
        let rc = lr();
        assert!(!rc.needs_refresh(0, 14_999));
        assert!(rc.needs_refresh(0, 15_000));
        assert!(!rc.is_expired(0, 15_999));
        assert!(rc.is_expired(0, 16_000));
    }

    #[test]
    fn rewrite_resets_the_clock() {
        let rc = lr();
        // A line rewritten at t=10_000 is young again.
        assert_eq!(rc.count(10_000, 10_500), 0);
        assert!(!rc.needs_refresh(10_000, 24_000));
        assert!(rc.needs_refresh(10_000, 25_000));
    }

    #[test]
    fn deadlines() {
        let rc = lr();
        assert_eq!(rc.refresh_deadline_ns(2_000), 17_000);
        assert_eq!(rc.expiry_deadline_ns(2_000), 18_000);
        assert!(rc.refresh_deadline_ns(0) < rc.expiry_deadline_ns(0));
    }

    #[test]
    fn slack_triggers_refresh_earlier() {
        let rc = lr();
        // Slack 4 on a 4-bit counter: refresh from tick 11 instead of 15.
        assert!(!rc.needs_refresh_with_slack(0, 10_999, 4));
        assert!(rc.needs_refresh_with_slack(0, 11_000, 4));
        assert!(!rc.needs_refresh(0, 11_000), "lazy policy waits");
    }

    #[test]
    fn slack_deadline_is_the_predicate_threshold() {
        let rc = lr();
        for slack in 0..rc.max_count() {
            for written in [0u64, 2_000, 7_777] {
                let deadline = rc.refresh_deadline_with_slack_ns(written, slack);
                assert!(!rc.needs_refresh_with_slack(written, deadline - 1, slack));
                assert!(rc.needs_refresh_with_slack(written, deadline, slack));
            }
        }
        // Saturated slack: the threshold collapses to zero ticks and the
        // deadline degenerates to the write time itself.
        assert_eq!(rc.refresh_deadline_with_slack_ns(500, 99), 500);
        assert_eq!(
            rc.refresh_deadline_with_slack_ns(0, 0),
            rc.refresh_deadline_ns(0)
        );
    }

    #[test]
    fn hr_two_bit_counter() {
        // 4 ms retention, 2-bit counter -> 1 ms ticks.
        let rc = RetentionTracker::new(RetentionTime::from_millis(4.0), 2);
        assert_eq!(rc.tick_ns(), 1_000_000);
        assert_eq!(rc.max_count(), 3);
        assert!(rc.needs_refresh(0, 3_000_000));
    }

    #[test]
    fn rounded_tick_covers_the_remainder_window() {
        // 1000 ns / 4-bit: the floor tick 62 spans only 62·16 = 992 ns,
        // so every refresh deadline drifted 70 ns early (62·15 = 930).
        // Nearest-rounding picks 63; the last-tick deadline lands at 945,
        // still strictly inside the retention period.
        let rc = RetentionTracker::new(RetentionTime::from_nanos(1_000.0), 4);
        assert_eq!(rc.tick_ns(), 63);
        assert_eq!(rc.refresh_deadline_ns(0), 945);
        assert!(rc.refresh_deadline_ns(0) < rc.expiry_deadline_ns(0));
        assert_eq!(rc.count(0, 945), 15, "deadline is the last tick");
        assert!(!rc.is_expired(0, 999));
    }

    #[test]
    fn paper_lr_retention_keeps_its_floor_tick() {
        // 26.5 µs / 4-bit: remainder 4 of 16 rounds down, so the tick —
        // and with it every published run — is unchanged at 1656 ns.
        let rc = RetentionTracker::new(RetentionTime::from_micros(26.5), 4);
        assert_eq!(rc.tick_ns(), 1_656);
    }

    #[test]
    fn round_up_is_clamped_when_it_would_reach_expiry() {
        // 24 ns / 4-bit: rounding 24/16 to 2 would put the last tick at
        // 2·15 = 30 ≥ 24, past expiry; the tick must fall back to 1.
        let rc = RetentionTracker::new(RetentionTime::from_nanos(24.0), 4);
        assert_eq!(rc.tick_ns(), 1);
        assert!(rc.refresh_deadline_ns(0) < rc.expiry_deadline_ns(0));
    }

    #[test]
    fn deadline_invariant_holds_across_odd_retentions() {
        for ns in [
            17u64, 100, 999, 1_000, 1_001, 26_500, 65_535, 65_537, 1_000_003,
        ] {
            for bits in 1..=8u32 {
                if ns >> bits == 0 {
                    continue;
                }
                let rc = RetentionTracker::new(RetentionTime::from_nanos(ns as f64), bits);
                assert!(
                    rc.refresh_deadline_ns(0) < rc.expiry_deadline_ns(0),
                    "{ns} ns / {bits} bits"
                );
                assert!(rc.maintenance_interval_ns() >= 1, "{ns} ns / {bits} bits");
            }
        }
    }

    #[test]
    fn maintenance_interval_respects_the_rounded_tail() {
        // Rounded tick: sweeps must come at least every 55 ns (expiry
        // 1000 minus deadline 945) or a due line can expire unseen.
        let rounded = RetentionTracker::new(RetentionTime::from_nanos(1_000.0), 4);
        assert_eq!(rounded.maintenance_interval_ns(), 55);
        // Exact division: the window equals one tick and the cap binds.
        let exact = RetentionTracker::new(RetentionTime::from_micros(16.0), 4);
        assert_eq!(exact.maintenance_interval_ns(), 1_000);
    }

    #[test]
    fn wide_counter_deadlines_saturate_instead_of_overflowing() {
        // A century of retention on a 16-bit counter, with a line stamped
        // near the end of representable time: the deadline math must
        // saturate in order (slack ≤ plain ≤ expiry), not overflow.
        let rc = RetentionTracker::new(RetentionTime::from_years(100.0), 16);
        let written = u64::MAX - 10;
        let refresh = rc.refresh_deadline_ns(written);
        let relaxed = rc.refresh_deadline_with_slack_ns(written, 3);
        assert_eq!(refresh, u64::MAX);
        assert!(relaxed <= refresh);
        assert!(refresh <= rc.expiry_deadline_ns(written));
        assert!(rc.is_expired(0, u64::MAX) || rc.retention_ns() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_bits() {
        RetentionTracker::new(RetentionTime::from_millis(1.0), 0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_sub_tick_retention() {
        RetentionTime::from_nanos(8.0); // fine on its own
        RetentionTracker::new(RetentionTime::from_nanos(8.0), 4);
    }
}
