//! The two-part low/high-retention STT-RAM LLC — the paper's contribution.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sttgpu_cache::{AccessKind, BankArbiter, Evicted, SetAssocCache};
use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::energy::{EnergyAccount, EnergyEvent};
use sttgpu_fault::{FaultOutcome, FaultPart, FaultPlan};
use sttgpu_stats::Histogram;
use sttgpu_trace::{BufferDir, PartId, Trace, TraceEvent};

use crate::config::{SearchMode, TwoPartConfig};
use crate::llc::{latency_to_ns, FillOutcome, LlcModel, LlcStats, ProbeOutcome};
use crate::policy::{lr_maintenance_floor_ns, lr_tracker_at, PolicyEngine};
use crate::retention::RetentionTracker;
use crate::search::{Part, SearchSelector};
use crate::swap::SwapBuffer;
use crate::wws::WwsMonitor;

/// Energy of moving one block through a swap buffer, nJ (small SRAM FIFO).
const BUFFER_ENERGY_NJ: f64 = 0.01;

/// Energy of one SECDED syndrome computation + correction on a faulted
/// line, nJ. Charged only when the fault process actually flipped a bit,
/// so a zero-rate plan leaves the ledger untouched.
const ECC_ENERGY_NJ: f64 = 0.02;

/// Extra latency of correcting a single-bit error on a read hit, ns.
const ECC_CORRECT_LATENCY_NS: u64 = 2;

/// Maps the search-selector part to the fault model's retention domain.
fn fault_part(part: Part) -> FaultPart {
    match part {
        Part::Lr => FaultPart::Lr,
        Part::Hr => FaultPart::Hr,
    }
}

/// Fig. 6 histogram bucket bounds, ns (≤1 µs, ≤5 µs, ≤10 µs, ≤1 ms,
/// ≤2.5 ms, then an implicit >2.5 ms bucket).
pub(crate) const REWRITE_BUCKET_BOUNDS_NS: [u64; 5] = [1_000, 5_000, 10_000, 1_000_000, 2_500_000];

/// Per-line metadata of both parts: when the cell array last physically
/// wrote this line (fill, demand write or refresh) — the retention clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RetMeta {
    written_at_ns: u64,
}

/// One pending retention deadline: `(deadline_ns, line_addr,
/// written_at_ns)`, min-ordered by deadline inside a
/// `BinaryHeap<Reverse<_>>`.
///
/// Entries use **lazy deletion**: every physical array write pushes a new
/// entry, and a popped entry whose `written_at_ns` stamp no longer matches
/// the line's current retention clock (the line was rewritten, refreshed,
/// migrated or evicted since the push) is simply discarded. This turns the
/// per-maintenance-tick cost from a full array scan into
/// `O(due lines · log pending writes)`.
type DeadlineEntry = Reverse<(u64, u64, u64)>;

/// Counters specific to the two-part architecture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoPartStats {
    /// Read probes that hit in the LR part.
    pub lr_read_hits: u64,
    /// Read probes that hit in the HR part.
    pub hr_read_hits: u64,
    /// Write probes that hit in the LR part.
    pub lr_write_hits: u64,
    /// Write probes that hit in the HR part (before any migration).
    pub hr_write_hits: u64,
    /// Read probes that missed both parts.
    pub read_misses: u64,
    /// Write probes that missed both parts.
    pub write_misses: u64,
    /// Demand writes ultimately serviced by the LR array (write hits in
    /// LR, migration-triggered writes, dirty fills into LR).
    pub demand_writes_lr: u64,
    /// Demand writes ultimately serviced by the HR array.
    pub demand_writes_hr: u64,
    /// Physical LR data-array write operations (demand + fills +
    /// migrations + refreshes).
    pub lr_array_writes: u64,
    /// Physical HR data-array write operations.
    pub hr_array_writes: u64,
    /// Blocks promoted HR→LR by the WWS monitor.
    pub migrations_to_lr: u64,
    /// Blocks demoted LR→HR on LR eviction.
    pub demotions_to_hr: u64,
    /// LR lines refreshed in their last retention tick.
    pub refreshes: u64,
    /// LR lines that expired before refresh (maintenance cadence was
    /// violated) — should stay zero in healthy runs.
    pub lr_expirations: u64,
    /// HR lines invalidated at the end of their retention (no refresh in
    /// HR by design).
    pub hr_expirations: u64,
    /// Dirty lines written back to DRAM (evictions, expiries, buffer
    /// overflows).
    pub writebacks: u64,
    /// Write-backs forced specifically by swap-buffer overflow.
    pub overflow_writebacks: u64,
    /// Sequential-search hits found only in the second-probed part.
    pub second_search_hits: u64,
    /// Lines filled into LR on DRAM fills.
    pub fills_to_lr: u64,
    /// Lines filled into HR on DRAM fills.
    pub fills_to_hr: u64,
    /// LR wear-rotations performed.
    pub lr_rotations: u64,
    /// Single-bit errors corrected by the per-line SECDED (injected
    /// retention flips caught at read or scrub time).
    pub ecc_corrections: u64,
    /// Multi-bit errors SECDED detected but could not correct; the line
    /// was dropped and the access handled as a miss.
    pub ecc_uncorrectable: u64,
    /// Uncorrectable errors that hit *dirty* lines — architectural data
    /// loss (clean lines refetch from DRAM and lose nothing).
    pub data_loss_events: u64,
    /// Due LR refreshes dropped by the injected fault process.
    pub refresh_drops: u64,
    /// Swap-buffer reservations stalled by the injected fault process
    /// (the transfer fell back exactly as on a full buffer).
    pub buffer_stalls: u64,
    /// Transient bank faults forcing a tag-probe retry.
    pub bank_faults: u64,
}

impl TwoPartStats {
    /// Total demand writes serviced by either part.
    pub fn demand_writes(&self) -> u64 {
        self.demand_writes_lr + self.demand_writes_hr
    }

    /// Fraction of demand writes serviced in the LR part — the "LR write
    /// utilization" of Figs. 4 and 5.
    pub fn lr_write_utilization(&self) -> f64 {
        let total = self.demand_writes();
        if total == 0 {
            0.0
        } else {
            self.demand_writes_lr as f64 / total as f64
        }
    }

    /// LR-to-HR demand-write ratio (Fig. 4's first panel).
    pub fn lr_to_hr_write_ratio(&self) -> f64 {
        if self.demand_writes_hr == 0 {
            self.demand_writes_lr as f64
        } else {
            self.demand_writes_lr as f64 / self.demand_writes_hr as f64
        }
    }

    /// Total physical array writes in both parts (Fig. 4's "write
    /// overhead" numerator — migrations and refreshes count).
    pub fn total_array_writes(&self) -> u64 {
        self.lr_array_writes + self.hr_array_writes
    }

    /// Fraction of demand write *probes* that found their block already
    /// LR-resident — the Fig. 5 "LR write utilization": conflict evictions
    /// in a low-associativity LR push WWS blocks out between writes, so
    /// the next write finds them in HR (or missing) instead.
    pub fn direct_lr_write_hit_rate(&self) -> f64 {
        let probes = self.lr_write_hits + self.hr_write_hits + self.write_misses;
        if probes == 0 {
            0.0
        } else {
            self.lr_write_hits as f64 / probes as f64
        }
    }
}

/// The two-part low/high-retention STT-RAM last-level cache.
///
/// See the [crate docs](crate) for the architecture overview and
/// [`TwoPartConfig`] for the knobs. The type implements [`LlcModel`], so it
/// drops into the GPU simulator wherever the SRAM baseline does.
///
/// # Example
///
/// ```
/// use sttgpu_cache::AccessKind;
/// use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc};
///
/// let mut llc = TwoPartLlc::new(TwoPartConfig::new(48, 2, 336, 7, 256));
///
/// // A clean (read) fill lands in HR; the first write migrates it to LR.
/// llc.fill(0x1000, false, 0);
/// assert!(llc.hr_contains(0x1000));
/// llc.probe(0x1000, AccessKind::Write, 100);
/// assert!(llc.lr_contains(0x1000));
/// assert_eq!(llc.stats().migrations_to_lr, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TwoPartLlc {
    cfg: TwoPartConfig,
    lr: SetAssocCache<RetMeta>,
    hr: SetAssocCache<RetMeta>,
    lr_arb: BankArbiter,
    hr_arb: BankArbiter,
    lr_design: ArrayDesign,
    hr_design: ArrayDesign,
    lr_rc: RetentionTracker,
    hr_rc: RetentionTracker,
    wws: WwsMonitor,
    engine: PolicyEngine,
    fault: FaultPlan,
    hr_to_lr: SwapBuffer,
    lr_to_hr: SwapBuffer,
    energy: EnergyAccount,
    trace: Trace,
    stats: TwoPartStats,
    lr_rewrite_intervals: Histogram,
    hr_rewrite_intervals: Histogram,
    next_rotation_ns: u64,
    // Min-heaps of refresh/expiry deadlines (lazy deletion, see
    // [`DeadlineEntry`]) so `maintain` visits only due lines instead of
    // scanning both arrays every retention tick.
    lr_deadlines: BinaryHeap<DeadlineEntry>,
    hr_deadlines: BinaryHeap<DeadlineEntry>,
    // Reused across wear-rotation epochs to keep `rotate_lr` off the
    // allocator.
    rotation_scratch: Vec<Evicted<RetMeta>>,
    // Cached integer timings, ns.
    lr_tag_ns: u64,
    hr_tag_ns: u64,
    lr_read_ns: u64,
    hr_read_ns: u64,
    lr_write_ns: u64,
    hr_write_ns: u64,
    lr_read_occ_ns: u64,
    hr_read_occ_ns: u64,
    lr_write_occ_ns: u64,
    hr_write_occ_ns: u64,
}

impl TwoPartLlc {
    /// Builds the LLC from a configuration, pricing both arrays with the
    /// device model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`TwoPartConfig`]).
    pub fn new(cfg: TwoPartConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let lr_geom =
            ArrayGeometry::new(cfg.lr_kb * 1024, cfg.line_bytes, cfg.lr_ways, cfg.lr_banks);
        let hr_geom =
            ArrayGeometry::new(cfg.hr_kb * 1024, cfg.line_bytes, cfg.hr_ways, cfg.hr_banks);
        let lr_mtj = sttgpu_device::mtj::MtjDesign::for_retention(cfg.lr_retention)
            .with_ewt_savings(cfg.ewt_savings);
        let hr_mtj = sttgpu_device::mtj::MtjDesign::for_retention(cfg.hr_retention)
            .with_ewt_savings(cfg.ewt_savings);
        let lr_design = ArrayDesign::new(lr_geom, MemTechnology::SttRam(lr_mtj));
        let hr_design = ArrayDesign::new(hr_geom, MemTechnology::SttRam(hr_mtj));
        // The replacement hook lives in the policy registry alongside the
        // migration/retention/partition seams.
        let engine = PolicyEngine::new(&cfg);
        let lr = SetAssocCache::new(
            lr_geom.sets() as usize,
            cfg.lr_ways as usize,
            cfg.line_bytes,
            engine.replacement(),
        );
        let hr = SetAssocCache::new(
            hr_geom.sets() as usize,
            cfg.hr_ways as usize,
            cfg.line_bytes,
            engine.replacement(),
        );
        let energy =
            EnergyAccount::with_leakage_mw(lr_design.leakage_mw() + hr_design.leakage_mw());
        TwoPartLlc {
            lr,
            hr,
            lr_arb: BankArbiter::new(cfg.lr_banks as usize),
            hr_arb: BankArbiter::new(cfg.hr_banks as usize),
            lr_rc: RetentionTracker::new(cfg.lr_retention, cfg.lr_rc_bits),
            hr_rc: RetentionTracker::new(cfg.hr_retention, cfg.hr_rc_bits),
            wws: WwsMonitor::new(cfg.write_threshold),
            engine,
            fault: FaultPlan::new(
                cfg.fault,
                cfg.lr_retention,
                cfg.hr_retention,
                cfg.line_bytes,
            ),
            hr_to_lr: SwapBuffer::new(cfg.buffer_blocks),
            lr_to_hr: SwapBuffer::new(cfg.buffer_blocks),
            energy,
            trace: Trace::off(),
            stats: TwoPartStats::default(),
            lr_rewrite_intervals: Histogram::new(&REWRITE_BUCKET_BOUNDS_NS),
            hr_rewrite_intervals: Histogram::new(&REWRITE_BUCKET_BOUNDS_NS),
            next_rotation_ns: cfg.lr_rotation_period_ns.unwrap_or(u64::MAX),
            lr_deadlines: BinaryHeap::new(),
            hr_deadlines: BinaryHeap::new(),
            rotation_scratch: Vec::new(),
            lr_tag_ns: latency_to_ns("LR tag", lr_design.tag_latency_ns()),
            hr_tag_ns: latency_to_ns("HR tag", hr_design.tag_latency_ns()),
            lr_read_ns: latency_to_ns("LR read", lr_design.read_latency_ns()),
            hr_read_ns: latency_to_ns("HR read", hr_design.read_latency_ns()),
            lr_write_ns: latency_to_ns("LR write", lr_design.write_latency_ns()),
            hr_write_ns: latency_to_ns("HR write", hr_design.write_latency_ns()),
            lr_read_occ_ns: latency_to_ns("LR read-occupancy", lr_design.read_occupancy_ns()),
            hr_read_occ_ns: latency_to_ns("HR read-occupancy", hr_design.read_occupancy_ns()),
            lr_write_occ_ns: latency_to_ns("LR write-occupancy", lr_design.write_occupancy_ns()),
            hr_write_occ_ns: latency_to_ns("HR write-occupancy", hr_design.write_occupancy_ns()),
            lr_design,
            hr_design,
            cfg,
        }
    }

    /// The configuration this LLC was built from.
    pub fn config(&self) -> &TwoPartConfig {
        &self.cfg
    }

    /// Attaches a trace sink; every protocol action (hits, fills,
    /// migrations, refreshes, expiries, buffer traffic, energy deposits)
    /// is emitted through it.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Deposits energy and mirrors the deposit into the trace, so a
    /// checker can prove the ledger equals the sum of its events.
    fn deposit(&mut self, ev: EnergyEvent, nj: f64) {
        self.energy.deposit(ev, nj);
        self.trace.emit(|| TraceEvent::EnergyDeposit {
            category: ev.index() as u8,
            nj,
        });
    }

    /// Architecture-specific statistics.
    pub fn stats(&self) -> &TwoPartStats {
        &self.stats
    }

    /// Distribution of rewrite intervals observed in the LR part (Fig. 6).
    pub fn lr_rewrite_intervals(&self) -> &Histogram {
        &self.lr_rewrite_intervals
    }

    /// Distribution of rewrite intervals observed in the HR part (used to
    /// justify the 4 ms HR retention).
    pub fn hr_rewrite_intervals(&self) -> &Histogram {
        &self.hr_rewrite_intervals
    }

    /// Whether `byte_addr`'s line currently resides in the LR part.
    pub fn lr_contains(&self, byte_addr: u64) -> bool {
        self.lr.contains(byte_addr / self.cfg.line_bytes as u64)
    }

    /// Whether `byte_addr`'s line currently resides in the HR part.
    pub fn hr_contains(&self, byte_addr: u64) -> bool {
        self.hr.contains(byte_addr / self.cfg.line_bytes as u64)
    }

    /// The priced LR array design.
    pub fn lr_design(&self) -> &ArrayDesign {
        &self.lr_design
    }

    /// The priced HR array design.
    pub fn hr_design(&self) -> &ArrayDesign {
        &self.hr_design
    }

    /// Peak simultaneous occupancy of (HR→LR, LR→HR) swap buffers.
    pub fn buffer_peaks(&self) -> (usize, usize) {
        (
            self.hr_to_lr.peak_occupancy(),
            self.lr_to_hr.peak_occupancy(),
        )
    }

    /// Total swap-buffer overflows (each forced a write-back or drop).
    pub fn buffer_overflows(&self) -> u64 {
        self.hr_to_lr.overflows() + self.lr_to_hr.overflows()
    }

    /// Records an LR array write at `written_ns`: schedules the line's
    /// refresh deadline (slack ticks before the last retention tick).
    fn note_lr_write(&mut self, la: u64, written_ns: u64) {
        let deadline = self
            .lr_rc
            .refresh_deadline_with_slack_ns(written_ns, self.cfg.refresh_slack_ticks as u64);
        self.lr_deadlines.push(Reverse((deadline, la, written_ns)));
    }

    /// Records an HR array write at `written_ns`: schedules the line's
    /// expiry deadline (HR lines are never refreshed).
    fn note_hr_write(&mut self, la: u64, written_ns: u64) {
        let deadline = self.hr_rc.refresh_deadline_ns(written_ns);
        self.hr_deadlines.push(Reverse((deadline, la, written_ns)));
    }

    fn part_contains(&self, part: Part, la: u64) -> bool {
        match part {
            Part::Lr => self.lr.contains(la),
            Part::Hr => self.hr.contains(la),
        }
    }

    fn tag_ns(&self, part: Part) -> u64 {
        match part {
            Part::Lr => self.lr_tag_ns,
            Part::Hr => self.hr_tag_ns,
        }
    }

    fn deposit_tag(&mut self, part: Part) {
        let nj = match part {
            Part::Lr => self.lr_design.tag_energy_nj(),
            Part::Hr => self.hr_design.tag_energy_nj(),
        };
        self.deposit(EnergyEvent::TagLookup, nj);
    }

    /// Rolls the injected swap-buffer stall for one reservation attempt.
    /// On a stall the caller takes its existing buffer-full fallback, so
    /// the fault degrades service exactly like transient congestion.
    fn fault_stall(&mut self, dir: BufferDir, la: u64, now_ns: u64) -> bool {
        if !self.fault.enabled() {
            return false;
        }
        let dir_index = match dir {
            BufferDir::HrToLr => 0,
            BufferDir::LrToHr => 1,
        };
        let stalled = self.fault.buffer_stall(dir_index, la, now_ns);
        if stalled {
            self.stats.buffer_stalls += 1;
            self.trace
                .emit(|| TraceEvent::BufferStall { dir, la, now_ns });
        }
        stalled
    }

    /// Services a read hit in `part`. Returns completion time.
    fn service_read(&mut self, part: Part, la: u64, tag_done_ns: u64, now_ns: u64) -> u64 {
        match part {
            Part::Lr => {
                self.lr.lookup(la, AccessKind::Read, now_ns);
                self.stats.lr_read_hits += 1;
                self.deposit(EnergyEvent::DataRead, self.lr_design.read_energy_nj());
                let bank = self.lr_arb.bank_of(la);
                let start = self.lr_arb.reserve(bank, tag_done_ns, self.lr_read_occ_ns);
                start + self.lr_read_ns
            }
            Part::Hr => {
                self.hr.lookup(la, AccessKind::Read, now_ns);
                self.stats.hr_read_hits += 1;
                self.deposit(EnergyEvent::DataRead, self.hr_design.read_energy_nj());
                let bank = self.hr_arb.bank_of(la);
                let start = self.hr_arb.reserve(bank, tag_done_ns, self.hr_read_occ_ns);
                start + self.hr_read_ns
            }
        }
    }

    /// Physically writes a line already resident in LR. Returns completion.
    fn lr_demand_write(&mut self, la: u64, tag_done_ns: u64, now_ns: u64) -> u64 {
        // Record the rewrite interval before the write updates the clock.
        if let Some(line) = self.lr.peek(la) {
            let prev = line.last_write_ns();
            if prev > 0 && now_ns > prev {
                self.lr_rewrite_intervals.record(now_ns - prev);
            }
        }
        self.lr.lookup(la, AccessKind::Write, now_ns);
        if let Some(line) = self.lr.peek_mut(la) {
            line.meta.written_at_ns = now_ns;
        }
        self.note_lr_write(la, now_ns);
        self.stats.lr_write_hits += 1;
        self.stats.demand_writes_lr += 1;
        self.stats.lr_array_writes += 1;
        self.deposit(EnergyEvent::DataWrite, self.lr_design.write_energy_nj());
        let bank = self.lr_arb.bank_of(la);
        let start = self.lr_arb.reserve(bank, tag_done_ns, self.lr_write_occ_ns);
        start + self.lr_write_ns
    }

    /// Whether the next demand write to the HR-resident line `la` will
    /// trigger a WWS migration — i.e. the count [`hr_write_hit`] will
    /// observe after its lookup bumps the write counter reaches the
    /// threshold. Asks the policy's prediction hook directly so the check
    /// does not perturb the monitor's decision statistics.
    ///
    /// [`hr_write_hit`]: Self::hr_write_hit
    fn migration_is_due(&self, la: u64) -> bool {
        self.hr
            .peek(la)
            .is_some_and(|l| self.engine.migration_due(l.write_count()))
    }

    /// Handles a write that hit in HR: either service it in place or
    /// migrate the block to LR per the WWS monitor.
    fn hr_write_hit(&mut self, la: u64, tag_done_ns: u64, now_ns: u64) -> (u64, u32) {
        if let Some(line) = self.hr.peek(la) {
            let prev = line.last_write_ns();
            if prev > 0 && now_ns > prev {
                self.hr_rewrite_intervals.record(now_ns - prev);
            }
        }
        self.hr.lookup(la, AccessKind::Write, now_ns);
        self.stats.hr_write_hits += 1;
        let count = self.hr.peek(la).map_or(1, |l| l.write_count());

        let migrate = self.engine.should_migrate(count);
        self.wws.record(migrate);
        if migrate {
            // Promote: read the block out of HR, stage it in the HR→LR
            // buffer, write it (merged with the demand data) into LR. The
            // whole hop runs on migration ports (the paper banks the HR
            // part "to enable migration of multiple data blocks" and the
            // buffers decouple the arrays' latencies), so demand banks
            // stay free; the buffer capacity is the bandwidth limit.
            let read_done = tag_done_ns + self.hr_read_ns;
            self.deposit(EnergyEvent::DataRead, self.hr_design.read_energy_nj());
            let write_done = read_done + self.lr_write_ns;

            if !self.fault_stall(BufferDir::HrToLr, la, now_ns)
                && self.hr_to_lr.try_reserve(now_ns, write_done)
            {
                let Some(victim) = self.hr.extract(la) else {
                    // The line vanished between the tag probe and the
                    // extract — defense in depth for fault paths that
                    // invalidate lines mid-access (the probe-side ECC
                    // check re-misses those before dispatching here).
                    // Service the write in place; the reserved buffer
                    // slot simply drains unused.
                    return (self.hr_write_in_place(la, tag_done_ns, now_ns), 0);
                };
                self.trace.emit(|| TraceEvent::BufferAdmit {
                    dir: BufferDir::HrToLr,
                    la,
                    now_ns,
                });
                self.deposit(EnergyEvent::Buffer, BUFFER_ENERGY_NJ);
                self.deposit(EnergyEvent::Migration, self.lr_design.write_energy_nj());
                self.trace.emit(|| TraceEvent::Evict {
                    part: PartId::Hr,
                    la,
                    wrote_back: false,
                    now_ns,
                });
                self.stats.migrations_to_lr += 1;
                self.stats.demand_writes_lr += 1;
                self.stats.lr_array_writes += 1;
                let mut writebacks = 0;
                let evicted = self.lr.fill_with(
                    la,
                    true,
                    victim.write_count,
                    RetMeta {
                        written_at_ns: now_ns,
                    },
                    now_ns,
                );
                self.trace.emit(|| TraceEvent::Fill {
                    part: PartId::Lr,
                    la,
                    now_ns,
                });
                self.trace.emit(|| TraceEvent::BufferInstall {
                    dir: BufferDir::HrToLr,
                    la,
                    now_ns,
                });
                self.note_lr_write(la, now_ns);
                if let Some(lr_victim) = evicted {
                    writebacks += self.demote(lr_victim, now_ns);
                }
                (write_done, writebacks)
            } else {
                // Buffer full: fall back to servicing the write in HR.
                self.trace.emit(|| TraceEvent::BufferOverflow {
                    dir: BufferDir::HrToLr,
                    la,
                    now_ns,
                });
                let wb = self.hr_write_in_place(la, tag_done_ns, now_ns);
                (wb, 0)
            }
        } else {
            (self.hr_write_in_place(la, tag_done_ns, now_ns), 0)
        }
    }

    /// Writes a line in place in the HR array (below-threshold writes and
    /// buffer-full fallbacks). Returns completion time.
    fn hr_write_in_place(&mut self, la: u64, tag_done_ns: u64, now_ns: u64) -> u64 {
        if let Some(line) = self.hr.peek_mut(la) {
            line.meta.written_at_ns = now_ns;
        }
        self.note_hr_write(la, now_ns);
        self.stats.demand_writes_hr += 1;
        self.stats.hr_array_writes += 1;
        self.deposit(EnergyEvent::DataWrite, self.hr_design.write_energy_nj());
        let bank = self.hr_arb.bank_of(la);
        let start = self.hr_arb.reserve(bank, tag_done_ns, self.hr_write_occ_ns);
        start + self.hr_write_ns
    }

    /// Demotes an LR victim into HR through the LR→HR buffer. Returns the
    /// number of DRAM write-backs generated.
    fn demote(&mut self, victim: Evicted<RetMeta>, now_ns: u64) -> u32 {
        // The whole demotion runs on migration ports: read the victim out
        // of LR, stage it, write it into HR. Demand banks stay free — the
        // swap buffers exist precisely to decouple this from the demand
        // path ("small buffers are needed to support data block
        // migration"). The victim moves as soon as it is extracted, so
        // buffer slots are held for the fixed read+write hop only.
        let read_done = now_ns + self.lr_read_ns;
        self.deposit(EnergyEvent::DataRead, self.lr_design.read_energy_nj());
        let write_done = read_done + self.hr_write_ns;

        if self.fault_stall(BufferDir::LrToHr, victim.line_addr, now_ns)
            || !self.lr_to_hr.try_reserve(now_ns, write_done)
        {
            // Buffer full: force the block out to DRAM (paper's data-loss
            // avoidance rule); clean blocks are simply dropped.
            self.trace.emit(|| TraceEvent::BufferOverflow {
                dir: BufferDir::LrToHr,
                la: victim.line_addr,
                now_ns,
            });
            self.trace.emit(|| TraceEvent::Evict {
                part: PartId::Lr,
                la: victim.line_addr,
                wrote_back: victim.dirty,
                now_ns,
            });
            if victim.dirty {
                self.stats.writebacks += 1;
                self.stats.overflow_writebacks += 1;
                self.deposit(EnergyEvent::Writeback, self.lr_design.read_energy_nj());
                return 1;
            }
            return 0;
        }

        self.trace.emit(|| TraceEvent::Evict {
            part: PartId::Lr,
            la: victim.line_addr,
            wrote_back: false,
            now_ns,
        });
        self.trace.emit(|| TraceEvent::BufferAdmit {
            dir: BufferDir::LrToHr,
            la: victim.line_addr,
            now_ns,
        });
        self.deposit(EnergyEvent::Buffer, BUFFER_ENERGY_NJ);
        self.deposit(EnergyEvent::Migration, self.hr_design.write_energy_nj());
        self.stats.demotions_to_hr += 1;
        self.stats.hr_array_writes += 1;
        let mut writebacks = 0;
        if let Some(hr_victim) = self.hr.fill_with(
            victim.line_addr,
            victim.dirty,
            0,
            RetMeta {
                written_at_ns: now_ns,
            },
            now_ns,
        ) {
            self.trace.emit(|| TraceEvent::Evict {
                part: PartId::Hr,
                la: hr_victim.line_addr,
                wrote_back: hr_victim.dirty,
                now_ns,
            });
            if hr_victim.dirty {
                writebacks += 1;
                self.stats.writebacks += 1;
                self.deposit(EnergyEvent::Writeback, self.hr_design.read_energy_nj());
            }
        }
        // Write counts restart for the new HR residency: the WWS monitor
        // judges HR-resident behaviour only. `fill_with` counts the
        // filling write via the dirty flag, which would leave dirty
        // demotions one demand write ahead at thresholds 2..3.
        if let Some(line) = self.hr.peek_mut(victim.line_addr) {
            line.set_write_count(0);
        }
        self.trace.emit(|| TraceEvent::Fill {
            part: PartId::Hr,
            la: victim.line_addr,
            now_ns,
        });
        self.trace.emit(|| TraceEvent::BufferInstall {
            dir: BufferDir::LrToHr,
            la: victim.line_addr,
            now_ns,
        });
        self.note_hr_write(victim.line_addr, now_ns);
        writebacks
    }

    /// Drains the LR part into HR and rotates its set mapping — the
    /// wear-rotation epoch boundary.
    fn rotate_lr(&mut self, now_ns: u64) {
        self.stats.lr_rotations += 1;
        let mut victims = std::mem::take(&mut self.rotation_scratch);
        victims.clear();
        self.lr.flush_into(&mut victims);
        // `flush_into` returns only dirty lines; clean LR lines do not
        // exist (everything in LR arrived via a write), but be permissive.
        for victim in victims.drain(..) {
            self.trace.emit(|| TraceEvent::Evict {
                part: PartId::Lr,
                la: victim.line_addr,
                wrote_back: false,
                now_ns,
            });
            self.deposit(EnergyEvent::DataRead, self.lr_design.read_energy_nj());
            self.deposit(EnergyEvent::Migration, self.hr_design.write_energy_nj());
            self.stats.demotions_to_hr += 1;
            self.stats.hr_array_writes += 1;
            if let Some(hr_victim) = self.hr.fill_with(
                victim.line_addr,
                victim.dirty,
                0,
                RetMeta {
                    written_at_ns: now_ns,
                },
                now_ns,
            ) {
                self.trace.emit(|| TraceEvent::Evict {
                    part: PartId::Hr,
                    la: hr_victim.line_addr,
                    wrote_back: hr_victim.dirty,
                    now_ns,
                });
                if hr_victim.dirty {
                    self.stats.writebacks += 1;
                    self.deposit(EnergyEvent::Writeback, self.hr_design.read_energy_nj());
                }
            }
            // As in `demote`: a rotation demotion starts a fresh HR
            // residency, so the WWS count restarts at zero.
            if let Some(line) = self.hr.peek_mut(victim.line_addr) {
                line.set_write_count(0);
            }
            self.trace.emit(|| TraceEvent::Fill {
                part: PartId::Hr,
                la: victim.line_addr,
                now_ns,
            });
            self.note_hr_write(victim.line_addr, now_ns);
        }
        self.rotation_scratch = victims;
        // A large prime stride: consecutive epochs must map the (wide)
        // hot region onto *disjoint* physical sets, which a +1 shift would
        // not achieve.
        self.lr.set_salt(self.stats.lr_rotations.wrapping_mul(2593));
    }

    /// Evaluates the runtime policy epoch and applies any reconfiguration
    /// it requests. A no-op under the fixed policy.
    fn policy_epoch(&mut self, now_ns: u64) {
        if self.engine.is_fixed() {
            return;
        }
        let actions = self.engine.poll(
            now_ns,
            &self.stats,
            self.hr.active_ways() as u32,
            self.cfg.hr_ways,
            self.cfg.hr_sets(),
        );
        if let Some(level) = actions.retention_level {
            self.apply_retention_level(level, now_ns);
        }
        if let Some(ways) = actions.hr_ways {
            self.apply_hr_ways(ways, now_ns);
        }
    }

    /// Switches the LR part to retention ladder `level`: swap the
    /// tracker, then rewrite-sweep every resident LR line so its
    /// retention clock restarts under the new tracker.
    fn apply_retention_level(&mut self, level: u32, now_ns: u64) {
        self.lr_rc = lr_tracker_at(self.cfg.lr_retention, self.cfg.lr_rc_bits, level);
        // The sweep stamps lines at `now + 1` — a time no past write can
        // share — so every pre-switch heap entry goes stale on its stamp
        // check and deadlines never mix trackers. Each rewrite is a
        // physical array write priced like a refresh, but it is *not* a
        // protocol refresh: no `refreshes` count and no `Refresh` events
        // (mid-life rewrites would trip the checker's refresh-tail rule).
        let stamp = now_ns + 1;
        let mut resident = Vec::new();
        for line in self.lr.iter_mut() {
            if line.is_valid() {
                line.meta.written_at_ns = stamp;
                resident.push(line.line_addr());
            }
        }
        for la in resident {
            self.stats.lr_array_writes += 1;
            self.deposit(
                EnergyEvent::Refresh,
                self.lr_design.read_energy_nj() + self.lr_design.write_energy_nj(),
            );
            self.note_lr_write(la, stamp);
        }
        let lr_rc = self.lr_rc;
        let slack = self.cfg.refresh_slack_ticks as u64;
        self.trace.emit(|| TraceEvent::PolicySwitch {
            part: PartId::Lr,
            lr_max_hit_age_ns: lr_rc.retention_ns(),
            lr_tail_start_ns: lr_rc.refresh_deadline_with_slack_ns(0, slack),
            lr_min_expire_age_ns: lr_rc.retention_ns(),
            active_ways: 0,
            now_ns,
        });
    }

    /// Reconfigures the HR part to `ways` active ways, draining the
    /// parked range first on a shrink (dirty victims write back to DRAM,
    /// clean ones drop — the paper's data-loss avoidance rule).
    fn apply_hr_ways(&mut self, ways: u32, now_ns: u64) {
        let target = ways as usize;
        if target < self.hr.active_ways() {
            let mut drained = std::mem::take(&mut self.rotation_scratch);
            drained.clear();
            self.hr.drain_ways_into(target, &mut drained);
            for victim in drained.drain(..) {
                self.trace.emit(|| TraceEvent::Evict {
                    part: PartId::Hr,
                    la: victim.line_addr,
                    wrote_back: victim.dirty,
                    now_ns,
                });
                if victim.dirty {
                    self.stats.writebacks += 1;
                    self.deposit(EnergyEvent::Writeback, self.hr_design.read_energy_nj());
                }
            }
            self.rotation_scratch = drained;
        }
        self.hr.set_active_ways(target);
        self.trace.emit(|| TraceEvent::PolicySwitch {
            part: PartId::Hr,
            lr_max_hit_age_ns: 0,
            lr_tail_start_ns: 0,
            lr_min_expire_age_ns: 0,
            active_ways: ways,
            now_ns,
        });
    }
}

impl LlcModel for TwoPartLlc {
    fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }

    fn probe(&mut self, byte_addr: u64, kind: AccessKind, now_ns: u64) -> ProbeOutcome {
        let la = byte_addr / self.cfg.line_bytes as u64;
        let order = SearchSelector::order(kind);

        // Determine the hit part and the time the winning tag lookup
        // resolves, per the configured search mode.
        let (mut hit_part, mut tag_done_ns) = match self.cfg.search {
            SearchMode::Sequential => {
                let mut t = now_ns;
                let mut found = None;
                for (i, part) in order.into_iter().enumerate() {
                    self.deposit_tag(part);
                    t += self.tag_ns(part);
                    if self.part_contains(part, la) {
                        if i == 1 {
                            self.stats.second_search_hits += 1;
                        }
                        found = Some(part);
                        break;
                    }
                }
                (found, t)
            }
            SearchMode::Parallel => {
                self.deposit_tag(Part::Lr);
                self.deposit_tag(Part::Hr);
                let t = now_ns + self.lr_tag_ns.max(self.hr_tag_ns);
                let found = if self.part_contains(Part::Lr, la) {
                    Some(Part::Lr)
                } else if self.part_contains(Part::Hr, la) {
                    Some(Part::Hr)
                } else {
                    None
                };
                (found, t)
            }
        };

        // --- fault injection ---------------------------------------------
        // Evaluated between tag resolution and the outcome emit so an
        // uncorrectable line is gone before the Miss event fires. All
        // hooks are keyed draws from the run's FaultPlan: a disabled plan
        // leaves this block untouched and the probe byte-identical.
        let mut ecc_extra_ns = 0;
        if self.fault.enabled() {
            if self.fault.bank_fault(la, now_ns) {
                // Transient bank fault: the first tag probe glitches and
                // retries, costing one extra tag access.
                self.stats.bank_faults += 1;
                self.trace.emit(|| TraceEvent::BankFault { la, now_ns });
                self.deposit_tag(order[0]);
                tag_done_ns += self.tag_ns(order[0]);
            }
            // ECC runs wherever the access physically reads the stored
            // payload: every read hit, and an HR write hit the WWS
            // monitor is about to migrate (the migration reads the line
            // out of HR before merging the demand data into LR). A plain
            // write hit overwrites the payload and starts a fresh fault
            // epoch without reading.
            let ecc_part = match (hit_part, kind.is_write()) {
                (Some(part), false) => Some(part),
                (Some(Part::Hr), true) if self.migration_is_due(la) => Some(Part::Hr),
                _ => None,
            };
            if let Some(part) = ecc_part {
                let written_at_ns = match part {
                    Part::Lr => self.lr.peek(la),
                    Part::Hr => self.hr.peek(la),
                }
                .map_or(now_ns, |l| l.meta.written_at_ns);
                match self
                    .fault
                    .line_outcome(fault_part(part), la, written_at_ns, now_ns)
                {
                    FaultOutcome::Clean => {}
                    FaultOutcome::Corrected => {
                        self.stats.ecc_corrections += 1;
                        self.deposit(EnergyEvent::Ecc, ECC_ENERGY_NJ);
                        self.trace.emit(|| TraceEvent::EccCorrected {
                            part: part.into(),
                            la,
                            now_ns,
                        });
                        ecc_extra_ns = ECC_CORRECT_LATENCY_NS;
                    }
                    FaultOutcome::Uncorrectable => {
                        // SECDED detects but cannot repair: drop the line
                        // and let the access take the miss path, refetching
                        // from DRAM. A dirty payload is architectural data
                        // loss — there is nothing valid to write back.
                        self.stats.ecc_uncorrectable += 1;
                        self.deposit(EnergyEvent::Ecc, ECC_ENERGY_NJ);
                        let victim = match part {
                            Part::Lr => self.lr.extract(la),
                            Part::Hr => self.hr.extract(la),
                        };
                        let data_lost = victim.is_some_and(|v| v.dirty);
                        if data_lost {
                            self.stats.data_loss_events += 1;
                        }
                        self.trace.emit(|| TraceEvent::EccUncorrectable {
                            part: part.into(),
                            la,
                            data_lost,
                            now_ns,
                        });
                        hit_part = None;
                    }
                }
            }
        }

        // Emit the outcome before the service routines update the line's
        // retention clock, so the event carries the age the hit was
        // actually served at.
        match hit_part {
            Some(part) => self.trace.emit(|| {
                let written_at_ns = match part {
                    Part::Lr => self.lr.peek(la),
                    Part::Hr => self.hr.peek(la),
                }
                .map_or(now_ns, |l| l.meta.written_at_ns);
                TraceEvent::Hit {
                    part: part.into(),
                    la,
                    write: kind.is_write(),
                    now_ns,
                    written_at_ns,
                }
            }),
            None => self.trace.emit(|| TraceEvent::Miss {
                la,
                write: kind.is_write(),
                now_ns,
            }),
        }

        match (hit_part, kind) {
            (Some(part), AccessKind::Read) => {
                let ready = self.service_read(part, la, tag_done_ns, now_ns);
                ProbeOutcome {
                    hit: true,
                    ready_ns: ready + ecc_extra_ns,
                    writebacks: 0,
                }
            }
            (Some(Part::Lr), AccessKind::Write) => {
                let ready = self.lr_demand_write(la, tag_done_ns, now_ns);
                ProbeOutcome {
                    hit: true,
                    ready_ns: ready,
                    writebacks: 0,
                }
            }
            (Some(Part::Hr), AccessKind::Write) => {
                let (ready, writebacks) = self.hr_write_hit(la, tag_done_ns, now_ns);
                ProbeOutcome {
                    hit: true,
                    ready_ns: ready + ecc_extra_ns,
                    writebacks,
                }
            }
            (None, _) => {
                if kind.is_write() {
                    self.stats.write_misses += 1;
                } else {
                    self.stats.read_misses += 1;
                }
                ProbeOutcome {
                    hit: false,
                    ready_ns: tag_done_ns,
                    writebacks: 0,
                }
            }
        }
    }

    fn fill(&mut self, byte_addr: u64, dirty: bool, now_ns: u64) -> FillOutcome {
        let la = byte_addr / self.cfg.line_bytes as u64;
        // A dirty fill is a block entering on a write: at threshold 1 it
        // is WWS by definition and goes to LR; clean (read) fills go to HR.
        let to_lr = self.engine.fill_to_lr(dirty);
        let mut writebacks = 0;
        let ready_ns;
        if to_lr {
            self.stats.fills_to_lr += 1;
            self.stats.demand_writes_lr += 1;
            self.stats.lr_array_writes += 1;
            self.deposit(EnergyEvent::DataWrite, self.lr_design.write_energy_nj());
            // Fills drain through fill buffers into idle bank slots.
            ready_ns = now_ns + self.lr_write_ns;
            if let Some(victim) = self.lr.fill_with(
                la,
                dirty,
                0,
                RetMeta {
                    written_at_ns: now_ns,
                },
                now_ns,
            ) {
                writebacks += self.demote(victim, now_ns);
            }
            self.trace.emit(|| TraceEvent::Fill {
                part: PartId::Lr,
                la,
                now_ns,
            });
            self.note_lr_write(la, now_ns);
        } else {
            self.stats.fills_to_hr += 1;
            if dirty {
                self.stats.demand_writes_hr += 1;
            }
            self.stats.hr_array_writes += 1;
            self.deposit(EnergyEvent::DataWrite, self.hr_design.write_energy_nj());
            // Fills drain through fill buffers into idle bank slots.
            ready_ns = now_ns + self.hr_write_ns;
            // No carried history on a fresh fill: `fill_with` already
            // counts the filling write via the dirty flag, so seeding the
            // counter with `dirty as u32` double-counted it and made
            // threshold-2..3 blocks migrate one demand write early.
            if let Some(victim) = self.hr.fill_with(
                la,
                dirty,
                0,
                RetMeta {
                    written_at_ns: now_ns,
                },
                now_ns,
            ) {
                self.trace.emit(|| TraceEvent::Evict {
                    part: PartId::Hr,
                    la: victim.line_addr,
                    wrote_back: victim.dirty,
                    now_ns,
                });
                if victim.dirty {
                    writebacks += 1;
                    self.stats.writebacks += 1;
                    self.deposit(EnergyEvent::Writeback, self.hr_design.read_energy_nj());
                }
            }
            self.trace.emit(|| TraceEvent::Fill {
                part: PartId::Hr,
                la,
                now_ns,
            });
            self.note_hr_write(la, now_ns);
        }
        FillOutcome {
            ready_ns,
            writebacks,
        }
    }

    fn maintain(&mut self, now_ns: u64) {
        self.policy_epoch(now_ns);
        if let Some(period) = self.cfg.lr_rotation_period_ns {
            while self.next_rotation_ns <= now_ns {
                let t = self.next_rotation_ns;
                self.rotate_lr(t);
                self.next_rotation_ns += period;
            }
        }
        // --- LR refresh engine -------------------------------------------
        // Pop due deadlines instead of scanning the array; a stale stamp
        // (the line was rewritten, refreshed or evicted since the push)
        // discards the entry. Expiry implies the refresh deadline passed
        // too, so one queue covers both outcomes.
        while let Some(&Reverse((deadline, la, stamp))) = self.lr_deadlines.peek() {
            if deadline > now_ns {
                break;
            }
            self.lr_deadlines.pop();
            let live = self
                .lr
                .peek(la)
                .is_some_and(|l| l.is_valid() && l.meta.written_at_ns == stamp);
            if !live {
                continue;
            }
            if self.lr_rc.is_expired(stamp, now_ns) {
                // Maintenance cadence was violated: data already lost.
                self.stats.lr_expirations += 1;
                if let Some(victim) = self.lr.extract(la) {
                    self.trace.emit(|| TraceEvent::Expire {
                        part: PartId::Lr,
                        la,
                        written_at_ns: stamp,
                        wrote_back: victim.dirty,
                        now_ns,
                    });
                    if victim.dirty {
                        // Account the (unrecoverable in hardware) loss as a
                        // write-back so the simulation stays functionally
                        // consistent; `lr_expirations` flags the violation.
                        self.stats.writebacks += 1;
                        self.deposit(EnergyEvent::Writeback, self.lr_design.read_energy_nj());
                    }
                }
                continue;
            }
            if self.fault.enabled() {
                // Injected refresh drop: the engine skips this line and
                // re-arms the deadline; by the next sweep the line has
                // usually expired, taking the ordinary expiry path.
                if self.fault.drop_refresh(la, now_ns) {
                    self.stats.refresh_drops += 1;
                    self.trace.emit(|| TraceEvent::RefreshDropped {
                        la,
                        written_at_ns: stamp,
                        now_ns,
                    });
                    self.lr_deadlines.push(Reverse((now_ns + 1, la, stamp)));
                    continue;
                }
                // The refresh read doubles as a scrub: ECC sees the line's
                // accumulated fault state before the rewrite clears it.
                match self.fault.line_outcome(FaultPart::Lr, la, stamp, now_ns) {
                    FaultOutcome::Clean => {}
                    FaultOutcome::Corrected => {
                        self.stats.ecc_corrections += 1;
                        self.deposit(EnergyEvent::Ecc, ECC_ENERGY_NJ);
                        self.trace.emit(|| TraceEvent::EccCorrected {
                            part: PartId::Lr,
                            la,
                            now_ns,
                        });
                    }
                    FaultOutcome::Uncorrectable => {
                        self.stats.ecc_uncorrectable += 1;
                        self.deposit(EnergyEvent::Ecc, ECC_ENERGY_NJ);
                        let victim = self.lr.extract(la);
                        let data_lost = victim.is_some_and(|v| v.dirty);
                        if data_lost {
                            self.stats.data_loss_events += 1;
                        }
                        self.trace.emit(|| TraceEvent::EccUncorrectable {
                            part: PartId::Lr,
                            la,
                            data_lost,
                            now_ns,
                        });
                        continue;
                    }
                }
            }
            // Refresh = read the line into the LR→HR buffer, rewrite it.
            // Runs on the migration port; costs energy and a buffer slot.
            let done = now_ns + self.lr_read_ns + self.lr_write_ns;
            if !self.fault_stall(BufferDir::LrToHr, la, now_ns)
                && self.lr_to_hr.try_reserve(now_ns, done)
            {
                self.trace.emit(|| TraceEvent::BufferAdmit {
                    dir: BufferDir::LrToHr,
                    la,
                    now_ns,
                });
                self.trace.emit(|| TraceEvent::Refresh {
                    la,
                    written_at_ns: stamp,
                    now_ns,
                });
                self.deposit(
                    EnergyEvent::Refresh,
                    self.lr_design.read_energy_nj() + self.lr_design.write_energy_nj(),
                );
                self.deposit(EnergyEvent::Buffer, BUFFER_ENERGY_NJ);
                self.stats.refreshes += 1;
                self.stats.lr_array_writes += 1;
                if let Some(line) = self.lr.peek_mut(la) {
                    line.meta.written_at_ns = now_ns;
                }
                self.trace.emit(|| TraceEvent::BufferInstall {
                    dir: BufferDir::LrToHr,
                    la,
                    now_ns,
                });
                self.note_lr_write(la, now_ns);
            } else if let Some(victim) = self.lr.extract(la) {
                // No buffer slot before expiry: evacuate instead of losing
                // data — dirty lines go to DRAM, clean lines are dropped.
                self.trace.emit(|| TraceEvent::BufferOverflow {
                    dir: BufferDir::LrToHr,
                    la,
                    now_ns,
                });
                self.trace.emit(|| TraceEvent::Evict {
                    part: PartId::Lr,
                    la,
                    wrote_back: victim.dirty,
                    now_ns,
                });
                if victim.dirty {
                    self.stats.writebacks += 1;
                    self.stats.overflow_writebacks += 1;
                    self.deposit(EnergyEvent::Writeback, self.lr_design.read_energy_nj());
                }
            }
        }

        // --- HR expiry engine --------------------------------------------
        // HR has no refresh: lines reaching the last RC tick are
        // invalidated (clean) or written back (dirty).
        while let Some(&Reverse((deadline, la, stamp))) = self.hr_deadlines.peek() {
            if deadline > now_ns {
                break;
            }
            self.hr_deadlines.pop();
            let live = self
                .hr
                .peek(la)
                .is_some_and(|l| l.is_valid() && l.meta.written_at_ns == stamp);
            if !live {
                continue;
            }
            self.stats.hr_expirations += 1;
            if let Some(victim) = self.hr.extract(la) {
                self.trace.emit(|| TraceEvent::Expire {
                    part: PartId::Hr,
                    la,
                    written_at_ns: stamp,
                    wrote_back: victim.dirty,
                    now_ns,
                });
                if victim.dirty {
                    self.stats.writebacks += 1;
                    self.deposit(EnergyEvent::Writeback, self.hr_design.read_energy_nj());
                }
            }
        }
    }

    fn maintenance_interval_ns(&self) -> u64 {
        // Each tracker bounds its own sweep cadence: one tick, or the
        // (possibly narrower, with a rounded-up tick) window between the
        // last-tick deadline and expiry — visiting any slower could let a
        // due line expire before the refresh engine sees it. The LR bound
        // is the floor over every retention level the configured policy
        // can select at runtime, so a cadence chosen at setup stays sound
        // across switches.
        let base =
            lr_maintenance_floor_ns(self.cfg.policy, self.cfg.lr_retention, self.cfg.lr_rc_bits)
                .min(self.hr_rc.maintenance_interval_ns());
        match self.cfg.lr_rotation_period_ns {
            Some(p) => base.min(p),
            None => base,
        }
    }

    fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    fn summary(&self) -> LlcStats {
        LlcStats {
            read_hits: self.stats.lr_read_hits + self.stats.hr_read_hits,
            read_misses: self.stats.read_misses,
            write_hits: self.stats.lr_write_hits + self.stats.hr_write_hits,
            write_misses: self.stats.write_misses,
            writebacks: self.stats.writebacks,
        }
    }

    fn write_count_matrix(&self) -> Vec<Vec<u64>> {
        let mut m = self.lr.write_count_matrix();
        m.extend(self.hr.write_count_matrix());
        m
    }

    fn reset_measurement(&mut self) {
        self.lr.reset_stats();
        self.hr.reset_stats();
        self.energy.reset();
        self.stats = TwoPartStats::default();
        self.lr_rewrite_intervals.reset();
        self.hr_rewrite_intervals.reset();
        self.wws.reset_stats();
        self.engine.reset_baseline();
        self.hr_to_lr.reset();
        self.lr_to_hr.reset();
        self.trace.emit(|| TraceEvent::ResetMeasurement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwoPartLlc {
        // 8 KB LR (2-way), 56 KB HR (7-way), 256 B lines.
        TwoPartLlc::new(TwoPartConfig::new(8, 2, 56, 7, 256))
    }

    fn addr(i: u64) -> u64 {
        i * 256
    }

    #[test]
    fn clean_fill_goes_to_hr() {
        let mut llc = small();
        llc.fill(addr(1), false, 0);
        assert!(llc.hr_contains(addr(1)));
        assert!(!llc.lr_contains(addr(1)));
        assert_eq!(llc.stats().fills_to_hr, 1);
    }

    #[test]
    fn dirty_fill_goes_to_lr_at_threshold_one() {
        let mut llc = small();
        llc.fill(addr(1), true, 0);
        assert!(llc.lr_contains(addr(1)));
        assert_eq!(llc.stats().fills_to_lr, 1);
    }

    #[test]
    fn dirty_fill_goes_to_hr_at_higher_threshold() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_write_threshold(3);
        let mut llc = TwoPartLlc::new(cfg);
        llc.fill(addr(1), true, 0);
        assert!(llc.hr_contains(addr(1)));
    }

    #[test]
    fn first_write_migrates_hr_block_to_lr() {
        let mut llc = small();
        llc.fill(addr(1), false, 0);
        let out = llc.probe(addr(1), AccessKind::Write, 1_000);
        assert!(out.hit);
        assert!(llc.lr_contains(addr(1)), "block must move to LR");
        assert!(!llc.hr_contains(addr(1)), "exclusive residency");
        assert_eq!(llc.stats().migrations_to_lr, 1);
    }

    #[test]
    fn threshold_three_migrates_on_third_write() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_write_threshold(3);
        let mut llc = TwoPartLlc::new(cfg);
        llc.fill(addr(1), false, 0);
        llc.probe(addr(1), AccessKind::Write, 100);
        llc.probe(addr(1), AccessKind::Write, 200);
        assert!(llc.hr_contains(addr(1)), "two writes stay below TH=3");
        llc.probe(addr(1), AccessKind::Write, 300);
        assert!(llc.lr_contains(addr(1)), "third write migrates");
    }

    #[test]
    fn exclusivity_invariant_under_traffic() {
        let mut llc = small();
        let mut now = 0;
        for i in 0..2_000u64 {
            now += 17;
            let a = addr(i % 300);
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = llc.probe(a, kind, now);
            if !out.hit {
                llc.fill(a, kind.is_write(), now + 50);
            }
            assert!(
                !(llc.lr_contains(a) && llc.hr_contains(a)),
                "line {a:#x} resident in both parts"
            );
        }
    }

    #[test]
    fn lr_eviction_demotes_to_hr() {
        let mut llc = small();
        // LR is 8 KB / 256 B = 32 lines, 2-way, 16 sets. Fill the same LR
        // set with 3 dirty lines: line addrs congruent mod 16.
        let base = 0u64;
        llc.fill(addr(base), true, 0);
        llc.fill(addr(base + 16), true, 10);
        llc.fill(addr(base + 32), true, 20);
        let demoted = [base, base + 16, base + 32]
            .iter()
            .filter(|&&i| llc.hr_contains(addr(i)))
            .count();
        assert_eq!(demoted, 1, "exactly one LR victim demoted to HR");
        assert_eq!(llc.stats().demotions_to_hr, 1);
    }

    #[test]
    fn reads_hit_in_both_parts() {
        let mut llc = small();
        llc.fill(addr(1), false, 0); // HR
        llc.fill(addr(2), true, 0); // LR
        assert!(llc.probe(addr(1), AccessKind::Read, 100).hit);
        assert!(llc.probe(addr(2), AccessKind::Read, 100).hit);
        assert_eq!(llc.stats().hr_read_hits, 1);
        assert_eq!(llc.stats().lr_read_hits, 1);
    }

    #[test]
    fn sequential_read_hit_in_lr_pays_second_search() {
        let mut llc = small();
        llc.fill(addr(2), true, 0); // resides in LR
        let before = llc.stats().second_search_hits;
        llc.probe(addr(2), AccessKind::Read, 100); // reads probe HR first
        assert_eq!(llc.stats().second_search_hits, before + 1);
    }

    #[test]
    fn parallel_search_never_counts_second_hits() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_search(SearchMode::Parallel);
        let mut llc = TwoPartLlc::new(cfg);
        llc.fill(addr(2), true, 0);
        llc.probe(addr(2), AccessKind::Read, 100);
        assert_eq!(llc.stats().second_search_hits, 0);
    }

    #[test]
    fn lr_write_is_faster_than_hr_write() {
        let mut llc = small();
        llc.fill(addr(1), true, 0); // LR resident
        let lr_out = llc.probe(addr(1), AccessKind::Write, 10_000);
        let lr_latency = lr_out.ready_ns - 10_000;

        // Same geometry, TH=15 so the HR write stays in HR.
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_write_threshold(15);
        let mut llc2 = TwoPartLlc::new(cfg);
        llc2.fill(addr(1), false, 0); // HR resident
        let hr_out = llc2.probe(addr(1), AccessKind::Write, 10_000);
        let hr_latency = hr_out.ready_ns - 10_000;

        assert!(
            lr_latency < hr_latency,
            "LR write {lr_latency} ns must beat HR write {hr_latency} ns"
        );
    }

    #[test]
    fn refresh_fires_in_last_tick() {
        let mut llc = small();
        llc.fill(addr(1), true, 0); // LR, written at t=0
        let tick = llc.maintenance_interval_ns();
        let retention = llc.config().lr_retention.as_nanos_u64();
        // Just before the last tick: nothing to do.
        llc.maintain(retention - 2 * tick);
        assert_eq!(llc.stats().refreshes, 0);
        // Inside the last tick: refresh must fire.
        llc.maintain(retention - tick / 2);
        assert_eq!(llc.stats().refreshes, 1);
        assert_eq!(llc.stats().lr_expirations, 0);
        assert!(llc.lr_contains(addr(1)), "refreshed line stays resident");
    }

    #[test]
    fn refresh_resets_the_retention_clock() {
        let mut llc = small();
        llc.fill(addr(1), true, 0);
        let retention = llc.config().lr_retention.as_nanos_u64();
        let tick = llc.maintenance_interval_ns();
        llc.maintain(retention - tick / 2);
        assert_eq!(llc.stats().refreshes, 1);
        // Shortly after, no second refresh is due.
        llc.maintain(retention);
        assert_eq!(llc.stats().refreshes, 1);
    }

    #[test]
    fn hr_lines_expire_instead_of_refreshing() {
        let mut llc = small();
        llc.fill(addr(1), false, 0); // HR, clean
        let hr_ret = llc.config().hr_retention.as_nanos_u64();
        llc.maintain(hr_ret);
        assert!(!llc.hr_contains(addr(1)), "expired HR line invalidated");
        assert_eq!(llc.stats().hr_expirations, 1);
        assert_eq!(llc.stats().writebacks, 0, "clean expiry costs nothing");
    }

    #[test]
    fn dirty_hr_expiry_writes_back() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_write_threshold(15);
        let mut llc = TwoPartLlc::new(cfg);
        llc.fill(addr(1), true, 0); // dirty, stays in HR at TH=15
        assert!(llc.hr_contains(addr(1)));
        let hr_ret = llc.config().hr_retention.as_nanos_u64();
        llc.maintain(hr_ret);
        assert_eq!(llc.stats().hr_expirations, 1);
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn rewrite_intervals_recorded() {
        let mut llc = small();
        llc.fill(addr(1), true, 10);
        llc.probe(addr(1), AccessKind::Write, 510); // interval 500 ns
        llc.probe(addr(1), AccessKind::Write, 600_000); // ~0.6 ms later
        let h = llc.lr_rewrite_intervals();
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[0], 1, "500 ns lands in the <=1 us bucket");
    }

    #[test]
    fn energy_grows_with_activity_and_leakage_set() {
        let mut llc = small();
        assert!(llc.energy().leakage_mw() > 0.0);
        let e0 = llc.energy().dynamic_nj();
        llc.fill(addr(1), true, 0);
        llc.probe(addr(1), AccessKind::Write, 100);
        assert!(llc.energy().dynamic_nj() > e0);
    }

    #[test]
    fn summary_aggregates_parts() {
        let mut llc = small();
        llc.fill(addr(1), false, 0);
        llc.fill(addr(2), true, 0);
        llc.probe(addr(1), AccessKind::Read, 10); // HR read hit
        llc.probe(addr(2), AccessKind::Read, 20); // LR read hit
        llc.probe(addr(3), AccessKind::Read, 30); // miss
        let s = llc.summary();
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.read_misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_measurement_preserves_contents() {
        let mut llc = small();
        llc.fill(addr(1), true, 0);
        llc.probe(addr(1), AccessKind::Write, 10);
        llc.reset_measurement();
        assert_eq!(llc.stats().demand_writes(), 0);
        assert_eq!(llc.energy().dynamic_nj(), 0.0);
        assert!(llc.lr_contains(addr(1)), "contents survive");
    }

    #[test]
    fn write_count_matrix_concatenates_parts() {
        let llc = small();
        let m = llc.write_count_matrix();
        let lr_sets = llc.config().lr_sets() as usize;
        let hr_sets = llc.config().hr_sets() as usize;
        assert_eq!(m.len(), lr_sets + hr_sets);
        assert_eq!(m[0].len(), 2); // LR ways
        assert_eq!(m[lr_sets].len(), 7); // HR ways
    }

    #[test]
    fn buffer_overflow_forces_writebacks_with_tiny_buffers() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_buffer_blocks(1);
        let mut llc = TwoPartLlc::new(cfg);
        // Hammer one LR set with dirty fills so demotions pile into the
        // 1-slot LR→HR buffer.
        for i in 0..32u64 {
            llc.fill(addr(i * 16), true, i * 5);
        }
        assert!(llc.buffer_overflows() > 0, "1-slot buffer must overflow");
        assert_eq!(
            llc.stats().overflow_writebacks + llc.stats().demotions_to_hr,
            llc.stats().demotions_to_hr + llc.stats().overflow_writebacks,
        );
        assert!(llc.stats().overflow_writebacks > 0);
    }

    #[test]
    fn wear_rotation_drains_lr_and_remaps() {
        let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_lr_rotation_ms(1.0);
        let mut llc = TwoPartLlc::new(cfg);
        llc.fill(addr(1), true, 0);
        llc.fill(addr(2), true, 0);
        assert!(llc.lr_contains(addr(1)));
        // Cross the first rotation epoch.
        llc.maintain(1_000_000);
        assert_eq!(llc.stats().lr_rotations, 1);
        assert!(!llc.lr_contains(addr(1)), "rotation drains the LR");
        assert!(llc.hr_contains(addr(1)), "drained blocks land in HR");
        assert!(llc.hr_contains(addr(2)));
        // The next write re-populates LR under the new mapping.
        llc.probe(addr(1), AccessKind::Write, 1_100_000);
        assert!(llc.lr_contains(addr(1)));
    }

    #[test]
    fn rotation_levels_physical_set_wear() {
        // Hammer one block; without rotation all its writes land in one
        // physical set, with rotation they spread.
        let hot = addr(5);
        let writes_per_epoch = 50u64;
        let epochs = 8u64;

        let run = |rotate: bool| -> f64 {
            let base = TwoPartConfig::new(8, 2, 56, 7, 256);
            let cfg = if rotate {
                base.with_lr_rotation_ms(0.1)
            } else {
                base
            };
            let mut llc = TwoPartLlc::new(cfg);
            llc.fill(hot, true, 0);
            let mut now = 1_000u64;
            for _ in 0..epochs {
                for _ in 0..writes_per_epoch {
                    now += 200;
                    if !llc.probe(hot, AccessKind::Write, now).hit {
                        llc.fill(hot, true, now);
                    }
                }
                now += 100_000; // cross a rotation epoch
                llc.maintain(now);
            }
            let lr_sets = llc.config().lr_sets() as usize;
            let matrix = &llc.write_count_matrix()[..lr_sets];
            sttgpu_device::endurance::LifetimeEstimate::from_write_matrix(matrix, now)
                .leveling_headroom()
        };

        let plain = run(false);
        let rotated = run(true);
        assert!(
            rotated > plain * 1.5,
            "rotation must improve leveling: plain {plain:.4}, rotated {rotated:.4}"
        );
    }

    #[test]
    fn rewritten_lines_are_not_refreshed_at_the_stale_deadline() {
        let mut llc = small();
        llc.fill(addr(1), true, 0);
        let tick = llc.maintenance_interval_ns();
        let retention = llc.config().lr_retention.as_nanos_u64();
        // Rewrite mid-life: the t=0 deadline entry goes stale.
        llc.probe(addr(1), AccessKind::Write, retention / 2);
        llc.maintain(retention - tick / 2); // stale deadline due, fresh one not
        assert_eq!(llc.stats().refreshes, 0, "stale entry must be discarded");
        // The rewrite's own deadline still fires.
        llc.maintain(retention / 2 + retention - tick / 2);
        assert_eq!(llc.stats().refreshes, 1);
        assert_eq!(llc.stats().lr_expirations, 0);
    }

    #[test]
    fn evicted_lines_leave_only_stale_deadline_entries() {
        let mut llc = small();
        // Three dirty fills in one LR set (2-way): the LRU victim demotes
        // to HR, leaving its LR deadline entry stale.
        llc.fill(addr(0), true, 0);
        llc.fill(addr(16), true, 0);
        llc.fill(addr(32), true, 0);
        assert_eq!(llc.stats().demotions_to_hr, 1);
        let retention = llc.config().lr_retention.as_nanos_u64();
        let tick = llc.maintenance_interval_ns();
        llc.maintain(retention - tick / 2);
        assert_eq!(
            llc.stats().refreshes,
            2,
            "only the two LR-resident lines refresh"
        );
    }

    /// The load-bearing property of the lazy-deletion deadline queues:
    /// after every `maintain(t)`, no valid line in either part is past its
    /// due point — exactly what the old full-array scan guaranteed.
    #[test]
    fn heap_maintenance_never_misses_a_due_line() {
        for buffer_blocks in [256usize, 1] {
            let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_buffer_blocks(buffer_blocks);
            let mut llc = TwoPartLlc::new(cfg);
            let slack = llc.config().refresh_slack_ticks as u64;
            let tick = llc.maintenance_interval_ns();
            let mut now = 0u64;
            let mut next_maint = tick;
            for i in 0..30_000u64 {
                now += 997;
                while next_maint <= now {
                    llc.maintain(next_maint);
                    for line in llc.lr.iter() {
                        assert!(
                            !line.is_valid()
                                || !llc.lr_rc.needs_refresh_with_slack(
                                    line.meta.written_at_ns,
                                    next_maint,
                                    slack
                                ),
                            "LR line {:#x} past due at t={next_maint}",
                            line.line_addr()
                        );
                    }
                    for line in llc.hr.iter() {
                        assert!(
                            !line.is_valid()
                                || !llc.hr_rc.needs_refresh(line.meta.written_at_ns, next_maint),
                            "HR line {:#x} past due at t={next_maint}",
                            line.line_addr()
                        );
                    }
                    next_maint += tick;
                }
                let a = addr(i.wrapping_mul(7) % 500);
                let kind = if i % 5 < 2 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                if !llc.probe(a, kind, now).hit {
                    llc.fill(a, kind.is_write(), now + 10);
                }
            }
            assert!(llc.stats().refreshes > 0, "traffic must exercise refreshes");

            // Idle past the HR deadline: resident read-only lines must now
            // expire (the traffic churn alone evicts lines long before the
            // 3 ms HR deadline, so this phase pins the expiry path).
            llc.fill(addr(900), false, now);
            llc.fill(addr(901), false, now);
            let idle_until = now + llc.config().hr_retention.as_nanos_u64() + tick;
            while next_maint <= idle_until {
                llc.maintain(next_maint);
                for line in llc.hr.iter() {
                    assert!(
                        !line.is_valid()
                            || !llc.hr_rc.needs_refresh(line.meta.written_at_ns, next_maint),
                        "HR line {:#x} past due at t={next_maint}",
                        line.line_addr()
                    );
                }
                next_maint += tick;
            }
            assert!(
                llc.stats().hr_expirations > 0,
                "idle phase must exercise HR expiry"
            );
        }
    }

    #[test]
    fn wws_stats_exposed() {
        let mut llc = small();
        llc.fill(addr(1), false, 0);
        llc.probe(addr(1), AccessKind::Write, 100);
        assert_eq!(llc.stats().migrations_to_lr, 1);
        assert_eq!(llc.stats().demand_writes_lr, 1);
        assert!((llc.stats().lr_write_utilization() - 1.0).abs() < 1e-12);
    }

    // --- fault injection ---------------------------------------------------

    use sttgpu_fault::FaultConfig;

    fn faulty(fault: FaultConfig) -> TwoPartLlc {
        TwoPartLlc::new(TwoPartConfig::new(8, 2, 56, 7, 256).with_fault(fault))
    }

    #[test]
    fn bank_faults_add_tag_latency_only() {
        let mut clean = small();
        let mut llc = faulty(FaultConfig {
            seed: 7,
            bank_fault_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let base = clean.probe(addr(1), AccessKind::Read, 0).ready_ns;
        let hit = llc.probe(addr(1), AccessKind::Read, 0).ready_ns;
        assert!(hit > base, "bank fault must delay the probe");
        assert_eq!(llc.stats().bank_faults, 1);
        assert_eq!(llc.stats().ecc_corrections, 0);
        // The retry burns tag energy but nothing else.
        assert!(
            llc.energy().dynamic_nj_for(EnergyEvent::TagLookup)
                > clean.energy().dynamic_nj_for(EnergyEvent::TagLookup)
        );
    }

    #[test]
    fn uncorrectable_read_drops_the_line_and_misses() {
        // Rate 1.0 over a long residency makes the Poisson mass enormous:
        // the flip is certain and certainly multi-bit.
        let mut llc = faulty(FaultConfig {
            seed: 3,
            flip_rate: 1.0,
            ..FaultConfig::disabled()
        });
        llc.fill(addr(5), true, 0);
        assert!(llc.lr_contains(addr(5)));
        let probe = llc.probe(addr(5), AccessKind::Read, 20_000);
        assert!(!probe.hit, "uncorrectable line must read as a miss");
        assert!(!llc.lr_contains(addr(5)), "the corrupt line is dropped");
        assert_eq!(llc.stats().ecc_uncorrectable, 1);
        assert_eq!(llc.stats().data_loss_events, 1, "dirty payload is lost");
        assert_eq!(llc.stats().read_misses, 1);
        assert!(llc.energy().dynamic_nj_for(EnergyEvent::Ecc) > 0.0);
        // The refetch refills as usual.
        llc.fill(addr(5), false, 21_000);
        assert!(llc.hr_contains(addr(5)));
    }

    #[test]
    fn write_hits_skip_ecc() {
        let mut llc = faulty(FaultConfig {
            seed: 3,
            flip_rate: 1.0,
            ..FaultConfig::disabled()
        });
        llc.fill(addr(5), true, 0);
        let probe = llc.probe(addr(5), AccessKind::Write, 20_000);
        assert!(probe.hit, "a write overwrites the payload — no ECC check");
        assert_eq!(llc.stats().ecc_uncorrectable, 0);
    }

    #[test]
    fn dropped_refreshes_lead_to_expiry() {
        let mut llc = faulty(FaultConfig {
            seed: 11,
            refresh_drop_rate: 1.0,
            ..FaultConfig::disabled()
        });
        let tick = llc.lr_rc.tick_ns();
        let retention = llc.config().lr_retention.as_nanos_u64();
        llc.fill(addr(9), true, 0);
        let mut t = tick;
        while t <= retention + tick {
            llc.maintain(t);
            t += tick;
        }
        assert!(llc.stats().refresh_drops >= 1);
        assert_eq!(llc.stats().refreshes, 0, "every refresh was dropped");
        assert_eq!(llc.stats().lr_expirations, 1, "the starved line expires");
        assert!(!llc.lr_contains(addr(9)));
    }

    #[test]
    fn buffer_stalls_fall_back_like_overflow() {
        let mut llc = faulty(FaultConfig {
            seed: 5,
            buffer_stall_rate: 1.0,
            ..FaultConfig::disabled()
        });
        llc.fill(addr(2), false, 0);
        let probe = llc.probe(addr(2), AccessKind::Write, 100);
        assert!(probe.hit);
        assert_eq!(llc.stats().buffer_stalls, 1);
        assert_eq!(llc.stats().migrations_to_lr, 0, "stall blocks the hop");
        assert!(llc.hr_contains(addr(2)), "write serviced in place instead");
    }

    #[test]
    fn zero_rate_plan_is_inert() {
        let cfg = FaultConfig {
            seed: 99,
            ..FaultConfig::disabled()
        };
        let mut clean = small();
        let mut llc = faulty(cfg);
        for i in 0..64 {
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            llc.fill(addr(i), i % 2 == 0, i * 50);
            clean.fill(addr(i), i % 2 == 0, i * 50);
            let a = llc.probe(addr(i / 2), kind, i * 50 + 25);
            let b = clean.probe(addr(i / 2), kind, i * 50 + 25);
            assert_eq!(a.hit, b.hit);
            assert_eq!(a.ready_ns, b.ready_ns);
        }
        assert_eq!(llc.stats(), clean.stats());
        assert_eq!(llc.energy(), clean.energy());
    }
}
