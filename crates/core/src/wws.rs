//! Write-working-set (WWS) monitoring.
//!
//! The paper's "monitoring logic determines write-intensive data blocks
//! forming [the] temporal WWS of the running applications" via a saturating
//! write counter (WC) per HR line. Its key observation is that a threshold
//! of **1** already maximises LR utilisation without noticeable write
//! overhead — at which point the WC degenerates to the cache's existing
//! modified bit and the monitor costs nothing ("our WWS monitor logic will
//! be fast with no overhead").
//!
//! [`WwsMonitor`] keeps the threshold configurable so Fig. 4's sweep over
//! TH ∈ {1, 3, 7, 15} can be reproduced.

use sttgpu_stats::Counter;

/// Decides when an HR-resident block has proven write-intensive enough to
/// migrate into the LR part.
///
/// # Example
///
/// ```
/// use sttgpu_core::WwsMonitor;
///
/// let mut th1 = WwsMonitor::new(1);
/// assert!(th1.should_migrate(1), "first write migrates at TH=1");
///
/// let mut th3 = WwsMonitor::new(3);
/// assert!(!th3.should_migrate(2));
/// assert!(th3.should_migrate(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WwsMonitor {
    threshold: u32,
    migrations: Counter,
    observations: Counter,
}

impl WwsMonitor {
    /// Creates a monitor with the given HR write threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (a block must be written at least
    /// once to join the WWS).
    pub fn new(threshold: u32) -> Self {
        assert!(threshold >= 1, "write threshold must be at least 1");
        WwsMonitor {
            threshold,
            migrations: Counter::new(),
            observations: Counter::new(),
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Whether the monitor is equivalent to reusing the modified bit
    /// (threshold 1 — the paper's zero-overhead configuration).
    pub fn is_modified_bit_equivalent(&self) -> bool {
        self.threshold == 1
    }

    /// Observes a block's (post-write) write count and decides whether it
    /// should migrate to LR now.
    pub fn should_migrate(&mut self, write_count: u32) -> bool {
        let migrate = write_count >= self.threshold;
        self.record(migrate);
        migrate
    }

    /// Records an externally-taken migration decision — used when a
    /// pluggable [`MigrationPolicy`](crate::MigrationPolicy) owns the
    /// decision and the monitor only keeps the observation statistics.
    pub fn record(&mut self, migrated: bool) {
        self.observations.inc();
        if migrated {
            self.migrations.inc();
        }
    }

    /// Number of migrate decisions taken.
    pub fn migrations(&self) -> u64 {
        self.migrations.get()
    }

    /// Number of write observations made.
    pub fn observations(&self) -> u64 {
        self.observations.get()
    }

    /// Fraction of observed writes that triggered migration.
    pub fn migration_rate(&self) -> f64 {
        self.migrations.ratio_of(self.observations)
    }

    /// Resets the monitor's statistics (not its threshold).
    pub fn reset_stats(&mut self) {
        self.migrations.reset();
        self.observations.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_one_is_modified_bit() {
        assert!(WwsMonitor::new(1).is_modified_bit_equivalent());
        assert!(!WwsMonitor::new(3).is_modified_bit_equivalent());
    }

    #[test]
    fn decision_boundary() {
        let mut m = WwsMonitor::new(7);
        for c in 1..7 {
            assert!(!m.should_migrate(c), "count {c} below threshold");
        }
        assert!(m.should_migrate(7));
        assert!(m.should_migrate(8));
    }

    #[test]
    fn statistics_track_decisions() {
        let mut m = WwsMonitor::new(3);
        m.should_migrate(1);
        m.should_migrate(3);
        m.should_migrate(5);
        assert_eq!(m.observations(), 3);
        assert_eq!(m.migrations(), 2);
        assert!((m.migration_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_keeps_threshold() {
        let mut m = WwsMonitor::new(15);
        m.should_migrate(20);
        m.reset_stats();
        assert_eq!(m.threshold(), 15);
        assert_eq!(m.observations(), 0);
        assert_eq!(m.migrations(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threshold() {
        WwsMonitor::new(0);
    }
}
