//! Pluggable runtime LLC policies behind trait seams.
//!
//! The paper fixes three decisions at design time: the WWS write-threshold
//! migration rule, the per-part retention targets, and the LR/HR capacity
//! split. This module lifts each behind a trait — [`MigrationPolicy`],
//! [`RetentionPolicy`], [`PartitionPolicy`] — and unifies them (plus the
//! existing replacement hook) in one [`PolicyEngine`] registry selected
//! from [`TwoPartConfig`] by name.
//!
//! Three policies ship:
//!
//! * [`LlcPolicy::Fixed`] — the paper-exact configuration. The engine
//!   never evaluates an epoch, so the refactored cache is observationally
//!   identical (to the byte) to the pre-trait implementation.
//! * [`LlcPolicy::AdaptiveRetention`] — HALLS-style runtime retention
//!   scaling: per epoch, if the LR part refreshes more than it absorbs
//!   demand writes, the retention ladder steps up (fewer refreshes);
//!   if demand writes dominate refreshes 4:1 it steps back down (cheaper
//!   writes). Levels multiply the base LR retention by
//!   [`RETENTION_LADDER`].
//! * [`LlcPolicy::AdaptiveWays`] — Mittal-style way reconfiguration: the
//!   HR part's active associativity shrinks when per-epoch HR write
//!   traffic (the growth of the HR write-count matrix) falls below 1/8th
//!   of the active line count, and grows back one way at a time under
//!   write pressure. Reassigned ways are drained safely (dirty victims
//!   write back) before leaving service.
//!
//! The same engine is embedded by both [`TwoPartLlc`](crate::TwoPartLlc)
//! and the differential oracle, so adaptive decisions provably coincide:
//! the oracle harness compares the full statistics block after every
//! operation, and the engine's decisions are a pure function of those
//! statistics plus time.

use std::fmt;

use sttgpu_cache::ReplacementPolicy;
use sttgpu_device::mtj::RetentionTime;

use crate::config::TwoPartConfig;
use crate::retention::RetentionTracker;
use crate::two_part::TwoPartStats;

/// Length of one policy-evaluation epoch, ns. Short enough that fuzz
/// traces (tens of microseconds) cross several epochs, long enough to
/// accumulate a meaningful stats delta.
pub const POLICY_EPOCH_NS: u64 = 10_000;

/// Retention multipliers the adaptive-retention ladder steps through,
/// level 0 first. Level 0 is the configured (paper) retention target.
pub const RETENTION_LADDER: [u64; 3] = [1, 2, 4];

/// Which shipped policy bundle a [`TwoPartConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LlcPolicy {
    /// The paper-exact fixed policy (default): threshold migration,
    /// static retention, static partition.
    #[default]
    Fixed,
    /// HALLS-style runtime retention-level adaptation of the LR part.
    AdaptiveRetention,
    /// Write-pressure-driven HR way reconfiguration.
    AdaptiveWays,
}

impl LlcPolicy {
    /// Every shipped policy, `Fixed` first.
    pub const ALL: [LlcPolicy; 3] = [
        LlcPolicy::Fixed,
        LlcPolicy::AdaptiveRetention,
        LlcPolicy::AdaptiveWays,
    ];

    /// The policy's registry name (the `--llc-policy` CLI value).
    pub fn name(self) -> &'static str {
        match self {
            LlcPolicy::Fixed => "fixed",
            LlcPolicy::AdaptiveRetention => "adaptive-retention",
            LlcPolicy::AdaptiveWays => "adaptive-ways",
        }
    }

    /// Looks a policy up by its registry name.
    pub fn parse(name: &str) -> Option<LlcPolicy> {
        LlcPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for LlcPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Decides when HR-resident blocks join the write working set and where
/// fills land — the seam replacing the hard-coded threshold comparisons.
pub trait MigrationPolicy: fmt::Debug + Send {
    /// Whether a block whose (post-write) HR write count is `write_count`
    /// migrates to LR now.
    fn should_migrate(&self, write_count: u32) -> bool;

    /// Whether the *next* demand write to a block currently at
    /// `count_before_write` will trigger migration (the fault model's ECC
    /// prediction hook — must match `should_migrate` after one more
    /// write).
    fn migration_due(&self, count_before_write: u32) -> bool;

    /// Whether a DRAM fill with the given dirtiness goes straight to LR.
    fn fill_to_lr(&self, dirty: bool) -> bool;

    /// Clones the policy behind its trait object.
    fn clone_box(&self) -> Box<dyn MigrationPolicy>;
}

/// The paper's rule: migrate at a fixed saturating write-count threshold;
/// dirty fills go to LR iff one write already meets the threshold.
#[derive(Debug, Clone)]
pub struct ThresholdMigration {
    threshold: u32,
}

impl ThresholdMigration {
    /// Creates the rule for the configured threshold.
    pub fn new(threshold: u32) -> Self {
        ThresholdMigration { threshold }
    }
}

impl MigrationPolicy for ThresholdMigration {
    fn should_migrate(&self, write_count: u32) -> bool {
        write_count >= self.threshold
    }

    fn migration_due(&self, count_before_write: u32) -> bool {
        count_before_write.saturating_add(1) >= self.threshold
    }

    fn fill_to_lr(&self, dirty: bool) -> bool {
        dirty && 1 >= self.threshold
    }

    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(self.clone())
    }
}

/// Chooses the LR retention ladder level once per epoch from the stats
/// delta accumulated over that epoch.
pub trait RetentionPolicy: fmt::Debug + Send {
    /// Returns `Some(new_level)` to switch ladder levels, `None` to stay.
    fn epoch(&mut self, delta: &TwoPartStats, level: u32) -> Option<u32>;

    /// Clones the policy behind its trait object.
    fn clone_box(&self) -> Box<dyn RetentionPolicy>;
}

/// Static retention — never switches (the paper's design).
#[derive(Debug, Clone)]
pub struct StaticRetention;

impl RetentionPolicy for StaticRetention {
    fn epoch(&mut self, _delta: &TwoPartStats, _level: u32) -> Option<u32> {
        None
    }

    fn clone_box(&self) -> Box<dyn RetentionPolicy> {
        Box::new(self.clone())
    }
}

/// HALLS-style adaptation: refresh-dominated epochs climb the ladder
/// (longer retention, fewer refreshes); write-dominated epochs (demand
/// writes outnumbering refreshes 4:1) descend it (cheaper LR writes).
#[derive(Debug, Clone)]
pub struct HallsRetention;

impl RetentionPolicy for HallsRetention {
    fn epoch(&mut self, delta: &TwoPartStats, level: u32) -> Option<u32> {
        let top = (RETENTION_LADDER.len() - 1) as u32;
        if delta.refreshes > delta.demand_writes_lr && level < top {
            Some(level + 1)
        } else if delta.refreshes * 4 < delta.demand_writes_lr && level > 0 {
            Some(level - 1)
        } else {
            None
        }
    }

    fn clone_box(&self) -> Box<dyn RetentionPolicy> {
        Box::new(self.clone())
    }
}

/// Chooses the HR part's active associativity once per epoch.
pub trait PartitionPolicy: fmt::Debug + Send {
    /// Returns `Some(new_ways)` (within `[min_ways, max_ways]`) to
    /// reconfigure, `None` to stay. `hr_sets` sizes one way in lines.
    fn epoch(
        &mut self,
        delta: &TwoPartStats,
        active_ways: u32,
        min_ways: u32,
        max_ways: u32,
        hr_sets: u64,
    ) -> Option<u32>;

    /// Clones the policy behind its trait object.
    fn clone_box(&self) -> Box<dyn PartitionPolicy>;
}

/// Static partition — never reconfigures (the paper's design).
#[derive(Debug, Clone)]
pub struct StaticPartition;

impl PartitionPolicy for StaticPartition {
    fn epoch(
        &mut self,
        _delta: &TwoPartStats,
        _active_ways: u32,
        _min_ways: u32,
        _max_ways: u32,
        _hr_sets: u64,
    ) -> Option<u32> {
        None
    }

    fn clone_box(&self) -> Box<dyn PartitionPolicy> {
        Box::new(self.clone())
    }
}

/// Way reconfiguration driven by HR write pressure. The per-epoch signal
/// `hr_write_hits + demotions_to_hr + fills_to_hr` equals the growth of
/// the HR write-count matrix (every term bumps exactly one HR
/// `position_writes` cell and nothing else does), re-expressed over the
/// statistics block so the differential oracle can mirror it exactly.
#[derive(Debug, Clone)]
pub struct WritePressurePartition;

impl PartitionPolicy for WritePressurePartition {
    fn epoch(
        &mut self,
        delta: &TwoPartStats,
        active_ways: u32,
        min_ways: u32,
        max_ways: u32,
        hr_sets: u64,
    ) -> Option<u32> {
        let traffic = delta.hr_write_hits + delta.demotions_to_hr + delta.fills_to_hr;
        let active_lines = hr_sets * active_ways as u64;
        if traffic > active_lines && active_ways < max_ways {
            Some(active_ways + 1)
        } else if traffic * 8 < active_lines && active_ways > min_ways {
            Some(active_ways - 1)
        } else {
            None
        }
    }

    fn clone_box(&self) -> Box<dyn PartitionPolicy> {
        Box::new(self.clone())
    }
}

/// Reconfigurations one epoch evaluation requested. At most one field is
/// populated per shipped policy (each adapts a single dimension).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochActions {
    /// New LR retention ladder level to apply, if any.
    pub retention_level: Option<u32>,
    /// New HR active associativity to apply, if any.
    pub hr_ways: Option<u32>,
}

impl EpochActions {
    /// No reconfiguration.
    pub const NONE: EpochActions = EpochActions {
        retention_level: None,
        hr_ways: None,
    };
}

/// The runtime policy registry both the cache implementation and the
/// differential oracle embed.
///
/// All decision state (epoch clock, stats baseline, ladder level) lives
/// here, in one shared type — the two machines cannot drift apart by
/// hand-mirroring a state machine, because there is only one.
#[derive(Debug)]
pub struct PolicyEngine {
    policy: LlcPolicy,
    migration: Box<dyn MigrationPolicy>,
    retention: Box<dyn RetentionPolicy>,
    partition: Box<dyn PartitionPolicy>,
    replacement: ReplacementPolicy,
    retention_level: u32,
    next_epoch_ns: u64,
    baseline: TwoPartStats,
    switches: u64,
}

impl Clone for PolicyEngine {
    fn clone(&self) -> Self {
        PolicyEngine {
            policy: self.policy,
            migration: self.migration.clone_box(),
            retention: self.retention.clone_box(),
            partition: self.partition.clone_box(),
            replacement: self.replacement,
            retention_level: self.retention_level,
            next_epoch_ns: self.next_epoch_ns,
            baseline: self.baseline,
            switches: self.switches,
        }
    }
}

impl PolicyEngine {
    /// Instantiates the registry the configuration names.
    pub fn new(cfg: &TwoPartConfig) -> Self {
        let migration: Box<dyn MigrationPolicy> =
            Box::new(ThresholdMigration::new(cfg.write_threshold));
        let (retention, partition): (Box<dyn RetentionPolicy>, Box<dyn PartitionPolicy>) = match cfg
            .policy
        {
            LlcPolicy::Fixed => (Box::new(StaticRetention), Box::new(StaticPartition)),
            LlcPolicy::AdaptiveRetention => (Box::new(HallsRetention), Box::new(StaticPartition)),
            LlcPolicy::AdaptiveWays => {
                (Box::new(StaticRetention), Box::new(WritePressurePartition))
            }
        };
        PolicyEngine {
            policy: cfg.policy,
            migration,
            retention,
            partition,
            replacement: cfg.replacement,
            retention_level: 0,
            next_epoch_ns: POLICY_EPOCH_NS,
            baseline: TwoPartStats::default(),
            switches: 0,
        }
    }

    /// The selected policy bundle.
    pub fn policy(&self) -> LlcPolicy {
        self.policy
    }

    /// Whether this is the paper-exact fixed bundle (the epoch hook
    /// early-returns, leaving the hot loop untouched).
    pub fn is_fixed(&self) -> bool {
        self.policy == LlcPolicy::Fixed
    }

    /// The replacement policy the registry unifies.
    pub fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Current LR retention ladder level.
    pub fn retention_level(&self) -> u32 {
        self.retention_level
    }

    /// Number of reconfigurations applied so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Migration decision for a block at (post-write) `write_count`.
    pub fn should_migrate(&self, write_count: u32) -> bool {
        self.migration.should_migrate(write_count)
    }

    /// Whether the next demand write at `count_before_write` migrates.
    pub fn migration_due(&self, count_before_write: u32) -> bool {
        self.migration.migration_due(count_before_write)
    }

    /// Whether a fill of the given dirtiness lands in LR.
    pub fn fill_to_lr(&self, dirty: bool) -> bool {
        self.migration.fill_to_lr(dirty)
    }

    /// Evaluates at most one policy epoch. Call from `maintain` before
    /// the refresh/expiry engines, passing the machine's current
    /// statistics and HR geometry; apply any returned actions
    /// immediately. A fixed engine returns [`EpochActions::NONE`] without
    /// touching any state.
    pub fn poll(
        &mut self,
        now_ns: u64,
        stats: &TwoPartStats,
        active_ways: u32,
        max_ways: u32,
        hr_sets: u64,
    ) -> EpochActions {
        if self.is_fixed() || now_ns < self.next_epoch_ns {
            return EpochActions::NONE;
        }
        // One evaluation per crossing, re-armed on the epoch grid, so
        // sparse maintenance (long idle gaps) costs one evaluation, not
        // one per elapsed epoch.
        self.next_epoch_ns = (now_ns / POLICY_EPOCH_NS + 1) * POLICY_EPOCH_NS;
        let delta = stats_delta(stats, &self.baseline);
        self.baseline = *stats;
        let retention_level = self.retention.epoch(&delta, self.retention_level);
        if let Some(level) = retention_level {
            self.retention_level = level;
            self.switches += 1;
        }
        let min_ways = (max_ways / 2).max(1);
        let hr_ways = self
            .partition
            .epoch(&delta, active_ways, min_ways, max_ways, hr_sets);
        if hr_ways.is_some() {
            self.switches += 1;
        }
        EpochActions {
            retention_level,
            hr_ways,
        }
    }

    /// Re-zeroes the stats-delta baseline; call wherever the embedding
    /// machine resets its statistics, or the first post-reset epoch would
    /// see a wildly negative (saturated-to-zero) delta window.
    pub fn reset_baseline(&mut self) {
        self.baseline = TwoPartStats::default();
    }
}

/// Field-wise saturating difference of two statistics snapshots.
fn stats_delta(now: &TwoPartStats, then: &TwoPartStats) -> TwoPartStats {
    TwoPartStats {
        lr_read_hits: now.lr_read_hits.saturating_sub(then.lr_read_hits),
        hr_read_hits: now.hr_read_hits.saturating_sub(then.hr_read_hits),
        lr_write_hits: now.lr_write_hits.saturating_sub(then.lr_write_hits),
        hr_write_hits: now.hr_write_hits.saturating_sub(then.hr_write_hits),
        read_misses: now.read_misses.saturating_sub(then.read_misses),
        write_misses: now.write_misses.saturating_sub(then.write_misses),
        demand_writes_lr: now.demand_writes_lr.saturating_sub(then.demand_writes_lr),
        demand_writes_hr: now.demand_writes_hr.saturating_sub(then.demand_writes_hr),
        lr_array_writes: now.lr_array_writes.saturating_sub(then.lr_array_writes),
        hr_array_writes: now.hr_array_writes.saturating_sub(then.hr_array_writes),
        migrations_to_lr: now.migrations_to_lr.saturating_sub(then.migrations_to_lr),
        demotions_to_hr: now.demotions_to_hr.saturating_sub(then.demotions_to_hr),
        refreshes: now.refreshes.saturating_sub(then.refreshes),
        lr_expirations: now.lr_expirations.saturating_sub(then.lr_expirations),
        hr_expirations: now.hr_expirations.saturating_sub(then.hr_expirations),
        writebacks: now.writebacks.saturating_sub(then.writebacks),
        overflow_writebacks: now
            .overflow_writebacks
            .saturating_sub(then.overflow_writebacks),
        second_search_hits: now
            .second_search_hits
            .saturating_sub(then.second_search_hits),
        fills_to_lr: now.fills_to_lr.saturating_sub(then.fills_to_lr),
        fills_to_hr: now.fills_to_hr.saturating_sub(then.fills_to_hr),
        lr_rotations: now.lr_rotations.saturating_sub(then.lr_rotations),
        ecc_corrections: now.ecc_corrections.saturating_sub(then.ecc_corrections),
        ecc_uncorrectable: now.ecc_uncorrectable.saturating_sub(then.ecc_uncorrectable),
        data_loss_events: now.data_loss_events.saturating_sub(then.data_loss_events),
        refresh_drops: now.refresh_drops.saturating_sub(then.refresh_drops),
        buffer_stalls: now.buffer_stalls.saturating_sub(then.buffer_stalls),
        bank_faults: now.bank_faults.saturating_sub(then.bank_faults),
    }
}

/// The LR retention tracker at ladder level `level` (level 0 = the
/// configured base retention).
pub fn lr_tracker_at(base: RetentionTime, bits: u32, level: u32) -> RetentionTracker {
    let mult = RETENTION_LADDER[level as usize];
    let scaled = RetentionTime::from_nanos((base.as_nanos_u64() * mult) as f64);
    RetentionTracker::new(scaled, bits)
}

/// The LR maintenance-cadence floor under `policy`: the minimum safe
/// sweep interval over every retention level the policy can select, so a
/// cadence chosen at setup stays sound across runtime switches.
pub fn lr_maintenance_floor_ns(policy: LlcPolicy, base: RetentionTime, bits: u32) -> u64 {
    match policy {
        LlcPolicy::AdaptiveRetention => (0..RETENTION_LADDER.len() as u32)
            .map(|level| lr_tracker_at(base, bits, level).maintenance_interval_ns())
            .min()
            .expect("ladder is non-empty"),
        LlcPolicy::Fixed | LlcPolicy::AdaptiveWays => {
            RetentionTracker::new(base, bits).maintenance_interval_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: LlcPolicy) -> TwoPartConfig {
        let mut c = TwoPartConfig::new(8, 2, 56, 7, 256);
        c.policy = policy;
        c
    }

    #[test]
    fn names_round_trip() {
        for p in LlcPolicy::ALL {
            assert_eq!(LlcPolicy::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(LlcPolicy::parse("nope"), None);
        assert_eq!(LlcPolicy::default(), LlcPolicy::Fixed);
    }

    #[test]
    fn threshold_migration_matches_the_paper_rules() {
        let m = ThresholdMigration::new(3);
        assert!(!m.should_migrate(2));
        assert!(m.should_migrate(3));
        assert!(!m.migration_due(1), "write 2 of 3 is not due");
        assert!(m.migration_due(2), "write 3 of 3 is due");
        assert!(!m.fill_to_lr(true), "dirty fill stays in HR above TH=1");
        let th1 = ThresholdMigration::new(1);
        assert!(th1.fill_to_lr(true));
        assert!(!th1.fill_to_lr(false));
    }

    #[test]
    fn fixed_engine_never_evaluates() {
        let mut e = PolicyEngine::new(&cfg(LlcPolicy::Fixed));
        assert!(e.is_fixed());
        let stats = TwoPartStats {
            refreshes: 1_000_000,
            ..TwoPartStats::default()
        };
        for t in [0, POLICY_EPOCH_NS, 100 * POLICY_EPOCH_NS] {
            assert_eq!(e.poll(t, &stats, 7, 7, 32), EpochActions::NONE);
        }
        assert_eq!(e.switches(), 0);
    }

    #[test]
    fn halls_ladder_steps_on_refresh_pressure() {
        let mut e = PolicyEngine::new(&cfg(LlcPolicy::AdaptiveRetention));
        // Epoch 1: refresh-dominated -> step up.
        let mut stats = TwoPartStats {
            refreshes: 50,
            demand_writes_lr: 10,
            ..TwoPartStats::default()
        };
        let a = e.poll(POLICY_EPOCH_NS, &stats, 7, 7, 32);
        assert_eq!(a.retention_level, Some(1));
        // Epoch 2: balanced delta -> hold.
        stats.refreshes += 20;
        stats.demand_writes_lr += 30;
        let a = e.poll(2 * POLICY_EPOCH_NS, &stats, 7, 7, 32);
        assert_eq!(a, EpochActions::NONE);
        // Epoch 3: write-dominated -> step down.
        stats.demand_writes_lr += 400;
        let a = e.poll(3 * POLICY_EPOCH_NS, &stats, 7, 7, 32);
        assert_eq!(a.retention_level, Some(0));
        assert_eq!(e.switches(), 2);
    }

    #[test]
    fn halls_ladder_clamps_at_both_ends() {
        let mut halls = HallsRetention;
        let refresh_heavy = TwoPartStats {
            refreshes: 100,
            ..TwoPartStats::default()
        };
        let top = (RETENTION_LADDER.len() - 1) as u32;
        assert_eq!(halls.epoch(&refresh_heavy, top), None, "clamped at top");
        let write_heavy = TwoPartStats {
            demand_writes_lr: 100,
            ..TwoPartStats::default()
        };
        assert_eq!(halls.epoch(&write_heavy, 0), None, "clamped at bottom");
    }

    #[test]
    fn write_pressure_partition_grows_and_shrinks_within_bounds() {
        let mut p = WritePressurePartition;
        let hr_sets = 32u64;
        let busy = TwoPartStats {
            hr_write_hits: 200,
            fills_to_hr: 50,
            ..TwoPartStats::default()
        }; // traffic 250 > 7*32 = 224
        assert_eq!(p.epoch(&busy, 7, 3, 7, hr_sets), None, "already at max");
        assert_eq!(p.epoch(&busy, 5, 3, 7, hr_sets), Some(6));
        let idle = TwoPartStats::default(); // traffic 0
        assert_eq!(p.epoch(&idle, 7, 3, 7, hr_sets), Some(6));
        assert_eq!(p.epoch(&idle, 3, 3, 7, hr_sets), None, "clamped at min");
    }

    #[test]
    fn poll_is_once_per_epoch_crossing() {
        let mut e = PolicyEngine::new(&cfg(LlcPolicy::AdaptiveWays));
        let stats = TwoPartStats::default();
        // Idle traffic shrinks one way per epoch, not per call.
        let a = e.poll(POLICY_EPOCH_NS, &stats, 7, 7, 32);
        assert_eq!(a.hr_ways, Some(6));
        let a = e.poll(POLICY_EPOCH_NS + 1, &stats, 6, 7, 32);
        assert_eq!(a, EpochActions::NONE, "same epoch: no re-evaluation");
        // A long gap still evaluates exactly once.
        let a = e.poll(50 * POLICY_EPOCH_NS, &stats, 6, 7, 32);
        assert_eq!(a.hr_ways, Some(5));
    }

    #[test]
    fn engine_clone_preserves_decision_state() {
        let mut e = PolicyEngine::new(&cfg(LlcPolicy::AdaptiveRetention));
        let stats = TwoPartStats {
            refreshes: 50,
            ..TwoPartStats::default()
        };
        e.poll(POLICY_EPOCH_NS, &stats, 7, 7, 32);
        let c = e.clone();
        assert_eq!(c.retention_level(), e.retention_level());
        assert_eq!(c.switches(), e.switches());
        assert_eq!(c.policy(), e.policy());
    }

    #[test]
    fn ladder_trackers_scale_retention() {
        let base = RetentionTime::from_micros(26.5);
        assert_eq!(lr_tracker_at(base, 4, 0).retention_ns(), 26_500);
        assert_eq!(lr_tracker_at(base, 4, 1).retention_ns(), 53_000);
        assert_eq!(lr_tracker_at(base, 4, 2).retention_ns(), 106_000);
    }

    #[test]
    fn maintenance_floor_covers_every_ladder_level() {
        let base = RetentionTime::from_micros(26.5);
        let floor = lr_maintenance_floor_ns(LlcPolicy::AdaptiveRetention, base, 4);
        for level in 0..RETENTION_LADDER.len() as u32 {
            assert!(floor <= lr_tracker_at(base, 4, level).maintenance_interval_ns());
        }
        assert_eq!(
            lr_maintenance_floor_ns(LlcPolicy::Fixed, base, 4),
            RetentionTracker::new(base, 4).maintenance_interval_ns()
        );
    }
}
