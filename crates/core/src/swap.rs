//! Swap buffers between the LR and HR parts.
//!
//! "Write latency gap between HR and LR parts may cause problem when a
//! block leaves [one] part; so, small buffers are needed to support data
//! block migration." Each direction (HR→LR, LR→HR) gets a small buffer;
//! the LR→HR buffer doubles as the staging point for LR refresh. "On
//! buffer full, dirty lines are forced to be written back in main memory,
//! in order to avoid data loss" — an overflow therefore does not stall the
//! cache, it costs a DRAM write-back instead.
//!
//! A buffer entry occupies a slot from when the migration is accepted
//! until the destination array finishes writing the block; the model keeps
//! the completion time per slot and prunes lazily.

use sttgpu_stats::Counter;

/// A capacity-limited migration buffer between the two cache parts.
///
/// # Example
///
/// ```
/// use sttgpu_core::SwapBuffer;
///
/// let mut buf = SwapBuffer::new(2);
/// assert!(buf.try_reserve(0, 100)); // occupied until t=100
/// assert!(buf.try_reserve(0, 120));
/// assert!(!buf.try_reserve(50, 130), "full until the first write retires");
/// assert!(buf.try_reserve(100, 180), "slot freed at t=100");
/// assert_eq!(buf.overflows(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapBuffer {
    capacity: usize,
    completions: Vec<u64>,
    overflows: Counter,
    admissions: Counter,
    peak_occupancy: usize,
}

impl SwapBuffer {
    /// Creates a buffer holding up to `capacity` in-flight blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "swap buffer needs capacity");
        SwapBuffer {
            capacity,
            completions: Vec::with_capacity(capacity),
            overflows: Counter::new(),
            admissions: Counter::new(),
            peak_occupancy: 0,
        }
    }

    /// The buffer's slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn prune(&mut self, now_ns: u64) {
        self.completions.retain(|&c| c > now_ns);
    }

    /// Attempts to admit a block whose destination write completes at
    /// `completes_at_ns`. Returns `false` — and counts an overflow — when
    /// every slot is still occupied at `now_ns`.
    pub fn try_reserve(&mut self, now_ns: u64, completes_at_ns: u64) -> bool {
        self.prune(now_ns);
        if self.completions.len() >= self.capacity {
            self.overflows.inc();
            return false;
        }
        self.completions.push(completes_at_ns);
        self.admissions.inc();
        self.peak_occupancy = self.peak_occupancy.max(self.completions.len());
        true
    }

    /// Number of blocks in flight at `now_ns`.
    pub fn occupancy(&mut self, now_ns: u64) -> usize {
        self.prune(now_ns);
        self.completions.len()
    }

    /// Total blocks admitted.
    pub fn admissions(&self) -> u64 {
        self.admissions.get()
    }

    /// Total admission failures (each costs a forced DRAM write-back for
    /// dirty blocks).
    pub fn overflows(&self) -> u64 {
        self.overflows.get()
    }

    /// Highest simultaneous occupancy seen (for sizing studies).
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Clears in-flight state and statistics.
    pub fn reset(&mut self) {
        self.completions.clear();
        self.overflows.reset();
        self.admissions.reset();
        self.peak_occupancy = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_full() {
        let mut b = SwapBuffer::new(3);
        assert!(b.try_reserve(0, 10));
        assert!(b.try_reserve(0, 20));
        assert!(b.try_reserve(0, 30));
        assert!(!b.try_reserve(5, 40));
        assert_eq!(b.admissions(), 3);
        assert_eq!(b.overflows(), 1);
    }

    #[test]
    fn slots_free_at_completion_time() {
        let mut b = SwapBuffer::new(1);
        assert!(b.try_reserve(0, 100));
        assert!(!b.try_reserve(99, 200), "still occupied at t=99");
        assert!(b.try_reserve(100, 200), "free exactly at completion");
    }

    #[test]
    fn occupancy_reflects_in_flight() {
        let mut b = SwapBuffer::new(4);
        b.try_reserve(0, 10);
        b.try_reserve(0, 20);
        assert_eq!(b.occupancy(5), 2);
        assert_eq!(b.occupancy(15), 1);
        assert_eq!(b.occupancy(25), 0);
    }

    #[test]
    fn peak_occupancy_is_sticky() {
        let mut b = SwapBuffer::new(4);
        b.try_reserve(0, 10);
        b.try_reserve(0, 10);
        b.try_reserve(0, 10);
        assert_eq!(b.occupancy(50), 0);
        assert_eq!(b.peak_occupancy(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = SwapBuffer::new(1);
        b.try_reserve(0, 10);
        b.try_reserve(0, 10);
        b.reset();
        assert_eq!(b.admissions(), 0);
        assert_eq!(b.overflows(), 0);
        assert_eq!(b.occupancy(0), 0);
        assert_eq!(b.peak_occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn rejects_zero_capacity() {
        SwapBuffer::new(0);
    }
}
