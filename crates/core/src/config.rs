//! Configuration of the two-part LLC.

use std::fmt;

use sttgpu_cache::ReplacementPolicy;
use sttgpu_device::mtj::RetentionTime;
use sttgpu_fault::FaultConfig;

use crate::policy::LlcPolicy;

/// A structured reason why a [`TwoPartConfig`] describes an impossible
/// geometry. Returned by [`TwoPartConfig::validate`]; the panicking
/// constructors print the same message.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The line size is not a power of two.
    LineSize {
        /// Offending line size, bytes.
        line_bytes: u32,
    },
    /// The migration write threshold is zero.
    WriteThreshold,
    /// The migration write threshold cannot be reached by the saturating
    /// WWS write counter, or the counter width itself is out of range —
    /// a block's count would stick below the threshold and migration
    /// silently never fires.
    WwsCounterWidth {
        /// WWS counter width, bits.
        bits: u32,
        /// Configured write threshold.
        threshold: u32,
    },
    /// A swap buffer has no capacity.
    BufferCapacity,
    /// A part's capacity does not divide into whole sets.
    PartialSets {
        /// Part name ("LR" or "HR").
        part: &'static str,
        /// Capacity, KB.
        kb: u64,
        /// Associativity.
        ways: u32,
    },
    /// A retention-counter width is outside `[1, 16]`.
    CounterWidth {
        /// Part name ("LR" or "HR").
        part: &'static str,
        /// Offending width, bits.
        bits: u32,
    },
    /// A retention target is so short that one counter tick rounds to
    /// zero nanoseconds (the condition `retention.rs` asserts).
    RetentionTooShort {
        /// Part name ("LR" or "HR").
        part: &'static str,
        /// Counter width, bits.
        bits: u32,
    },
    /// The early-write-termination savings fraction is outside `[0, 0.9]`.
    EwtSavings {
        /// Offending fraction.
        savings: f64,
    },
    /// The refresh slack leaves no retention life before the deadline.
    RefreshSlack {
        /// Offending slack, ticks.
        slack: u32,
    },
    /// The LR wear-rotation period is zero.
    RotationPeriod,
    /// An injected fault rate is outside `[0, 1]` or not finite.
    FaultRate {
        /// Which mechanism ("flip", "refresh-drop", "buffer-stall",
        /// "bank-fault").
        mechanism: &'static str,
        /// Offending rate.
        rate: f64,
    },
    /// A latency derived from the device model is NaN, negative,
    /// infinite, or too large for integer-nanosecond timing — the `as
    /// u64` cast in the cache would silently turn it into garbage.
    DeviceLatency {
        /// Part name ("LR" or "HR").
        part: &'static str,
        /// Which latency ("tag", "read", "write", "read-occupancy",
        /// "write-occupancy").
        which: &'static str,
        /// Offending latency, ns.
        ns: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LineSize { line_bytes } => {
                write!(f, "line size must be a power of two (got {line_bytes} B)")
            }
            ConfigError::WriteThreshold => write!(f, "write threshold must be at least 1"),
            ConfigError::WwsCounterWidth { bits, threshold } => write!(
                f,
                "write threshold {threshold} does not fit a {bits}-bit WWS counter"
            ),
            ConfigError::BufferCapacity => write!(f, "swap buffers need capacity"),
            ConfigError::PartialSets { part, kb, ways } => write!(
                f,
                "{part} capacity must form whole sets ({kb} KB does not divide into {ways}-way sets)"
            ),
            ConfigError::CounterWidth { part, bits } => {
                write!(f, "{part} retention-counter width {bits} out of range [1, 16]")
            }
            ConfigError::RetentionTooShort { part, bits } => {
                write!(f, "{part} retention too short for a {bits}-bit counter")
            }
            ConfigError::EwtSavings { savings } => {
                write!(f, "EWT savings out of range: {savings} not in [0, 0.9]")
            }
            ConfigError::RefreshSlack { slack } => {
                write!(f, "refresh slack {slack} leaves no retention life")
            }
            ConfigError::RotationPeriod => write!(f, "rotation period must be positive"),
            ConfigError::FaultRate { mechanism, rate } => {
                write!(f, "fault {mechanism} rate {rate} outside [0, 1]")
            }
            ConfigError::DeviceLatency { part, which, ns } => write!(
                f,
                "{part} {which} latency {ns} ns is not a usable finite non-negative duration"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Upper bound on a single device latency, ns (~11.5 days). Anything
/// larger is a device-table bug, and values approaching 2^63 would make
/// the `ceil() as u64` casts in the cache wrap.
const MAX_DEVICE_LATENCY_NS: f64 = 1e15;

/// Checks that one device-derived latency is a finite, non-negative
/// duration small enough for integer-nanosecond timing.
pub(crate) fn check_latency_ns(
    part: &'static str,
    which: &'static str,
    ns: f64,
) -> Result<(), ConfigError> {
    if !ns.is_finite() || !(0.0..=MAX_DEVICE_LATENCY_NS).contains(&ns) {
        return Err(ConfigError::DeviceLatency { part, which, ns });
    }
    Ok(())
}

/// How the two tag arrays are searched on an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchMode {
    /// Probe one part first (chosen by access type: writes→LR, reads→HR)
    /// and the other only on a first-part miss. Slower on
    /// "wrong-first-guess" accesses but cheaper — the paper's default.
    #[default]
    Sequential,
    /// Probe both tag arrays at once. Faster misses, two tag energies per
    /// access.
    Parallel,
}

/// Full configuration of a [`TwoPartLlc`](crate::TwoPartLlc).
///
/// Defaults follow the paper: 2-way LR, write threshold 1, 4-bit LR / 2-bit
/// HR retention counters, 26.5 µs LR and 4 ms HR retention, 10-block swap
/// buffers, sequential search.
///
/// # Example
///
/// ```
/// use sttgpu_core::TwoPartConfig;
///
/// // The paper's C1 geometry: 192 KB 2-way LR + 1344 KB 7-way HR.
/// let cfg = TwoPartConfig::new(192, 2, 1344, 7, 256);
/// assert_eq!(cfg.lr_sets(), 384);
/// assert_eq!(cfg.hr_sets(), 768);
/// assert_eq!(cfg.write_threshold, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPartConfig {
    /// Cache line size, bytes (paper: 256 B).
    pub line_bytes: u32,
    /// LR data capacity, KB.
    pub lr_kb: u64,
    /// LR associativity (paper: 2).
    pub lr_ways: u32,
    /// HR data capacity, KB.
    pub hr_kb: u64,
    /// HR associativity (paper: 7).
    pub hr_ways: u32,
    /// LR bank count.
    pub lr_banks: u32,
    /// HR bank count ("the HR part should be sufficiently banked").
    pub hr_banks: u32,
    /// LR retention target.
    pub lr_retention: RetentionTime,
    /// HR retention target (paper §4: 4 ms handles >90 % of HR rewrites).
    pub hr_retention: RetentionTime,
    /// LR retention-counter width, bits (paper: 4).
    pub lr_rc_bits: u32,
    /// HR retention-counter width, bits (paper: 2).
    pub hr_rc_bits: u32,
    /// HR write count at which a block migrates to LR (paper: 1 — the
    /// modified bit suffices; Fig. 4 sweeps {1, 3, 7, 15}).
    pub write_threshold: u32,
    /// Width of the saturating per-block WWS write counter, bits. The
    /// threshold must be reachable: `write_threshold <= 2^bits - 1`.
    pub wws_counter_bits: u32,
    /// Runtime policy bundle steering migration/retention/partitioning
    /// (default: the paper-exact fixed policy).
    pub policy: LlcPolicy,
    /// Capacity of each swap buffer, blocks (paper: 10).
    pub buffer_blocks: usize,
    /// Wear-rotation period for the LR part, ns: every period the LR is
    /// drained into HR and its address→set mapping is rotated, spreading
    /// the (deliberately concentrated) write working set over different
    /// physical sets across epochs. `None` disables rotation (the paper's
    /// design). This is the endurance countermeasure our ablation 5
    /// motivates.
    pub lr_rotation_period_ns: Option<u64>,
    /// How many retention-counter ticks *before* the last one the refresh
    /// engine may act (0 = the paper's policy: postpone refresh to the
    /// last tick; larger values refresh earlier and more often).
    pub refresh_slack_ticks: u32,
    /// Early-write-termination energy-savings fraction applied to both
    /// parts' write drivers (0.0 = disabled; Zhou et al.'s mechanism the
    /// paper's §3 discusses).
    pub ewt_savings: f64,
    /// Tag search strategy.
    pub search: SearchMode,
    /// Replacement policy of both parts.
    pub replacement: ReplacementPolicy,
    /// Injected-fault configuration (all-zero = no injection, the
    /// default; the model is then exactly transparent).
    pub fault: FaultConfig,
}

impl TwoPartConfig {
    /// Creates a configuration with paper defaults for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if a capacity does not divide into whole sets of `ways`
    /// lines of `line_bytes`.
    pub fn new(lr_kb: u64, lr_ways: u32, hr_kb: u64, hr_ways: u32, line_bytes: u32) -> Self {
        let cfg = TwoPartConfig {
            line_bytes,
            lr_kb,
            lr_ways,
            hr_kb,
            hr_ways,
            lr_banks: 8,
            hr_banks: 8,
            lr_retention: RetentionTime::from_micros(26.5),
            hr_retention: RetentionTime::from_millis(4.0),
            lr_rc_bits: 4,
            hr_rc_bits: 2,
            write_threshold: 1,
            wws_counter_bits: 4,
            buffer_blocks: 10,
            lr_rotation_period_ns: None,
            refresh_slack_ticks: 0,
            ewt_savings: 0.0,
            search: SearchMode::Sequential,
            replacement: ReplacementPolicy::Lru,
            policy: LlcPolicy::Fixed,
            fault: FaultConfig::disabled(),
        };
        cfg.assert_valid();
        cfg
    }

    /// Checks every geometry and parameter constraint up front, returning
    /// a structured reason instead of letting a deep component (e.g. the
    /// `tick_ns > 0` assert in the retention tracker) panic mid-build.
    ///
    /// The panicking constructors call this and `panic!` with the same
    /// message on `Err`, so user-reachable code paths (CLI config
    /// plumbing) can surface the error gracefully instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineSize {
                line_bytes: self.line_bytes,
            });
        }
        if self.write_threshold < 1 {
            return Err(ConfigError::WriteThreshold);
        }
        // The WWS counter saturates at 2^bits - 1; a threshold beyond
        // that is silently unreachable and migration never fires.
        if !(1..=16).contains(&self.wws_counter_bits)
            || self.write_threshold > (1u32 << self.wws_counter_bits) - 1
        {
            return Err(ConfigError::WwsCounterWidth {
                bits: self.wws_counter_bits,
                threshold: self.write_threshold,
            });
        }
        if self.buffer_blocks < 1 {
            return Err(ConfigError::BufferCapacity);
        }
        let parts = [
            (
                "LR",
                self.lr_kb,
                self.lr_ways,
                self.lr_rc_bits,
                self.lr_retention,
            ),
            (
                "HR",
                self.hr_kb,
                self.hr_ways,
                self.hr_rc_bits,
                self.hr_retention,
            ),
        ];
        for (part, kb, ways, rc_bits, retention) in parts {
            let lines = kb * 1024 / self.line_bytes as u64;
            if ways == 0 || lines < ways as u64 || !lines.is_multiple_of(ways as u64) {
                return Err(ConfigError::PartialSets { part, kb, ways });
            }
            if !(1..=16).contains(&rc_bits) {
                return Err(ConfigError::CounterWidth {
                    part,
                    bits: rc_bits,
                });
            }
            // Mirror of the retention tracker's tick-granularity assert:
            // one counter tick must be at least 1 ns.
            if retention.as_nanos_u64() >> rc_bits == 0 {
                return Err(ConfigError::RetentionTooShort {
                    part,
                    bits: rc_bits,
                });
            }
        }
        if !(0.0..=0.9).contains(&self.ewt_savings) {
            return Err(ConfigError::EwtSavings {
                savings: self.ewt_savings,
            });
        }
        if self.refresh_slack_ticks >= (1 << self.lr_rc_bits) - 1 {
            return Err(ConfigError::RefreshSlack {
                slack: self.refresh_slack_ticks,
            });
        }
        if self.lr_rotation_period_ns == Some(0) {
            return Err(ConfigError::RotationPeriod);
        }
        let rates = [
            ("flip", self.fault.flip_rate),
            ("refresh-drop", self.fault.refresh_drop_rate),
            ("buffer-stall", self.fault.buffer_stall_rate),
            ("bank-fault", self.fault.bank_fault_rate),
        ];
        for (mechanism, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ConfigError::FaultRate { mechanism, rate });
            }
        }
        // Device-model latencies: price both arrays exactly as
        // `TwoPartLlc::new` will and reject any latency the
        // integer-nanosecond timing cannot represent, so a malformed
        // device table fails here with a structured reason instead of
        // silently casting NaN to 0 deep in the cache. Bank counts of
        // zero are left to the geometry constructor's own panic, as
        // before.
        if self.lr_banks >= 1 && self.hr_banks >= 1 {
            use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
            use sttgpu_device::cell::MemTechnology;
            let designs = [
                (
                    "LR",
                    self.lr_kb,
                    self.lr_ways,
                    self.lr_banks,
                    self.lr_retention,
                ),
                (
                    "HR",
                    self.hr_kb,
                    self.hr_ways,
                    self.hr_banks,
                    self.hr_retention,
                ),
            ];
            for (part, kb, ways, banks, retention) in designs {
                let geom = ArrayGeometry::new(kb * 1024, self.line_bytes, ways, banks);
                let mtj = sttgpu_device::mtj::MtjDesign::for_retention(retention)
                    .with_ewt_savings(self.ewt_savings);
                let design = ArrayDesign::new(geom, MemTechnology::SttRam(mtj));
                for (which, ns) in [
                    ("tag", design.tag_latency_ns()),
                    ("read", design.read_latency_ns()),
                    ("write", design.write_latency_ns()),
                    ("read-occupancy", design.read_occupancy_ns()),
                    ("write-occupancy", design.write_occupancy_ns()),
                ] {
                    check_latency_ns(part, which, ns)?;
                }
            }
        }
        Ok(())
    }

    /// Panicking wrapper used by the infallible constructors/builders.
    fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }

    /// Number of LR lines.
    pub fn lr_lines(&self) -> u64 {
        self.lr_kb * 1024 / self.line_bytes as u64
    }

    /// Number of HR lines.
    pub fn hr_lines(&self) -> u64 {
        self.hr_kb * 1024 / self.line_bytes as u64
    }

    /// Number of LR sets.
    pub fn lr_sets(&self) -> u64 {
        self.lr_lines() / self.lr_ways as u64
    }

    /// Number of HR sets.
    pub fn hr_sets(&self) -> u64 {
        self.hr_lines() / self.hr_ways as u64
    }

    /// Total data capacity (both parts), KB.
    pub fn total_kb(&self) -> u64 {
        self.lr_kb + self.hr_kb
    }

    /// Returns a copy with a different write threshold (Fig. 4 sweeps).
    pub fn with_write_threshold(mut self, threshold: u32) -> Self {
        self.write_threshold = threshold;
        self.assert_valid();
        self
    }

    /// Returns a copy with a different WWS counter width.
    ///
    /// # Panics
    ///
    /// Panics if the current write threshold does not fit the width.
    pub fn with_wws_counter_bits(mut self, bits: u32) -> Self {
        self.wws_counter_bits = bits;
        self.assert_valid();
        self
    }

    /// Returns a copy selecting a runtime policy bundle by registry
    /// value (`--llc-policy`).
    pub fn with_policy(mut self, policy: LlcPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with different LR associativity, keeping capacity
    /// (Fig. 5 sweeps). Pass `ways == lr_lines()` for fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the LR capacity cannot form whole sets of `ways`.
    pub fn with_lr_ways(mut self, ways: u32) -> Self {
        self.lr_ways = ways;
        self.assert_valid();
        self
    }

    /// Returns a copy with a different search mode (ablation).
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }

    /// Returns a copy with different swap-buffer capacity (ablation).
    pub fn with_buffer_blocks(mut self, blocks: usize) -> Self {
        self.buffer_blocks = blocks;
        self.assert_valid();
        self
    }

    /// Returns a copy with a different HR retention target (ablation).
    pub fn with_hr_retention(mut self, retention: RetentionTime) -> Self {
        self.hr_retention = retention;
        self
    }

    /// Returns a copy with a different LR retention target (ablation).
    pub fn with_lr_retention(mut self, retention: RetentionTime) -> Self {
        self.lr_retention = retention;
        self
    }

    /// Returns a copy with early write termination enabled at the given
    /// energy-savings fraction (ablation).
    pub fn with_ewt_savings(mut self, savings: f64) -> Self {
        self.ewt_savings = savings;
        self.assert_valid();
        self
    }

    /// Returns a copy with LR wear-rotation every `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive.
    pub fn with_lr_rotation_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0, "rotation period must be positive");
        self.lr_rotation_period_ns = Some((ms * 1e6) as u64);
        self.assert_valid();
        self
    }

    /// Returns a copy refreshing `slack` ticks before the deadline
    /// (ablation of the paper's last-tick policy).
    ///
    /// # Panics
    ///
    /// Panics if the slack does not leave at least one tick of life
    /// (`slack >= 2^lr_rc_bits - 1`).
    pub fn with_refresh_slack_ticks(mut self, slack: u32) -> Self {
        self.refresh_slack_ticks = slack;
        self.assert_valid();
        self
    }

    /// Returns a copy with the given fault-injection configuration
    /// (`repro --faults` and the fault-rate ablation).
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]`.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self.assert_valid();
        self
    }

    /// Derives the invariant-checker thresholds this geometry's retention
    /// protocol promises: LR hits and expiries bounded by the LR retention
    /// period, refreshes confined to the configured tail of that period,
    /// HR hits and expiries bounded by the last-tick invalidation horizon.
    ///
    /// The returned config carries no timing slack; callers add the
    /// maintenance cadence via
    /// [`CheckConfig::with_slack_ns`](sttgpu_trace::CheckConfig::with_slack_ns).
    pub fn check_config(&self) -> sttgpu_trace::CheckConfig {
        let lr_rc = crate::RetentionTracker::new(self.lr_retention, self.lr_rc_bits);
        let hr_rc = crate::RetentionTracker::new(self.hr_retention, self.hr_rc_bits);
        let hr_horizon_ns = hr_rc.tick_ns().saturating_mul(hr_rc.max_count());
        sttgpu_trace::CheckConfig {
            lr_max_hit_age_ns: lr_rc.retention_ns(),
            lr_tail_start_ns: lr_rc
                .refresh_deadline_with_slack_ns(0, self.refresh_slack_ticks as u64),
            lr_min_expire_age_ns: lr_rc.retention_ns(),
            hr_max_hit_age_ns: hr_horizon_ns,
            hr_min_expire_age_ns: hr_horizon_ns,
            slack_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_geometry_derivations() {
        let cfg = TwoPartConfig::new(192, 2, 1344, 7, 256);
        assert_eq!(cfg.lr_lines(), 768);
        assert_eq!(cfg.lr_sets(), 384);
        assert_eq!(cfg.hr_lines(), 5376);
        assert_eq!(cfg.hr_sets(), 768);
        assert_eq!(cfg.total_kb(), 1536);
    }

    #[test]
    fn paper_defaults() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256);
        assert_eq!(cfg.write_threshold, 1);
        assert_eq!(cfg.lr_rc_bits, 4);
        assert_eq!(cfg.hr_rc_bits, 2);
        assert_eq!(cfg.buffer_blocks, 10);
        assert_eq!(cfg.search, SearchMode::Sequential);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256)
            .with_write_threshold(7)
            .with_lr_ways(4)
            .with_search(SearchMode::Parallel)
            .with_buffer_blocks(2);
        assert_eq!(cfg.write_threshold, 7);
        assert_eq!(cfg.lr_ways, 4);
        assert_eq!(cfg.search, SearchMode::Parallel);
        assert_eq!(cfg.buffer_blocks, 2);
    }

    #[test]
    fn fully_associative_lr() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256);
        let fa = cfg.clone().with_lr_ways(cfg.lr_lines() as u32);
        assert_eq!(fa.lr_sets(), 1);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn rejects_fractional_sets() {
        TwoPartConfig::new(48, 5, 336, 7, 256);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threshold() {
        let _ = TwoPartConfig::new(48, 2, 336, 7, 256).with_write_threshold(0);
    }

    fn base() -> TwoPartConfig {
        TwoPartConfig::new(48, 2, 336, 7, 256)
    }

    /// Applies `f` to a valid config and asserts validation rejects the
    /// result with the expected message fragment.
    fn rejected_with(f: impl FnOnce(&mut TwoPartConfig), fragment: &str) {
        let mut cfg = base();
        f(&mut cfg);
        let err = cfg.validate().expect_err("geometry should be rejected");
        let msg = err.to_string();
        assert!(msg.contains(fragment), "message {msg:?} lacks {fragment:?}");
    }

    #[test]
    fn validate_accepts_every_paper_geometry() {
        for (lr, hr) in [(192, 1344), (48, 336), (96, 672)] {
            assert_eq!(TwoPartConfig::new(lr, 2, hr, 7, 256).validate(), Ok(()));
        }
    }

    #[test]
    fn validate_rejects_non_power_of_two_line_size() {
        rejected_with(|c| c.line_bytes = 192, "power of two");
    }

    #[test]
    fn validate_rejects_zero_write_threshold() {
        rejected_with(|c| c.write_threshold = 0, "at least 1");
    }

    #[test]
    fn validate_rejects_zero_buffer_capacity() {
        rejected_with(|c| c.buffer_blocks = 0, "swap buffers need capacity");
    }

    #[test]
    fn validate_rejects_fractional_sets_in_either_part() {
        rejected_with(|c| c.lr_ways = 5, "LR capacity must form whole sets");
        rejected_with(|c| c.hr_ways = 5, "HR capacity must form whole sets");
        rejected_with(|c| c.hr_ways = 0, "HR capacity must form whole sets");
    }

    #[test]
    fn validate_rejects_bad_counter_widths() {
        rejected_with(|c| c.lr_rc_bits = 0, "out of range");
        rejected_with(|c| c.hr_rc_bits = 17, "out of range");
    }

    #[test]
    fn validate_rejects_sub_tick_retention() {
        // 10 ns of LR retention across a 4-bit counter rounds each tick
        // to zero — the condition retention.rs asserts, caught up front.
        rejected_with(
            |c| c.lr_retention = RetentionTime::from_nanos(10.0),
            "LR retention too short for a 4-bit counter",
        );
        rejected_with(
            |c| c.hr_retention = RetentionTime::from_nanos(3.0),
            "HR retention too short for a 2-bit counter",
        );
    }

    #[test]
    fn validate_rejects_unreachable_write_threshold() {
        // A 4-bit saturating counter tops out at 15: a threshold of 16
        // would silently never migrate anything.
        rejected_with(
            |c| c.write_threshold = 16,
            "write threshold 16 does not fit a 4-bit WWS counter",
        );
        rejected_with(
            |c| {
                c.wws_counter_bits = 2;
                c.write_threshold = 4;
            },
            "does not fit a 2-bit WWS counter",
        );
        rejected_with(|c| c.wws_counter_bits = 0, "WWS counter");
        rejected_with(|c| c.wws_counter_bits = 17, "WWS counter");
        // The saturation value itself is reachable.
        let cfg = base().with_write_threshold(15);
        assert_eq!(cfg.validate(), Ok(()));
        assert_eq!(
            base()
                .with_wws_counter_bits(2)
                .with_write_threshold(3)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn with_policy_selects_named_bundle() {
        let cfg = base().with_policy(LlcPolicy::AdaptiveRetention);
        assert_eq!(cfg.policy, LlcPolicy::AdaptiveRetention);
        assert_eq!(base().policy, LlcPolicy::Fixed);
    }

    #[test]
    fn validate_rejects_out_of_range_ewt() {
        rejected_with(|c| c.ewt_savings = 0.95, "EWT savings out of range");
        rejected_with(|c| c.ewt_savings = -0.1, "EWT savings out of range");
    }

    #[test]
    fn validate_rejects_lifeless_refresh_slack() {
        rejected_with(|c| c.refresh_slack_ticks = 15, "leaves no retention life");
    }

    #[test]
    fn validate_rejects_zero_rotation_period() {
        rejected_with(|c| c.lr_rotation_period_ns = Some(0), "must be positive");
    }

    #[test]
    fn validate_rejects_out_of_range_fault_rates() {
        rejected_with(|c| c.fault.flip_rate = 1.5, "fault flip rate");
        rejected_with(
            |c| c.fault.refresh_drop_rate = -0.2,
            "fault refresh-drop rate",
        );
        rejected_with(
            |c| c.fault.buffer_stall_rate = f64::NAN,
            "fault buffer-stall rate",
        );
        rejected_with(|c| c.fault.bank_fault_rate = 2.0, "fault bank-fault rate");
    }

    #[test]
    fn with_fault_accepts_valid_rates() {
        let cfg = base().with_fault(FaultConfig::uniform(7, 1e-4));
        assert!(cfg.fault.is_enabled());
        assert_eq!(cfg.fault.seed, 7);
    }

    #[test]
    fn latency_check_rejects_unusable_durations() {
        for bad in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.0,
            -1e-9,
            1e16,
        ] {
            let err = check_latency_ns("LR", "tag", bad).expect_err("latency should be rejected");
            let msg = err.to_string();
            assert!(msg.contains("LR tag latency"), "message {msg:?}");
        }
    }

    #[test]
    fn latency_check_accepts_real_durations() {
        for good in [0.0, 0.4, 3.0, 17.25, 1e6] {
            assert_eq!(check_latency_ns("HR", "write", good), Ok(()));
        }
    }

    #[test]
    fn validate_prices_every_paper_geometry_latency() {
        // The real device tables must pass the latency gate on every
        // geometry the experiments sweep, including EWT-adjusted writes.
        for (lr, hr) in [(192, 1344), (48, 336), (96, 672)] {
            let cfg = TwoPartConfig::new(lr, 2, hr, 7, 256).with_ewt_savings(0.4);
            assert_eq!(cfg.validate(), Ok(()));
        }
    }
}
