//! Configuration of the two-part LLC.

use sttgpu_cache::ReplacementPolicy;
use sttgpu_device::mtj::RetentionTime;

/// How the two tag arrays are searched on an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchMode {
    /// Probe one part first (chosen by access type: writes→LR, reads→HR)
    /// and the other only on a first-part miss. Slower on
    /// "wrong-first-guess" accesses but cheaper — the paper's default.
    #[default]
    Sequential,
    /// Probe both tag arrays at once. Faster misses, two tag energies per
    /// access.
    Parallel,
}

/// Full configuration of a [`TwoPartLlc`](crate::TwoPartLlc).
///
/// Defaults follow the paper: 2-way LR, write threshold 1, 4-bit LR / 2-bit
/// HR retention counters, 26.5 µs LR and 4 ms HR retention, 10-block swap
/// buffers, sequential search.
///
/// # Example
///
/// ```
/// use sttgpu_core::TwoPartConfig;
///
/// // The paper's C1 geometry: 192 KB 2-way LR + 1344 KB 7-way HR.
/// let cfg = TwoPartConfig::new(192, 2, 1344, 7, 256);
/// assert_eq!(cfg.lr_sets(), 384);
/// assert_eq!(cfg.hr_sets(), 768);
/// assert_eq!(cfg.write_threshold, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TwoPartConfig {
    /// Cache line size, bytes (paper: 256 B).
    pub line_bytes: u32,
    /// LR data capacity, KB.
    pub lr_kb: u64,
    /// LR associativity (paper: 2).
    pub lr_ways: u32,
    /// HR data capacity, KB.
    pub hr_kb: u64,
    /// HR associativity (paper: 7).
    pub hr_ways: u32,
    /// LR bank count.
    pub lr_banks: u32,
    /// HR bank count ("the HR part should be sufficiently banked").
    pub hr_banks: u32,
    /// LR retention target.
    pub lr_retention: RetentionTime,
    /// HR retention target (paper §4: 4 ms handles >90 % of HR rewrites).
    pub hr_retention: RetentionTime,
    /// LR retention-counter width, bits (paper: 4).
    pub lr_rc_bits: u32,
    /// HR retention-counter width, bits (paper: 2).
    pub hr_rc_bits: u32,
    /// HR write count at which a block migrates to LR (paper: 1 — the
    /// modified bit suffices; Fig. 4 sweeps {1, 3, 7, 15}).
    pub write_threshold: u32,
    /// Capacity of each swap buffer, blocks (paper: 10).
    pub buffer_blocks: usize,
    /// Wear-rotation period for the LR part, ns: every period the LR is
    /// drained into HR and its address→set mapping is rotated, spreading
    /// the (deliberately concentrated) write working set over different
    /// physical sets across epochs. `None` disables rotation (the paper's
    /// design). This is the endurance countermeasure our ablation 5
    /// motivates.
    pub lr_rotation_period_ns: Option<u64>,
    /// How many retention-counter ticks *before* the last one the refresh
    /// engine may act (0 = the paper's policy: postpone refresh to the
    /// last tick; larger values refresh earlier and more often).
    pub refresh_slack_ticks: u32,
    /// Early-write-termination energy-savings fraction applied to both
    /// parts' write drivers (0.0 = disabled; Zhou et al.'s mechanism the
    /// paper's §3 discusses).
    pub ewt_savings: f64,
    /// Tag search strategy.
    pub search: SearchMode,
    /// Replacement policy of both parts.
    pub replacement: ReplacementPolicy,
}

impl TwoPartConfig {
    /// Creates a configuration with paper defaults for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if a capacity does not divide into whole sets of `ways`
    /// lines of `line_bytes`.
    pub fn new(lr_kb: u64, lr_ways: u32, hr_kb: u64, hr_ways: u32, line_bytes: u32) -> Self {
        let cfg = TwoPartConfig {
            line_bytes,
            lr_kb,
            lr_ways,
            hr_kb,
            hr_ways,
            lr_banks: 8,
            hr_banks: 8,
            lr_retention: RetentionTime::from_micros(26.5),
            hr_retention: RetentionTime::from_millis(4.0),
            lr_rc_bits: 4,
            hr_rc_bits: 2,
            write_threshold: 1,
            buffer_blocks: 10,
            lr_rotation_period_ns: None,
            refresh_slack_ticks: 0,
            ewt_savings: 0.0,
            search: SearchMode::Sequential,
            replacement: ReplacementPolicy::Lru,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            self.write_threshold >= 1,
            "write threshold must be at least 1"
        );
        assert!(self.buffer_blocks >= 1, "swap buffers need capacity");
        let lr_lines = self.lr_kb * 1024 / self.line_bytes as u64;
        let hr_lines = self.hr_kb * 1024 / self.line_bytes as u64;
        assert!(
            lr_lines >= self.lr_ways as u64 && lr_lines.is_multiple_of(self.lr_ways as u64),
            "LR capacity must form whole sets"
        );
        assert!(
            hr_lines >= self.hr_ways as u64 && hr_lines.is_multiple_of(self.hr_ways as u64),
            "HR capacity must form whole sets"
        );
    }

    /// Number of LR lines.
    pub fn lr_lines(&self) -> u64 {
        self.lr_kb * 1024 / self.line_bytes as u64
    }

    /// Number of HR lines.
    pub fn hr_lines(&self) -> u64 {
        self.hr_kb * 1024 / self.line_bytes as u64
    }

    /// Number of LR sets.
    pub fn lr_sets(&self) -> u64 {
        self.lr_lines() / self.lr_ways as u64
    }

    /// Number of HR sets.
    pub fn hr_sets(&self) -> u64 {
        self.hr_lines() / self.hr_ways as u64
    }

    /// Total data capacity (both parts), KB.
    pub fn total_kb(&self) -> u64 {
        self.lr_kb + self.hr_kb
    }

    /// Returns a copy with a different write threshold (Fig. 4 sweeps).
    pub fn with_write_threshold(mut self, threshold: u32) -> Self {
        self.write_threshold = threshold;
        self.validate();
        self
    }

    /// Returns a copy with different LR associativity, keeping capacity
    /// (Fig. 5 sweeps). Pass `ways == lr_lines()` for fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the LR capacity cannot form whole sets of `ways`.
    pub fn with_lr_ways(mut self, ways: u32) -> Self {
        self.lr_ways = ways;
        self.validate();
        self
    }

    /// Returns a copy with a different search mode (ablation).
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }

    /// Returns a copy with different swap-buffer capacity (ablation).
    pub fn with_buffer_blocks(mut self, blocks: usize) -> Self {
        self.buffer_blocks = blocks;
        self.validate();
        self
    }

    /// Returns a copy with a different HR retention target (ablation).
    pub fn with_hr_retention(mut self, retention: RetentionTime) -> Self {
        self.hr_retention = retention;
        self
    }

    /// Returns a copy with a different LR retention target (ablation).
    pub fn with_lr_retention(mut self, retention: RetentionTime) -> Self {
        self.lr_retention = retention;
        self
    }

    /// Returns a copy with early write termination enabled at the given
    /// energy-savings fraction (ablation).
    pub fn with_ewt_savings(mut self, savings: f64) -> Self {
        assert!((0.0..=0.9).contains(&savings), "EWT savings out of range");
        self.ewt_savings = savings;
        self
    }

    /// Returns a copy with LR wear-rotation every `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is not positive.
    pub fn with_lr_rotation_ms(mut self, ms: f64) -> Self {
        assert!(ms > 0.0, "rotation period must be positive");
        self.lr_rotation_period_ns = Some((ms * 1e6) as u64);
        self
    }

    /// Returns a copy refreshing `slack` ticks before the deadline
    /// (ablation of the paper's last-tick policy).
    ///
    /// # Panics
    ///
    /// Panics if the slack does not leave at least one tick of life
    /// (`slack >= 2^lr_rc_bits - 1`).
    pub fn with_refresh_slack_ticks(mut self, slack: u32) -> Self {
        assert!(
            slack < (1 << self.lr_rc_bits) - 1,
            "refresh slack {slack} leaves no retention life"
        );
        self.refresh_slack_ticks = slack;
        self
    }

    /// Derives the invariant-checker thresholds this geometry's retention
    /// protocol promises: LR hits and expiries bounded by the LR retention
    /// period, refreshes confined to the configured tail of that period,
    /// HR hits and expiries bounded by the last-tick invalidation horizon.
    ///
    /// The returned config carries no timing slack; callers add the
    /// maintenance cadence via
    /// [`CheckConfig::with_slack_ns`](sttgpu_trace::CheckConfig::with_slack_ns).
    pub fn check_config(&self) -> sttgpu_trace::CheckConfig {
        let lr_rc = crate::RetentionTracker::new(self.lr_retention, self.lr_rc_bits);
        let hr_rc = crate::RetentionTracker::new(self.hr_retention, self.hr_rc_bits);
        let hr_horizon_ns = hr_rc.tick_ns() * hr_rc.max_count();
        sttgpu_trace::CheckConfig {
            lr_max_hit_age_ns: lr_rc.retention_ns(),
            lr_tail_start_ns: lr_rc
                .refresh_deadline_with_slack_ns(0, self.refresh_slack_ticks as u64),
            lr_min_expire_age_ns: lr_rc.retention_ns(),
            hr_max_hit_age_ns: hr_horizon_ns,
            hr_min_expire_age_ns: hr_horizon_ns,
            slack_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_geometry_derivations() {
        let cfg = TwoPartConfig::new(192, 2, 1344, 7, 256);
        assert_eq!(cfg.lr_lines(), 768);
        assert_eq!(cfg.lr_sets(), 384);
        assert_eq!(cfg.hr_lines(), 5376);
        assert_eq!(cfg.hr_sets(), 768);
        assert_eq!(cfg.total_kb(), 1536);
    }

    #[test]
    fn paper_defaults() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256);
        assert_eq!(cfg.write_threshold, 1);
        assert_eq!(cfg.lr_rc_bits, 4);
        assert_eq!(cfg.hr_rc_bits, 2);
        assert_eq!(cfg.buffer_blocks, 10);
        assert_eq!(cfg.search, SearchMode::Sequential);
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256)
            .with_write_threshold(7)
            .with_lr_ways(4)
            .with_search(SearchMode::Parallel)
            .with_buffer_blocks(2);
        assert_eq!(cfg.write_threshold, 7);
        assert_eq!(cfg.lr_ways, 4);
        assert_eq!(cfg.search, SearchMode::Parallel);
        assert_eq!(cfg.buffer_blocks, 2);
    }

    #[test]
    fn fully_associative_lr() {
        let cfg = TwoPartConfig::new(48, 2, 336, 7, 256);
        let fa = cfg.clone().with_lr_ways(cfg.lr_lines() as u32);
        assert_eq!(fa.lr_sets(), 1);
    }

    #[test]
    #[should_panic(expected = "whole sets")]
    fn rejects_fractional_sets() {
        TwoPartConfig::new(48, 5, 336, 7, 256);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_threshold() {
        let _ = TwoPartConfig::new(48, 2, 336, 7, 256).with_write_threshold(0);
    }
}
