//! The paper's contribution: a **two-part STT-RAM last-level cache** for
//! GPUs (Samavatian et al., DAC 2014).
//!
//! The L2 is split into two parallel STT-RAM arrays with different MTJ
//! retention design points:
//!
//! * a small **low-retention (LR)** part whose cheap writes host the
//!   application's *write working set* (WWS), refreshed by per-line
//!   retention counters, and
//! * a large **high-retention (HR)** part holding read-mostly data, never
//!   refreshed — lines that outlive its retention are invalidated or
//!   written back.
//!
//! Blocks migrate HR→LR once their write count reaches a threshold (the
//! paper settles on 1, i.e. the existing modified bit) and return LR→HR on
//! eviction, through a pair of small swap buffers that absorb the
//! write-latency gap between the arrays. A search selector orders the
//! sequential two-part lookup by access type: writes probe LR first, reads
//! probe HR first.
//!
//! [`TwoPartLlc`] implements all of that behind the [`LlcModel`] trait,
//! alongside the evaluation's baselines ([`SingleLlc`] over SRAM or
//! conventional 10-year STT-RAM).
//!
//! # Example
//!
//! ```
//! use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc};
//! use sttgpu_cache::AccessKind;
//!
//! // A small two-part L2: 48 KB LR (2-way) + 336 KB HR (7-way), 256 B lines.
//! let cfg = TwoPartConfig::new(48, 2, 336, 7, 256);
//! let mut llc = TwoPartLlc::new(cfg);
//!
//! // A write miss fills into the LR part (write threshold 1).
//! let addr = 0x4_0000;
//! let probe = llc.probe(addr, AccessKind::Write, 1_000);
//! assert!(!probe.hit);
//! llc.fill(addr, true, 2_000);
//! assert!(llc.lr_contains(addr));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod llc;
mod policy;
mod retention;
mod search;
mod swap;
mod two_part;
mod wws;

pub use config::{ConfigError, SearchMode, TwoPartConfig};
pub use llc::{AnyLlc, FillOutcome, LlcModel, LlcStats, ProbeOutcome, SingleLlc};
pub use policy::{
    lr_maintenance_floor_ns, lr_tracker_at, EpochActions, HallsRetention, LlcPolicy,
    MigrationPolicy, PartitionPolicy, PolicyEngine, RetentionPolicy, StaticPartition,
    StaticRetention, ThresholdMigration, WritePressurePartition, POLICY_EPOCH_NS, RETENTION_LADDER,
};
pub use retention::RetentionTracker;
pub use search::{Part, SearchSelector};
pub use sttgpu_fault::{FaultConfig, FaultOutcome, FaultPart, FaultPlan};
pub use swap::SwapBuffer;
pub use two_part::{TwoPartLlc, TwoPartStats};
pub use wws::WwsMonitor;
