//! The last-level-cache model interface and the evaluation's baselines.
//!
//! The GPU simulator talks to any L2 through [`LlcModel`]: it `probe`s on
//! demand accesses, `fill`s after DRAM responses and calls `maintain`
//! periodically so refresh/expiry engines can run. Three implementations
//! exist:
//!
//! * [`SingleLlc`] over SRAM — the paper's baseline GPU,
//! * [`SingleLlc`] over 10-year STT-RAM — the paper's "STT-RAM baseline"
//!   (4× capacity, long write pulses, no refresh),
//! * [`TwoPartLlc`](crate::TwoPartLlc) — the contribution.
//!
//! [`AnyLlc`] packages them behind one concrete type so simulator configs
//! stay plain data.

use sttgpu_cache::{AccessKind, BankArbiter, ReplacementPolicy, SetAssocCache};
use sttgpu_device::array::{ArrayDesign, ArrayGeometry};
use sttgpu_device::cell::MemTechnology;
use sttgpu_device::energy::{EnergyAccount, EnergyEvent};
use sttgpu_trace::{PartId, Trace, TraceEvent};

use crate::TwoPartLlc;

/// Result of a demand probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Whether the access hit in the LLC.
    pub hit: bool,
    /// Absolute time (ns) at which the access completes: data available
    /// for a read hit, write retired for a write hit, or miss determined
    /// (tag search finished) for a miss.
    pub ready_ns: u64,
    /// Dirty lines pushed toward DRAM as a side effect (migration
    /// overflows, evictions).
    pub writebacks: u32,
}

/// Result of installing a line after a DRAM fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Absolute time (ns) at which the fill write retires in the array.
    pub ready_ns: u64,
    /// Dirty victims pushed toward DRAM.
    pub writebacks: u32,
}

/// Technology-agnostic summary statistics of an LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LlcStats {
    /// Read probes that hit.
    pub read_hits: u64,
    /// Read probes that missed.
    pub read_misses: u64,
    /// Write probes that hit.
    pub write_hits: u64,
    /// Write probes that missed.
    pub write_misses: u64,
    /// Dirty lines sent to DRAM (evictions, expiries, overflows).
    pub writebacks: u64,
}

impl LlcStats {
    /// Total probes.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Hit rate over all probes (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / a as f64
        }
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }
}

/// Behavioural interface of a last-level cache model.
///
/// Time is carried in absolute nanoseconds of simulated time. The owner
/// must call [`maintain`](LlcModel::maintain) at least once per
/// [`maintenance_interval_ns`](LlcModel::maintenance_interval_ns) of
/// simulated time for refresh guarantees to hold.
pub trait LlcModel {
    /// Cache line size, bytes.
    fn line_bytes(&self) -> u32;

    /// Issues a demand access. On a miss the caller must fetch the line
    /// from DRAM and then call [`fill`](LlcModel::fill).
    fn probe(&mut self, byte_addr: u64, kind: AccessKind, now_ns: u64) -> ProbeOutcome;

    /// Installs a line after a DRAM response. `dirty` marks write-allocate
    /// fills.
    fn fill(&mut self, byte_addr: u64, dirty: bool, now_ns: u64) -> FillOutcome;

    /// Runs refresh/expiry engines up to `now_ns`.
    fn maintain(&mut self, now_ns: u64);

    /// Longest tolerable gap between `maintain` calls, ns.
    fn maintenance_interval_ns(&self) -> u64;

    /// The accumulated energy ledger.
    fn energy(&self) -> &EnergyAccount;

    /// Technology-agnostic summary statistics.
    fn summary(&self) -> LlcStats;

    /// Cumulative per-(set, way) data-array write counts for
    /// write-variation analysis (two-part models concatenate LR and HR
    /// rows).
    fn write_count_matrix(&self) -> Vec<Vec<u64>>;

    /// Resets statistics and energy (not cache contents) — used to discard
    /// warm-up.
    fn reset_measurement(&mut self);
}

/// A conventional single-array LLC (SRAM or uniform STT-RAM), write-back /
/// write-allocate with line-interleaved banks.
///
/// # Example
///
/// ```
/// use sttgpu_cache::AccessKind;
/// use sttgpu_core::{LlcModel, SingleLlc};
/// use sttgpu_device::cell::MemTechnology;
///
/// // The paper's SRAM baseline: 384 KB, 8-way, 256 B lines, 6 banks.
/// let mut l2 = SingleLlc::new(384, 8, 256, 6, MemTechnology::Sram);
/// let miss = l2.probe(0x1234, AccessKind::Read, 0);
/// assert!(!miss.hit);
/// l2.fill(0x1234, false, 100);
/// assert!(l2.probe(0x1234, AccessKind::Read, 200).hit);
/// ```
#[derive(Debug, Clone)]
pub struct SingleLlc {
    cache: SetAssocCache<()>,
    arbiter: BankArbiter,
    design: ArrayDesign,
    energy: EnergyAccount,
    trace: Trace,
    stats_writebacks: u64,
    tag_ns: u64,
    read_ns: u64,
    write_ns: u64,
    read_occ_ns: u64,
    write_occ_ns: u64,
}

/// Converts a validated device latency to integer nanoseconds (ceiling).
///
/// [`TwoPartConfig::validate`](crate::TwoPartConfig::validate) rejects
/// unusable latencies up front; this guards the constructors that take a
/// raw technology directly, so a malformed device table panics with a
/// clear message instead of `as` silently casting NaN or a negative to 0.
pub(crate) fn latency_to_ns(what: &'static str, ns: f64) -> u64 {
    assert!(
        ns.is_finite() && (0.0..=1e15).contains(&ns),
        "{what} latency {ns} ns is not a usable finite non-negative duration"
    );
    ns.ceil() as u64
}

impl SingleLlc {
    /// Creates a single-array LLC of `kb` kilobytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not form whole sets (see
    /// [`ArrayGeometry::new`]).
    pub fn new(kb: u64, ways: u32, line_bytes: u32, banks: u32, tech: MemTechnology) -> Self {
        let geometry = ArrayGeometry::new(kb * 1024, line_bytes, ways, banks);
        let design = ArrayDesign::new(geometry, tech);
        let sets = geometry.sets() as usize;
        let cache = SetAssocCache::new(sets, ways as usize, line_bytes, ReplacementPolicy::Lru);
        let energy = EnergyAccount::with_leakage_mw(design.leakage_mw());
        SingleLlc {
            cache,
            arbiter: BankArbiter::new(banks as usize),
            design,
            energy,
            trace: Trace::off(),
            stats_writebacks: 0,
            tag_ns: latency_to_ns("tag", design.tag_latency_ns()),
            read_ns: latency_to_ns("read", design.read_latency_ns()),
            write_ns: latency_to_ns("write", design.write_latency_ns()),
            read_occ_ns: latency_to_ns("read-occupancy", design.read_occupancy_ns()),
            write_occ_ns: latency_to_ns("write-occupancy", design.write_occupancy_ns()),
        }
    }

    /// The priced array design behind this LLC.
    pub fn design(&self) -> &ArrayDesign {
        &self.design
    }

    /// Attaches a trace sink observing this cache's events.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    fn deposit(&mut self, ev: EnergyEvent, nj: f64) {
        self.energy.deposit(ev, nj);
        self.trace.emit(|| TraceEvent::EnergyDeposit {
            category: ev.index() as u8,
            nj,
        });
    }

    /// Data capacity, KB.
    pub fn capacity_kb(&self) -> u64 {
        self.cache.capacity_bytes() / 1024
    }
}

impl LlcModel for SingleLlc {
    fn line_bytes(&self) -> u32 {
        self.cache.line_bytes()
    }

    fn probe(&mut self, byte_addr: u64, kind: AccessKind, now_ns: u64) -> ProbeOutcome {
        let la = self.cache.line_addr(byte_addr);
        self.deposit(EnergyEvent::TagLookup, self.design.tag_energy_nj());
        let tag_done = now_ns + self.tag_ns;
        if self.cache.lookup(la, kind, now_ns).is_some() {
            self.trace.emit(|| TraceEvent::Hit {
                part: PartId::Mono,
                la,
                write: kind.is_write(),
                now_ns,
                written_at_ns: now_ns,
            });
            let bank = self.arbiter.bank_of(la);
            // The bank is blocked for the (pipelined) occupancy; the
            // requester waits for the full access latency.
            let (latency, occupancy, ev, nj) = if kind.is_write() {
                (
                    self.write_ns,
                    self.write_occ_ns,
                    EnergyEvent::DataWrite,
                    self.design.write_energy_nj(),
                )
            } else {
                (
                    self.read_ns,
                    self.read_occ_ns,
                    EnergyEvent::DataRead,
                    self.design.read_energy_nj(),
                )
            };
            self.deposit(ev, nj);
            let start = self.arbiter.reserve(bank, tag_done, occupancy);
            ProbeOutcome {
                hit: true,
                ready_ns: start + latency,
                writebacks: 0,
            }
        } else {
            self.trace.emit(|| TraceEvent::Miss {
                la,
                write: kind.is_write(),
                now_ns,
            });
            ProbeOutcome {
                hit: false,
                ready_ns: tag_done,
                writebacks: 0,
            }
        }
    }

    fn fill(&mut self, byte_addr: u64, dirty: bool, now_ns: u64) -> FillOutcome {
        let la = self.cache.line_addr(byte_addr);
        self.deposit(EnergyEvent::DataWrite, self.design.write_energy_nj());
        // Fills drain through fill buffers into idle bank slots, so they
        // cost energy and latency but do not block demand accesses.
        let start = now_ns;
        let mut writebacks = 0;
        if let Some(victim) = self.cache.fill(la, dirty, now_ns) {
            self.trace.emit(|| TraceEvent::Evict {
                part: PartId::Mono,
                la: victim.line_addr,
                wrote_back: victim.dirty,
                now_ns,
            });
            if victim.dirty {
                writebacks += 1;
                self.stats_writebacks += 1;
                // Reading the victim out for write-back costs a data read.
                self.deposit(EnergyEvent::Writeback, self.design.read_energy_nj());
            }
        }
        self.trace.emit(|| TraceEvent::Fill {
            part: PartId::Mono,
            la,
            now_ns,
        });
        FillOutcome {
            ready_ns: start + self.write_ns,
            writebacks,
        }
    }

    fn maintain(&mut self, _now_ns: u64) {}

    fn maintenance_interval_ns(&self) -> u64 {
        u64::MAX
    }

    fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    fn summary(&self) -> LlcStats {
        let s = self.cache.stats();
        LlcStats {
            read_hits: s.read_hits.get(),
            read_misses: s.read_misses.get(),
            write_hits: s.write_hits.get(),
            write_misses: s.write_misses.get(),
            writebacks: self.stats_writebacks,
        }
    }

    fn write_count_matrix(&self) -> Vec<Vec<u64>> {
        self.cache.write_count_matrix()
    }

    fn reset_measurement(&mut self) {
        self.cache.reset_stats();
        self.energy.reset();
        self.stats_writebacks = 0;
        self.trace.emit(|| TraceEvent::ResetMeasurement);
    }
}

/// A concrete sum over every LLC flavour, so simulator configurations stay
/// plain data (no trait objects in configs).
///
/// The variants intentionally differ in size: exactly one `AnyLlc` exists
/// per simulated GPU, so boxing the smaller variant would buy nothing.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum AnyLlc {
    /// Conventional single-array LLC (SRAM or uniform STT-RAM).
    Single(SingleLlc),
    /// The paper's two-part LR/HR LLC.
    TwoPart(Box<TwoPartLlc>),
}

impl AnyLlc {
    /// Access to the two-part internals when applicable (experiment
    /// harness uses this for LR/HR breakdowns).
    pub fn as_two_part(&self) -> Option<&TwoPartLlc> {
        match self {
            AnyLlc::Single(_) => None,
            AnyLlc::TwoPart(t) => Some(t),
        }
    }

    /// Attaches a trace sink observing this cache's events.
    pub fn set_trace(&mut self, trace: Trace) {
        match self {
            AnyLlc::Single(s) => s.set_trace(trace),
            AnyLlc::TwoPart(t) => t.set_trace(trace),
        }
    }

    fn inner(&self) -> &dyn LlcModel {
        match self {
            AnyLlc::Single(s) => s,
            AnyLlc::TwoPart(t) => t.as_ref(),
        }
    }

    fn inner_mut(&mut self) -> &mut dyn LlcModel {
        match self {
            AnyLlc::Single(s) => s,
            AnyLlc::TwoPart(t) => t.as_mut(),
        }
    }
}

impl From<SingleLlc> for AnyLlc {
    fn from(s: SingleLlc) -> Self {
        AnyLlc::Single(s)
    }
}

impl From<TwoPartLlc> for AnyLlc {
    fn from(t: TwoPartLlc) -> Self {
        AnyLlc::TwoPart(Box::new(t))
    }
}

impl LlcModel for AnyLlc {
    fn line_bytes(&self) -> u32 {
        self.inner().line_bytes()
    }

    fn probe(&mut self, byte_addr: u64, kind: AccessKind, now_ns: u64) -> ProbeOutcome {
        self.inner_mut().probe(byte_addr, kind, now_ns)
    }

    fn fill(&mut self, byte_addr: u64, dirty: bool, now_ns: u64) -> FillOutcome {
        self.inner_mut().fill(byte_addr, dirty, now_ns)
    }

    fn maintain(&mut self, now_ns: u64) {
        self.inner_mut().maintain(now_ns);
    }

    fn maintenance_interval_ns(&self) -> u64 {
        self.inner().maintenance_interval_ns()
    }

    fn energy(&self) -> &EnergyAccount {
        self.inner().energy()
    }

    fn summary(&self) -> LlcStats {
        self.inner().summary()
    }

    fn write_count_matrix(&self) -> Vec<Vec<u64>> {
        self.inner().write_count_matrix()
    }

    fn reset_measurement(&mut self) {
        self.inner_mut().reset_measurement();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sttgpu_device::mtj::RetentionTime;

    fn sram() -> SingleLlc {
        SingleLlc::new(64, 8, 256, 4, MemTechnology::Sram)
    }

    fn stt() -> SingleLlc {
        SingleLlc::new(
            256,
            8,
            256,
            4,
            MemTechnology::stt_for_retention(RetentionTime::from_years(10.0)),
        )
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut l2 = sram();
        assert!(!l2.probe(0x8000, AccessKind::Read, 0).hit);
        l2.fill(0x8000, false, 50);
        assert!(l2.probe(0x8000, AccessKind::Read, 100).hit);
        let s = l2.summary();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
    }

    #[test]
    fn hit_latency_includes_tag_and_data() {
        let mut l2 = sram();
        l2.fill(0x100, false, 0);
        let out = l2.probe(0x100, AccessKind::Read, 1_000);
        assert!(out.hit);
        assert!(out.ready_ns > 1_000, "some latency must accrue");
    }

    #[test]
    fn stt_write_occupies_bank_longer_than_read() {
        let mut l2 = stt();
        l2.fill(0x100, false, 0);
        let t0 = 1_000;
        let w = l2.probe(0x100, AccessKind::Write, t0);
        let mut l2b = stt();
        l2b.fill(0x100, false, 0);
        let r = l2b.probe(0x100, AccessKind::Read, t0);
        assert!(
            w.ready_ns - t0 > r.ready_ns - t0 + 5,
            "write {} vs read {}",
            w.ready_ns - t0,
            r.ready_ns - t0
        );
    }

    #[test]
    fn bank_contention_serialises_same_bank_accesses() {
        let mut l2 = stt();
        l2.fill(0x0, false, 0);
        let a = l2.probe(0x0, AccessKind::Write, 1_000);
        let b = l2.probe(0x0, AccessKind::Write, 1_000);
        // The second write to the same bank waits for the first pulse's
        // occupancy (10y pulse / subarray parallelism, ~5 ns).
        assert!(
            b.ready_ns >= a.ready_ns + 5,
            "a {} b {}",
            a.ready_ns,
            b.ready_ns
        );
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        // 1-line-per-set cache: 4 KB, 1-way, 16 sets.
        let mut l2 = SingleLlc::new(4, 1, 256, 1, MemTechnology::Sram);
        l2.fill(0, true, 0);
        // Same set: line addr 16 sets apart.
        let conflicting = 16 * 256;
        let out = l2.fill(conflicting as u64, false, 10);
        assert_eq!(out.writebacks, 1);
        assert_eq!(l2.summary().writebacks, 1);
    }

    #[test]
    fn energy_accrues_per_event() {
        let mut l2 = sram();
        let before = l2.energy().dynamic_nj();
        l2.probe(0x0, AccessKind::Read, 0); // miss: tag energy only
        let after_miss = l2.energy().dynamic_nj();
        assert!(after_miss > before);
        l2.fill(0x0, false, 10);
        l2.probe(0x0, AccessKind::Read, 20); // hit: tag + data
        assert!(l2.energy().dynamic_nj() > after_miss);
    }

    #[test]
    fn leakage_is_configured_from_design() {
        let l2 = sram();
        assert!(l2.energy().leakage_mw() > 0.0);
        let stt = stt();
        // 4x capacity STT still leaks less than 1x SRAM.
        assert!(stt.energy().leakage_mw() < l2.energy().leakage_mw());
    }

    #[test]
    fn reset_measurement_keeps_contents() {
        let mut l2 = sram();
        l2.fill(0x40, false, 0);
        l2.probe(0x40, AccessKind::Read, 10);
        l2.reset_measurement();
        assert_eq!(l2.summary().accesses(), 0);
        assert!(
            l2.probe(0x40, AccessKind::Read, 20).hit,
            "contents survive reset"
        );
    }

    #[test]
    fn any_llc_delegates() {
        let mut any: AnyLlc = sram().into();
        assert!(any.as_two_part().is_none());
        assert!(!any.probe(0x0, AccessKind::Read, 0).hit);
        any.fill(0x0, false, 1);
        assert!(any.probe(0x0, AccessKind::Read, 2).hit);
        assert_eq!(any.line_bytes(), 256);
        assert_eq!(any.maintenance_interval_ns(), u64::MAX);
    }
}
