//! Differential tests of the fault-injection subsystem.
//!
//! Three properties anchor trust in the fault model:
//!
//! 1. **Rate-0 transparency** — a zero-rate [`FaultConfig`] (even with a
//!    nonzero seed) must leave every hit/miss outcome, counter, energy
//!    ledger entry and trace event byte-identical to a fault-free run,
//!    across the same corner geometries `checker_diff` sweeps.
//! 2. **Checker-green under injection** — a seeded nonzero plan may
//!    degrade performance but must never produce an invariant violation:
//!    every ECC drop, dropped refresh and stalled buffer flows through
//!    the event vocabulary the [`Checker`] understands.
//! 3. **Corrected reads are architecturally invisible** — runs where
//!    SECDED corrected flips but nothing worse happened must match their
//!    fault-free twin in every outcome, counter and event except the
//!    correction bookkeeping itself.

use std::sync::{Arc, Mutex};

use sttgpu_cache::AccessKind;
use sttgpu_core::{FaultConfig, LlcModel, TwoPartConfig, TwoPartLlc, TwoPartStats};
use sttgpu_device::energy::EnergyEvent;
use sttgpu_stats::Rng;
use sttgpu_trace::{Checker, EventSink, Trace, TraceEvent, VecSink, ENERGY_CATEGORIES};

/// One random op: (is_write, line index, time advance in ns).
type Op = (bool, u64, u64);

fn stream(seed: u64, ops: usize, write_fraction: f64) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|_| {
            (
                rng.chance(write_fraction),
                rng.range_u64(0, 150),
                rng.range_u64(1, 400),
            )
        })
        .collect()
}

fn corner_configs() -> Vec<(&'static str, TwoPartConfig)> {
    let base = TwoPartConfig::new(8, 2, 56, 7, 256);
    vec![
        ("paper-shape", base.clone()),
        ("one-way-lr", TwoPartConfig::new(4, 1, 56, 7, 256)),
        ("equal-parts", TwoPartConfig::new(32, 4, 32, 4, 256)),
        ("tail-slack-max", base.clone().with_refresh_slack_ticks(14)),
        ("single-slot-buffers", base.with_buffer_blocks(1)),
    ]
}

/// Everything observable from one replay: per-op hits, two-part
/// counters, the per-category energy ledger (bit patterns), and the full
/// event stream.
struct Observed {
    hits: Vec<bool>,
    stats: TwoPartStats,
    energy_bits: [u64; ENERGY_CATEGORIES],
    events: Vec<TraceEvent>,
}

fn replay(cfg: &TwoPartConfig, ops: &[Op]) -> Observed {
    let mut llc = TwoPartLlc::new(cfg.clone());
    let sink = Arc::new(Mutex::new(VecSink::new()));
    llc.set_trace(Trace::to_sink(Arc::clone(&sink)));
    let cadence = llc.maintenance_interval_ns();
    let mut hits = Vec::with_capacity(ops.len());
    let mut now = 1u64;
    let mut last_maintain = now;
    for &(is_write, line, dt) in ops {
        now += dt;
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let addr = line * cfg.line_bytes as u64;
        let hit = llc.probe(addr, kind, now).hit;
        if !hit {
            llc.fill(addr, is_write, now);
        }
        hits.push(hit);
    }
    let mut energy_bits = [0u64; ENERGY_CATEGORIES];
    for ev in EnergyEvent::ALL {
        energy_bits[ev.index()] = llc.energy().dynamic_nj_for(ev).to_bits();
    }
    let stats = *llc.stats();
    drop(llc);
    let events = Arc::try_unwrap(sink)
        .unwrap_or_else(|_| unreachable!("llc dropped its trace handle"))
        .into_inner()
        .unwrap()
        .take();
    Observed {
        hits,
        stats,
        energy_bits,
        events,
    }
}

/// A zero-rate plan — even with a seed — changes nothing, to the byte.
#[test]
fn zero_rate_fault_plan_is_byte_transparent() {
    let zero = FaultConfig {
        seed: 0xBEEF,
        ..FaultConfig::disabled()
    };
    for (name, cfg) in corner_configs() {
        for seed in [0xFA01, 0xFA02] {
            let ops = stream(seed, 3_000, 0.6);
            let clean = replay(&cfg, &ops);
            let zeroed = replay(&cfg.clone().with_fault(zero), &ops);
            assert_eq!(
                clean.hits, zeroed.hits,
                "[{name}/{seed:#x}] zero-rate plan perturbed hit/miss outcomes"
            );
            assert_eq!(
                clean.stats, zeroed.stats,
                "[{name}/{seed:#x}] zero-rate plan perturbed counters"
            );
            assert_eq!(
                clean.energy_bits, zeroed.energy_bits,
                "[{name}/{seed:#x}] zero-rate plan perturbed the energy ledger"
            );
            assert_eq!(
                clean.events, zeroed.events,
                "[{name}/{seed:#x}] zero-rate plan perturbed the event stream"
            );
        }
    }
}

/// Replays with the invariant checker attached and a live fault plan.
fn replay_checked(cfg: &TwoPartConfig, ops: &[Op]) -> (TwoPartStats, sttgpu_trace::CheckReport) {
    let mut llc = TwoPartLlc::new(cfg.clone());
    let cadence = llc.maintenance_interval_ns();
    let checker = Arc::new(Mutex::new(Checker::new(
        cfg.check_config().with_slack_ns(cadence),
    )));
    llc.set_trace(Trace::to_sink(Arc::clone(&checker)));
    let mut now = 1u64;
    let mut last_maintain = now;
    for &(is_write, line, dt) in ops {
        now += dt;
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let addr = line * cfg.line_bytes as u64;
        if !llc.probe(addr, kind, now).hit {
            llc.fill(addr, is_write, now);
        }
    }
    let stats = llc.summary();
    let mut c = checker.lock().unwrap();
    c.emit(&TraceEvent::MetricsReport {
        read_hits: stats.read_hits,
        read_misses: stats.read_misses,
        write_hits: stats.write_hits,
        write_misses: stats.write_misses,
        writebacks: stats.writebacks,
    });
    let mut by_category = [0.0; ENERGY_CATEGORIES];
    for ev in EnergyEvent::ALL {
        by_category[ev.index()] = llc.energy().dynamic_nj_for(ev);
    }
    c.emit(&TraceEvent::EnergyReport {
        by_category,
        total_nj: llc.energy().dynamic_nj(),
    });
    c.finish_run(true);
    (*llc.stats(), c.report())
}

/// A seeded nonzero plan injects real faults, and the checker stays
/// green through all of them on every corner geometry.
#[test]
fn checker_stays_green_under_seeded_injection() {
    let mut total_injected = 0u64;
    for (name, cfg) in corner_configs() {
        for rate in [1e-4, 1e-2] {
            let fault = FaultConfig::uniform(0x5EED, rate);
            let ops = stream(0xFA11, 4_000, 0.6);
            let (stats, report) = replay_checked(&cfg.clone().with_fault(fault), &ops);
            assert!(
                report.is_clean(),
                "[{name}/rate {rate}] {} violation(s):\n{}",
                report.violations,
                report.samples.join("\n")
            );
            total_injected += stats.ecc_corrections
                + stats.ecc_uncorrectable
                + stats.refresh_drops
                + stats.buffer_stalls
                + stats.bank_faults;
        }
    }
    assert!(
        total_injected > 0,
        "the sweep must actually inject something"
    );
}

/// Strips the correction bookkeeping (EccCorrected + the matching ECC
/// energy deposits) from an event stream.
fn without_correction_events(events: &[TraceEvent]) -> Vec<TraceEvent> {
    let ecc_category = EnergyEvent::Ecc.index() as u8;
    events
        .iter()
        .filter(|ev| {
            !matches!(ev, TraceEvent::EccCorrected { .. })
                && !matches!(ev, TraceEvent::EnergyDeposit { category, .. } if *category == ecc_category)
        })
        .cloned()
        .collect()
}

/// Property: a run where SECDED only ever *corrected* (no uncorrectable
/// errors, drops, stalls or bank faults) is architecturally identical to
/// its fault-free twin — same hits, same counters, same events, same
/// energy — apart from the correction bookkeeping itself.
#[test]
fn corrected_lines_never_alter_architectural_state() {
    let cfg = TwoPartConfig::new(8, 2, 56, 7, 256);
    let mut verified = 0;
    for seed in 0..12u64 {
        // A small flip rate keeps the per-epoch Poisson mass tiny, where
        // single-bit (correctable) flips dominate.
        let fault = FaultConfig {
            seed: 0xC0DE + seed,
            flip_rate: 2e-5,
            ..FaultConfig::disabled()
        };
        let ops = stream(0xAB0 + seed, 3_000, 0.5);
        let faulted = replay(&cfg.clone().with_fault(fault), &ops);
        let s = faulted.stats;
        if s.ecc_corrections == 0
            || s.ecc_uncorrectable != 0
            || s.refresh_drops != 0
            || s.buffer_stalls != 0
            || s.bank_faults != 0
        {
            continue; // not a corrected-only run; try the next seed
        }
        let clean = replay(&cfg, &ops);
        assert_eq!(
            clean.hits, faulted.hits,
            "[{seed}] corrected reads changed outcomes"
        );
        let mut masked = s;
        masked.ecc_corrections = 0;
        assert_eq!(
            clean.stats, masked,
            "[{seed}] corrected reads changed counters"
        );
        for ev in EnergyEvent::ALL {
            if ev != EnergyEvent::Ecc {
                assert_eq!(
                    clean.energy_bits[ev.index()],
                    faulted.energy_bits[ev.index()],
                    "[{seed}] corrected reads changed the {ev} ledger"
                );
            }
        }
        assert_eq!(
            clean.events,
            without_correction_events(&faulted.events),
            "[{seed}] corrected reads changed the event stream"
        );
        verified += 1;
    }
    assert!(
        verified >= 3,
        "only {verified} corrected-only runs found — recalibrate the rate"
    );
}
