//! Regression tests for SECDED on the migration read path.
//!
//! An HR write hit that the WWS monitor migrates physically *reads* the
//! payload out of HR before merging the demand data into LR, so the ECC
//! check must run on that read. Before this was modeled, `hr_write_hit`
//! extracted the line with `.expect("hit line must extract")` — a panic
//! waiting for any fault path that invalidates the line between the tag
//! probe and the extract. Now an uncorrectable migration read drops the
//! line and re-misses the access instead.
//!
//! The tests drive the deterministic corner of the keyed-draw fault
//! model: at `flip_rate = 1.0` the per-epoch Poisson mass over a µs-old
//! line is so large that the outcome is `Uncorrectable` for every seed,
//! so no seed hunting is involved.

use sttgpu_cache::AccessKind;
use sttgpu_core::{FaultConfig, LlcModel, TwoPartConfig, TwoPartLlc};

fn saturated_flips() -> FaultConfig {
    FaultConfig {
        seed: 1,
        flip_rate: 1.0,
        ..FaultConfig::disabled()
    }
}

#[test]
fn migration_read_uncorrectable_re_misses_the_write() {
    // Threshold 1: the first write to an HR-resident line migrates, so
    // the write probe runs ECC on the migration read. The aged clean
    // line is uncorrectable -> dropped -> the access becomes a miss.
    let cfg = TwoPartConfig::new(8, 2, 56, 7, 256).with_fault(saturated_flips());
    let addr = 3 * cfg.line_bytes as u64;
    let mut llc = TwoPartLlc::new(cfg);
    llc.fill(addr, false, 0); // clean fill -> HR
    assert!(llc.hr_contains(addr));

    let probe = llc.probe(addr, AccessKind::Write, 1_000_000);
    assert!(!probe.hit, "uncorrectable migration read must re-miss");
    assert!(!llc.hr_contains(addr) && !llc.lr_contains(addr));
    assert_eq!(llc.stats().ecc_uncorrectable, 1);
    assert_eq!(llc.stats().write_misses, 1);
    assert_eq!(llc.stats().hr_write_hits, 0, "the hit was never serviced");
    assert_eq!(llc.stats().migrations_to_lr, 0);
    assert_eq!(
        llc.stats().data_loss_events,
        0,
        "a clean line loses nothing"
    );

    // The access completes through the regular miss path.
    llc.fill(addr, true, 1_000_100);
    assert!(llc.lr_contains(addr), "dirty refill lands in LR");
}

#[test]
fn migration_read_uncorrectable_on_dirty_line_is_data_loss() {
    // Threshold 2: a dirty fill seeds one write, and the second demand
    // write is the migration trigger. The dirty payload is gone when the
    // migration read fails.
    let cfg = TwoPartConfig::new(8, 2, 56, 7, 256)
        .with_write_threshold(2)
        .with_fault(saturated_flips());
    let addr = 5 * cfg.line_bytes as u64;
    let mut llc = TwoPartLlc::new(cfg);
    llc.fill(addr, true, 0); // dirty fill -> HR at threshold 2
    assert!(llc.hr_contains(addr));

    let probe = llc.probe(addr, AccessKind::Write, 1_000_000);
    assert!(!probe.hit);
    assert_eq!(llc.stats().ecc_uncorrectable, 1);
    assert_eq!(llc.stats().data_loss_events, 1);
    assert_eq!(llc.stats().writebacks, 0, "nothing valid to write back");
}

#[test]
fn below_threshold_writes_skip_the_migration_read_ecc() {
    // Threshold 3: the first demand write after a dirty fill reaches
    // write count 2 < 3, stays in place and never reads the payload —
    // even a saturated flip plan must not touch it.
    let cfg = TwoPartConfig::new(8, 2, 56, 7, 256)
        .with_write_threshold(3)
        .with_fault(saturated_flips());
    let addr = 7 * cfg.line_bytes as u64;
    let mut llc = TwoPartLlc::new(cfg);
    llc.fill(addr, true, 0);
    assert!(llc.hr_contains(addr));

    let probe = llc.probe(addr, AccessKind::Write, 1_000_000);
    assert!(probe.hit, "in-place write needs no payload read");
    assert!(llc.hr_contains(addr));
    assert_eq!(llc.stats().ecc_uncorrectable, 0);
    assert_eq!(llc.stats().hr_write_hits, 1);
}
