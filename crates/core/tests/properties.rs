//! Randomized property tests for the two-part LLC's architectural
//! invariants, driven by the in-tree deterministic [`Rng`].

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, SearchMode, SwapBuffer, TwoPartConfig, TwoPartLlc};
use sttgpu_stats::Rng;

fn small_cfg() -> TwoPartConfig {
    TwoPartConfig::new(8, 2, 56, 7, 256)
}

/// Draws a trace of (is_write, block) pairs.
fn random_trace(rng: &mut Rng, max_block: u64, min_len: usize, max_len: usize) -> Vec<(bool, u64)> {
    let len = rng.range_usize(min_len, max_len);
    (0..len)
        .map(|_| (rng.chance(0.5), rng.range_u64(0, max_block)))
        .collect()
}

/// Drives a random access mix (with correct miss/fill protocol) through the
/// LLC and returns it for invariant inspection.
fn drive(llc: &mut TwoPartLlc, ops: &[(bool, u64)], maintain_every: usize) {
    let mut now = 1u64;
    for (i, &(is_write, block)) in ops.iter().enumerate() {
        now += 23;
        let addr = block * 256;
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = llc.probe(addr, kind, now);
        if !out.hit {
            now += 100; // DRAM round trip
            llc.fill(addr, is_write, now);
        }
        if maintain_every > 0 && i % maintain_every == 0 {
            llc.maintain(now);
        }
    }
}

/// A block never resides in LR and HR simultaneously.
#[test]
fn exclusive_residency() {
    let mut rng = Rng::new(0x100);
    for _ in 0..30 {
        let ops = random_trace(&mut rng, 200, 1, 500);
        let mut llc = TwoPartLlc::new(small_cfg());
        drive(&mut llc, &ops, 50);
        for &(_, block) in &ops {
            let addr = block * 256;
            assert!(
                !(llc.lr_contains(addr) && llc.hr_contains(addr)),
                "block {block} in both parts"
            );
        }
    }
}

/// Probe accounting: hits + misses == probes issued, for both kinds.
#[test]
fn probe_accounting() {
    let mut rng = Rng::new(0x200);
    for _ in 0..30 {
        let ops = random_trace(&mut rng, 100, 1, 300);
        let mut llc = TwoPartLlc::new(small_cfg());
        drive(&mut llc, &ops, 0);
        let s = llc.summary();
        let writes = ops.iter().filter(|(w, _)| *w).count() as u64;
        let reads = ops.len() as u64 - writes;
        assert_eq!(s.read_hits + s.read_misses, reads);
        assert_eq!(s.write_hits + s.write_misses, writes);
    }
}

/// Sequential and parallel search agree on hit/miss outcomes (they differ
/// only in latency/energy).
#[test]
fn search_modes_agree_on_hits() {
    let mut rng = Rng::new(0x300);
    for _ in 0..30 {
        let ops = random_trace(&mut rng, 100, 1, 300);
        let mut seq = TwoPartLlc::new(small_cfg().with_search(SearchMode::Sequential));
        let mut par = TwoPartLlc::new(small_cfg().with_search(SearchMode::Parallel));
        let mut now = 1u64;
        for &(is_write, block) in &ops {
            now += 31;
            let addr = block * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let a = seq.probe(addr, kind, now);
            let b = par.probe(addr, kind, now);
            assert_eq!(a.hit, b.hit, "search modes disagree");
            if !a.hit {
                seq.fill(addr, is_write, now + 100);
                par.fill(addr, is_write, now + 100);
            }
        }
    }
}

/// With threshold 1, every write-hit block ends up LR-resident (unless the
/// HR→LR buffer overflowed, which tiny traffic here never does).
#[test]
fn written_blocks_join_the_wws() {
    let mut rng = Rng::new(0x400);
    for _ in 0..30 {
        let blocks: Vec<u64> = (0..rng.range_usize(1, 50))
            .map(|_| rng.range_u64(0, 50))
            .collect();
        let mut llc = TwoPartLlc::new(small_cfg());
        let mut now = 1u64;
        for &b in &blocks {
            now += 40;
            let addr = b * 256;
            let out = llc.probe(addr, AccessKind::Write, now);
            if !out.hit {
                now += 100;
                llc.fill(addr, true, now);
            }
            assert!(
                llc.lr_contains(addr) || !llc.hr_contains(addr),
                "written block must not stay in HR at TH=1"
            );
        }
    }
}

/// Maintenance keeps LR expirations at zero when called on cadence.
#[test]
fn no_data_loss_with_maintenance() {
    let mut rng = Rng::new(0x500);
    for _ in 0..30 {
        let ops = random_trace(&mut rng, 60, 10, 200);
        let mut llc = TwoPartLlc::new(small_cfg());
        let tick = llc.maintenance_interval_ns();
        let mut now = 1u64;
        let mut next_maintain = tick;
        for &(is_write, block) in &ops {
            now += 200;
            while now >= next_maintain {
                llc.maintain(next_maintain);
                next_maintain += tick;
            }
            let addr = block * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = llc.probe(addr, kind, now);
            if !out.hit {
                llc.fill(addr, is_write, now + 100);
            }
        }
        assert_eq!(
            llc.stats().lr_expirations,
            0,
            "on-cadence maintenance must prevent LR data loss"
        );
    }
}

/// Energy and array-write counters are monotone under traffic.
#[test]
fn monotone_counters() {
    let mut rng = Rng::new(0x600);
    for _ in 0..30 {
        let ops = random_trace(&mut rng, 100, 2, 100);
        let mut llc = TwoPartLlc::new(small_cfg());
        let mut last_energy = 0.0f64;
        let mut last_writes = 0u64;
        let mut now = 1u64;
        for &(is_write, block) in &ops {
            now += 29;
            let addr = block * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if !llc.probe(addr, kind, now).hit {
                llc.fill(addr, is_write, now + 100);
            }
            let e = llc.energy().dynamic_nj();
            let w = llc.stats().total_array_writes();
            assert!(e >= last_energy);
            assert!(w >= last_writes);
            last_energy = e;
            last_writes = w;
        }
    }
}

/// Raising the write threshold never increases HR→LR migrations for the
/// same trace.
#[test]
fn higher_threshold_fewer_migrations() {
    let mut rng = Rng::new(0x700);
    for _ in 0..20 {
        let ops: Vec<u64> = (0..rng.range_usize(10, 200))
            .map(|_| rng.range_u64(0, 80))
            .collect();
        let mut migrations = Vec::new();
        for th in [1u32, 3, 7, 15] {
            let mut llc = TwoPartLlc::new(small_cfg().with_write_threshold(th));
            let mut now = 1u64;
            for &b in &ops {
                now += 37;
                let addr = b * 256;
                if !llc.probe(addr, AccessKind::Write, now).hit {
                    llc.fill(addr, true, now + 100);
                }
            }
            migrations.push(llc.stats().migrations_to_lr + llc.stats().fills_to_lr);
        }
        for w in migrations.windows(2) {
            assert!(
                w[0] >= w[1],
                "LR admissions must not grow with threshold: {migrations:?}"
            );
        }
    }
}

/// SwapBuffer under arbitrary reserve/advance interleavings: occupancy
/// never exceeds capacity, every attempt is counted exactly once as an
/// admission or an overflow, and the peak tracks the true maximum.
#[test]
fn swap_buffer_occupancy_bounded_under_random_interleavings() {
    let mut rng = Rng::new(0x800);
    for _ in 0..50 {
        let capacity = rng.range_usize(1, 9);
        let mut buf = SwapBuffer::new(capacity);
        let mut now = 1u64;
        let mut attempts = 0u64;
        let mut observed_peak = 0usize;
        for _ in 0..rng.range_usize(10, 400) {
            if rng.chance(0.6) {
                let completes = now + rng.range_u64(1, 300);
                buf.try_reserve(now, completes);
                attempts += 1;
            } else {
                now += rng.range_u64(0, 200);
            }
            let occ = buf.occupancy(now);
            assert!(
                occ <= capacity,
                "occupancy {occ} exceeds capacity {capacity}"
            );
            observed_peak = observed_peak.max(occ);
        }
        assert_eq!(
            buf.admissions() + buf.overflows(),
            attempts,
            "every reserve attempt is exactly one admission or one overflow"
        );
        assert!(buf.peak_occupancy() <= capacity);
        assert!(
            buf.peak_occupancy() >= observed_peak,
            "peak must dominate every observed occupancy"
        );
    }
}

/// SwapBuffer slots drain deterministically: occupancy is non-increasing
/// as time advances with no new reservations, reaches zero past the last
/// completion, and a freed slot is immediately reusable.
#[test]
fn swap_buffer_drains_and_frees_slots() {
    let mut rng = Rng::new(0x900);
    for _ in 0..50 {
        let capacity = rng.range_usize(1, 6);
        let mut buf = SwapBuffer::new(capacity);
        let now = 1u64;
        let mut last_completion = now;
        for _ in 0..capacity {
            let completes = now + rng.range_u64(1, 500);
            assert!(buf.try_reserve(now, completes), "empty buffer admits");
            last_completion = last_completion.max(completes);
        }
        assert_eq!(buf.occupancy(now), capacity);
        // A full buffer rejects until a slot's write completes.
        assert!(!buf.try_reserve(now, now + 1));
        let mut prev = capacity;
        let mut t = now;
        while t <= last_completion {
            t += rng.range_u64(1, 100);
            let occ = buf.occupancy(t);
            assert!(occ <= prev, "occupancy must be non-increasing while idle");
            prev = occ;
        }
        assert_eq!(buf.occupancy(last_completion + 1), 0, "all slots drain");
        assert!(
            buf.try_reserve(last_completion + 1, last_completion + 50),
            "a drained buffer admits again"
        );
    }
}
