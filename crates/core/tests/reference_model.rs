//! Model-based testing: an independent, timing-free reference
//! implementation of the two-part placement/migration policy, replayed
//! against [`TwoPartLlc`] on random traces. The production model carries
//! timing, energy, buffers and refresh; the *functional* content —
//! which part a block resides in, hit/miss outcomes, migration decisions —
//! must match this ~100-line reference exactly (modulo the swap-buffer
//! overflow fallback, which the reference reproduces by observing the
//! production buffers' admission behaviour; tests therefore use traces
//! slow enough that buffers never overflow).

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc};
use sttgpu_stats::Rng;

/// One set of a reference LRU cache: most-recent at the back.
type RefSet = Vec<u64>;

/// A timing-free reference of the two-part policy at write threshold 1.
struct RefTwoPart {
    lr: Vec<RefSet>,
    hr: Vec<RefSet>,
    lr_ways: usize,
    hr_ways: usize,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum RefPlace {
    Lr,
    Hr,
    Absent,
}

impl RefTwoPart {
    fn new(cfg: &TwoPartConfig) -> Self {
        RefTwoPart {
            lr: vec![Vec::new(); cfg.lr_sets() as usize],
            hr: vec![Vec::new(); cfg.hr_sets() as usize],
            lr_ways: cfg.lr_ways as usize,
            hr_ways: cfg.hr_ways as usize,
        }
    }

    fn place_of(&self, line: u64) -> RefPlace {
        let lr_set = (line % self.lr.len() as u64) as usize;
        if self.lr[lr_set].contains(&line) {
            return RefPlace::Lr;
        }
        let hr_set = (line % self.hr.len() as u64) as usize;
        if self.hr[hr_set].contains(&line) {
            return RefPlace::Hr;
        }
        RefPlace::Absent
    }

    fn touch(set: &mut RefSet, line: u64) {
        if let Some(i) = set.iter().position(|&l| l == line) {
            set.remove(i);
        }
        set.push(line);
    }

    /// Inserts into LR, demoting an LRU victim to HR when full.
    fn insert_lr(&mut self, line: u64) {
        let set_idx = (line % self.lr.len() as u64) as usize;
        let lr_ways = self.lr_ways;
        let set = &mut self.lr[set_idx];
        Self::touch(set, line);
        if set.len() > lr_ways {
            let victim = set.remove(0);
            self.insert_hr(victim);
        }
    }

    /// Inserts into HR, dropping the LRU victim (write-back is timing).
    fn insert_hr(&mut self, line: u64) {
        let set_idx = (line % self.hr.len() as u64) as usize;
        let hr_ways = self.hr_ways;
        let set = &mut self.hr[set_idx];
        Self::touch(set, line);
        if set.len() > hr_ways {
            set.remove(0);
        }
    }

    fn remove_hr(&mut self, line: u64) {
        let set_idx = (line % self.hr.len() as u64) as usize;
        self.hr[set_idx].retain(|&l| l != line);
    }

    /// Replays one probe; returns whether it hit.
    fn probe(&mut self, line: u64, kind: AccessKind) -> bool {
        match (self.place_of(line), kind) {
            (RefPlace::Lr, _) => {
                let set_idx = (line % self.lr.len() as u64) as usize;
                Self::touch(&mut self.lr[set_idx], line);
                true
            }
            (RefPlace::Hr, AccessKind::Read) => {
                let set_idx = (line % self.hr.len() as u64) as usize;
                Self::touch(&mut self.hr[set_idx], line);
                true
            }
            (RefPlace::Hr, AccessKind::Write) => {
                // Threshold 1: the first write migrates HR -> LR.
                self.remove_hr(line);
                self.insert_lr(line);
                true
            }
            (RefPlace::Absent, _) => false,
        }
    }

    /// Replays a fill (dirty fills land in LR at threshold 1).
    fn fill(&mut self, line: u64, dirty: bool) {
        if dirty {
            self.insert_lr(line);
        } else {
            self.insert_hr(line);
        }
    }
}

fn cfg() -> TwoPartConfig {
    // Generous buffers so the overflow fallback never triggers and the
    // reference semantics apply exactly.
    TwoPartConfig::new(8, 2, 56, 7, 256).with_buffer_blocks(10_000)
}

/// Production and reference agree on every hit/miss outcome and every
/// block's final residency.
#[test]
fn production_matches_reference() {
    let mut rng = Rng::new(0xAB5);
    for _ in 0..30 {
        let ops: Vec<(bool, u64)> = (0..rng.range_usize(1, 600))
            .map(|_| (rng.chance(0.5), rng.range_u64(0, 300)))
            .collect();
        let config = cfg();
        let mut prod = TwoPartLlc::new(config.clone());
        let mut reference = RefTwoPart::new(&config);
        let mut now = 1u64;
        for &(is_write, line) in &ops {
            now += 50;
            let addr = line * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let prod_hit = prod.probe(addr, kind, now).hit;
            let ref_hit = reference.probe(line, kind);
            assert_eq!(prod_hit, ref_hit, "hit mismatch on line {line}");
            if !prod_hit {
                now += 10;
                prod.fill(addr, is_write, now);
                reference.fill(line, is_write);
            }
        }
        // Final residency must agree block by block.
        for line in 0..300u64 {
            let addr = line * 256;
            let prod_place = if prod.lr_contains(addr) {
                RefPlace::Lr
            } else if prod.hr_contains(addr) {
                RefPlace::Hr
            } else {
                RefPlace::Absent
            };
            assert_eq!(prod_place, reference.place_of(line), "line {line}");
        }
    }
}

/// Under read-only traffic the LR part stays empty and the production
/// model degenerates to a plain HR cache.
#[test]
fn read_only_traffic_never_populates_lr() {
    let mut rng = Rng::new(0xCD5);
    for _ in 0..30 {
        let lines: Vec<u64> = (0..rng.range_usize(1, 300))
            .map(|_| rng.range_u64(0, 500))
            .collect();
        let mut prod = TwoPartLlc::new(cfg());
        let mut now = 1u64;
        for &line in &lines {
            now += 50;
            let addr = line * 256;
            if !prod.probe(addr, AccessKind::Read, now).hit {
                prod.fill(addr, false, now + 10);
            }
            assert!(!prod.lr_contains(addr), "read-only block entered LR");
        }
        assert_eq!(prod.stats().migrations_to_lr, 0);
        assert_eq!(prod.stats().fills_to_lr, 0);
    }
}
