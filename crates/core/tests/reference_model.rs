//! Model-based testing: an independent, timing-free reference
//! implementation of the two-part placement/migration policy, replayed
//! against [`TwoPartLlc`] on random traces. The production model carries
//! timing, energy, buffers and refresh; the *functional* content —
//! which part a block resides in, hit/miss outcomes, migration decisions —
//! must match this ~100-line reference exactly. The swap-buffer overflow
//! fallback is covered too: the reference observes the production model's
//! `BufferOverflow` events through the typed trace stream and applies the
//! documented fallback (write-in-place for a full HR→LR buffer, forced
//! eviction for a full LR→HR buffer) at the same decision points.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, TwoPartConfig, TwoPartLlc};
use sttgpu_stats::Rng;
use sttgpu_trace::{BufferDir, Trace, TraceEvent, VecSink};

/// One set of a reference LRU cache: most-recent at the back.
type RefSet = Vec<u64>;

/// A timing-free reference of the two-part policy at write threshold 1.
struct RefTwoPart {
    lr: Vec<RefSet>,
    hr: Vec<RefSet>,
    lr_ways: usize,
    hr_ways: usize,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum RefPlace {
    Lr,
    Hr,
    Absent,
}

impl RefTwoPart {
    fn new(cfg: &TwoPartConfig) -> Self {
        RefTwoPart {
            lr: vec![Vec::new(); cfg.lr_sets() as usize],
            hr: vec![Vec::new(); cfg.hr_sets() as usize],
            lr_ways: cfg.lr_ways as usize,
            hr_ways: cfg.hr_ways as usize,
        }
    }

    fn place_of(&self, line: u64) -> RefPlace {
        let lr_set = (line % self.lr.len() as u64) as usize;
        if self.lr[lr_set].contains(&line) {
            return RefPlace::Lr;
        }
        let hr_set = (line % self.hr.len() as u64) as usize;
        if self.hr[hr_set].contains(&line) {
            return RefPlace::Hr;
        }
        RefPlace::Absent
    }

    fn touch(set: &mut RefSet, line: u64) {
        if let Some(i) = set.iter().position(|&l| l == line) {
            set.remove(i);
        }
        set.push(line);
    }

    /// Inserts into LR, demoting an LRU victim to HR when full. A pending
    /// `LrToHr` overflow observed on the production trace means the
    /// demotion buffer was full there: the victim is forced out to DRAM
    /// instead of entering HR.
    fn insert_lr(&mut self, line: u64, overflows: &mut VecDeque<BufferDir>) {
        let set_idx = (line % self.lr.len() as u64) as usize;
        let lr_ways = self.lr_ways;
        let set = &mut self.lr[set_idx];
        Self::touch(set, line);
        if set.len() > lr_ways {
            let victim = set.remove(0);
            if overflows.front() == Some(&BufferDir::LrToHr) {
                overflows.pop_front();
            } else {
                self.insert_hr(victim);
            }
        }
    }

    /// Inserts into HR, dropping the LRU victim (write-back is timing).
    fn insert_hr(&mut self, line: u64) {
        let set_idx = (line % self.hr.len() as u64) as usize;
        let hr_ways = self.hr_ways;
        let set = &mut self.hr[set_idx];
        Self::touch(set, line);
        if set.len() > hr_ways {
            set.remove(0);
        }
    }

    fn remove_hr(&mut self, line: u64) {
        let set_idx = (line % self.hr.len() as u64) as usize;
        self.hr[set_idx].retain(|&l| l != line);
    }

    /// Replays one probe; returns whether it hit. `overflows` carries the
    /// `BufferOverflow` directions the production model emitted for this
    /// same operation, in order.
    fn probe(&mut self, line: u64, kind: AccessKind, overflows: &mut VecDeque<BufferDir>) -> bool {
        match (self.place_of(line), kind) {
            (RefPlace::Lr, _) => {
                let set_idx = (line % self.lr.len() as u64) as usize;
                Self::touch(&mut self.lr[set_idx], line);
                true
            }
            (RefPlace::Hr, AccessKind::Read) => {
                let set_idx = (line % self.hr.len() as u64) as usize;
                Self::touch(&mut self.hr[set_idx], line);
                true
            }
            (RefPlace::Hr, AccessKind::Write) => {
                if overflows.front() == Some(&BufferDir::HrToLr) {
                    // Migration buffer full there: the production model
                    // services the write in place, the block stays in HR.
                    overflows.pop_front();
                    let set_idx = (line % self.hr.len() as u64) as usize;
                    Self::touch(&mut self.hr[set_idx], line);
                } else {
                    // Threshold 1: the first write migrates HR -> LR.
                    self.remove_hr(line);
                    self.insert_lr(line, overflows);
                }
                true
            }
            (RefPlace::Absent, _) => false,
        }
    }

    /// Replays a fill (dirty fills land in LR at threshold 1).
    fn fill(&mut self, line: u64, dirty: bool, overflows: &mut VecDeque<BufferDir>) {
        if dirty {
            self.insert_lr(line, overflows);
        } else {
            self.insert_hr(line);
        }
    }
}

fn cfg() -> TwoPartConfig {
    // Generous buffers so the overflow fallback never triggers and the
    // reference semantics apply exactly.
    TwoPartConfig::new(8, 2, 56, 7, 256).with_buffer_blocks(10_000)
}

/// Production and reference agree on every hit/miss outcome and every
/// block's final residency.
#[test]
fn production_matches_reference() {
    let mut rng = Rng::new(0xAB5);
    for _ in 0..30 {
        let ops: Vec<(bool, u64)> = (0..rng.range_usize(1, 600))
            .map(|_| (rng.chance(0.5), rng.range_u64(0, 300)))
            .collect();
        let config = cfg();
        let mut prod = TwoPartLlc::new(config.clone());
        let mut reference = RefTwoPart::new(&config);
        let mut now = 1u64;
        for &(is_write, line) in &ops {
            now += 50;
            let addr = line * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let prod_hit = prod.probe(addr, kind, now).hit;
            let ref_hit = reference.probe(line, kind, &mut VecDeque::new());
            assert_eq!(prod_hit, ref_hit, "hit mismatch on line {line}");
            if !prod_hit {
                now += 10;
                prod.fill(addr, is_write, now);
                reference.fill(line, is_write, &mut VecDeque::new());
            }
        }
        // Final residency must agree block by block.
        for line in 0..300u64 {
            let addr = line * 256;
            let prod_place = if prod.lr_contains(addr) {
                RefPlace::Lr
            } else if prod.hr_contains(addr) {
                RefPlace::Hr
            } else {
                RefPlace::Absent
            };
            assert_eq!(prod_place, reference.place_of(line), "line {line}");
        }
    }
}

/// Under read-only traffic the LR part stays empty and the production
/// model degenerates to a plain HR cache.
#[test]
fn read_only_traffic_never_populates_lr() {
    let mut rng = Rng::new(0xCD5);
    for _ in 0..30 {
        let lines: Vec<u64> = (0..rng.range_usize(1, 300))
            .map(|_| rng.range_u64(0, 500))
            .collect();
        let mut prod = TwoPartLlc::new(cfg());
        let mut now = 1u64;
        for &line in &lines {
            now += 50;
            let addr = line * 256;
            if !prod.probe(addr, AccessKind::Read, now).hit {
                prod.fill(addr, false, now + 10);
            }
            assert!(!prod.lr_contains(addr), "read-only block entered LR");
        }
        assert_eq!(prod.stats().migrations_to_lr, 0);
        assert_eq!(prod.stats().fills_to_lr, 0);
    }
}

/// Overflow directions the production model emitted for one operation,
/// drained from the attached [`VecSink`].
fn drain_overflows(sink: &Arc<Mutex<VecSink>>) -> VecDeque<BufferDir> {
    sink.lock()
        .unwrap()
        .take()
        .into_iter()
        .filter_map(|ev| match ev {
            TraceEvent::BufferOverflow { dir, .. } => Some(dir),
            _ => None,
        })
        .collect()
}

/// With single-slot swap buffers and back-to-back writes the buffers
/// overflow constantly; production and reference still agree on every
/// hit/miss outcome and every block's final residency because the
/// reference replays the overflow fallbacks observed on the event stream.
#[test]
fn production_matches_reference_under_buffer_overflow() {
    let mut rng = Rng::new(0xF10D);
    let mut total_overflows = 0u64;
    for _ in 0..30 {
        let mut run_overflows = 0u64;
        let ops: Vec<(bool, u64)> = (0..rng.range_usize(200, 800))
            .map(|_| (rng.chance(0.8), rng.range_u64(0, 120)))
            .collect();
        let config = TwoPartConfig::new(8, 2, 56, 7, 256).with_buffer_blocks(1);
        let mut prod = TwoPartLlc::new(config.clone());
        let sink = Arc::new(Mutex::new(VecSink::new()));
        prod.set_trace(Trace::to_sink(Arc::clone(&sink)));
        let mut reference = RefTwoPart::new(&config);
        // Advance time barely at all so single-slot buffers stay occupied
        // across consecutive migrations and the overflow paths trigger.
        let mut now = 1u64;
        for &(is_write, line) in &ops {
            now += 1;
            let addr = line * 256;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let prod_hit = prod.probe(addr, kind, now).hit;
            let mut overflows = drain_overflows(&sink);
            run_overflows += overflows.len() as u64;
            let ref_hit = reference.probe(line, kind, &mut overflows);
            assert_eq!(prod_hit, ref_hit, "hit mismatch on line {line}");
            assert!(
                overflows.is_empty(),
                "probe left unconsumed overflow hints on line {line}: {overflows:?}"
            );
            if !prod_hit {
                prod.fill(addr, is_write, now);
                let mut overflows = drain_overflows(&sink);
                run_overflows += overflows.len() as u64;
                reference.fill(line, is_write, &mut overflows);
                assert!(
                    overflows.is_empty(),
                    "fill left unconsumed overflow hints on line {line}: {overflows:?}"
                );
            }
        }
        assert_eq!(
            prod.buffer_overflows(),
            run_overflows,
            "every buffer overflow must be visible on the event stream"
        );
        total_overflows += run_overflows;
        for line in 0..120u64 {
            let addr = line * 256;
            let prod_place = if prod.lr_contains(addr) {
                RefPlace::Lr
            } else if prod.hr_contains(addr) {
                RefPlace::Hr
            } else {
                RefPlace::Absent
            };
            assert_eq!(prod_place, reference.place_of(line), "line {line}");
        }
    }
    assert!(
        total_overflows > 100,
        "the trace must actually exercise the overflow paths (saw {total_overflows})"
    );
}
