//! Differential replay with the invariant checker attached.
//!
//! The same pseudo-random, write-heavy access stream is replayed twice
//! through [`TwoPartLlc`] — once bare, once with a [`Checker`] sink
//! observing every event — across corner geometries of [`TwoPartConfig`]
//! (1-way LR, equal-size parts, refresh-tail extremes, single-slot swap
//! buffers). Attaching the checker must not perturb a single hit/miss
//! outcome, counter, or energy ledger entry, and the checker must report
//! zero invariant violations on every stream.

use std::sync::{Arc, Mutex};

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, LlcStats, TwoPartConfig, TwoPartLlc};
use sttgpu_device::energy::EnergyEvent;
use sttgpu_stats::Rng;
use sttgpu_trace::{CheckReport, Checker, EventSink, Trace, TraceEvent, ENERGY_CATEGORIES};

/// One random op: (is_write, line index, time advance in ns).
type Op = (bool, u64, u64);

fn stream(seed: u64, ops: usize, write_fraction: f64) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|_| {
            (
                rng.chance(write_fraction),
                rng.range_u64(0, 150),
                rng.range_u64(1, 400),
            )
        })
        .collect()
}

/// Replays `ops`, calling `maintain` at the model's own cadence. Returns
/// the per-op hit outcomes, final stats, total dynamic energy, and the
/// checker's report when one was attached.
fn replay(
    cfg: &TwoPartConfig,
    ops: &[Op],
    check: bool,
) -> (Vec<bool>, LlcStats, f64, Option<CheckReport>) {
    let mut llc = TwoPartLlc::new(cfg.clone());
    let cadence = llc.maintenance_interval_ns();
    let checker = check.then(|| {
        // Deadlines are serviced up to one maintenance interval late, so
        // the age-based invariants get exactly that much slack.
        let c = Arc::new(Mutex::new(Checker::new(
            cfg.check_config().with_slack_ns(cadence),
        )));
        llc.set_trace(Trace::to_sink(Arc::clone(&c)));
        c
    });
    let mut hits = Vec::with_capacity(ops.len());
    let mut now = 1u64;
    let mut last_maintain = now;
    for &(is_write, line, dt) in ops {
        now += dt;
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let addr = line * cfg.line_bytes as u64;
        let hit = llc.probe(addr, kind, now).hit;
        if !hit {
            llc.fill(addr, is_write, now);
        }
        hits.push(hit);
    }
    let stats = llc.summary();
    let energy = llc.energy().dynamic_nj();
    let report = checker.map(|c| {
        let mut c = c.lock().unwrap();
        // Feed the model's own ledgers back so the conservation
        // invariants (accesses = hits + misses, energy totals = sum of
        // per-event deposits) are enforced as well.
        c.emit(&TraceEvent::MetricsReport {
            read_hits: stats.read_hits,
            read_misses: stats.read_misses,
            write_hits: stats.write_hits,
            write_misses: stats.write_misses,
            writebacks: stats.writebacks,
        });
        let mut by_category = [0.0; ENERGY_CATEGORIES];
        for ev in EnergyEvent::ALL {
            by_category[ev.index()] = llc.energy().dynamic_nj_for(ev);
        }
        c.emit(&TraceEvent::EnergyReport {
            by_category,
            total_nj: energy,
        });
        c.finish_run(true);
        c.report()
    });
    (hits, stats, energy, report)
}

fn corner_configs() -> Vec<(&'static str, TwoPartConfig)> {
    let base = TwoPartConfig::new(8, 2, 56, 7, 256);
    vec![
        ("paper-shape", base.clone()),
        ("one-way-lr", TwoPartConfig::new(4, 1, 56, 7, 256)),
        ("equal-parts", TwoPartConfig::new(32, 4, 32, 4, 256)),
        ("tail-slack-max", base.clone().with_refresh_slack_ticks(14)),
        ("single-slot-buffers", base.with_buffer_blocks(1)),
    ]
}

fn stats_tuple(s: &LlcStats) -> (u64, u64, u64, u64, u64) {
    (
        s.read_hits,
        s.read_misses,
        s.write_hits,
        s.write_misses,
        s.writebacks,
    )
}

/// High write intensity across every corner geometry: the checker sees
/// zero violations, and attaching it changes nothing observable.
#[test]
fn checker_is_clean_and_transparent_across_corner_geometries() {
    for (name, cfg) in corner_configs() {
        for seed in [0xD1FF, 0xD2FF, 0xD3FF] {
            let ops = stream(seed, 4_000, 0.8);
            let (bare_hits, bare_stats, bare_energy, none) = replay(&cfg, &ops, false);
            assert!(none.is_none());
            let (checked_hits, checked_stats, checked_energy, report) = replay(&cfg, &ops, true);
            assert_eq!(
                bare_hits, checked_hits,
                "[{name}/{seed:#x}] checker perturbed hit/miss outcomes"
            );
            assert_eq!(
                stats_tuple(&bare_stats),
                stats_tuple(&checked_stats),
                "[{name}/{seed:#x}] checker perturbed counters"
            );
            assert_eq!(
                bare_energy.to_bits(),
                checked_energy.to_bits(),
                "[{name}/{seed:#x}] checker perturbed the energy ledger"
            );
            let report = report.expect("checker attached");
            assert!(
                report.events_seen > 0,
                "[{name}/{seed:#x}] no events observed"
            );
            assert!(
                report.is_clean(),
                "[{name}/{seed:#x}] {} violation(s):\n{}",
                report.violations,
                report.samples.join("\n")
            );
        }
    }
}

/// Read-mostly traffic at the other extreme keeps the checker clean too
/// (regression guard for the HR expiry horizon).
#[test]
fn checker_is_clean_on_read_mostly_traffic() {
    for (name, cfg) in corner_configs() {
        let ops = stream(0xEAD, 4_000, 0.05);
        let (_, _, _, report) = replay(&cfg, &ops, true);
        let report = report.expect("checker attached");
        assert!(
            report.is_clean(),
            "[{name}] {} violation(s):\n{}",
            report.violations,
            report.samples.join("\n")
        );
    }
}
