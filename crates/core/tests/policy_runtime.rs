//! Runtime-adaptive policy tests against the live invariant checker.
//!
//! Three properties anchor the pluggable-policy refactor:
//!
//! 1. **Fixed is free** — selecting [`LlcPolicy::Fixed`] explicitly is
//!    byte-identical (every event, counter and energy bit) to the
//!    default configuration, and emits no `PolicySwitch` events.
//! 2. **Way reallocation is safe mid-drain** — under
//!    [`LlcPolicy::AdaptiveWays`] the checker's residency, exclusivity
//!    and swap-conservation invariants hold through every shrink drain
//!    and grow, across seeds, and the active way count never leaves
//!    `[max/2, max]`.
//! 3. **Retention ladder switches keep the checker in step** — under
//!    [`LlcPolicy::AdaptiveRetention`] the ladder climbs when refreshes
//!    dominate, descends when demand writes dominate, and the
//!    `PolicySwitch`-driven window updates keep every post-switch
//!    refresh legal (the stale-window bugfix).

use std::sync::{Arc, Mutex};

use sttgpu_cache::AccessKind;
use sttgpu_core::{LlcModel, LlcPolicy, TwoPartConfig, TwoPartLlc, TwoPartStats};
use sttgpu_device::energy::EnergyEvent;
use sttgpu_device::mtj::RetentionTime;
use sttgpu_stats::Rng;
use sttgpu_trace::{
    CheckReport, Checker, EventSink, PartId, Trace, TraceEvent, VecSink, ENERGY_CATEGORIES,
};

/// One op: (is_write, line index, time advance in ns).
type Op = (bool, u64, u64);

fn paper_shape() -> TwoPartConfig {
    TwoPartConfig::new(8, 2, 56, 7, 256)
}

/// Replays `ops` with the oracle's fill-on-miss discipline, recording
/// the full event stream.
fn replay_traced(cfg: &TwoPartConfig, ops: &[Op]) -> (TwoPartStats, Vec<TraceEvent>) {
    let mut llc = TwoPartLlc::new(cfg.clone());
    let sink = Arc::new(Mutex::new(VecSink::new()));
    llc.set_trace(Trace::to_sink(Arc::clone(&sink)));
    drive(&mut llc, cfg, ops);
    let stats = *llc.stats();
    drop(llc);
    let events = Arc::try_unwrap(sink)
        .unwrap_or_else(|_| unreachable!("llc dropped its trace handle"))
        .into_inner()
        .unwrap()
        .take();
    (stats, events)
}

/// Replays `ops` with the invariant checker attached, closing the run
/// with the metrics and energy reports.
fn replay_checked(cfg: &TwoPartConfig, ops: &[Op]) -> CheckReport {
    let mut llc = TwoPartLlc::new(cfg.clone());
    let cadence = llc.maintenance_interval_ns();
    let checker = Arc::new(Mutex::new(Checker::new(
        cfg.check_config().with_slack_ns(cadence),
    )));
    llc.set_trace(Trace::to_sink(Arc::clone(&checker)));
    drive(&mut llc, cfg, ops);
    let summary = llc.summary();
    let mut c = checker.lock().unwrap();
    c.emit(&TraceEvent::MetricsReport {
        read_hits: summary.read_hits,
        read_misses: summary.read_misses,
        write_hits: summary.write_hits,
        write_misses: summary.write_misses,
        writebacks: summary.writebacks,
    });
    let mut by_category = [0.0; ENERGY_CATEGORIES];
    for ev in EnergyEvent::ALL {
        by_category[ev.index()] = llc.energy().dynamic_nj_for(ev);
    }
    c.emit(&TraceEvent::EnergyReport {
        by_category,
        total_nj: llc.energy().dynamic_nj(),
    });
    c.finish_run(true);
    c.report()
}

fn drive(llc: &mut TwoPartLlc, cfg: &TwoPartConfig, ops: &[Op]) {
    let cadence = llc.maintenance_interval_ns();
    let mut now = 1u64;
    let mut last_maintain = now;
    for &(is_write, line, dt) in ops {
        now += dt;
        while now - last_maintain >= cadence {
            last_maintain += cadence;
            llc.maintain(last_maintain);
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let addr = line * cfg.line_bytes as u64;
        if !llc.probe(addr, kind, now).hit {
            llc.fill(addr, is_write, now);
        }
    }
}

/// The `active_ways` values carried by a run's HR `PolicySwitch` events,
/// in emission order.
fn way_switches(events: &[TraceEvent]) -> Vec<u32> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::PolicySwitch {
                part: PartId::Hr,
                active_ways,
                ..
            } => Some(active_ways),
            _ => None,
        })
        .collect()
}

/// The `lr_max_hit_age_ns` values carried by a run's LR `PolicySwitch`
/// events, in emission order.
fn retention_switches(events: &[TraceEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::PolicySwitch {
                part: PartId::Lr,
                lr_max_hit_age_ns,
                ..
            } => Some(lr_max_hit_age_ns),
            _ => None,
        })
        .collect()
}

/// A mixed read/write stream over `lines` distinct lines.
fn stream(seed: u64, ops: usize, lines: u64, write_fraction: f64, max_dt: u64) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    (0..ops)
        .map(|_| {
            (
                rng.chance(write_fraction),
                rng.range_u64(0, lines),
                rng.range_u64(1, max_dt),
            )
        })
        .collect()
}

#[test]
fn explicit_fixed_policy_is_byte_identical_to_the_default() {
    let ops = stream(0xF1DE, 3_000, 150, 0.6, 400);
    let default_run = replay_traced(&paper_shape(), &ops);
    let fixed_run = replay_traced(&paper_shape().with_policy(LlcPolicy::Fixed), &ops);
    assert_eq!(default_run.0, fixed_run.0);
    assert_eq!(default_run.1, fixed_run.1, "event streams must match");
    assert!(
        !default_run
            .1
            .iter()
            .any(|ev| matches!(ev, TraceEvent::PolicySwitch { .. })),
        "the fixed policy never reconfigures"
    );
}

#[test]
fn adaptive_ways_reallocation_preserves_invariants_mid_drain() {
    let cfg = paper_shape().with_policy(LlcPolicy::AdaptiveWays);
    for seed in [0xA11, 0xA22, 0xA33u64] {
        // Phase 1: a tiny read-only hot set — once warm, epochs see no
        // HR write traffic, so the partition sheds ways. Phase 2: a
        // wide low-gap write/fill storm rebuilds write pressure and
        // grows them back.
        let mut ops = stream(seed, 2_000, 6, 0.0, 400);
        ops.extend(stream(seed ^ 0x5A5A, 4_000, 400, 0.5, 20));

        let (_, events) = replay_traced(&cfg, &ops);
        let ways = way_switches(&events);
        assert!(
            ways.iter().any(|&w| w < 7),
            "[{seed:#x}] idle epochs must shed HR ways (saw {ways:?})"
        );
        assert!(
            ways.windows(2).any(|w| w[1] > w[0]),
            "[{seed:#x}] write pressure must grow HR ways back (saw {ways:?})"
        );
        assert!(
            ways.iter().all(|&w| (3..=7).contains(&w)),
            "[{seed:#x}] active ways left [max/2, max]: {ways:?}"
        );

        // The same run under the checker: every shrink drain (evictions
        // of parked-way residents, dirty ones writing back) must respect
        // residency, exclusivity and swap-buffer conservation.
        let report = replay_checked(&cfg, &ops);
        assert!(
            report.is_clean(),
            "[{seed:#x}] {} violation(s):\n{}",
            report.violations,
            report.samples.join("\n")
        );
    }
}

#[test]
fn adaptive_retention_ladder_follows_refresh_pressure() {
    // A short 1 µs base retention makes refresh pressure visible within
    // a handful of 10 µs policy epochs.
    let cfg = paper_shape()
        .with_lr_retention(RetentionTime::from_nanos(1000.0))
        .with_hr_retention(RetentionTime::from_micros(20.0))
        .with_policy(LlcPolicy::AdaptiveRetention);

    // Park two dirty lines in LR, hold them read-only across many
    // retention periods (refresh-dominated epochs), then hammer them
    // with demand writes (write-dominated epochs).
    let mut ops: Vec<Op> = vec![(true, 1, 1), (true, 2, 1)];
    ops.extend((0..400).map(|i| (false, 1 + i % 2, 100)));
    ops.extend((0..600).map(|i| (true, 1 + i % 2, 20)));

    let (stats, events) = replay_traced(&cfg, &ops);
    let switches = retention_switches(&events);
    assert!(
        switches.contains(&2000),
        "refresh pressure must climb the ladder (saw {switches:?})"
    );
    assert!(
        switches.windows(2).any(|w| w[1] < w[0]),
        "write pressure must step back down (saw {switches:?})"
    );
    assert!(
        stats.refreshes > 0,
        "the run must exercise the refresh engine"
    );

    let report = replay_checked(&cfg, &ops);
    assert!(
        report.is_clean(),
        "{} violation(s):\n{}",
        report.violations,
        report.samples.join("\n")
    );
}
