//! Property test for the request-merge phase.
//!
//! The parallel driver's determinism rests on one claim: recording each
//! SM's memory requests into a private `RequestBatch` during the step
//! phase and replaying the batches in canonical SM-id order afterwards is
//! indistinguishable from the serial driver's inline
//! `read_request`/`write_request` calls — no matter how batch
//! construction was interleaved across SMs (i.e. no matter how worker
//! threads were scheduled).
//!
//! This harness drives two `MemSystem`s with the same randomly generated
//! per-SM request streams: one through the serial inline path in
//! canonical order, one through batches filled in a *randomized*
//! cross-SM interleaving and merged in SM-id order. Every tick the fill
//! deliveries must match, and at the end the full trace event streams,
//! LLC summaries and DRAM counters must be identical.

use std::sync::{Arc, Mutex};

use sttgpu_core::LlcModel;
use sttgpu_sim::mem::{FillDelivery, MemSystem};
use sttgpu_sim::{GpuConfig, L2ModelConfig, RequestBatch};
use sttgpu_stats::Rng;
use sttgpu_trace::{Trace, VecSink};

const LINE: u64 = 128;

fn base_cfg(num_sms: u32, two_part: bool) -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_sms = num_sms as usize;
    cfg.l2 = if two_part {
        L2ModelConfig::TwoPart(sttgpu_core::TwoPartConfig::new(8, 2, 56, 7, 256))
    } else {
        L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 4,
        }
    };
    cfg
}

/// One SM's requests for one cycle, in issue order.
type CycleOps = Vec<(u64, bool)>;

fn gen_cycle_ops(rng: &mut Rng, num_sms: u32, footprint_lines: u64) -> Vec<CycleOps> {
    (0..num_sms)
        .map(|_| {
            let n = rng.range_u32(0, 5);
            (0..n)
                .map(|_| {
                    let addr = rng.range_u64(0, footprint_lines) * LINE;
                    let write = rng.range_f64(0.0, 1.0) < 0.4;
                    (addr, write)
                })
                .collect()
        })
        .collect()
}

fn tick_and_compare(
    mem_a: &mut MemSystem,
    mem_b: &mut MemSystem,
    now_ns: u64,
    fills_a: &mut Vec<FillDelivery>,
    fills_b: &mut Vec<FillDelivery>,
    label: &str,
) {
    mem_a.tick(now_ns, fills_a);
    mem_b.tick(now_ns, fills_b);
    assert_eq!(fills_a, fills_b, "[{label}] fill deliveries diverged");
}

fn run_case(seed: u64, num_sms: u32, two_part: bool, cycles: u64) {
    let label = format!("seed={seed} sms={num_sms} two_part={two_part}");
    let cfg = base_cfg(num_sms, two_part);

    let sink_a = Arc::new(Mutex::new(VecSink::new()));
    let sink_b = Arc::new(Mutex::new(VecSink::new()));
    let mut mem_a = MemSystem::new(&cfg);
    let mut mem_b = MemSystem::new(&cfg);
    mem_a.set_trace(Trace::to_sink(Arc::clone(&sink_a)));
    mem_b.set_trace(Trace::to_sink(Arc::clone(&sink_b)));

    let mut batches: Vec<RequestBatch> = (0..num_sms).map(|_| RequestBatch::new()).collect();
    let mut rng = Rng::new(seed);
    let mut shuffle_rng = Rng::new(seed ^ 0xBA7C_4ED0);
    let (mut fills_a, mut fills_b) = (Vec::new(), Vec::new());

    for cycle in 0..cycles {
        let now_ns = cfg.ns_of_cycle(cycle);
        tick_and_compare(
            &mut mem_a,
            &mut mem_b,
            now_ns,
            &mut fills_a,
            &mut fills_b,
            &label,
        );

        let ops = gen_cycle_ops(&mut rng, num_sms, 4096);

        // Path A: the serial inline driver — each SM's requests applied
        // directly, SMs visited in id order.
        for (sm, sm_ops) in ops.iter().enumerate() {
            for &(addr, write) in sm_ops {
                if write {
                    mem_a.write_request(sm as u32, addr, now_ns);
                } else {
                    mem_a.read_request(sm as u32, addr, now_ns);
                }
            }
        }

        // Path B: batches filled in a random cross-SM interleaving (each
        // SM's own issue order preserved — that is what concurrent step
        // scheduling can and cannot reorder), merged in SM-id order.
        let mut cursors = vec![0usize; num_sms as usize];
        let mut remaining: Vec<usize> = (0..num_sms as usize)
            .filter(|&sm| !ops[sm].is_empty())
            .collect();
        while !remaining.is_empty() {
            let pick = shuffle_rng.range_usize(0, remaining.len());
            let sm = remaining[pick];
            let (addr, write) = ops[sm][cursors[sm]];
            if write {
                batches[sm].push_write(addr, now_ns);
            } else {
                batches[sm].push_read(addr, now_ns);
            }
            cursors[sm] += 1;
            if cursors[sm] == ops[sm].len() {
                remaining.swap_remove(pick);
            }
        }
        for (sm, batch) in batches.iter_mut().enumerate() {
            batch.drain_into(sm as u32, &mut mem_b);
            assert!(batch.is_empty(), "[{label}] drain must empty the batch");
        }
    }

    // Drain both systems to idle, still comparing deliveries tick by tick.
    let mut cycle = cycles;
    while !(mem_a.is_idle() && mem_b.is_idle()) {
        assert!(
            cycle < cycles + 2_000_000,
            "[{label}] memory systems failed to drain"
        );
        let now_ns = cfg.ns_of_cycle(cycle);
        tick_and_compare(
            &mut mem_a,
            &mut mem_b,
            now_ns,
            &mut fills_a,
            &mut fills_b,
            &label,
        );
        cycle += 1;
    }

    assert_eq!(
        mem_a.llc().summary(),
        mem_b.llc().summary(),
        "[{label}] LLC summaries diverged"
    );
    assert_eq!(
        mem_a.llc().energy(),
        mem_b.llc().energy(),
        "[{label}] LLC energy ledgers diverged"
    );
    assert_eq!(
        (mem_a.dram_reads, mem_a.dram_writes, mem_a.dram_row_hits),
        (mem_b.dram_reads, mem_b.dram_writes, mem_b.dram_row_hits),
        "[{label}] DRAM counters diverged"
    );
    assert_eq!(
        (mem_a.read_hit_latency_sum_ns, mem_a.read_hit_count),
        (mem_b.read_hit_latency_sum_ns, mem_b.read_hit_count),
        "[{label}] read-hit latency accounting diverged"
    );

    let trace_a = sink_a.lock().unwrap().take();
    let trace_b = sink_b.lock().unwrap().take();
    assert_eq!(
        trace_a.len(),
        trace_b.len(),
        "[{label}] trace stream lengths diverged"
    );
    for (i, (a, b)) in trace_a.iter().zip(&trace_b).enumerate() {
        assert_eq!(a, b, "[{label}] trace diverged at event {i}");
    }
}

#[test]
fn batched_merge_matches_inline_two_part() {
    for seed in 0..6 {
        run_case(0x4D45_5247 + seed, 4, true, 400);
    }
}

#[test]
fn batched_merge_matches_inline_sram() {
    for seed in 0..6 {
        run_case(0x5241_4D00 + seed, 4, false, 400);
    }
}

#[test]
fn batched_merge_matches_inline_corner_sm_counts() {
    for &num_sms in &[1u32, 2, 3, 8, 15] {
        run_case(0xC0_u64 + num_sms as u64, num_sms, true, 250);
    }
}
