//! Differential test for the event-driven cycle-skipping driver.
//!
//! `Gpu::run_seeded` normally jumps over provably-idle cycle spans. The
//! `set_single_step` debug switch disables every skip and grinds through
//! one cycle per iteration — the reference semantics. This suite runs the
//! same (config, kernels, seed) under both drivers and demands *identical*
//! observable behaviour: every `RunMetrics` field (cycles, instructions,
//! idle accounting, L2/DRAM counters, energy, per-kernel spans) and the
//! full trace event stream, event by event.
//!
//! Geometries are chosen to exercise every wake source the skipping driver
//! reasons about: warp dependency stalls, memory-system events, MSHR-full
//! replays, block launch waves, multi-kernel barriers and truncated runs.
//!
//! The same harness also pins the *parallel-stepping* contract: every
//! geometry is additionally run under the cycle-skipping driver with
//! `sim_threads` ∈ {2, 4, 8}, and the metrics and full trace stream must
//! match the serial single-step reference event for event.

use std::sync::{Arc, Mutex};

use sttgpu_sim::{Gpu, GpuConfig, KernelParams, L2ModelConfig, WarpScheduler};
use sttgpu_stats::Rng;
use sttgpu_trace::{Trace, VecSink};

/// Runs `kernels` single-stepped serially (the reference semantics), then
/// cycle-skipping at 1, 2, 4 and 8 step threads — and asserts metrics and
/// trace streams match the reference exactly in every configuration.
fn assert_equivalent(label: &str, cfg: &GpuConfig, kernels: &[KernelParams], seed: u64, max: u64) {
    let kernels: Vec<Arc<KernelParams>> = kernels.iter().cloned().map(Arc::new).collect();

    let run = |single_step: bool, threads: usize| {
        let sink = Arc::new(Mutex::new(VecSink::new()));
        let mut gpu = Gpu::new(cfg.clone());
        gpu.set_trace(Trace::to_sink(sink.clone()));
        gpu.set_single_step(single_step);
        gpu.set_sim_threads(threads);
        let metrics = gpu.run_seeded(&kernels, seed, max);
        let events = sink.lock().unwrap().take();
        (metrics, events, gpu.cycle())
    };

    let (m_step, t_step, c_step) = run(true, 1);
    for threads in [1usize, 2, 4, 8] {
        let (m_skip, t_skip, c_skip) = run(false, threads);
        assert_eq!(
            c_step, c_skip,
            "[{label}] final driver cycle diverged (threads={threads})"
        );
        assert_eq!(
            m_step, m_skip,
            "[{label}] RunMetrics diverged (threads={threads})"
        );
        assert_eq!(
            t_step.len(),
            t_skip.len(),
            "[{label}] trace length diverged (threads={threads})"
        );
        for (i, (a, b)) in t_step.iter().zip(&t_skip).enumerate() {
            assert_eq!(
                a, b,
                "[{label}] trace diverged at event {i} (threads={threads})"
            );
        }
    }
}

fn base_cfg(l2: L2ModelConfig) -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_sms = 2;
    cfg.l2 = l2;
    cfg
}

/// Two-part LLC with a multi-kernel workload: kernel barriers flush L1s
/// and restart the launch wave, so skips must never cross a grid boundary.
#[test]
fn two_part_multi_kernel() {
    let cfg = base_cfg(L2ModelConfig::TwoPart(sttgpu_core::TwoPartConfig::new(
        8, 2, 56, 7, 256,
    )));
    let kernels = [
        KernelParams::new("produce", 8, 64)
            .with_instructions(150)
            .with_mem_fraction(0.3)
            .with_write_fraction(0.6)
            .with_footprint_kb(256),
        KernelParams::new("consume", 6, 96)
            .with_instructions(120)
            .with_mem_fraction(0.4)
            .with_read_locality(0.7)
            .with_footprint_kb(256),
    ];
    assert_equivalent("two-part multi-kernel", &cfg, &kernels, 0xD0C, 30_000_000);
}

/// SRAM baseline under the greedy-then-oldest scheduler, whose parked
/// greedy warp is a wake source that bypasses the ready queue.
#[test]
fn sram_gto_scheduler() {
    let mut cfg = base_cfg(L2ModelConfig::Sram {
        kb: 64,
        ways: 8,
        banks: 4,
    });
    cfg.scheduler = WarpScheduler::GreedyThenOldest;
    let kernels = [KernelParams::new("gto", 10, 64)
        .with_instructions(200)
        .with_mem_fraction(0.35)
        .with_write_fraction(0.3)
        .with_footprint_kb(512)];
    assert_equivalent("sram gto", &cfg, &kernels, 0x0470, 30_000_000);
}

/// STT-RAM LLC with the L1 MSHRs squeezed to near nothing: most memory
/// instructions bounce off a full table and replay `MSHR_RETRY_CYCLES`
/// later — a wake source that exists only because of stalls.
#[test]
fn sttram_mshr_constrained() {
    let mut cfg = base_cfg(L2ModelConfig::SttRam {
        kb: 256,
        ways: 8,
        banks: 4,
        retention_years: 10.0,
    });
    cfg.l1.mshr_entries = 2;
    cfg.l1.mshr_targets = 2;
    cfg.max_pending_loads = 2;
    let kernels = [KernelParams::new("thrash", 8, 128)
        .with_instructions(150)
        .with_mem_fraction(0.6)
        .with_footprint_kb(4_096)
        .with_coalescing(4.0)];
    assert_equivalent("mshr constrained", &cfg, &kernels, 0x3511, 30_000_000);
}

/// More blocks than the occupancy limit admits at once: retiring blocks
/// trigger fresh launches, so availability of queued work is itself a
/// wake source the skip logic must respect.
#[test]
fn oversubscribed_launch_waves() {
    let mut cfg = base_cfg(L2ModelConfig::Sram {
        kb: 64,
        ways: 8,
        banks: 4,
    });
    cfg.num_sms = 1;
    cfg.max_blocks_per_sm = 2;
    let kernels = [KernelParams::new("waves", 24, 32)
        .with_instructions(80)
        .with_mem_fraction(0.25)
        .with_write_fraction(0.4)
        .with_local_fraction(0.2)
        .with_footprint_kb(128)];
    assert_equivalent("launch waves", &cfg, &kernels, 0x11AE, 30_000_000);
}

/// A cycle budget that truncates the run mid-kernel: the skipping driver
/// must stop on the same cycle, with identical partial metrics, rather
/// than jumping past the deadline.
#[test]
fn truncated_budget() {
    let cfg = base_cfg(L2ModelConfig::Sram {
        kb: 64,
        ways: 8,
        banks: 4,
    });
    let kernels = [KernelParams::new("cutoff", 16, 64)
        .with_instructions(300)
        .with_mem_fraction(0.5)
        .with_footprint_kb(2_048)];
    for budget in [500, 3_000, 20_000] {
        assert_equivalent("truncated", &cfg, &kernels, 0x7D0, budget);
    }
}

/// Randomized sweep across kernel shapes, seeds and both schedulers.
#[test]
fn fuzzed_geometries() {
    let mut rng = Rng::new(0x005E_EDE0);
    for i in 0..10 {
        let k = KernelParams::new("fuzz", rng.range_u32(2, 12), rng.range_u32(1, 4) * 32)
            .with_instructions(rng.range_u32(40, 250))
            .with_mem_fraction(rng.range_f64(0.0, 0.6))
            .with_write_fraction(rng.range_f64(0.0, 0.7))
            .with_local_fraction(rng.range_f64(0.0, 0.3))
            .with_footprint_kb(rng.range_u64(32, 1_024))
            .with_read_locality(rng.range_f64(0.0, 1.0));
        let mut cfg = base_cfg(L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 4,
        });
        cfg.scheduler = if i % 2 == 0 {
            WarpScheduler::LooseRoundRobin
        } else {
            WarpScheduler::GreedyThenOldest
        };
        let seed = rng.range_u64(0, 10_000);
        assert_equivalent("fuzz", &cfg, &[k], seed, 30_000_000);
    }
}
