//! Randomized property tests for the GPU simulator's global invariants,
//! driven by the in-tree deterministic [`Rng`].

use sttgpu_sim::{Gpu, GpuConfig, KernelParams, L2ModelConfig, WarpScheduler, Workload};
use sttgpu_stats::Rng;

fn small_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::gtx480();
    cfg.num_sms = 3;
    cfg.l2 = L2ModelConfig::Sram {
        kb: 64,
        ways: 8,
        banks: 4,
    };
    cfg
}

/// Draws a small but varied kernel.
fn random_kernel(rng: &mut Rng) -> KernelParams {
    KernelParams::new("fuzz", rng.range_u32(2, 12), rng.range_u32(1, 4) * 32)
        .with_instructions(rng.range_u32(50, 300))
        .with_mem_fraction(rng.range_f64(0.0, 0.5))
        .with_write_fraction(rng.range_f64(0.0, 0.7))
        .with_local_fraction(rng.range_f64(0.0, 0.4))
        .with_footprint_kb(rng.range_u64(32, 512))
        .with_read_locality(rng.range_f64(0.0, 1.0))
}

/// Every fuzzed kernel drains: the GPU reaches the exact analytic
/// instruction count and goes idle.
#[test]
fn fuzzed_kernels_always_drain() {
    let mut rng = Rng::new(0xAA01);
    for _ in 0..12 {
        let k = random_kernel(&mut rng);
        let seed = rng.range_u64(0, 1000);
        let mut gpu = Gpu::new(small_cfg());
        let m = gpu.run_seeded(&[std::sync::Arc::new(k.clone())], seed, 30_000_000);
        assert!(m.finished, "kernel did not drain: {k:?}");
        let expected =
            k.blocks as u64 * k.threads_per_block as u64 * k.instructions_per_warp as u64;
        assert_eq!(m.instructions, expected, "instruction conservation");
    }
}

/// The same (kernel, seed) is bit-identical across runs and across L2
/// choices in committed work.
#[test]
fn determinism_and_trace_equality() {
    let mut rng = Rng::new(0xAA02);
    for _ in 0..8 {
        let k = random_kernel(&mut rng);
        let seed = rng.range_u64(0, 1000);
        let w = Workload::new("fuzz", vec![k], seed);
        let mut a = Gpu::new(small_cfg());
        let mut b = Gpu::new(small_cfg());
        let ra = a.run_workload(&w, 30_000_000);
        let rb = b.run_workload(&w, 30_000_000);
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ra.l2.accesses(), rb.l2.accesses());
        assert_eq!(ra.dram_reads, rb.dram_reads);

        // A different L2 sees the same committed instructions.
        let mut cfg = small_cfg();
        cfg.l2 = L2ModelConfig::SttRam {
            kb: 256,
            ways: 8,
            banks: 4,
            retention_years: 10.0,
        };
        let mut c = Gpu::new(cfg);
        let rc = c.run_workload(&w, 30_000_000);
        assert!(rc.finished);
        assert_eq!(rc.instructions, ra.instructions);
    }
}

/// Both schedulers drain every fuzzed kernel with identical work.
#[test]
fn schedulers_agree_on_work() {
    let mut rng = Rng::new(0xAA03);
    for _ in 0..8 {
        let k = random_kernel(&mut rng);
        let seed = rng.range_u64(0, 500);
        let w = Workload::new("fuzz", vec![k], seed);
        let mut lrr_cfg = small_cfg();
        lrr_cfg.scheduler = WarpScheduler::LooseRoundRobin;
        let mut gto_cfg = small_cfg();
        gto_cfg.scheduler = WarpScheduler::GreedyThenOldest;
        let ra = Gpu::new(lrr_cfg).run_workload(&w, 30_000_000);
        let rb = Gpu::new(gto_cfg).run_workload(&w, 30_000_000);
        assert!(ra.finished && rb.finished);
        assert_eq!(ra.instructions, rb.instructions);
    }
}

/// Accounting identities hold after any run: L2 accesses and DRAM traffic
/// are consistent with hit/miss counters.
#[test]
fn accounting_identities() {
    let mut rng = Rng::new(0xAA04);
    for _ in 0..12 {
        let k = random_kernel(&mut rng);
        let seed = rng.range_u64(0, 500);
        let mut gpu = Gpu::new(small_cfg());
        let m = gpu.run_seeded(&[std::sync::Arc::new(k)], seed, 30_000_000);
        assert!(m.finished);
        assert_eq!(
            m.l2.accesses(),
            m.l2.read_hits + m.l2.read_misses + m.l2.write_hits + m.l2.write_misses
        );
        // Every DRAM read was caused by some L2 miss (merging can only
        // reduce, never amplify).
        assert!(m.dram_reads <= m.l2.misses() + 1);
        assert!(m.dram_row_hits <= m.dram_reads);
        // Energy is consistent with traffic.
        let e = m.l2_energy.dynamic_nj();
        if m.l2.accesses() > 0 {
            assert!(e > 0.0, "traffic must cost energy");
        }
    }
}

/// The two-part L2 under a fuzz-ish end-to-end run never loses LR data and
/// keeps exclusivity (heavier than the unit-level checks because the full
/// GPU drives it).
#[test]
fn two_part_under_full_gpu_traffic() {
    use sttgpu_core::TwoPartConfig;
    let mut cfg = small_cfg();
    cfg.l2 = L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256));
    let k = KernelParams::new("mixed", 12, 64)
        .with_instructions(400)
        .with_mem_fraction(0.3)
        .with_write_fraction(0.4)
        .with_local_fraction(0.1)
        .with_footprint_kb(128);
    let mut gpu = Gpu::new(cfg);
    let m = gpu.run(&[k], 30_000_000);
    assert!(m.finished);
    let tp = gpu.llc().as_two_part().expect("two-part");
    assert_eq!(tp.stats().lr_expirations, 0, "no LR data loss");
    for line in 0..1024u64 {
        let addr = line * 256;
        assert!(!(tp.lr_contains(addr) && tp.hr_contains(addr)));
    }
}
