//! The shared memory system: interconnect, L2 (any [`LlcModel`]) and DRAM.
//!
//! SMs hand read/write requests to [`MemSystem`]; it carries them over a
//! fixed-latency interconnect, probes the L2, merges concurrent misses to
//! the same L2 line, models DRAM bandwidth per memory controller and
//! delivers L1 fill responses back to the SMs as timed events. It also
//! drives the L2's maintenance (refresh/expiry) clock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sttgpu_cache::{AccessKind, BankArbiter, LineMap};
use sttgpu_core::{AnyLlc, LlcModel};
use sttgpu_trace::{Trace, TraceEvent};
use sttgpu_tracefile::TraceRecord;

use crate::config::GpuConfig;
use crate::icnt::Icnt;

/// A timed memory-system event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// DRAM data for an L2 line arrives at the L2.
    DramData { l2_line: u64 },
    /// A fill response reaches an SM's L1.
    L1Fill { sm: u32, byte_addr: u64 },
}

/// An L2 miss in flight to DRAM, with the L1 requests waiting on it.
#[derive(Debug, Clone, Default)]
struct L2Pending {
    dirty: bool,
    waiters: Vec<(u32, u64)>,
}

/// A fill response ready for delivery to an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillDelivery {
    /// Destination SM.
    pub sm: u32,
    /// Byte address of the L1 line being filled.
    pub byte_addr: u64,
}

/// Interconnect + L2 + DRAM.
#[derive(Debug)]
pub struct MemSystem {
    llc: AnyLlc,
    trace: Trace,
    dram: BankArbiter,
    events: BinaryHeap<Reverse<(u64, u64, EventKind)>>,
    seq: u64,
    l2_pending: LineMap<L2Pending>,
    icnt: Icnt,
    dram_row_miss_ns: u64,
    dram_row_hit_ns: u64,
    dram_lines_per_row: u64,
    /// One open-row slot per memory controller (fixed at construction,
    /// like the row latch in a real DRAM bank): `open_rows[mc]` is the row
    /// currently latched at controller `mc`, or `u64::MAX` when closed.
    open_rows: Box<[u64]>,
    dram_service_ns: u64,
    l2_line_bytes: u64,
    next_maintain_ns: u64,
    maintain_interval_ns: u64,
    /// When recording, the verbatim LLC call stream (probes at icnt
    /// arrival, fills at DRAM-data arrival, maintains at cadence
    /// deadlines) in exact issue order — replaying it against a fresh
    /// LLC reproduces the statistics block bit for bit. MSHR-merged
    /// requests never reach the LLC and so never appear.
    call_log: Option<Vec<TraceRecord>>,
    /// DRAM read requests issued (L2 fills).
    pub dram_reads: u64,
    /// DRAM write requests issued (L2 write-backs).
    pub dram_writes: u64,
    /// DRAM read requests that hit their controller's open row.
    pub dram_row_hits: u64,
    /// Sum of L2 service times (ready - arrival) over read hits, ns.
    pub read_hit_latency_sum_ns: u64,
    /// Number of L2 read hits observed.
    pub read_hit_count: u64,
}

impl MemSystem {
    /// Builds the memory system from the GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let llc = cfg.l2.build(cfg.l2_line_bytes);
        let maintain_interval_ns = llc.maintenance_interval_ns();
        MemSystem {
            llc,
            trace: Trace::off(),
            dram: BankArbiter::new(cfg.dram.controllers as usize),
            events: BinaryHeap::new(),
            seq: 0,
            l2_pending: LineMap::default(),
            icnt: Icnt::new(cfg.num_sms.max(1), cfg.icnt_latency_ns, cfg.icnt_flit_ns),
            dram_row_miss_ns: cfg.dram.latency_ns,
            dram_row_hit_ns: cfg.dram.row_hit_latency_ns,
            dram_lines_per_row: (cfg.dram.row_bytes / cfg.l2_line_bytes as u64).max(1),
            open_rows: vec![u64::MAX; cfg.dram.controllers as usize].into_boxed_slice(),
            dram_service_ns: cfg.dram.service_ns,
            l2_line_bytes: cfg.l2_line_bytes as u64,
            next_maintain_ns: maintain_interval_ns,
            maintain_interval_ns,
            call_log: None,
            dram_reads: 0,
            dram_writes: 0,
            dram_row_hits: 0,
            read_hit_latency_sum_ns: 0,
            read_hit_count: 0,
        }
    }

    /// The L2 under test.
    pub fn llc(&self) -> &AnyLlc {
        &self.llc
    }

    /// Mutable access to the L2 (measurement resets).
    pub fn llc_mut(&mut self) -> &mut AnyLlc {
        &mut self.llc
    }

    /// Attaches a trace sink observing the L2 and the miss tracker
    /// (MSHR space 0).
    pub fn set_trace(&mut self, trace: Trace) {
        self.llc.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Starts recording the verbatim LLC call stream (discarding any
    /// log in progress). Costs one branch per LLC call while active.
    pub fn start_call_log(&mut self) {
        self.call_log = Some(Vec::new());
    }

    /// Stops recording and returns the log, or `None` when recording
    /// was never started.
    pub fn take_call_log(&mut self) -> Option<Vec<TraceRecord>> {
        self.call_log.take()
    }

    fn push_event(&mut self, at_ns: u64, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse((at_ns, self.seq, kind)));
    }

    fn l2_line_of(&self, byte_addr: u64) -> u64 {
        byte_addr / self.l2_line_bytes
    }

    /// Charges DRAM bandwidth for `count` write-backs.
    fn charge_writebacks(&mut self, count: u32, now_ns: u64) {
        for _ in 0..count {
            self.dram_writes += 1;
            let mc = (self.dram_writes % self.dram.banks() as u64) as usize;
            self.dram.reserve(mc, now_ns, self.dram_service_ns);
        }
    }

    /// Starts a DRAM fetch for an L2 line; data arrives after queueing
    /// plus a row-hit or row-miss latency. Lines interleave across
    /// controllers; within a controller, consecutive lines share a row, so
    /// streaming fills hit the open row.
    fn fetch_from_dram(&mut self, l2_line: u64, ready_to_issue_ns: u64) {
        self.dram_reads += 1;
        let controllers = self.dram.banks() as u64;
        let mc = (l2_line % controllers) as usize;
        let row = (l2_line / controllers) / self.dram_lines_per_row;
        let latency = if self.open_rows[mc] == row {
            self.dram_row_hits += 1;
            self.dram_row_hit_ns
        } else {
            self.open_rows[mc] = row;
            self.dram_row_miss_ns
        };
        let start = self
            .dram
            .reserve(mc, ready_to_issue_ns, self.dram_service_ns);
        let data_at = start + latency;
        self.push_event(data_at, EventKind::DramData { l2_line });
    }

    /// An L1 read miss arrives from SM `sm` for the L1 line at
    /// `byte_addr`. Returns nothing; the fill comes back as a
    /// [`FillDelivery`] from [`tick`](Self::tick).
    pub fn read_request(&mut self, sm: u32, byte_addr: u64, now_ns: u64) {
        let arrival = self.icnt.request_arrival(sm, now_ns);
        let l2_line = self.l2_line_of(byte_addr);

        // Merge with an in-flight miss before touching the cache: the data
        // is already on its way.
        if let Some(pending) = self.l2_pending.get_mut(&l2_line) {
            pending.waiters.push((sm, byte_addr));
            self.trace.emit(|| TraceEvent::MshrMerge {
                space: 0,
                la: l2_line,
            });
            return;
        }

        if let Some(log) = &mut self.call_log {
            log.push(TraceRecord::Access {
                at_ns: arrival,
                line: l2_line,
                write: false,
            });
        }
        let out = self.llc.probe(byte_addr, AccessKind::Read, arrival);
        self.charge_writebacks(out.writebacks, arrival);
        if out.hit {
            self.read_hit_latency_sum_ns += out.ready_ns.saturating_sub(arrival);
            self.read_hit_count += 1;
            let deliver_at = self.icnt.response_arrival(sm, out.ready_ns);
            self.push_event(deliver_at, EventKind::L1Fill { sm, byte_addr });
        } else {
            self.l2_pending.insert(
                l2_line,
                L2Pending {
                    dirty: false,
                    waiters: vec![(sm, byte_addr)],
                },
            );
            self.trace.emit(|| TraceEvent::MshrAlloc {
                space: 0,
                la: l2_line,
            });
            self.fetch_from_dram(l2_line, out.ready_ns);
        }
    }

    /// A global write (write-through from SM `sm`'s L1) arrives for
    /// `byte_addr`. Writes complete without a response; misses allocate in
    /// L2 (write-allocate) after a DRAM fetch.
    pub fn write_request(&mut self, sm: u32, byte_addr: u64, now_ns: u64) {
        let arrival = self.icnt.request_arrival(sm, now_ns);
        let l2_line = self.l2_line_of(byte_addr);

        if let Some(pending) = self.l2_pending.get_mut(&l2_line) {
            pending.dirty = true;
            self.trace.emit(|| TraceEvent::MshrMerge {
                space: 0,
                la: l2_line,
            });
            return;
        }

        if let Some(log) = &mut self.call_log {
            log.push(TraceRecord::Access {
                at_ns: arrival,
                line: l2_line,
                write: true,
            });
        }
        let out = self.llc.probe(byte_addr, AccessKind::Write, arrival);
        self.charge_writebacks(out.writebacks, arrival);
        if !out.hit {
            self.l2_pending.insert(
                l2_line,
                L2Pending {
                    dirty: true,
                    waiters: Vec::new(),
                },
            );
            self.trace.emit(|| TraceEvent::MshrAlloc {
                space: 0,
                la: l2_line,
            });
            self.fetch_from_dram(l2_line, out.ready_ns);
        }
    }

    /// Advances the memory system to `now_ns`: runs due maintenance and
    /// events, appending due L1 fill deliveries to `fills`.
    ///
    /// `fills` is cleared first; the caller owns it and reuses it across
    /// ticks so the per-cycle hot loop allocates nothing.
    pub fn tick(&mut self, now_ns: u64, fills: &mut Vec<FillDelivery>) {
        fills.clear();
        // Fast path: nothing due yet — one comparison and out, so the
        // driver can afford to call this every simulated cycle it visits.
        if self.next_wake_ns().is_none_or(|t| t > now_ns) {
            return;
        }
        // L2 refresh/expiry cadence.
        if self.maintain_interval_ns != u64::MAX {
            while self.next_maintain_ns <= now_ns {
                let t = self.next_maintain_ns;
                if let Some(log) = &mut self.call_log {
                    log.push(TraceRecord::Maintain { at_ns: t });
                }
                self.llc.maintain(t);
                self.next_maintain_ns += self.maintain_interval_ns;
            }
        }

        while let Some(&Reverse((t, _, kind))) = self.events.peek() {
            if t > now_ns {
                break;
            }
            self.events.pop();
            match kind {
                EventKind::DramData { l2_line } => {
                    let byte_addr = l2_line * self.l2_line_bytes;
                    let pending = match self.l2_pending.remove(&l2_line) {
                        Some(p) => {
                            self.trace.emit(|| TraceEvent::MshrComplete {
                                space: 0,
                                la: l2_line,
                            });
                            p
                        }
                        None => L2Pending::default(),
                    };
                    if let Some(log) = &mut self.call_log {
                        log.push(TraceRecord::Fill {
                            at_ns: t,
                            line: l2_line,
                            dirty: pending.dirty,
                        });
                    }
                    let out = self.llc.fill(byte_addr, pending.dirty, t);
                    self.charge_writebacks(out.writebacks, t);
                    // Fill-and-forward: waiters get data over the icnt.
                    for (sm, l1_addr) in pending.waiters {
                        let deliver_at = self.icnt.response_arrival(sm, t);
                        self.push_event(
                            deliver_at,
                            EventKind::L1Fill {
                                sm,
                                byte_addr: l1_addr,
                            },
                        );
                    }
                }
                EventKind::L1Fill { sm, byte_addr } => {
                    fills.push(FillDelivery { sm, byte_addr });
                }
            }
        }
    }

    /// Whether no memory traffic is in flight.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty() && self.l2_pending.is_empty()
    }

    /// Time of the next scheduled event, if any (lets the driver skip
    /// idle cycles).
    pub fn next_event_ns(&self) -> Option<u64> {
        self.events.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Earliest time at which [`tick`](Self::tick) has any work to do —
    /// the next queued event or the next maintenance deadline, whichever
    /// comes first. Ticks strictly before this time are no-ops, which is
    /// what lets the event-driven driver jump over them.
    pub fn next_wake_ns(&self) -> Option<u64> {
        let maint = (self.maintain_interval_ns != u64::MAX).then_some(self.next_maintain_ns);
        match (self.next_event_ns(), maint) {
            (Some(e), Some(m)) => Some(e.min(m)),
            (e, m) => e.or(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GpuConfig, L2ModelConfig};

    fn mem() -> MemSystem {
        let mut cfg = GpuConfig::gtx480();
        cfg.l2 = L2ModelConfig::Sram {
            kb: 64,
            ways: 8,
            banks: 2,
        };
        MemSystem::new(&cfg)
    }

    /// Drains the system, returning all deliveries with their times.
    fn drain(m: &mut MemSystem, until_ns: u64) -> Vec<(u64, FillDelivery)> {
        let mut out = Vec::new();
        let mut fills = Vec::new();
        let mut t = 0;
        while t <= until_ns {
            m.tick(t, &mut fills);
            for &f in &fills {
                out.push((t, f));
            }
            t += 10;
        }
        out
    }

    #[test]
    fn read_miss_round_trip() {
        let mut m = mem();
        m.read_request(3, 0x1000, 0);
        assert_eq!(m.dram_reads, 1);
        let fills = drain(&mut m, 10_000);
        assert_eq!(fills.len(), 1);
        let (t, f) = fills[0];
        assert_eq!(f.sm, 3);
        assert_eq!(f.byte_addr, 0x1000);
        assert!(t >= 160, "must include DRAM latency, got {t}");
        assert!(m.is_idle());
    }

    #[test]
    fn read_hit_skips_dram() {
        let mut m = mem();
        m.read_request(0, 0x1000, 0);
        drain(&mut m, 10_000);
        let reads_before = m.dram_reads;
        m.read_request(1, 0x1000, 20_000);
        assert_eq!(m.dram_reads, reads_before, "hit must not touch DRAM");
        let fills = drain(&mut m, 40_000);
        assert_eq!(fills.len(), 1);
        // Hit latency is far below the DRAM round trip.
        assert!(fills[0].0 - 20_000 < 100);
    }

    #[test]
    fn concurrent_misses_merge() {
        let mut m = mem();
        m.read_request(0, 0x1000, 0);
        m.read_request(1, 0x1080, 0); // same 256 B L2 line, different L1 line
        assert_eq!(m.dram_reads, 1, "second miss must merge");
        let fills = drain(&mut m, 10_000);
        assert_eq!(fills.len(), 2, "both waiters are served");
    }

    #[test]
    fn write_miss_allocates_dirty() {
        let mut m = mem();
        m.write_request(0, 0x2000, 0);
        assert_eq!(m.dram_reads, 1, "write-allocate fetches the line");
        drain(&mut m, 10_000);
        // The line is now dirty in L2: evicting it later would write back.
        let s = m.llc().summary();
        assert_eq!(s.write_misses, 1);
    }

    #[test]
    fn write_into_pending_line_merges_dirtiness() {
        let mut m = mem();
        m.read_request(0, 0x3000, 0);
        m.write_request(1, 0x3000, 5);
        assert_eq!(m.dram_reads, 1);
        drain(&mut m, 10_000);
        let s = m.llc().summary();
        // The merged write never probed the cache.
        assert_eq!(s.write_misses + s.write_hits, 0);
    }

    #[test]
    fn maintenance_runs_for_two_part_l2() {
        use sttgpu_core::TwoPartConfig;
        let mut cfg = GpuConfig::gtx480();
        cfg.l2 = L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256));
        let mut m = MemSystem::new(&cfg);
        assert!(m.maintain_interval_ns < u64::MAX);
        // Fill a dirty line then run far past HR/LR retention.
        m.write_request(0, 0x100, 0);
        drain(&mut m, 20_000);
        m.tick(10_000_000, &mut Vec::new()); // 10 ms
        let tp = m.llc().as_two_part().expect("two-part L2");
        assert!(
            tp.stats().refreshes > 0 || tp.stats().hr_expirations > 0,
            "maintenance must have acted"
        );
    }

    #[test]
    fn streaming_fills_hit_the_open_row() {
        let mut m = mem();
        // 6 controllers, 2 KB rows, 256 B lines: lines k and k+6 share a
        // controller and (for small k) a row.
        m.read_request(0, 0, 0);
        drain(&mut m, 5_000);
        assert_eq!(m.dram_row_hits, 0, "first touch misses the row");
        m.read_request(0, 6 * 256, 10_000);
        drain(&mut m, 20_000);
        assert_eq!(m.dram_row_hits, 1, "same-row line must hit");
        // A far-away line on the same controller closes the row.
        m.read_request(0, 6 * 256 * 1000, 30_000);
        drain(&mut m, 50_000);
        assert_eq!(m.dram_row_hits, 1);
    }

    #[test]
    fn row_hits_are_faster_than_row_misses() {
        let mut m = mem();
        m.read_request(0, 0, 0);
        let first = drain(&mut m, 5_000);
        let miss_latency = first[0].0;
        m.read_request(0, 6 * 256, 10_000);
        let second = drain(&mut m, 20_000);
        let hit_latency = second[0].0 - 10_000;
        assert!(
            hit_latency + 20 < miss_latency,
            "row hit {hit_latency} must beat row miss {miss_latency}"
        );
    }

    #[test]
    fn controllers_track_open_rows_independently() {
        let mut m = mem();
        // Lines 0 and 1 land on controllers 0 and 1. Opening a row on one
        // controller must not disturb the other's latch.
        m.read_request(0, 0, 0);
        m.read_request(0, 256, 0);
        drain(&mut m, 5_000);
        assert_eq!(m.dram_row_hits, 0);
        // Same rows again: both controllers still hold their rows.
        m.read_request(0, 6 * 256, 10_000);
        m.read_request(0, 7 * 256, 10_000);
        drain(&mut m, 20_000);
        assert_eq!(m.dram_row_hits, 2, "each controller keeps its own row");
    }

    #[test]
    fn reused_fill_buffer_is_cleared_each_tick() {
        let mut m = mem();
        let mut fills = Vec::new();
        m.read_request(0, 0x1000, 0);
        let mut seen = 0;
        for t in (0..10_000).step_by(10) {
            m.tick(t, &mut fills);
            seen += fills.len();
        }
        assert_eq!(seen, 1, "exactly one delivery in total");
        m.tick(20_000, &mut fills);
        assert!(fills.is_empty(), "stale deliveries must not survive");
    }

    #[test]
    fn call_log_captures_the_exact_llc_call_stream() {
        let mut m = mem();
        m.start_call_log();
        m.read_request(0, 0x1000, 0); // miss: probe + later fill
        m.read_request(1, 0x1080, 0); // merges: no LLC call at all
        drain(&mut m, 10_000);
        m.write_request(0, 0x1000, 20_000); // hit: probe only
        drain(&mut m, 30_000);
        let log = m.take_call_log().expect("logging was on");
        let l2_line = 0x1000 / 256;
        assert_eq!(log.len(), 3, "merge must not log: {log:?}");
        assert!(
            matches!(log[0], TraceRecord::Access { line, write: false, .. } if line == l2_line)
        );
        assert!(matches!(log[1], TraceRecord::Fill { line, dirty: false, .. } if line == l2_line));
        assert!(matches!(log[2], TraceRecord::Access { line, write: true, .. } if line == l2_line));
        assert!(m.take_call_log().is_none(), "take stops the recording");
    }

    #[test]
    fn call_log_interleaves_maintains_at_cadence_deadlines() {
        use sttgpu_core::TwoPartConfig;
        let mut cfg = GpuConfig::gtx480();
        cfg.l2 = L2ModelConfig::TwoPart(TwoPartConfig::new(8, 2, 56, 7, 256));
        let mut m = MemSystem::new(&cfg);
        let cadence = m.maintain_interval_ns;
        m.start_call_log();
        m.write_request(0, 0x100, 0);
        drain(&mut m, 20_000);
        let log = m.take_call_log().expect("logging was on");
        let maintains = log
            .iter()
            .filter(|r| matches!(r, TraceRecord::Maintain { .. }))
            .count();
        assert!(maintains > 0, "cadence must appear in the log");
        for r in &log {
            if let TraceRecord::Maintain { at_ns } = r {
                assert_eq!(at_ns % cadence, 0, "maintains land on cadence ticks");
            }
        }
    }

    #[test]
    fn next_event_time_is_exposed() {
        let mut m = mem();
        assert_eq!(m.next_event_ns(), None);
        m.read_request(0, 0x1000, 0);
        assert!(m.next_event_ns().is_some());
    }
}
