//! Interconnection network between SMs and L2 banks.
//!
//! The paper's GPU connects 15 SM clusters to 6 L2 banks/memory partitions
//! through a butterfly network. For the memory-system effects the
//! evaluation measures, the network contributes (a) a traversal latency
//! and (b) finite per-port bandwidth; topology details beyond that do not
//! change who wins. [`Icnt`] models both: each request reserves its SM's
//! injection port (requests) or ejection port (responses) for a flit time
//! and then traverses with a fixed latency, so bursty SMs see queueing.

use sttgpu_cache::BankArbiter;

/// SM-to-L2 network with per-SM injection/ejection ports.
///
/// # Example
///
/// ```
/// use sttgpu_sim::icnt::Icnt;
///
/// let mut net = Icnt::new(2, 10, 1);
/// // Two back-to-back packets from SM 0 serialise on its port...
/// let a = net.request_arrival(0, 100);
/// let b = net.request_arrival(0, 100);
/// assert_eq!(a, 110);
/// assert_eq!(b, 111);
/// // ...but SM 1's port is free.
/// assert_eq!(net.request_arrival(1, 100), 110);
/// ```
#[derive(Debug)]
pub struct Icnt {
    latency_ns: u64,
    flit_ns: u64,
    injection: BankArbiter,
    ejection: BankArbiter,
    /// Packets carried SM→L2.
    pub requests: u64,
    /// Packets carried L2→SM.
    pub responses: u64,
}

impl Icnt {
    /// Creates a network for `sms` endpoints with the given one-way
    /// traversal latency and per-port flit service time.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is zero.
    pub fn new(sms: usize, latency_ns: u64, flit_ns: u64) -> Self {
        Icnt {
            latency_ns,
            flit_ns: flit_ns.max(1),
            injection: BankArbiter::new(sms),
            ejection: BankArbiter::new(sms),
            requests: 0,
            responses: 0,
        }
    }

    /// When a request injected by `sm` at `now_ns` arrives at the L2.
    pub fn request_arrival(&mut self, sm: u32, now_ns: u64) -> u64 {
        self.requests += 1;
        let start = self.injection.reserve(sm as usize, now_ns, self.flit_ns);
        start + self.latency_ns
    }

    /// When a response ready at the L2 at `ready_ns` reaches `sm`.
    pub fn response_arrival(&mut self, sm: u32, ready_ns: u64) -> u64 {
        self.responses += 1;
        let start = self.ejection.reserve(sm as usize, ready_ns, self.flit_ns);
        start + self.latency_ns
    }

    /// One-way traversal latency, ns.
    pub fn latency_ns(&self) -> u64 {
        self.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_applies() {
        let mut net = Icnt::new(4, 10, 1);
        assert_eq!(net.request_arrival(2, 1_000), 1_010);
        assert_eq!(net.response_arrival(2, 2_000), 2_010);
    }

    #[test]
    fn injection_port_serialises_bursts() {
        let mut net = Icnt::new(1, 10, 2);
        let t0 = net.request_arrival(0, 0);
        let t1 = net.request_arrival(0, 0);
        let t2 = net.request_arrival(0, 0);
        assert_eq!(t0, 10);
        assert_eq!(t1, 12);
        assert_eq!(t2, 14);
    }

    #[test]
    fn ports_are_independent_directions() {
        let mut net = Icnt::new(1, 10, 5);
        // Saturate injection; ejection unaffected.
        net.request_arrival(0, 0);
        net.request_arrival(0, 0);
        assert_eq!(net.response_arrival(0, 0), 10);
    }

    #[test]
    fn counters_track_traffic() {
        let mut net = Icnt::new(2, 10, 1);
        net.request_arrival(0, 0);
        net.request_arrival(1, 0);
        net.response_arrival(0, 50);
        assert_eq!(net.requests, 2);
        assert_eq!(net.responses, 1);
    }
}
