//! Kernel (grid) parameterisation and dispatch.
//!
//! A GPGPU application is "one or more kernels", each launching a grid of
//! thread blocks that the hardware distributes over SMs; grids run
//! sequentially with a global barrier between them (the paper leans on
//! this: "grids have a small amount of writes happening usually at the end
//! of their execution"). [`KernelParams`] captures the statistics of one
//! kernel that the memory system responds to; [`Workload`] strings kernels
//! together; [`GridDispatcher`] hands blocks to SMs.

use std::sync::Arc;

/// When during a kernel's execution its writes happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePhase {
    /// Writes spread uniformly over the kernel (default).
    #[default]
    Uniform,
    /// Writes concentrate in the tail of each warp's execution — the
    /// producer pattern of grid-sequential GPGPU applications the paper
    /// describes in §4.
    EndOfKernel,
}

/// Statistical description of one kernel (grid).
///
/// # Example
///
/// ```
/// use sttgpu_sim::KernelParams;
///
/// let k = KernelParams::new("stencil_step", 120, 256)
///     .with_instructions(2_000)
///     .with_mem_fraction(0.3)
///     .with_write_fraction(0.25)
///     .with_footprint_kb(2_048)
///     .with_regs_per_thread(24);
/// assert_eq!(k.warps_per_block(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelParams {
    /// Kernel name (for reports).
    pub name: String,
    /// Thread blocks in the grid.
    pub blocks: u32,
    /// Threads per block (multiple of 32).
    pub threads_per_block: u32,
    /// Registers per thread (occupancy pressure).
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes (occupancy pressure).
    pub shared_bytes_per_block: u32,
    /// Dynamic instructions per warp.
    pub instructions_per_warp: u32,
    /// Fraction of instructions that are global memory operations.
    pub mem_fraction: f64,
    /// Fraction of memory operations that are writes (paper suite spans
    /// ~0 % to 63 %).
    pub write_fraction: f64,
    /// Global-data footprint, bytes (L2 sensitivity knob).
    pub footprint_bytes: u64,
    /// Base address of the footprint (lets grids share data).
    pub addr_base: u64,
    /// Fraction of the footprint that forms the write working set.
    pub wws_fraction: f64,
    /// Probability a write targets the WWS region (write concentration —
    /// the inter/intra-set COV knob of Fig. 3).
    pub write_skew: f64,
    /// Probability a read streams through the warp's own segment
    /// (coalesced locality) rather than hitting a random footprint line.
    pub read_locality: f64,
    /// Average L1 lines touched per warp memory instruction (1 =
    /// perfectly coalesced, up to 32 = fully divergent).
    pub coalescing: f64,
    /// Temporal placement of writes.
    pub write_phase: WritePhase,
    /// Fraction of memory operations that touch **local** (per-thread)
    /// data — register spills and private arrays. Local data follows the
    /// L1 write-back/write-allocate policy of the paper's Fig. 1-b
    /// instead of the global write-evict path.
    pub local_fraction: f64,
}

impl KernelParams {
    /// Creates a kernel with sensible defaults for everything but the
    /// grid shape.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` is zero or not a multiple of 32, or
    /// if `blocks` is zero.
    pub fn new(name: &str, blocks: u32, threads_per_block: u32) -> Self {
        assert!(blocks > 0, "a grid needs blocks");
        assert!(
            threads_per_block > 0 && threads_per_block.is_multiple_of(32),
            "threads per block must be a positive multiple of the warp size"
        );
        KernelParams {
            name: name.to_owned(),
            blocks,
            threads_per_block,
            regs_per_thread: 20,
            shared_bytes_per_block: 0,
            instructions_per_warp: 1_000,
            mem_fraction: 0.25,
            write_fraction: 0.15,
            footprint_bytes: 1024 * 1024,
            addr_base: 0,
            wws_fraction: 0.1,
            write_skew: 0.7,
            read_locality: 0.6,
            coalescing: 1.5,
            write_phase: WritePhase::Uniform,
            local_fraction: 0.0,
        }
    }

    /// Warps per thread block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block / 32
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        self.blocks as u64 * self.warps_per_block() as u64
    }

    /// Sets the dynamic instruction count per warp.
    pub fn with_instructions(mut self, n: u32) -> Self {
        self.instructions_per_warp = n;
        self
    }

    /// Sets the memory-instruction fraction.
    pub fn with_mem_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.mem_fraction = f;
        self
    }

    /// Sets the write fraction of memory operations.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.write_fraction = f;
        self
    }

    /// Sets the global footprint in KB.
    pub fn with_footprint_kb(mut self, kb: u64) -> Self {
        assert!(kb > 0);
        self.footprint_bytes = kb * 1024;
        self
    }

    /// Sets register pressure per thread.
    pub fn with_regs_per_thread(mut self, regs: u32) -> Self {
        assert!(regs > 0);
        self.regs_per_thread = regs;
        self
    }

    /// Sets shared-memory usage per block, bytes.
    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    /// Sets the WWS size (fraction of footprint) and write concentration.
    pub fn with_wws(mut self, fraction: f64, skew: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction) && (0.0..=1.0).contains(&skew));
        self.wws_fraction = fraction;
        self.write_skew = skew;
        self
    }

    /// Sets read locality (0 = all random, 1 = all streaming).
    pub fn with_read_locality(mut self, locality: f64) -> Self {
        assert!((0.0..=1.0).contains(&locality));
        self.read_locality = locality;
        self
    }

    /// Sets the coalescing factor (average L1 lines per memory op).
    pub fn with_coalescing(mut self, lines: f64) -> Self {
        assert!((1.0..=32.0).contains(&lines));
        self.coalescing = lines;
        self
    }

    /// Sets the temporal write phase.
    pub fn with_write_phase(mut self, phase: WritePhase) -> Self {
        self.write_phase = phase;
        self
    }

    /// Sets the local (per-thread, write-back) fraction of memory ops.
    pub fn with_local_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f));
        self.local_fraction = f;
        self
    }

    /// Sets the footprint base address (for grid-to-grid data sharing).
    pub fn with_addr_base(mut self, base: u64) -> Self {
        self.addr_base = base;
        self
    }
}

/// A named sequence of kernels plus the RNG seed that makes runs
/// reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name (benchmark name in reports).
    pub name: String,
    /// Kernels, executed in order with a global barrier between them.
    /// Shared (`Arc`) so dispatchers and per-warp program generators hold
    /// references instead of deep-cloning the parameter block per run.
    pub kernels: Vec<Arc<KernelParams>>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: &str, kernels: Vec<KernelParams>, seed: u64) -> Self {
        assert!(!kernels.is_empty(), "a workload needs at least one kernel");
        Workload {
            name: name.to_owned(),
            kernels: kernels.into_iter().map(Arc::new).collect(),
            seed,
        }
    }

    /// Total dynamic thread-instructions of the workload (for run-length
    /// planning).
    pub fn total_thread_instructions(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| k.total_warps() * k.instructions_per_warp as u64 * 32)
            .sum()
    }
}

/// Hands out a kernel's thread blocks to SMs in launch order.
#[derive(Debug, Clone)]
pub struct GridDispatcher {
    kernel: Arc<KernelParams>,
    next_block: u32,
    retired_blocks: u32,
    trace: sttgpu_trace::Trace,
}

impl GridDispatcher {
    /// Starts dispatching `kernel`'s grid.
    pub fn new(kernel: Arc<KernelParams>) -> Self {
        GridDispatcher {
            kernel,
            next_block: 0,
            retired_blocks: 0,
            trace: sttgpu_trace::Trace::off(),
        }
    }

    /// Attaches a trace sink observing the grid's retirement invariant.
    pub fn set_trace(&mut self, trace: sttgpu_trace::Trace) {
        self.trace = trace;
    }

    /// The kernel being dispatched.
    pub fn kernel(&self) -> &Arc<KernelParams> {
        &self.kernel
    }

    /// Takes the next block id, or `None` when the grid is exhausted.
    pub fn next_block(&mut self) -> Option<u32> {
        if self.next_block < self.kernel.blocks {
            let b = self.next_block;
            self.next_block += 1;
            Some(b)
        } else {
            None
        }
    }

    /// Records a finished block.
    pub fn retire_block(&mut self) {
        self.retired_blocks += 1;
        if self.retired_blocks > self.kernel.blocks {
            // More retirements than the grid has blocks: double-counted
            // completion somewhere upstream. The checker reports it.
            self.trace.emit(|| sttgpu_trace::TraceEvent::OverRetire {
                retired: self.retired_blocks,
                blocks: self.kernel.blocks,
            });
            debug_assert!(self.retired_blocks <= self.kernel.blocks);
        }
    }

    /// Whether every block of the grid has retired.
    pub fn is_done(&self) -> bool {
        self.retired_blocks == self.kernel.blocks
    }

    /// Blocks not yet handed out.
    pub fn remaining(&self) -> u32 {
        self.kernel.blocks - self.next_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_arithmetic() {
        let k = KernelParams::new("k", 10, 256);
        assert_eq!(k.warps_per_block(), 8);
        assert_eq!(k.total_warps(), 80);
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn rejects_ragged_blocks() {
        KernelParams::new("k", 1, 100);
    }

    #[test]
    fn builder_setters() {
        let k = KernelParams::new("k", 1, 32)
            .with_instructions(5)
            .with_mem_fraction(0.5)
            .with_write_fraction(0.63)
            .with_footprint_kb(512)
            .with_regs_per_thread(63)
            .with_shared_bytes(1024)
            .with_wws(0.05, 0.9)
            .with_read_locality(0.8)
            .with_coalescing(2.0)
            .with_write_phase(WritePhase::EndOfKernel)
            .with_addr_base(1 << 30);
        assert_eq!(k.instructions_per_warp, 5);
        assert_eq!(k.footprint_bytes, 512 * 1024);
        assert_eq!(k.write_phase, WritePhase::EndOfKernel);
        assert_eq!(k.addr_base, 1 << 30);
    }

    #[test]
    fn workload_instruction_budget() {
        let k = KernelParams::new("k", 2, 64).with_instructions(100);
        let w = Workload::new("w", vec![k], 7);
        // 2 blocks * 2 warps * 100 instr * 32 threads.
        assert_eq!(w.total_thread_instructions(), 12_800);
    }

    #[test]
    fn dispatcher_hands_out_each_block_once() {
        let k = Arc::new(KernelParams::new("k", 3, 32));
        let mut d = GridDispatcher::new(k);
        assert_eq!(d.next_block(), Some(0));
        assert_eq!(d.next_block(), Some(1));
        assert_eq!(d.remaining(), 1);
        assert_eq!(d.next_block(), Some(2));
        assert_eq!(d.next_block(), None);
        assert!(!d.is_done());
        d.retire_block();
        d.retire_block();
        d.retire_block();
        assert!(d.is_done());
    }
}
