//! Per-SM L1 data cache with GPU write semantics.
//!
//! Implements the policy of the paper's Fig. 1-b for global data: reads
//! allocate normally, write hits **evict** the line and forward the write
//! to L2, write misses forward without allocating. MSHRs merge secondary
//! misses to in-flight lines.

use sttgpu_cache::{AccessKind, MshrOutcome, MshrTable, ReplacementPolicy, SetAssocCache};
use sttgpu_trace::Trace;

use crate::config::L1Config;

/// Outcome of a read access to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1ReadOutcome {
    /// Data present — no L2 traffic.
    Hit,
    /// Miss; a new fill request must be sent to L2.
    MissIssued,
    /// Miss on an already in-flight line; the request was merged.
    MissMerged,
    /// Miss, but the MSHR table is full — the instruction must replay.
    MshrFull,
}

/// A non-coherent GPU L1 data cache.
///
/// # Example
///
/// ```
/// use sttgpu_sim::config::L1Config;
/// use sttgpu_sim::l1::{L1Cache, L1ReadOutcome};
///
/// let mut l1 = L1Cache::new(&L1Config::default());
/// assert_eq!(l1.read(0x1000, 7, 0), L1ReadOutcome::MissIssued);
/// let (woken, dirty_victim) = l1.fill(0x1000, 100);
/// assert_eq!(woken, vec![7]);
/// assert_eq!(dirty_victim, None);
/// assert_eq!(l1.read(0x1000, 7, 200), L1ReadOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    cache: SetAssocCache<()>,
    mshr: MshrTable,
    line_bytes: u32,
    write_evictions: u64,
}

impl L1Cache {
    /// Builds an L1 from its configuration.
    pub fn new(cfg: &L1Config) -> Self {
        let lines = cfg.kb * 1024 / cfg.line_bytes as u64;
        let sets = (lines / cfg.ways as u64) as usize;
        L1Cache {
            cache: SetAssocCache::new(
                sets,
                cfg.ways as usize,
                cfg.line_bytes,
                ReplacementPolicy::Lru,
            ),
            mshr: MshrTable::new(cfg.mshr_entries, cfg.mshr_targets),
            line_bytes: cfg.line_bytes,
            write_evictions: 0,
        }
    }

    /// L1 line size, bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Attaches a trace sink to this L1's MSHR table; `space` names the
    /// table in the event stream (`1 + sm_id`).
    pub fn set_trace(&mut self, trace: Trace, space: u32) {
        self.mshr.set_trace(trace, space);
    }

    /// Line-granular address of a byte address.
    pub fn line_addr(&self, byte_addr: u64) -> u64 {
        byte_addr / self.line_bytes as u64
    }

    /// Issues a read for `byte_addr` on behalf of `warp_token`.
    pub fn read(&mut self, byte_addr: u64, warp_token: u64, now_ns: u64) -> L1ReadOutcome {
        let la = self.line_addr(byte_addr);
        if self.cache.lookup(la, AccessKind::Read, now_ns).is_some() {
            return L1ReadOutcome::Hit;
        }
        match self.mshr.allocate(la, warp_token) {
            MshrOutcome::Allocated => L1ReadOutcome::MissIssued,
            MshrOutcome::Merged => L1ReadOutcome::MissMerged,
            MshrOutcome::Full => L1ReadOutcome::MshrFull,
        }
    }

    /// Issues a global write: write-evict on hit, write-no-allocate on
    /// miss. The write itself always continues to L2 (the caller forwards
    /// it); this method only maintains L1 state. Returns a dirty (local)
    /// victim's byte address if the eviction displaced one.
    pub fn write(&mut self, byte_addr: u64, now_ns: u64) {
        let la = self.line_addr(byte_addr);
        if self.cache.lookup(la, AccessKind::Write, now_ns).is_some() {
            // Write-evict: the (now stale) local copy is dropped. Global
            // lines are never dirty in L1, so nothing is written back.
            self.cache.extract(la);
            self.write_evictions += 1;
        }
    }

    /// Issues a **local** (per-thread) write: write-back / write-allocate
    /// (paper Fig. 1-b). A hit dirties the line in place; a miss allocates
    /// the line dirty (spill frames are written whole, no fetch needed).
    /// Returns the byte address of a dirty victim that must be written
    /// back to L2, if the allocation displaced one.
    pub fn write_local(&mut self, byte_addr: u64, now_ns: u64) -> Option<u64> {
        let la = self.line_addr(byte_addr);
        if self.cache.lookup(la, AccessKind::Write, now_ns).is_some() {
            return None;
        }
        let victim = self.cache.fill(la, true, now_ns);
        self.victim_of(victim)
    }

    fn victim_of(&self, victim: Option<sttgpu_cache::Evicted<()>>) -> Option<u64> {
        victim
            .filter(|v| v.dirty)
            .map(|v| v.line_addr * self.line_bytes as u64)
    }

    /// Completes an in-flight fill: installs the line (clean) and returns
    /// the warp tokens waiting on it plus the byte address of a dirty
    /// (local) victim needing write-back, if any.
    pub fn fill(&mut self, byte_addr: u64, now_ns: u64) -> (Vec<u64>, Option<u64>) {
        let la = self.line_addr(byte_addr);
        let evicted = self.cache.fill(la, false, now_ns);
        let victim = self.victim_of(evicted);
        (self.mshr.complete(la), victim)
    }

    /// Read hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.cache.stats().hit_rate()
    }

    /// (read hits, read misses, writes observed, write-evictions).
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        let s = self.cache.stats();
        (
            s.read_hits.get(),
            s.read_misses.get(),
            s.writes(),
            self.write_evictions,
        )
    }

    /// Invalidates all contents (kernel boundary), keeping statistics.
    pub fn invalidate_all(&mut self) {
        self.cache.flush();
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
        self.write_evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(&L1Config::default())
    }

    #[test]
    fn geometry_from_config() {
        let c = l1();
        // 16 KB / 128 B / 4 ways = 32 sets.
        assert_eq!(c.cache.sets(), 32);
        assert_eq!(c.line_bytes(), 128);
    }

    #[test]
    fn miss_then_merge_then_fill_wakes_all() {
        let mut c = l1();
        assert_eq!(c.read(0x100, 1, 0), L1ReadOutcome::MissIssued);
        assert_eq!(c.read(0x100, 2, 1), L1ReadOutcome::MissMerged);
        assert_eq!(
            c.read(0x140, 3, 2),
            L1ReadOutcome::MissMerged,
            "same 128B line"
        );
        let (woken, victim) = c.fill(0x100, 10);
        assert_eq!(woken, vec![1, 2, 3]);
        assert_eq!(victim, None);
        assert_eq!(c.read(0x100, 4, 20), L1ReadOutcome::Hit);
    }

    #[test]
    fn write_evicts_resident_line() {
        let mut c = l1();
        c.read(0x100, 1, 0);
        c.fill(0x100, 5);
        assert_eq!(c.read(0x100, 1, 10), L1ReadOutcome::Hit);
        c.write(0x100, 20);
        assert_eq!(
            c.read(0x100, 1, 30),
            L1ReadOutcome::MissIssued,
            "write-evict removed the line"
        );
        assert_eq!(c.counters().3, 1);
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut c = l1();
        c.write(0x200, 0);
        assert_eq!(c.read(0x200, 1, 10), L1ReadOutcome::MissIssued);
    }

    #[test]
    fn mshr_full_reported() {
        let cfg = L1Config {
            mshr_entries: 1,
            ..L1Config::default()
        };
        let mut c = L1Cache::new(&cfg);
        assert_eq!(c.read(0x100, 1, 0), L1ReadOutcome::MissIssued);
        assert_eq!(c.read(0x900, 2, 1), L1ReadOutcome::MshrFull);
    }

    #[test]
    fn invalidate_all_clears_contents() {
        let mut c = l1();
        c.read(0x100, 1, 0);
        c.fill(0x100, 5);
        c.invalidate_all();
        assert_eq!(c.read(0x100, 1, 10), L1ReadOutcome::MissIssued);
    }

    #[test]
    fn local_write_allocates_dirty_without_fetch() {
        let mut c = l1();
        assert_eq!(c.write_local(0x400, 0), None, "empty cache, no victim");
        // The line is now resident: a read hits without any fill.
        assert_eq!(c.read(0x400, 1, 10), L1ReadOutcome::Hit);
    }

    #[test]
    fn dirty_local_victim_is_reported_for_writeback() {
        // Direct-mapped-ish pressure: fill one set's 4 ways with dirty
        // local lines, then displace one with a 5th conflicting line.
        let mut c = l1();
        let sets = 32u64;
        for i in 0..4 {
            assert_eq!(c.write_local(i * sets * 128, 0), None);
        }
        let victim = c.write_local(4 * sets * 128, 10);
        assert!(victim.is_some(), "displacing a dirty line must report it");
        assert_eq!(victim.expect("victim") % (sets * 128), 0, "same set");
    }

    #[test]
    fn clean_fill_eviction_reports_no_victim() {
        let mut c = l1();
        let sets = 32u64;
        for i in 0..5 {
            c.read(i * sets * 128, 1, 0);
            let (_, victim) = c.fill(i * sets * 128, 0);
            assert_eq!(victim, None, "clean global lines never write back");
        }
    }
}
