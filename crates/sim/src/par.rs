//! Persistent worker pool for stepping SMs in parallel.
//!
//! The driver shards the SM vector into contiguous runs and ships each
//! run (by value — `Sm` owns all the state a step touches) to a
//! long-lived worker thread over a channel; the main thread steps shard 0
//! itself, then collects the shards back and reassembles the vector in id
//! order. No `unsafe`, no shared mutable state: the only things crossing
//! threads are moved `Vec<Sm>`s and plain result counters.
//!
//! Determinism does not depend on the pool at all — workers only mutate
//! SM-local state, and everything order-sensitive (memory requests, dirty
//! victims, trace events) is parked inside each `Sm` until the driver's
//! merge phase replays it in canonical order. The pool exists purely to
//! overlap the per-SM issue work; see DESIGN.md §11.

use std::sync::mpsc::{Receiver, RecvError, Sender, TryRecvError};
use std::thread::JoinHandle;

use crate::sm::Sm;

/// One parcel of work: a contiguous run of SMs to step for one cycle.
struct Job {
    shard: usize,
    sms: Vec<Sm>,
    cycle: u64,
    now_ns: u64,
}

/// A stepped shard on its way back to the driver.
struct Done {
    shard: usize,
    sms: Vec<Sm>,
    blocks_retired: u32,
    next_wake: u64,
}

/// Bounded busy-wait before falling back to a blocking receive. Cycles
/// are short, so the next job usually arrives within the spin window on a
/// multi-core host; on a single-core host the early fallback to `recv`
/// yields the timeslice back to whichever thread holds the work.
const SPIN_TRIES: u32 = 128;

fn recv_spin(rx: &Receiver<Job>) -> Result<Job, RecvError> {
    for _ in 0..SPIN_TRIES {
        match rx.try_recv() {
            Ok(job) => return Ok(job),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return Err(RecvError),
        }
    }
    rx.recv()
}

/// Steps every SM in `sms`, accumulating retirements and the minimum wake
/// cycle. Shared by the workers and the main thread's shard-0 pass.
fn step_shard(sms: &mut [Sm], cycle: u64, now_ns: u64) -> (u32, u64) {
    let mut blocks_retired = 0;
    let mut next_wake = u64::MAX;
    for sm in sms {
        let out = sm.step(cycle, now_ns);
        blocks_retired += out.blocks_retired;
        next_wake = next_wake.min(out.next_wake);
    }
    (blocks_retired, next_wake)
}

fn worker_loop(jobs: Receiver<Job>, results: Sender<Done>) {
    while let Ok(mut job) = recv_spin(&jobs) {
        let (blocks_retired, next_wake) = step_shard(&mut job.sms, job.cycle, job.now_ns);
        let done = Done {
            shard: job.shard,
            sms: job.sms,
            blocks_retired,
            next_wake,
        };
        if results.send(done).is_err() {
            break;
        }
    }
}

/// A persistent pool of `workers` threads plus the calling thread.
///
/// Created lazily on the first parallel cycle and reused for the rest of
/// the run; dropping it disconnects the job channels, which the workers
/// observe as shutdown.
pub struct SmPool {
    job_txs: Vec<Sender<Job>>,
    results: Receiver<Done>,
    handles: Vec<JoinHandle<()>>,
    /// Per-shard scratch vectors, kept to preserve their capacity between
    /// cycles (shard reassembly via `Vec::append` leaves them empty but
    /// allocated).
    shard_bufs: Vec<Vec<Sm>>,
}

impl std::fmt::Debug for SmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl SmPool {
    /// A pool with `workers` background threads (total parallelism is
    /// `workers + 1`: the caller steps the first shard itself).
    pub fn new(workers: usize) -> Self {
        let (result_tx, results) = std::sync::mpsc::channel();
        let mut job_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (job_tx, job_rx) = std::sync::mpsc::channel();
            let result_tx = result_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sm-worker-{i}"))
                .spawn(move || worker_loop(job_rx, result_tx))
                .expect("spawning SM worker thread");
            job_txs.push(job_tx);
            handles.push(handle);
        }
        SmPool {
            job_txs,
            results,
            handles,
            shard_bufs: (0..workers + 1).map(|_| Vec::new()).collect(),
        }
    }

    /// Background worker count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Steps every SM for one cycle across the pool and returns the total
    /// blocks retired and the minimum next wake cycle. `sms` comes back
    /// in its original id order with every SM stepped exactly once.
    pub fn step(&mut self, sms: &mut Vec<Sm>, cycle: u64, now_ns: u64) -> (u32, u64) {
        let shards = self.handles.len() + 1;
        let chunk = sms.len().div_ceil(shards);
        {
            let mut drain = sms.drain(..);
            for buf in &mut self.shard_bufs {
                buf.extend(drain.by_ref().take(chunk));
            }
        }
        let mut in_flight = 0;
        for (i, tx) in self.job_txs.iter().enumerate() {
            let shard = i + 1;
            if self.shard_bufs[shard].is_empty() {
                continue;
            }
            let job = Job {
                shard,
                sms: std::mem::take(&mut self.shard_bufs[shard]),
                cycle,
                now_ns,
            };
            tx.send(job).expect("SM worker alive");
            in_flight += 1;
        }
        let (mut blocks_retired, mut next_wake) =
            step_shard(&mut self.shard_bufs[0], cycle, now_ns);
        for _ in 0..in_flight {
            let done = self.results.recv().expect("SM worker alive");
            blocks_retired += done.blocks_retired;
            next_wake = next_wake.min(done.next_wake);
            self.shard_bufs[done.shard] = done.sms;
        }
        for buf in &mut self.shard_bufs {
            sms.append(buf);
        }
        (blocks_retired, next_wake)
    }
}

impl Drop for SmPool {
    fn drop(&mut self) {
        self.job_txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
