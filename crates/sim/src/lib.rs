//! Cycle-level GPU memory-system simulator.
//!
//! The paper evaluates on GPGPU-Sim 3.2.1 (a PTX-level cycle simulator).
//! Its results, however, are entirely memory-system effects: L2 hit rate,
//! L2 write-service occupancy, and how many resident warps an SM has to
//! hide memory latency with. This crate reproduces exactly that machinery
//! without a PTX front-end:
//!
//! * **SMs** ([`sm`]) issue instructions from resident warps each cycle;
//!   warps block on outstanding loads and the scheduler rotates through
//!   ready warps — the latency-hiding mechanism real GPUs use;
//! * **occupancy** ([`occupancy`]) limits resident thread blocks per SM by
//!   register file, shared memory, warp slots and a block cap — the
//!   register-file enlargements of configurations C2/C3 act here;
//! * **L1 data caches** ([`l1`]) implement the GPU write policy of the
//!   paper's Fig. 1-b (write-evict / write-no-allocate for global data)
//!   with MSHRs;
//! * an **interconnect** (fixed latency) carries misses to a banked,
//!   shared **L2** — any [`sttgpu_core::LlcModel`]: the SRAM baseline, the
//!   uniform STT-RAM baseline or the proposed two-part LLC;
//! * **DRAM** ([`mem`]) models per-memory-controller bandwidth and a fixed
//!   access latency;
//! * synthetic **warp programs** ([`program`]) generate instruction and
//!   address streams from workload parameters ([`kernel`]) — instruction
//!   mix, write fraction, footprint, write-working-set skew, coalescing,
//!   phase structure.
//!
//! The top-level [`Gpu`] runs a [`Workload`] (a sequence of kernels/grids
//! with a global barrier between them, as CUDA grids have) and reports
//! [`RunMetrics`]: IPC, cache statistics and the L2 energy ledger.
//!
//! # Example
//!
//! ```
//! use sttgpu_sim::{Gpu, GpuConfig, KernelParams, L2ModelConfig, Workload};
//!
//! let mut cfg = GpuConfig::gtx480();
//! cfg.num_sms = 2; // keep the doctest quick
//! cfg.l2 = L2ModelConfig::Sram { kb: 64, ways: 8, banks: 4 };
//!
//! let kernel = KernelParams::new("toy", 8, 128)
//!     .with_instructions(200)
//!     .with_mem_fraction(0.2);
//! let workload = Workload::new("toy", vec![kernel], 42);
//!
//! let mut gpu = Gpu::new(cfg);
//! let metrics = gpu.run_workload(&workload, 1_000_000);
//! assert!(metrics.finished);
//! assert!(metrics.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod gpu;
pub mod icnt;
pub mod kernel;
pub mod l1;
pub mod mem;
pub mod metrics;
pub mod occupancy;
pub mod par;
pub mod program;
pub mod sm;
pub mod warp;

pub use config::{DramConfig, GpuConfig, L1Config, L2ModelConfig, WarpScheduler};
pub use gpu::Gpu;
pub use kernel::{KernelParams, Workload, WritePhase};
pub use metrics::RunMetrics;
pub use occupancy::Occupancy;
pub use sm::{RequestBatch, StepOutcome, VictimWb};
