//! Run metrics: everything Figs. 3–8 are computed from.

use sttgpu_core::LlcStats;
use sttgpu_device::energy::EnergyAccount;

/// Per-kernel slice of a run (kernels execute back to back with a global
/// barrier, so cycle spans partition the run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSpan {
    /// Kernel name.
    pub name: String,
    /// Cycles spent in this kernel (including its drain).
    pub cycles: u64,
    /// Thread instructions committed by this kernel.
    pub instructions: u64,
}

impl KernelSpan {
    /// The kernel's own IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Results of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Workload name.
    pub workload: String,
    /// Total SM cycles elapsed.
    pub cycles: u64,
    /// Simulated wall time, ns.
    pub elapsed_ns: u64,
    /// Thread instructions committed.
    pub instructions: u64,
    /// Whether the workload ran to completion within the cycle budget.
    pub finished: bool,
    /// Kernels skipped because they could not launch (zero occupancy).
    pub kernels_skipped: u32,
    /// L2 summary statistics.
    pub l2: LlcStats,
    /// Snapshot of the L2 energy ledger.
    pub l2_energy: EnergyAccount,
    /// Aggregate L1 read hits across SMs.
    pub l1_read_hits: u64,
    /// Aggregate L1 read misses across SMs.
    pub l1_read_misses: u64,
    /// DRAM read requests.
    pub dram_reads: u64,
    /// DRAM write requests (write-backs).
    pub dram_writes: u64,
    /// DRAM reads that hit an open row.
    pub dram_row_hits: u64,
    /// Instruction replays caused by full L1 MSHRs.
    pub mshr_stalls: u64,
    /// Cycles in which a non-idle SM could not issue, summed over SMs.
    pub sm_idle_cycles: u64,
    /// Average L2 read-hit service latency, ns.
    pub l2_read_hit_latency_ns: f64,
    /// Per-kernel cycle/instruction spans, in execution order.
    pub kernel_spans: Vec<KernelSpan>,
}

impl RunMetrics {
    /// Fraction of DRAM reads that hit an open row.
    pub fn dram_row_hit_rate(&self) -> f64 {
        if self.dram_reads == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / self.dram_reads as f64
        }
    }
}

impl RunMetrics {
    /// Instructions per cycle (thread instructions).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over a baseline run of the same workload.
    ///
    /// Comparison is by IPC when both runs committed the same instruction
    /// count (they do when both finish — workload traces are
    /// deterministic), otherwise by instruction throughput.
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        let a = self.ipc();
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            a / b
        }
    }

    /// L1 read hit rate across all SMs.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_read_hits + self.l1_read_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_read_hits as f64 / total as f64
        }
    }

    /// Average L2 dynamic power over the run, mW (Fig. 8b's quantity).
    pub fn l2_dynamic_power_mw(&self) -> f64 {
        self.l2_energy.dynamic_power_mw(self.elapsed_ns)
    }

    /// Average total L2 power (dynamic + leakage), mW (Fig. 8c's
    /// quantity).
    pub fn l2_total_power_mw(&self) -> f64 {
        self.l2_energy.total_power_mw(self.elapsed_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(instr: u64, cycles: u64) -> RunMetrics {
        RunMetrics {
            workload: "t".into(),
            cycles,
            elapsed_ns: cycles,
            instructions: instr,
            finished: true,
            kernels_skipped: 0,
            l2: LlcStats::default(),
            l2_energy: EnergyAccount::new(),
            l1_read_hits: 0,
            l1_read_misses: 0,
            dram_reads: 0,
            dram_writes: 0,
            dram_row_hits: 0,
            mshr_stalls: 0,
            sm_idle_cycles: 0,
            l2_read_hit_latency_ns: 0.0,
            kernel_spans: Vec::new(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let a = metrics(1000, 100);
        let b = metrics(1000, 200);
        assert_eq!(a.ipc(), 10.0);
        assert_eq!(b.ipc(), 5.0);
        assert_eq!(a.speedup_over(&b), 2.0);
    }

    #[test]
    fn zero_guards() {
        let z = metrics(0, 0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.l1_hit_rate(), 0.0);
        assert_eq!(metrics(10, 10).speedup_over(&z), 0.0);
    }

    #[test]
    fn l1_hit_rate() {
        let mut m = metrics(1, 1);
        m.l1_read_hits = 3;
        m.l1_read_misses = 1;
        assert!((m.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}
